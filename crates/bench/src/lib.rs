//! The measurement harness regenerating the paper's evaluation artifacts:
//! Table 1 (allocated bytes, allocation counts and iterations/minute per
//! benchmark, without vs. with Partial Escape Analysis), the §6.1 monitor
//! statistics, and the §6.2 comparison against the flow-insensitive
//! baseline.
//!
//! Binaries:
//!
//! * `table1 [dacapo|scala|specjbb|all]` — prints the corresponding block
//!   of Table 1 from live measurements;
//! * `comparison` — prints the §6.2 suite-average speedups for the EES
//!   baseline vs. PEA;
//! * `ablations` — per-feature breakdown (lock elision, field phis, loop
//!   processing) over the suites.

use pea_runtime::cost::CYCLES_PER_MINUTE;
use pea_runtime::{Stats, Value};
use pea_trace::{SharedSink, SiteAggregator};
use pea_vm::{OptLevel, Vm, VmOptions};
use pea_workloads::Workload;
use std::time::Instant;

/// Steady-state per-iteration measurements of one workload at one
/// optimization level.
#[derive(Clone, Copy, Debug)]
pub struct Measurement {
    /// Heap bytes allocated per iteration.
    pub bytes_per_iter: f64,
    /// Allocations per iteration (including rematerializations).
    pub allocs_per_iter: f64,
    /// Monitor operations (enter + exit) per iteration.
    pub monitor_ops_per_iter: f64,
    /// Virtual cycles per iteration.
    pub cycles_per_iter: f64,
    /// Host wall-clock nanoseconds per iteration. Unlike the virtual
    /// cycle columns this is hardware- and load-dependent; it is reported
    /// for honesty (the simulated speedups cost real time to produce) and
    /// for comparing execution tiers, not for comparison with the paper.
    pub wall_ns_per_iter: f64,
    /// Deoptimizations observed during measurement.
    pub deopts: u64,
    /// Methods compiled by the end of the run.
    pub compiles: u64,
}

impl Measurement {
    /// Simulated iterations per minute under the virtual clock.
    pub fn iterations_per_minute(&self) -> f64 {
        CYCLES_PER_MINUTE as f64 / self.cycles_per_iter
    }
}

/// Default warmup iterations (enough to cross the compile threshold and
/// stabilize speculation).
pub const DEFAULT_WARMUP: u64 = 120;

/// Default measured iterations.
pub const DEFAULT_ITERS: u64 = 40;

/// Runs `workload` at `level`: warms up, then measures `iters`
/// iterations.
///
/// # Panics
///
/// Panics if the workload raises a runtime error (generated kernels never
/// do; a panic indicates a compiler bug).
pub fn measure(workload: &Workload, level: OptLevel, warmup: u64, iters: u64) -> Measurement {
    let mut vm = Vm::new(workload.program.clone(), VmOptions::with_opt_level(level));
    for i in 0..warmup {
        vm.call_entry("iterate", &[Value::Int(i as i64)])
            .unwrap_or_else(|e| panic!("{} warmup: {e}", workload.name));
    }
    let before: Stats = vm.stats();
    let start = Instant::now();
    for i in warmup..warmup + iters {
        vm.call_entry("iterate", &[Value::Int(i as i64)])
            .unwrap_or_else(|e| panic!("{} iteration: {e}", workload.name));
    }
    let wall = start.elapsed();
    let d = vm.stats().delta(&before);
    Measurement {
        bytes_per_iter: d.alloc_bytes as f64 / iters as f64,
        allocs_per_iter: d.alloc_count as f64 / iters as f64,
        monitor_ops_per_iter: d.monitor_ops() as f64 / iters as f64,
        cycles_per_iter: d.cycles as f64 / iters as f64,
        wall_ns_per_iter: wall.as_nanos() as f64 / iters as f64,
        deopts: d.deopts,
        compiles: vm.stats().compiles,
    }
}

/// Runs `workload` with a [`SiteAggregator`] attached to the VM's trace
/// sink and returns the folded per-allocation-site decision counters:
/// which sites were virtualized, which materialized and why, which locks,
/// loads and stores were elided, plus deopt/eviction totals.
///
/// The extra `options` parameter (rather than a bare [`OptLevel`]) lets
/// the ablation harness report breakdowns for feature-disabled variants.
///
/// # Panics
///
/// Panics if the workload raises a runtime error.
pub fn measure_per_site(
    workload: &Workload,
    mut options: VmOptions,
    warmup: u64,
    iters: u64,
) -> SiteAggregator {
    let (sink, agg) = SharedSink::new(SiteAggregator::new());
    options.trace = Some(sink);
    let mut vm = Vm::new(workload.program.clone(), options);
    for i in 0..warmup + iters {
        vm.call_entry("iterate", &[Value::Int(i as i64)])
            .unwrap_or_else(|e| panic!("{} traced run: {e}", workload.name));
    }
    drop(vm);
    std::sync::Arc::try_unwrap(agg)
        .unwrap_or_else(|_| panic!("aggregator handle is unique once the VM is dropped"))
        .into_inner()
        .expect("aggregator lock poisoned")
}

/// One Table 1 row: a workload measured without and with an optimization.
#[derive(Clone, Debug)]
pub struct Row {
    /// Benchmark name.
    pub name: String,
    /// Whether the paper lists the row individually.
    pub significant: bool,
    /// Baseline (no escape analysis).
    pub without: Measurement,
    /// With the optimization under test.
    pub with: Measurement,
}

impl Row {
    /// Relative change in allocated bytes (negative = reduction).
    pub fn bytes_delta(&self) -> f64 {
        pct(self.without.bytes_per_iter, self.with.bytes_per_iter)
    }

    /// Relative change in allocation count.
    pub fn allocs_delta(&self) -> f64 {
        pct(self.without.allocs_per_iter, self.with.allocs_per_iter)
    }

    /// Relative change in monitor operations.
    pub fn monitors_delta(&self) -> f64 {
        pct(
            self.without.monitor_ops_per_iter,
            self.with.monitor_ops_per_iter,
        )
    }

    /// Speedup in iterations per minute (positive = faster).
    pub fn speedup(&self) -> f64 {
        pct(
            1.0 / self.without.cycles_per_iter,
            1.0 / self.with.cycles_per_iter,
        )
    }

    /// Relative change in host wall-clock time per iteration (negative =
    /// faster in real time, independent of the virtual clock).
    pub fn wall_delta(&self) -> f64 {
        pct(self.without.wall_ns_per_iter, self.with.wall_ns_per_iter)
    }
}

fn pct(without: f64, with: f64) -> f64 {
    if without == 0.0 {
        0.0
    } else {
        (with - without) / without * 100.0
    }
}

/// Measures every workload of a suite at `level` against the
/// no-escape-analysis baseline.
pub fn suite_rows(workloads: &[Workload], level: OptLevel) -> Vec<Row> {
    workloads
        .iter()
        .map(|w| Row {
            name: w.name.clone(),
            significant: w.significant,
            without: measure(w, OptLevel::None, DEFAULT_WARMUP, DEFAULT_ITERS),
            with: measure(w, level, DEFAULT_WARMUP, DEFAULT_ITERS),
        })
        .collect()
}

/// Renders one suite block in the layout of the paper's Table 1.
pub fn render_table(title: &str, rows: &[Row]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{title:<14} {:>22} {:>24} {:>26} {:>21}",
        "KB / Iteration", "Allocs / Iteration", "Iterations / Minute", "ns/op (wall)"
    );
    let _ = writeln!(
        out,
        "{:<14} {:>8} {:>8} {:>6} {:>9} {:>8} {:>6} {:>10} {:>10} {:>8} {:>11} {:>9}",
        "",
        "without",
        "with",
        "Δ",
        "without",
        "with",
        "Δ",
        "without",
        "with",
        "speedup",
        "without",
        "with"
    );
    for row in rows.iter().filter(|r| r.significant) {
        let _ = writeln!(
            out,
            "{:<14} {:>8.1} {:>8.1} {:>+5.1}% {:>9.1} {:>8.1} {:>+5.1}% {:>10.0} {:>10.0} \
             {:>+7.1}% {:>11.0} {:>9.0}",
            row.name,
            row.without.bytes_per_iter / 1024.0,
            row.with.bytes_per_iter / 1024.0,
            row.bytes_delta(),
            row.without.allocs_per_iter,
            row.with.allocs_per_iter,
            row.allocs_delta(),
            row.without.iterations_per_minute(),
            row.with.iterations_per_minute(),
            row.speedup(),
            row.without.wall_ns_per_iter,
            row.with.wall_ns_per_iter,
        );
    }
    let n = rows.len() as f64;
    let avg = |f: &dyn Fn(&Row) -> f64| rows.iter().map(f).sum::<f64>() / n;
    let _ = writeln!(
        out,
        "{:<14} {:>8} {:>8} {:>+5.1}% {:>9} {:>8} {:>+5.1}% {:>10} {:>10} {:>+7.1}% {:>11} \
         {:>+8.1}%",
        "average*",
        "",
        "",
        avg(&Row::bytes_delta),
        "",
        "",
        avg(&Row::allocs_delta),
        "",
        "",
        avg(&Row::speedup),
        "",
        avg(&Row::wall_delta),
    );
    let insignificant: Vec<&str> = rows
        .iter()
        .filter(|r| !r.significant)
        .map(|r| r.name.as_str())
        .collect();
    if !insignificant.is_empty() {
        let _ = writeln!(
            out,
            "  (*average includes rows without significant change: {})",
            insignificant.join(", ")
        );
    }
    out
}

/// Renders the §6.1 monitor-operation observations for the rows where the
/// paper reports them.
pub fn render_monitor_stats(rows: &[Row]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    for row in rows {
        if row.without.monitor_ops_per_iter > 0.0 {
            let _ = writeln!(
                out,
                "{:<14} monitor ops/iter: {:>8.1} -> {:>8.1} ({:+.1}%)",
                row.name,
                row.without.monitor_ops_per_iter,
                row.with.monitor_ops_per_iter,
                row.monitors_delta(),
            );
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use pea_workloads::{suite_workloads, Suite};

    #[test]
    fn measurement_computes_rates() {
        let w = &suite_workloads(Suite::ScalaDaCapo)
            .into_iter()
            .find(|w| w.name == "factorie")
            .unwrap();
        let m = measure(w, OptLevel::Pea, 60, 5);
        assert!(m.cycles_per_iter > 0.0);
        assert!(m.iterations_per_minute() > 0.0);
        assert!(m.compiles >= 1, "workload methods must get compiled");
    }

    #[test]
    fn factorie_row_has_expected_shape() {
        let w = suite_workloads(Suite::ScalaDaCapo)
            .into_iter()
            .find(|w| w.name == "factorie")
            .unwrap();
        let row = Row {
            name: w.name.clone(),
            significant: true,
            without: measure(&w, OptLevel::None, 60, 10),
            with: measure(&w, OptLevel::Pea, 60, 10),
        };
        assert!(
            row.allocs_delta() < -40.0,
            "factorie-like allocation reduction, got {:.1}%",
            row.allocs_delta()
        );
        assert!(
            row.speedup() > 5.0,
            "factorie-like speedup, got {:.1}%",
            row.speedup()
        );
    }

    /// The paper's jython row is the one slowdown; our stand-in must
    /// reproduce the sign (deterministic: the clock is virtual).
    #[test]
    fn jython_like_regresses() {
        let w = suite_workloads(Suite::DaCapo)
            .into_iter()
            .find(|w| w.name == "jython")
            .unwrap();
        let row = Row {
            name: w.name.clone(),
            significant: true,
            without: measure(&w, OptLevel::None, 80, 10),
            with: measure(&w, OptLevel::Pea, 80, 10),
        };
        assert!(
            row.speedup() < 0.0,
            "jython-like must slow down under PEA, got {:+.1}%",
            row.speedup()
        );
    }

    /// §6.1: "the relative decrease in the number of allocations is
    /// usually higher than the decrease in the number of allocated
    /// bytes, since the allocations not removed often contain large
    /// arrays" — checked on the array-heavy tmt stand-in.
    #[test]
    fn count_reduction_exceeds_byte_reduction_when_arrays_survive() {
        let w = suite_workloads(Suite::ScalaDaCapo)
            .into_iter()
            .find(|w| w.name == "tmt")
            .unwrap();
        let row = Row {
            name: w.name.clone(),
            significant: true,
            without: measure(&w, OptLevel::None, 80, 10),
            with: measure(&w, OptLevel::Pea, 80, 10),
        };
        assert!(
            row.allocs_delta() < row.bytes_delta(),
            "allocation-count cut ({:+.1}%) must exceed byte cut ({:+.1}%)",
            row.allocs_delta(),
            row.bytes_delta()
        );
    }

    #[test]
    fn table_renders_all_columns() {
        let rows = vec![Row {
            name: "demo".into(),
            significant: true,
            without: Measurement {
                bytes_per_iter: 2048.0,
                allocs_per_iter: 100.0,
                monitor_ops_per_iter: 10.0,
                cycles_per_iter: 1000.0,
                wall_ns_per_iter: 5000.0,
                deopts: 0,
                compiles: 1,
            },
            with: Measurement {
                bytes_per_iter: 1024.0,
                allocs_per_iter: 50.0,
                monitor_ops_per_iter: 0.0,
                cycles_per_iter: 800.0,
                wall_ns_per_iter: 4000.0,
                deopts: 0,
                compiles: 1,
            },
        }];
        let t = render_table("Demo", &rows);
        assert!(t.contains("demo"));
        assert!(t.contains("-50.0%"));
        let m = render_monitor_stats(&rows);
        assert!(m.contains("-100.0%"));
    }
}
