//! Per-feature ablation study over the benchmark suites: how much of
//! PEA's effect comes from lock elision, per-field phis at merges
//! (§5.3), and iterative loop processing (§5.4)?
//!
//! Each row disables exactly one feature and reports the suite-average
//! allocation-count change and speedup against the no-escape-analysis
//! baseline; the `full` row is the complete algorithm for reference.

//!
//! With `--per-site`, each variant row is followed by its materialization
//! reason totals (folded from the PEA trace stream), showing *which*
//! decisions each disabled feature forces the analysis into.

use pea_bench::{measure, measure_per_site, Row, DEFAULT_ITERS, DEFAULT_WARMUP};
use pea_compiler::InlinePolicy;
use pea_vm::{OptLevel, Vm, VmOptions};
use pea_workloads::{suite_workloads, Suite, Workload};

/// How much work the escape-analysis phase did, summed over the compiled
/// methods: sites it processed to a virtual state, sites the static
/// pre-filter excluded before the analysis ever saw them (nonzero only
/// for the `pea-prefilter` family of variants), and may-throw callees
/// the builder inlined on a cold-throw speculation (nonzero only under
/// `inline=summary`).
#[derive(Clone, Copy, Default)]
struct PeaWork {
    virtualized: usize,
    prefiltered: usize,
    cold_throw_inlined: usize,
}

fn measure_with(workload: &Workload, options: &VmOptions) -> (pea_bench::Measurement, PeaWork) {
    let mut vm = Vm::new(workload.program.clone(), options.clone());
    for i in 0..DEFAULT_WARMUP {
        vm.call_entry("iterate", &[pea_runtime::Value::Int(i as i64)])
            .expect("warmup");
    }
    let before = vm.stats();
    let start = std::time::Instant::now();
    for i in DEFAULT_WARMUP..DEFAULT_WARMUP + DEFAULT_ITERS {
        vm.call_entry("iterate", &[pea_runtime::Value::Int(i as i64)])
            .expect("iterate");
    }
    let wall = start.elapsed();
    let d = vm.stats().delta(&before);
    let mut work = PeaWork::default();
    for method in vm.compiled_methods() {
        let compiled = vm.compiled(method).expect("listed method is cached");
        work.virtualized += compiled.pea_result.virtualized_allocs;
        work.prefiltered += compiled.pea_result.prefiltered_allocs;
        work.cold_throw_inlined += compiled
            .inline_decisions
            .iter()
            .filter(|d| d.inlined && d.reason == "cold-throw-speculated")
            .count();
    }
    let measurement = pea_bench::Measurement {
        bytes_per_iter: d.alloc_bytes as f64 / DEFAULT_ITERS as f64,
        allocs_per_iter: d.alloc_count as f64 / DEFAULT_ITERS as f64,
        monitor_ops_per_iter: d.monitor_ops() as f64 / DEFAULT_ITERS as f64,
        cycles_per_iter: d.cycles as f64 / DEFAULT_ITERS as f64,
        wall_ns_per_iter: wall.as_nanos() as f64 / DEFAULT_ITERS as f64,
        deopts: d.deopts,
        compiles: vm.stats().compiles,
    };
    (measurement, work)
}

fn variant(name: &'static str, mutate: impl Fn(&mut VmOptions)) -> (&'static str, VmOptions) {
    let mut options = VmOptions::with_opt_level(OptLevel::Pea);
    mutate(&mut options);
    (name, options)
}

fn main() {
    let per_site = std::env::args().any(|a| a == "--per-site");
    let variants: Vec<(&'static str, VmOptions)> = vec![
        variant("full", |_| {}),
        variant("no-lock-elision", |o| o.compiler.pea.lock_elision = false),
        variant("no-field-phis", |o| o.compiler.pea.field_phis = false),
        variant("no-loop-fixpoint", |o| {
            o.compiler.pea.loop_processing = false
        }),
        // Not an ablation of a paper feature: the static escape
        // pre-analysis withholds provably-escaping sites from PEA. Same
        // results, less analysis work (the `pea work` line shows how much).
        variant("pea-prefilter", |o| o.compiler.opt_level = OptLevel::PeaPre),
        // Interprocedural widening of the pre-filter: call-graph escape
        // summaries also exclude sites whose fresh allocation is handed
        // to a callee that publishes it on every path. Strictly more
        // sites pre-filtered, same artifact.
        variant("pea-pre-ipa", |o| {
            o.compiler.opt_level = OptLevel::PeaPreIpa
        }),
        // Branch-aware widening: the predicate-qualified flow tier also
        // excludes sites that certainly escape on every path from the
        // allocation (guarded publications included), beyond what the
        // path-insensitive IPA summaries can prove. Strictly more sites
        // pre-filtered, same artifact.
        variant("pea-pre-flow", |o| {
            o.compiler.opt_level = OptLevel::PeaPreFlow
        }),
        // Inlining-policy comparison (both under full PEA): the
        // size-budget baseline vs. the summary-driven policy that inlines
        // wherever a virtualizable allocation flows into the callee and
        // refuses callees that globally publish their argument.
        variant("inline=size", |o| {
            o.compiler.build.inline_policy = InlinePolicy::Size
        }),
        variant("inline=summary", |o| {
            o.compiler.build.inline_policy = InlinePolicy::Summary
        }),
    ];
    println!("PEA ablations — suite-average deltas vs. no escape analysis");
    println!(
        "{:<18} {:>34} {:>34} {:>34}",
        "", "DaCapo", "ScalaDaCapo", "SPECjbb2005"
    );
    println!(
        "{:<18} {:>13} {:>10} {:>9} {:>13} {:>10} {:>9} {:>13} {:>10} {:>9}",
        "variant",
        "allocsΔ",
        "speedup",
        "ns/op",
        "allocsΔ",
        "speedup",
        "ns/op",
        "allocsΔ",
        "speedup",
        "ns/op"
    );
    for (name, options) in &variants {
        print!("{name:<18}");
        let mut work = PeaWork::default();
        for suite in [Suite::DaCapo, Suite::ScalaDaCapo, Suite::SpecJbb] {
            let workloads = suite_workloads(suite);
            let rows: Vec<Row> = workloads
                .iter()
                .map(|w| {
                    let (with, w_work) = measure_with(w, options);
                    work.virtualized += w_work.virtualized;
                    work.prefiltered += w_work.prefiltered;
                    work.cold_throw_inlined += w_work.cold_throw_inlined;
                    Row {
                        name: w.name.clone(),
                        significant: w.significant,
                        without: measure(w, OptLevel::None, DEFAULT_WARMUP, DEFAULT_ITERS),
                        with,
                    }
                })
                .collect();
            let n = rows.len() as f64;
            let allocs = rows.iter().map(Row::allocs_delta).sum::<f64>() / n;
            let speed = rows.iter().map(Row::speedup).sum::<f64>() / n;
            let wall = rows.iter().map(|r| r.with.wall_ns_per_iter).sum::<f64>() / n;
            print!(" {allocs:>+12.1}% {speed:>+9.1}% {wall:>9.0}");
        }
        println!();
        println!(
            "    pea work: {} sites virtualized, {} pre-filtered away, \
             {} cold-throw callees inlined",
            work.virtualized, work.prefiltered, work.cold_throw_inlined
        );
        if per_site {
            // Fold materialization reasons over every workload of every
            // suite for this variant.
            let mut totals = std::collections::BTreeMap::new();
            for suite in [Suite::DaCapo, Suite::ScalaDaCapo, Suite::SpecJbb] {
                for w in &suite_workloads(suite) {
                    let agg = measure_per_site(w, options.clone(), DEFAULT_WARMUP, DEFAULT_ITERS);
                    for (reason, count) in agg.reason_totals() {
                        *totals.entry(reason).or_insert(0u64) += count;
                    }
                }
            }
            let line = totals
                .iter()
                .map(|(r, c)| format!("{r} {c}"))
                .collect::<Vec<_>>()
                .join(", ");
            println!(
                "    materializations: {}",
                if line.is_empty() { "none" } else { &line }
            );
        }
    }
    println!("\n(expect: no-lock-elision keeps monitor ops and loses part of the");
    println!(" speedup; no-field-phis and no-loop-fixpoint materialize objects");
    println!(" that the full algorithm keeps virtual, cutting allocation wins)");
}
