//! Regenerates the paper's Table 1 from live measurements: per-benchmark
//! allocated bytes, allocation counts and iterations/minute, without and
//! with Partial Escape Analysis, plus the §6.1 monitor-operation notes.
//!
//! Usage: `table1 [dacapo|scala|specjbb|all] [--per-site]`.
//!
//! `--per-site` appends, for every workload, the per-allocation-site
//! decision breakdown folded from the PEA trace stream: how often each
//! site was virtualized, how often and *why* it was materialized
//! (escape-to-store, merge-of-mixed-states, …), and how many lock, load
//! and store operations it absorbed.

use pea_bench::{
    measure_per_site, render_monitor_stats, render_table, suite_rows, DEFAULT_ITERS, DEFAULT_WARMUP,
};
use pea_vm::{OptLevel, VmOptions};
use pea_workloads::{suite_workloads, Suite};

fn run_suite(title: &str, suite: Suite, per_site: bool) {
    let workloads = suite_workloads(suite);
    let rows = suite_rows(&workloads, OptLevel::Pea);
    println!("{}", render_table(title, &rows));
    let monitors = render_monitor_stats(&rows);
    if !monitors.is_empty() {
        println!("Monitor operations (paper §6.1):\n{monitors}");
    }
    if per_site {
        println!("Per-site materialization breakdown ({title}):");
        for w in &workloads {
            let agg = measure_per_site(
                w,
                VmOptions::with_opt_level(OptLevel::Pea),
                DEFAULT_WARMUP,
                DEFAULT_ITERS,
            );
            println!("  {}:", w.name);
            for line in agg.render().lines() {
                println!("    {line}");
            }
        }
        println!();
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let per_site = args.iter().any(|a| a == "--per-site");
    let arg = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .cloned()
        .unwrap_or_else(|| "all".into());
    println!(
        "Table 1 reproduction — without vs. with Partial Escape Analysis\n\
         (synthetic kernels; compare the *shape* against the paper, not\n\
         absolute magnitudes — see EXPERIMENTS.md)\n"
    );
    match arg.as_str() {
        "dacapo" => run_suite("DaCapo", Suite::DaCapo, per_site),
        "scala" => run_suite("ScalaDaCapo", Suite::ScalaDaCapo, per_site),
        "specjbb" => run_suite("SPECjbb2005", Suite::SpecJbb, per_site),
        "all" => {
            run_suite("DaCapo", Suite::DaCapo, per_site);
            run_suite("ScalaDaCapo", Suite::ScalaDaCapo, per_site);
            run_suite("SPECjbb2005", Suite::SpecJbb, per_site);
        }
        other => {
            eprintln!("unknown suite `{other}`; use dacapo|scala|specjbb|all [--per-site]");
            std::process::exit(2);
        }
    }
}
