//! Regenerates the paper's Table 1 from live measurements: per-benchmark
//! allocated bytes, allocation counts and iterations/minute, without and
//! with Partial Escape Analysis, plus the §6.1 monitor-operation notes.
//!
//! Usage: `table1 [dacapo|scala|specjbb|all]` (default: all).

use pea_bench::{render_monitor_stats, render_table, suite_rows};
use pea_vm::OptLevel;
use pea_workloads::{suite_workloads, Suite};

fn run_suite(title: &str, suite: Suite) {
    let workloads = suite_workloads(suite);
    let rows = suite_rows(&workloads, OptLevel::Pea);
    println!("{}", render_table(title, &rows));
    let monitors = render_monitor_stats(&rows);
    if !monitors.is_empty() {
        println!("Monitor operations (paper §6.1):\n{monitors}");
    }
}

fn main() {
    let arg = std::env::args().nth(1).unwrap_or_else(|| "all".into());
    println!(
        "Table 1 reproduction — without vs. with Partial Escape Analysis\n\
         (synthetic kernels; compare the *shape* against the paper, not\n\
         absolute magnitudes — see EXPERIMENTS.md)\n"
    );
    match arg.as_str() {
        "dacapo" => run_suite("DaCapo", Suite::DaCapo),
        "scala" => run_suite("ScalaDaCapo", Suite::ScalaDaCapo),
        "specjbb" => run_suite("SPECjbb2005", Suite::SpecJbb),
        "all" => {
            run_suite("DaCapo", Suite::DaCapo);
            run_suite("ScalaDaCapo", Suite::ScalaDaCapo);
            run_suite("SPECjbb2005", Suite::SpecJbb);
        }
        other => {
            eprintln!("unknown suite `{other}`; use dacapo|scala|specjbb|all");
            std::process::exit(2);
        }
    }
}
