//! Compile-speed benchmark: JIT-compiles the whole workload corpus on a
//! worker pool at parallelism 1/2/4/8 and reports methods/second, speedup
//! over the single-threaded run, and wall-clock per compilation phase
//! (build / canonicalize / escape analysis / schedule).
//!
//! Every method is compiled from a profile snapshot gathered by running
//! the workload in the interpreter first, so the compilations are
//! representative (inlining and speculation active) and identical across
//! parallelism levels. The work distribution is the same atomic-worklist
//! scheme as [`Vm::precompile_all`]; fanning out across the *whole corpus*
//! rather than per workload keeps all workers busy even though individual
//! workloads have only a handful of methods.
//!
//! Usage: `compile_speed [--smoke] [--repeat N] [--out PATH]`
//!
//! Writes a JSON report (default `BENCH_compile.json`) and prints a
//! human-readable table. `--smoke` shrinks the repeat factor and profile
//! warmup for CI. Speedups approach the ideal only on hardware with
//! enough cores; on a single-core host all parallelism levels degenerate
//! to roughly the serial throughput.

use pea_compiler::{compile, CompilerOptions, PhaseTimes};
use pea_runtime::profile::ProfileStore;
use pea_runtime::Value;
use pea_vm::{Vm, VmOptions};
use pea_workloads::all_workloads;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// One corpus entry: a method to compile plus everything the compiler
/// needs to compile it.
struct Item<'a> {
    program: &'a pea_bytecode::Program,
    profiles: &'a ProfileStore,
    method: pea_bytecode::MethodId,
}

/// Result of one timed corpus sweep.
struct Run {
    parallelism: usize,
    wall: Duration,
    phases: PhaseTimes,
    compiled: usize,
    bailouts: usize,
}

fn profile_corpus(warmup: u64) -> Vec<(pea_bytecode::Program, ProfileStore)> {
    all_workloads()
        .into_iter()
        .map(|w| {
            let mut vm = Vm::new(w.program.clone(), VmOptions::interpreter_only());
            for i in 0..warmup {
                vm.call_entry("iterate", &[Value::Int(i as i64)])
                    .unwrap_or_else(|e| panic!("{} profiling run: {e}", w.name));
            }
            let profiles = vm.profiles().clone();
            (w.program, profiles)
        })
        .collect()
}

fn sweep(items: &[Item<'_>], parallelism: usize, options: &CompilerOptions) -> Run {
    let next = AtomicUsize::new(0);
    let totals: Mutex<(PhaseTimes, usize, usize)> = Mutex::new((PhaseTimes::default(), 0, 0));
    let start = Instant::now();
    std::thread::scope(|scope| {
        for _ in 0..parallelism {
            scope.spawn(|| {
                let mut local = PhaseTimes::default();
                let (mut compiled, mut bailouts) = (0usize, 0usize);
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    let Some(item) = items.get(i) else {
                        break;
                    };
                    match compile(item.program, item.method, Some(item.profiles), options) {
                        Ok(code) => {
                            local.absorb(&code.times);
                            compiled += 1;
                        }
                        Err(_) => bailouts += 1,
                    }
                }
                let mut t = totals.lock().expect("totals poisoned");
                t.0.absorb(&local);
                t.1 += compiled;
                t.2 += bailouts;
            });
        }
    });
    let wall = start.elapsed();
    let (phases, compiled, bailouts) = totals.into_inner().expect("totals poisoned");
    Run {
        parallelism,
        wall,
        phases,
        compiled,
        bailouts,
    }
}

fn ms(d: Duration) -> f64 {
    d.as_secs_f64() * 1e3
}

fn json_report(runs: &[Run], corpus: usize, workloads: usize, repeat: usize) -> String {
    let base = runs[0].wall.as_secs_f64();
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"bench\": \"compile_speed\",\n");
    out.push_str(&format!("  \"workloads\": {workloads},\n"));
    out.push_str(&format!("  \"repeat\": {repeat},\n"));
    out.push_str(&format!("  \"corpus_methods\": {corpus},\n"));
    out.push_str("  \"runs\": [\n");
    for (i, r) in runs.iter().enumerate() {
        let wall = r.wall.as_secs_f64();
        out.push_str(&format!(
            "    {{\"parallelism\": {}, \"wall_ms\": {:.3}, \"methods_per_sec\": {:.1}, \
             \"speedup\": {:.3}, \"compiled\": {}, \"bailouts\": {}, \"phase_ms\": \
             {{\"build\": {:.3}, \"canonicalize\": {:.3}, \"escape_analysis\": {:.3}, \
             \"schedule\": {:.3}}}}}{}\n",
            r.parallelism,
            ms(r.wall),
            r.compiled as f64 / wall,
            base / wall,
            r.compiled,
            r.bailouts,
            ms(r.phases.build),
            ms(r.phases.canonicalize),
            ms(r.phases.escape_analysis),
            ms(r.phases.schedule),
            if i + 1 < runs.len() { "," } else { "" },
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let repeat: usize = args
        .iter()
        .position(|a| a == "--repeat")
        .and_then(|i| args.get(i + 1))
        .and_then(|s| s.parse().ok())
        .unwrap_or(if smoke { 1 } else { 6 });
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_compile.json".into());
    let warmup = if smoke { 20 } else { 60 };

    eprintln!("profiling corpus in the interpreter ({warmup} iterations per workload)...");
    let corpus = profile_corpus(warmup);
    let items: Vec<Item<'_>> = (0..repeat)
        .flat_map(|_| {
            corpus.iter().flat_map(|(program, profiles)| {
                (0..program.methods.len()).map(move |m| Item {
                    program,
                    profiles,
                    method: pea_bytecode::MethodId::from_index(m),
                })
            })
        })
        .collect();
    let options = CompilerOptions::default();

    println!(
        "compile_speed: {} workloads, {} methods per sweep (repeat {}), {} host threads",
        corpus.len(),
        items.len(),
        repeat,
        std::thread::available_parallelism().map_or(1, |n| n.get()),
    );
    println!("  par   wall(ms)  methods/s  speedup   build  canon    pea  sched (ms)");
    let mut runs = Vec::new();
    for parallelism in [1usize, 2, 4, 8] {
        let run = sweep(&items, parallelism, &options);
        println!(
            "  {:>3}  {:>9.1}  {:>9.1}  {:>7.2}x {:>7.1} {:>6.1} {:>6.1} {:>6.1}",
            run.parallelism,
            ms(run.wall),
            run.compiled as f64 / run.wall.as_secs_f64(),
            runs.first().map_or(1.0, |r0: &Run| r0.wall.as_secs_f64()
                / run.wall.as_secs_f64()),
            ms(run.phases.build),
            ms(run.phases.canonicalize),
            ms(run.phases.escape_analysis),
            ms(run.phases.schedule),
        );
        runs.push(run);
    }

    let report = json_report(&runs, items.len(), corpus.len(), repeat);
    std::fs::write(&out_path, &report).unwrap_or_else(|e| panic!("writing {out_path}: {e}"));
    println!("wrote {out_path}");
}
