//! `pealint` — runs every static analysis in `pea-analysis` plus the PEA
//! decision sanitizer over the whole workload corpus and the paper
//! examples, and writes a machine-readable JSON report.
//!
//! ```text
//! pealint [--out REPORT.json] [--callgraph CALLGRAPH.json]
//! ```
//!
//! Besides the aggregate report, pealint emits a `CALLGRAPH.json`
//! artifact: one flat JSON object per method (JSON lines) describing the
//! interprocedural escape summary — parameter escape classes, whether the
//! method returns a fresh allocation, whether an exception may surface
//! while it is on the stack (`may_throw`) and whether it may throw one of
//! its own allocations (`throws_fresh`), its call-graph successors, how
//! many allocation sites the `pea-pre` / `pea-pre-ipa` / `pea-pre-flow`
//! pre-filters would exclude, the method's path-qualified throw
//! classification (`throw_path`), and each allocation site's
//! path-qualified escape verdict (`site_paths`, with a ` certain` tag on
//! sites carrying a certain-escape certificate).
//!
//! The exit code is non-zero **only** when the sanitizer finds an
//! inconsistency between a compilation's PEA decisions and the static
//! escape verdicts, or when the interprocedural summaries are internally
//! inconsistent (a must-publish parameter not classified `GlobalEscape`,
//! an IPA exclusion set that is not a superset of the immediate one, a
//! `throws_fresh` method not marked `may_throw`, or an unstable
//! fixpoint), or when the flow tier violates its refinement contract (a
//! path verdict of `no-escape` disagreeing with the insensitive lattice,
//! a certain-escape certificate on a non-`GlobalEscape` site, a flow
//! exclusion set that is not a superset of the IPA one, a `never` throw
//! path on a `may_throw` method, a throw-path-only publish of a
//! non-`GlobalEscape` parameter, or an unstable path-qualified
//! fixpoint) — those are compiler bugs, and CI fails on
//! them. Lock or nullness findings in corpus programs are reported but do
//! not fail the run (the analyses flag patterns the verifier deliberately
//! accepts).

use pea_analysis::{
    analyze_locks, analyze_method, analyze_nullness, check_compilation, immediate_global_sites,
    EscapeClass, PathEscape, ProgramSummaries, StaticVerdicts, ThrowPath,
};
use pea_bytecode::asm::parse_program;
use pea_bytecode::{MethodId, Program};
use pea_compiler::{compile_traced, CompilerOptions, OptLevel};
use pea_trace::json::ObjectWriter;
use pea_trace::MemorySink;
use std::process::ExitCode;

/// The paper's running example (§2, Figure 2) beyond the shipped
/// `examples/cache_key.asm`: a synchronized accumulator whose lock is
/// elided on the hot path and rematerialized held on the cold one.
const SYNC_ACC: &str = "
    class Acc { field v int }
    static published ref
    method virtual Acc.bump 2 returns synchronized {
        load 0 load 0 getfield Acc.v load 1 add putfield Acc.v
        load 1 const 1000 ifcmp gt Lrare
        load 0 getfield Acc.v retv
    Lrare:
        load 0 putstatic published
        load 0 getfield Acc.v const 1000000 add retv
    }
    method f 1 returns {
        new Acc store 1
        load 1 load 0 invokevirtual Acc.bump retv
    }";

#[derive(Default)]
struct Report {
    programs: i64,
    methods: i64,
    alloc_sites: i64,
    no_escape: i64,
    arg_escape: i64,
    global_escape: i64,
    lock_findings: i64,
    nullness_findings: i64,
    maybe_null_derefs: i64,
    compiled: i64,
    bailouts: i64,
    summary_methods: i64,
    ipa_excluded_sites: i64,
    immediate_excluded_sites: i64,
    flow_excluded_sites: i64,
    certain_global_sites: i64,
    throw_only_sites: i64,
    cold_branch_sites: i64,
    inconsistencies: i64,
}

/// Emits the per-method call-graph/summary lines for `program` into
/// `lines`, checking the summaries' internal invariants along the way.
/// Every violation is a bug in `pea-analysis` and counts as an
/// inconsistency (non-zero exit).
fn lint_summaries(name: &str, program: &Program, report: &mut Report, lines: &mut Vec<String>) {
    let summaries = ProgramSummaries::compute(program);
    // Fixpoint determinism: an independent recomputation must converge to
    // the same summaries (catches iteration-order-dependent results).
    let again = ProgramSummaries::compute(program);
    for (index, summary) in summaries.all().iter().enumerate() {
        let method = MethodId::from_index(index);
        let qualified = program.method(method).qualified_name(program);
        report.summary_methods += 1;

        let immediate = immediate_global_sites(program.method(method));
        let excluded = summaries.excluded_sites(program, method);
        report.immediate_excluded_sites += immediate.len() as i64;
        report.ipa_excluded_sites += excluded.len() as i64;

        for (i, &publishes) in summary.publishes_immediately.iter().enumerate() {
            if publishes && summary.param_escape[i] != EscapeClass::GlobalEscape {
                report.inconsistencies += 1;
                eprintln!(
                    "{name}/{qualified}: SUMMARY: parameter {i} must-publishes \
                     but is classified {}",
                    summary.param_escape[i].as_str()
                );
            }
        }
        if !immediate.iter().all(|bci| excluded.contains(bci)) {
            report.inconsistencies += 1;
            eprintln!(
                "{name}/{qualified}: SUMMARY: IPA exclusions {excluded:?} miss \
                 immediate putstatic sites {immediate:?}"
            );
        }
        if summary.throws_fresh && !summary.may_throw {
            report.inconsistencies += 1;
            eprintln!(
                "{name}/{qualified}: SUMMARY: throws_fresh without may_throw — a fresh \
                 throw requires a direct athrow, which must seed may_throw"
            );
        }
        let excluded_flow = summaries.excluded_sites_flow(program, method);
        report.flow_excluded_sites += excluded_flow.len() as i64;
        if !excluded.iter().all(|bci| excluded_flow.contains(bci)) {
            report.inconsistencies += 1;
            eprintln!(
                "{name}/{qualified}: FLOW: flow exclusions {excluded_flow:?} are not a \
                 superset of the IPA exclusions {excluded:?}"
            );
        }
        for site in &summary.flow.sites {
            match site.path {
                PathEscape::NoEscape => {}
                PathEscape::EscapesOnThrowPathOnly => report.throw_only_sites += 1,
                PathEscape::EscapesOnColdBranch(_) => report.cold_branch_sites += 1,
                PathEscape::GlobalEscape => {}
            }
            if site.certain_global {
                report.certain_global_sites += 1;
            }
            if (site.path == PathEscape::NoEscape) != (site.insensitive == EscapeClass::NoEscape) {
                report.inconsistencies += 1;
                eprintln!(
                    "{name}/{qualified}: FLOW: site {} is path-{} but insensitively {} — \
                     the flow tier must refine, never contradict, the insensitive lattice",
                    site.bci,
                    site.path.as_str(),
                    site.insensitive.as_str()
                );
            }
            if site.certain_global && site.insensitive != EscapeClass::GlobalEscape {
                report.inconsistencies += 1;
                eprintln!(
                    "{name}/{qualified}: FLOW: site {} carries a certain-escape \
                     certificate but is insensitively {}",
                    site.bci,
                    site.insensitive.as_str()
                );
            }
        }
        if summary.flow.throw_path == ThrowPath::Never && summary.may_throw {
            report.inconsistencies += 1;
            eprintln!(
                "{name}/{qualified}: FLOW: throw path classified `never` on a method \
                 whose interprocedural summary says may_throw"
            );
        }
        for (i, &throw_only) in summary.flow.publishes_on_throw_only.iter().enumerate() {
            if throw_only && summary.param_escape[i] != EscapeClass::GlobalEscape {
                report.inconsistencies += 1;
                eprintln!(
                    "{name}/{qualified}: FLOW: parameter {i} publishes on the throw path \
                     but is classified {}",
                    summary.param_escape[i].as_str()
                );
            }
        }

        let other = &again.all()[index];
        if summary.param_escape != other.param_escape
            || summary.returns_fresh != other.returns_fresh
            || summary.may_throw != other.may_throw
            || summary.throws_fresh != other.throws_fresh
        {
            report.inconsistencies += 1;
            eprintln!("{name}/{qualified}: SUMMARY: fixpoint is not stable across recomputation");
        }
        if summary.flow != other.flow {
            report.inconsistencies += 1;
            eprintln!(
                "{name}/{qualified}: FLOW: path-qualified summary is not stable across \
                 recomputation"
            );
        }

        let mut o = ObjectWriter::new();
        o.str("program", name);
        o.str("method", &qualified);
        o.str_array(
            "params",
            &summary
                .param_escape
                .iter()
                .map(|c| c.as_str().to_string())
                .collect::<Vec<_>>(),
        );
        o.bool("returns_fresh", summary.returns_fresh);
        o.bool("may_throw", summary.may_throw);
        o.bool("throws_fresh", summary.throws_fresh);
        o.str_array(
            "callees",
            &summaries
                .call_graph
                .callees(method)
                .iter()
                .map(|&c| program.method(c).qualified_name(program))
                .collect::<Vec<_>>(),
        );
        o.num("alloc_sites", summary.sites.len() as i64);
        o.num("excluded_immediate", immediate.len() as i64);
        o.num("excluded_ipa", excluded.len() as i64);
        o.num("excluded_flow", excluded_flow.len() as i64);
        o.str("throw_path", summary.flow.throw_path.as_str());
        o.str_array(
            "site_paths",
            &summary
                .flow
                .sites
                .iter()
                .map(|s| {
                    let cert = if s.certain_global { " certain" } else { "" };
                    format!("{}:{}{cert}", s.bci, s.path.as_str())
                })
                .collect::<Vec<_>>(),
        );
        o.str_array(
            "publishes_on_throw_only",
            &summary
                .flow
                .publishes_on_throw_only
                .iter()
                .enumerate()
                .filter(|&(_, &b)| b)
                .map(|(i, _)| i.to_string())
                .collect::<Vec<_>>(),
        );
        lines.push(o.finish());
    }
}

fn lint_program(name: &str, program: &Program, report: &mut Report, callgraph: &mut Vec<String>) {
    report.programs += 1;
    lint_summaries(name, program, report, callgraph);
    let verdicts = StaticVerdicts::analyze(program);
    let options = CompilerOptions::with_opt_level(OptLevel::Pea);
    for index in 0..program.methods.len() {
        let method = MethodId::from_index(index);
        report.methods += 1;
        let escape = analyze_method(program, method);
        for site in &escape.sites {
            report.alloc_sites += 1;
            match site.escape {
                EscapeClass::NoEscape => report.no_escape += 1,
                EscapeClass::ArgEscape => report.arg_escape += 1,
                EscapeClass::GlobalEscape => report.global_escape += 1,
            }
        }
        let locks = analyze_locks(program, method);
        for finding in &locks.findings {
            report.lock_findings += 1;
            eprintln!(
                "{name}/{}: lock-balance {} at bci {}",
                program.method(method).qualified_name(program),
                finding.kind.as_str(),
                finding.bci,
            );
        }
        let nullness = analyze_nullness(program, method);
        report.nullness_findings += nullness.findings.len() as i64;
        report.maybe_null_derefs += nullness.maybe_null_derefs as i64;

        let mut buffer = MemorySink::new();
        match compile_traced(program, method, None, &options, &mut buffer) {
            Ok(code) => {
                report.compiled += 1;
                for finding in
                    check_compilation(program, &verdicts, method, &code.graph, &buffer.events)
                {
                    report.inconsistencies += 1;
                    eprintln!("{name}: SANITIZER: {finding}");
                }
            }
            Err(_) => report.bailouts += 1,
        }
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let out = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .map_or("PEALINT.json", String::as_str);
    let callgraph_out = args
        .iter()
        .position(|a| a == "--callgraph")
        .and_then(|i| args.get(i + 1))
        .map_or("CALLGRAPH.json", String::as_str);

    let mut report = Report::default();
    let mut callgraph = Vec::new();
    for workload in pea_workloads::all_workloads() {
        lint_program(
            &workload.name,
            &workload.program,
            &mut report,
            &mut callgraph,
        );
    }
    for (name, source) in [
        (
            "cache_key",
            include_str!("../../../../examples/cache_key.asm"),
        ),
        ("sync_acc", SYNC_ACC),
    ] {
        let program = parse_program(source).unwrap_or_else(|e| panic!("{name}: {e}"));
        pea_bytecode::verify_program(&program).unwrap_or_else(|e| panic!("{name}: {e}"));
        lint_program(name, &program, &mut report, &mut callgraph);
    }

    if let Err(e) = std::fs::write(callgraph_out, callgraph.join("\n") + "\n") {
        eprintln!("cannot write {callgraph_out}: {e}");
        return ExitCode::from(2);
    }
    println!(
        "call graph ({} methods) written to {callgraph_out}",
        callgraph.len()
    );

    let mut o = ObjectWriter::new();
    o.num("programs", report.programs);
    o.num("methods", report.methods);
    o.num("alloc_sites", report.alloc_sites);
    o.num("no_escape", report.no_escape);
    o.num("arg_escape", report.arg_escape);
    o.num("global_escape", report.global_escape);
    o.num("lock_findings", report.lock_findings);
    o.num("nullness_findings", report.nullness_findings);
    o.num("maybe_null_derefs", report.maybe_null_derefs);
    o.num("compiled", report.compiled);
    o.num("bailouts", report.bailouts);
    o.num("summary_methods", report.summary_methods);
    o.num("excluded_immediate", report.immediate_excluded_sites);
    o.num("excluded_ipa", report.ipa_excluded_sites);
    o.num("excluded_flow", report.flow_excluded_sites);
    o.num("certain_global_sites", report.certain_global_sites);
    o.num("throw_only_sites", report.throw_only_sites);
    o.num("cold_branch_sites", report.cold_branch_sites);
    o.num("inconsistencies", report.inconsistencies);
    let line = o.finish();
    if let Err(e) = std::fs::write(out, format!("{line}\n")) {
        eprintln!("cannot write {out}: {e}");
        return ExitCode::from(2);
    }
    println!("{line}");
    println!("report written to {out}");

    if report.inconsistencies > 0 {
        eprintln!(
            "pealint: {} inconsistency(ies) — PEA decisions disagree with the static analysis, \
             or the interprocedural summaries violate their invariants",
            report.inconsistencies
        );
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
