//! `pealint` — runs every static analysis in `pea-analysis` plus the PEA
//! decision sanitizer over the whole workload corpus and the paper
//! examples, and writes a machine-readable JSON report.
//!
//! ```text
//! pealint [--out REPORT.json]
//! ```
//!
//! The exit code is non-zero **only** when the sanitizer finds an
//! inconsistency between a compilation's PEA decisions and the static
//! escape verdicts — that is a compiler bug, and CI fails on it. Lock or
//! nullness findings in corpus programs are reported but do not fail the
//! run (the analyses flag patterns the verifier deliberately accepts).

use pea_analysis::{
    analyze_locks, analyze_method, analyze_nullness, check_compilation, EscapeClass, StaticVerdicts,
};
use pea_bytecode::asm::parse_program;
use pea_bytecode::{MethodId, Program};
use pea_compiler::{compile_traced, CompilerOptions, OptLevel};
use pea_trace::json::ObjectWriter;
use pea_trace::MemorySink;
use std::process::ExitCode;

/// The paper's running example (§2, Figure 2) beyond the shipped
/// `examples/cache_key.asm`: a synchronized accumulator whose lock is
/// elided on the hot path and rematerialized held on the cold one.
const SYNC_ACC: &str = "
    class Acc { field v int }
    static published ref
    method virtual Acc.bump 2 returns synchronized {
        load 0 load 0 getfield Acc.v load 1 add putfield Acc.v
        load 1 const 1000 ifcmp gt Lrare
        load 0 getfield Acc.v retv
    Lrare:
        load 0 putstatic published
        load 0 getfield Acc.v const 1000000 add retv
    }
    method f 1 returns {
        new Acc store 1
        load 1 load 0 invokevirtual Acc.bump retv
    }";

#[derive(Default)]
struct Report {
    programs: i64,
    methods: i64,
    alloc_sites: i64,
    no_escape: i64,
    arg_escape: i64,
    global_escape: i64,
    lock_findings: i64,
    nullness_findings: i64,
    maybe_null_derefs: i64,
    compiled: i64,
    bailouts: i64,
    inconsistencies: i64,
}

fn lint_program(name: &str, program: &Program, report: &mut Report) {
    report.programs += 1;
    let verdicts = StaticVerdicts::analyze(program);
    let options = CompilerOptions::with_opt_level(OptLevel::Pea);
    for index in 0..program.methods.len() {
        let method = MethodId::from_index(index);
        report.methods += 1;
        let escape = analyze_method(program, method);
        for site in &escape.sites {
            report.alloc_sites += 1;
            match site.escape {
                EscapeClass::NoEscape => report.no_escape += 1,
                EscapeClass::ArgEscape => report.arg_escape += 1,
                EscapeClass::GlobalEscape => report.global_escape += 1,
            }
        }
        let locks = analyze_locks(program, method);
        for finding in &locks.findings {
            report.lock_findings += 1;
            eprintln!(
                "{name}/{}: lock-balance {} at bci {}",
                program.method(method).qualified_name(program),
                finding.kind.as_str(),
                finding.bci,
            );
        }
        let nullness = analyze_nullness(program, method);
        report.nullness_findings += nullness.findings.len() as i64;
        report.maybe_null_derefs += nullness.maybe_null_derefs as i64;

        let mut buffer = MemorySink::new();
        match compile_traced(program, method, None, &options, &mut buffer) {
            Ok(code) => {
                report.compiled += 1;
                for finding in
                    check_compilation(program, &verdicts, method, &code.graph, &buffer.events)
                {
                    report.inconsistencies += 1;
                    eprintln!("{name}: SANITIZER: {finding}");
                }
            }
            Err(_) => report.bailouts += 1,
        }
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let out = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .map_or("PEALINT.json", String::as_str);

    let mut report = Report::default();
    for workload in pea_workloads::all_workloads() {
        lint_program(&workload.name, &workload.program, &mut report);
    }
    for (name, source) in [
        (
            "cache_key",
            include_str!("../../../../examples/cache_key.asm"),
        ),
        ("sync_acc", SYNC_ACC),
    ] {
        let program = parse_program(source).unwrap_or_else(|e| panic!("{name}: {e}"));
        pea_bytecode::verify_program(&program).unwrap_or_else(|e| panic!("{name}: {e}"));
        lint_program(name, &program, &mut report);
    }

    let mut o = ObjectWriter::new();
    o.num("programs", report.programs);
    o.num("methods", report.methods);
    o.num("alloc_sites", report.alloc_sites);
    o.num("no_escape", report.no_escape);
    o.num("arg_escape", report.arg_escape);
    o.num("global_escape", report.global_escape);
    o.num("lock_findings", report.lock_findings);
    o.num("nullness_findings", report.nullness_findings);
    o.num("maybe_null_derefs", report.maybe_null_derefs);
    o.num("compiled", report.compiled);
    o.num("bailouts", report.bailouts);
    o.num("inconsistencies", report.inconsistencies);
    let line = o.finish();
    if let Err(e) = std::fs::write(out, format!("{line}\n")) {
        eprintln!("cannot write {out}: {e}");
        return ExitCode::from(2);
    }
    println!("{line}");
    println!("report written to {out}");

    if report.inconsistencies > 0 {
        eprintln!(
            "pealint: {} sanitizer inconsistency(ies) — PEA decisions disagree with the static analysis",
            report.inconsistencies
        );
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
