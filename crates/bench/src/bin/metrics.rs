//! Runs the workload corpus with the metrics registry enabled, cross-checks
//! every `pea.*` counter against the trace stream's [`SiteAggregator`] fold
//! (the two consume the same event buffers, so they must agree *exactly*),
//! and writes a combined `METRICS.json` artifact.
//!
//! Usage: `metrics [--smoke] [--out PATH]`
//!
//! `--smoke` restricts the run to one workload per suite with fewer
//! iterations (the CI configuration). Exits nonzero if any counter
//! disagrees with the aggregator or a background run records no
//! queue-latency / compile-phase samples.

use pea_metrics::export::{render_json, write_with_dirs};
use pea_metrics::{MetricsHub, MetricsSnapshot};
use pea_runtime::Value;
use pea_trace::{SharedSink, SiteAggregator};
use pea_vm::{JitMode, OptLevel, Vm, VmOptions};
use pea_workloads::{all_workloads, Workload};
use std::path::Path;

struct Run {
    workload: String,
    mode: &'static str,
    snapshot: MetricsSnapshot,
    failures: Vec<String>,
}

fn options_for(mode: &str) -> VmOptions {
    let mut options = VmOptions::with_opt_level(OptLevel::Pea);
    options.metrics = MetricsHub::enabled();
    if mode == "background" {
        options.jit_mode = JitMode::Background;
        options.compile_workers = Some(2);
    }
    options
}

fn check(workload: &Workload, mode: &'static str, iters: u64) -> Run {
    let (sink, agg) = SharedSink::new(SiteAggregator::new());
    let mut options = options_for(mode);
    options.trace = Some(sink);
    let mut vm = Vm::new(workload.program.clone(), options);
    for i in 0..iters {
        vm.call_entry("iterate", &[Value::Int(i as i64)])
            .unwrap_or_else(|e| panic!("{} {mode} iteration {i}: {e}", workload.name));
    }
    vm.await_background_compiles();
    let snapshot = vm.metrics().snapshot().expect("metrics enabled");
    drop(vm);
    let agg = agg.lock().expect("aggregator lock poisoned");

    let mut totals = [0u64; 5];
    for c in agg.sites.values() {
        totals[0] += c.virtualized;
        totals[1] += c.materialized;
        totals[2] += c.locks_elided;
        totals[3] += c.loads_elided;
        totals[4] += c.stores_elided;
    }
    let mut failures = Vec::new();
    for (name, expected) in [
        ("pea.virtualized", totals[0]),
        ("pea.materialized", totals[1]),
        ("pea.locks_elided", totals[2]),
        ("pea.loads_elided", totals[3]),
        ("pea.stores_elided", totals[4]),
        ("compile.started", agg.compiles),
        ("vm.evictions", agg.evictions),
        ("vm.deopts", agg.deopts.values().map(|(d, _)| *d).sum()),
        (
            "vm.rematerialized_objects",
            agg.deopts.values().map(|(_, r)| *r).sum(),
        ),
    ] {
        let got = snapshot.counter(name);
        if got != expected {
            failures.push(format!(
                "{name}: metrics say {got}, trace aggregator says {expected}"
            ));
        }
    }
    if mode == "background" {
        for h in ["compile.queue_latency_us", "compile.total_us"] {
            let count = snapshot.histogram(h).map_or(0, |s| s.count());
            if count == 0 {
                failures.push(format!("{h}: no samples in a background run"));
            }
        }
    }
    Run {
        workload: workload.name.clone(),
        mode,
        snapshot,
        failures,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .map_or("METRICS.json", String::as_str);
    let (names, iters): (&[&str], u64) = if smoke {
        (&["fop", "factorie", "SPECjbb2005"], 150)
    } else {
        (&[], 250) // empty = the whole corpus
    };
    let workloads = all_workloads();
    let selected: Vec<&Workload> = workloads
        .iter()
        .filter(|w| names.is_empty() || names.contains(&w.name.as_str()))
        .collect();

    let mut runs = Vec::new();
    for w in &selected {
        for mode in ["sync", "background"] {
            let run = check(w, mode, iters);
            let status = if run.failures.is_empty() {
                "ok"
            } else {
                "INCONSISTENT"
            };
            println!("{:24} {:10} {status}", run.workload, run.mode);
            for f in &run.failures {
                println!("    {f}");
            }
            runs.push(run);
        }
    }

    // Combined artifact: one metrics document per (workload, mode), plus
    // the consistency verdicts, in a stable order.
    let mut doc = String::from("{\"schema\":\"pea-metrics-bench/1\",\"runs\":[");
    for (i, run) in runs.iter().enumerate() {
        if i > 0 {
            doc.push(',');
        }
        doc.push_str(&format!(
            "{{\"workload\":\"{}\",\"mode\":\"{}\",\"consistent\":{},\"metrics\":{}}}",
            run.workload,
            run.mode,
            run.failures.is_empty(),
            render_json(&run.snapshot),
        ));
    }
    doc.push_str("]}\n");
    if let Err(e) = write_with_dirs(Path::new(out), &doc) {
        eprintln!("cannot write {out}: {e}");
        std::process::exit(1);
    }
    println!("wrote {out} ({} runs)", runs.len());

    let bad: usize = runs.iter().filter(|r| !r.failures.is_empty()).count();
    if bad > 0 {
        eprintln!("{bad} run(s) failed the metrics/trace consistency check");
        std::process::exit(1);
    }
}
