//! Regenerates the paper's §6.2 comparison: average speedup per suite for
//! the flow-insensitive Equi-Escape-Sets baseline (standing in for the
//! HotSpot server compiler's escape analysis) versus Partial Escape
//! Analysis.
//!
//! Paper reference points: server-compiler EA 0.9% / 7.4% / 5.4% vs.
//! Graal PEA 2.2% / 10.4% / 8.7% on DaCapo / ScalaDaCapo / SPECjbb2005.

use pea_bench::{suite_rows, Row};
use pea_vm::OptLevel;
use pea_workloads::{suite_workloads, Suite};

fn average_speedup(rows: &[Row]) -> f64 {
    rows.iter().map(Row::speedup).sum::<f64>() / rows.len() as f64
}

fn main() {
    println!("§6.2 comparison — flow-insensitive EA (EES baseline) vs. Partial Escape Analysis");
    println!("{:<14} {:>14} {:>14}", "suite", "EES avg", "PEA avg");
    for (title, suite) in [
        ("DaCapo", Suite::DaCapo),
        ("ScalaDaCapo", Suite::ScalaDaCapo),
        ("SPECjbb2005", Suite::SpecJbb),
    ] {
        let workloads = suite_workloads(suite);
        let ees = average_speedup(&suite_rows(&workloads, OptLevel::Ees));
        let pea = average_speedup(&suite_rows(&workloads, OptLevel::Pea));
        println!("{title:<14} {ees:>+13.1}% {pea:>+13.1}%");
    }
    println!("\n(paper: server compiler EA +0.9%/+7.4%/+5.4%, Graal PEA +2.2%/+10.4%/+8.7%)");
}
