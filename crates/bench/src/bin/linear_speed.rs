//! Wall-clock comparison of the two compiled-code execution tiers: the
//! graph-walking evaluator (`--exec-mode graph`, the differential oracle)
//! vs. the linear register-machine tier (`--exec-mode linear`, the
//! default). Both tiers produce byte-identical results, virtual-cycle
//! totals and decision traces (see `tests/differential.rs`); this bench
//! reports the *real time* each needs to do so.
//!
//! Every workload is profiled in the interpreter, fully precompiled, and
//! then timed over a steady-state loop in each mode, so the comparison is
//! hot compiled code against hot compiled code with identical artifacts.
//!
//! Usage: `linear_speed [--smoke] [--out PATH]`
//!
//! Writes a JSON report (default `BENCH_linear.json`) and prints a
//! human-readable table. `--smoke` shrinks warmup and iteration counts
//! for CI.

use pea_runtime::Value;
use pea_vm::{ExecMode, OptLevel, Vm, VmOptions};
use pea_workloads::{suite_workloads, Suite, Workload};
use std::time::Instant;

struct Row {
    suite: &'static str,
    name: String,
    graph_ns: f64,
    linear_ns: f64,
}

impl Row {
    fn speedup(&self) -> f64 {
        self.graph_ns / self.linear_ns
    }
}

/// Times one workload in one exec mode: interpreter warmup (profiles and
/// speculation), full precompile, a short re-warm on compiled code, then
/// the measured loop. Returns wall nanoseconds per iteration.
fn time_mode(w: &Workload, exec: ExecMode, warmup: u64, iters: u64) -> f64 {
    let mut options = VmOptions::with_opt_level(OptLevel::Pea);
    options.exec_mode = exec;
    let mut vm = Vm::new(w.program.clone(), options);
    for i in 0..warmup {
        vm.call_entry("iterate", &[Value::Int(i as i64)])
            .unwrap_or_else(|e| panic!("{} warmup: {e}", w.name));
    }
    let compiled = vm.precompile_all(1);
    assert!(
        vm.stats().compiles + compiled as u64 >= 1,
        "{}: nothing compiled, the tier comparison would time the interpreter",
        w.name
    );
    for i in warmup..warmup + warmup / 2 {
        vm.call_entry("iterate", &[Value::Int(i as i64)])
            .unwrap_or_else(|e| panic!("{} re-warm: {e}", w.name));
    }
    let base = warmup + warmup / 2;
    let start = Instant::now();
    for i in base..base + iters {
        vm.call_entry("iterate", &[Value::Int(i as i64)])
            .unwrap_or_else(|e| panic!("{} iteration: {e}", w.name));
    }
    start.elapsed().as_nanos() as f64 / iters as f64
}

fn json_report(rows: &[Row], warmup: u64, iters: u64, geomean: f64) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"bench\": \"linear_speed\",\n");
    out.push_str(&format!("  \"warmup\": {warmup},\n"));
    out.push_str(&format!("  \"iters\": {iters},\n"));
    out.push_str(&format!("  \"geomean_speedup\": {geomean:.3},\n"));
    out.push_str("  \"rows\": [\n");
    for (i, r) in rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"suite\": \"{}\", \"name\": \"{}\", \"graph_ns_per_iter\": {:.1}, \
             \"linear_ns_per_iter\": {:.1}, \"speedup\": {:.3}}}{}\n",
            r.suite,
            r.name,
            r.graph_ns,
            r.linear_ns,
            r.speedup(),
            if i + 1 < rows.len() { "," } else { "" },
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_linear.json".into());
    let (warmup, iters) = if smoke { (40, 60) } else { (120, 400) };

    let suites = [
        ("DaCapo", Suite::DaCapo),
        ("ScalaDaCapo", Suite::ScalaDaCapo),
        ("SPECjbb2005", Suite::SpecJbb),
    ];
    println!("linear_speed: hot compiled code, graph-walking oracle vs. linear tier");
    println!("  ({warmup} warmup + {iters} measured iterations per workload per mode)");
    println!(
        "  {:<13} {:<14} {:>12} {:>12} {:>9}",
        "suite", "workload", "graph ns/op", "linear ns/op", "speedup"
    );
    let mut rows = Vec::new();
    for (title, suite) in suites {
        for w in &suite_workloads(suite) {
            let graph_ns = time_mode(w, ExecMode::Graph, warmup, iters);
            let linear_ns = time_mode(w, ExecMode::Linear, warmup, iters);
            let row = Row {
                suite: title,
                name: w.name.clone(),
                graph_ns,
                linear_ns,
            };
            println!(
                "  {:<13} {:<14} {:>12.0} {:>12.0} {:>8.2}x",
                row.suite,
                row.name,
                row.graph_ns,
                row.linear_ns,
                row.speedup()
            );
            rows.push(row);
        }
    }
    let geomean = (rows.iter().map(|r| r.speedup().ln()).sum::<f64>() / rows.len() as f64).exp();
    println!("  geomean speedup: {geomean:.2}x");

    let report = json_report(&rows, warmup, iters, geomean);
    std::fs::write(&out_path, &report).unwrap_or_else(|e| panic!("writing {out_path}: {e}"));
    println!("wrote {out_path}");
}
