//! Multi-threaded mutator throughput: N app threads on one VM, each
//! running the same warmed workload on its own mutator, measured in
//! thousands of iterations per second of wall clock.
//!
//! Usage: `throughput [--smoke] [--out PATH]`
//!
//! For every workload the harness warms the main mutator until the hot
//! methods are compiled, then runs the thread ladder (1, 2, 4, 8, 16; the
//! `--smoke` CI configuration stops at 2) with [`Vm::run_threads_warm`]:
//! every thread forks the main mutator's tiering state and drives the
//! same iteration sequence. Each thread's per-iteration results must be
//! byte-identical to the single-thread rung — the determinism contract —
//! and no compiled-call lookup may ever block on the published-code
//! store's lock (`read_blocked` must stay zero). The harness exits
//! nonzero on either violation; it does **not** assert scaling ratios,
//! because CI containers typically pin the process to one or two cores —
//! scaling is judged from the uploaded `BENCH_THROUGHPUT.json` artifact.

use pea_metrics::export::write_with_dirs;
use pea_runtime::Value;
use pea_vm::{CacheStats, OptLevel, Vm, VmOptions};
use pea_workloads::{all_workloads, Workload};
use std::path::Path;
use std::time::Instant;

const WARMUP_ITERS: i64 = 120;
const LADDER: &[usize] = &[1, 2, 4, 8, 16];
const SMOKE_LADDER: &[usize] = &[1, 2];

struct Rung {
    workload: String,
    threads: usize,
    iters_per_thread: i64,
    wall_ms: f64,
    kiters_per_s: f64,
    cache: CacheStats,
    divergences: usize,
}

/// One thread's work: `iters` warmed iterations, returning the results
/// the determinism check compares.
fn drive(m: &mut pea_vm::Mutator, name: &str, iters: i64) -> Vec<Option<Value>> {
    (0..iters)
        .map(|i| {
            m.call_entry("iterate", &[Value::Int(i)])
                .unwrap_or_else(|e| panic!("{name} iteration {i}: {e}"))
        })
        .collect()
}

fn ladder(workload: &Workload, rungs: &[usize], iters: i64) -> Vec<Rung> {
    // Warm the main mutator so every forked thread starts compiled.
    let mut vm = Vm::new(
        workload.program.clone(),
        VmOptions::with_opt_level(OptLevel::Pea),
    );
    for i in 0..WARMUP_ITERS {
        vm.call_entry("iterate", &[Value::Int(i)])
            .unwrap_or_else(|e| panic!("{} warmup {i}: {e}", workload.name));
    }

    // The single-thread rung is the oracle every wider rung must match.
    let mut oracle: Option<Vec<Option<Value>>> = None;
    let mut out = Vec::new();
    for &threads in rungs {
        let before = vm.code_cache_stats();
        let start = Instant::now();
        let results = vm.run_threads_warm(threads, |_, m| drive(m, &workload.name, iters));
        let wall = start.elapsed();
        let cache = vm.code_cache_stats();
        let oracle = oracle.get_or_insert_with(|| results[0].clone());
        let divergences = results.iter().filter(|r| *r != oracle).count();
        let wall_ms = wall.as_secs_f64() * 1e3;
        out.push(Rung {
            workload: workload.name.clone(),
            threads,
            iters_per_thread: iters,
            wall_ms,
            kiters_per_s: threads as f64 * iters as f64 / wall.as_secs_f64() / 1e3,
            cache: CacheStats {
                read_fast: cache.read_fast - before.read_fast,
                read_refresh: cache.read_refresh - before.read_refresh,
                read_stale: cache.read_stale - before.read_stale,
                read_blocked: cache.read_blocked - before.read_blocked,
                installs: cache.installs - before.installs,
                evictions: cache.evictions - before.evictions,
                reclaimed: cache.reclaimed - before.reclaimed,
                ..cache
            },
            divergences,
        });
    }
    out
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .map_or("BENCH_THROUGHPUT.json", String::as_str);
    let (names, rungs, iters): (&[&str], &[usize], i64) = if smoke {
        (&["fop", "SPECjbb2005"], SMOKE_LADDER, 150)
    } else {
        (&["fop", "factorie", "luindex", "SPECjbb2005"], LADDER, 400)
    };
    let workloads = all_workloads();
    let selected: Vec<&Workload> = workloads
        .iter()
        .filter(|w| names.contains(&w.name.as_str()))
        .collect();

    let mut runs = Vec::new();
    for w in &selected {
        for rung in ladder(w, rungs, iters) {
            println!(
                "{:16} threads={:<2} {:8.1} kiters/s  wall={:7.1}ms  reads(fast/refresh/stale/blocked)={}/{}/{}/{}  divergences={}",
                rung.workload,
                rung.threads,
                rung.kiters_per_s,
                rung.wall_ms,
                rung.cache.read_fast,
                rung.cache.read_refresh,
                rung.cache.read_stale,
                rung.cache.read_blocked,
                rung.divergences
            );
            runs.push(rung);
        }
    }

    let mut doc = format!(
        "{{\"schema\":\"pea-throughput/1\",\"smoke\":{smoke},\"iters_per_thread\":{iters},\"runs\":["
    );
    for (i, r) in runs.iter().enumerate() {
        if i > 0 {
            doc.push(',');
        }
        doc.push_str(&format!(
            "{{\"workload\":\"{}\",\"threads\":{},\"iters_per_thread\":{},\"wall_ms\":{:.3},\"kiters_per_s\":{:.3},\
             \"cache\":{{\"read_fast\":{},\"read_refresh\":{},\"read_stale\":{},\"read_blocked\":{},\
             \"installs\":{},\"evictions\":{},\"reclaimed\":{}}},\"divergences\":{}}}",
            r.workload,
            r.threads,
            r.iters_per_thread,
            r.wall_ms,
            r.kiters_per_s,
            r.cache.read_fast,
            r.cache.read_refresh,
            r.cache.read_stale,
            r.cache.read_blocked,
            r.cache.installs,
            r.cache.evictions,
            r.cache.reclaimed,
            r.divergences
        ));
    }
    doc.push_str("]}\n");
    if let Err(e) = write_with_dirs(Path::new(out), &doc) {
        eprintln!("cannot write {out}: {e}");
        std::process::exit(1);
    }
    println!("wrote {out} ({} rungs)", runs.len());

    let diverged: usize = runs.iter().map(|r| r.divergences).sum();
    let blocked: u64 = runs.iter().map(|r| r.cache.read_blocked).sum();
    if diverged > 0 {
        eprintln!("{diverged} thread run(s) diverged from the single-thread oracle");
        std::process::exit(1);
    }
    if blocked > 0 {
        eprintln!("{blocked} compiled-call lookup(s) blocked on the store lock");
        std::process::exit(1);
    }
}
