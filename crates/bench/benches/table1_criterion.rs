//! Criterion wrapper over the Table 1 harness: one timed measurement per
//! suite so `cargo bench` exercises the full table pipeline. The
//! authoritative table output comes from the `table1` binary.

use criterion::{criterion_group, criterion_main, Criterion};
use pea_bench::measure;
use pea_vm::OptLevel;
use pea_workloads::{suite_workloads, Suite};

fn bench_suite_measurement(c: &mut Criterion) {
    let workloads = suite_workloads(Suite::SpecJbb);
    let w = &workloads[0];
    let mut group = c.benchmark_group("table1/specjbb_measurement");
    group.sample_size(10);
    for level in [OptLevel::None, OptLevel::Pea] {
        group.bench_function(format!("{level}"), |b| b.iter(|| measure(w, level, 60, 5)));
    }
    group.finish();
}

criterion_group!(benches, bench_suite_measurement);
criterion_main!(benches);
