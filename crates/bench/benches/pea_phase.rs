//! Criterion benchmark: cost of the Partial Escape Analysis phase itself,
//! across graph shapes (straight-line scalar replacement, merge-heavy,
//! loop fixpoint) and against the EES baseline analysis.

use criterion::{criterion_group, criterion_main, Criterion};
use pea_core::fixtures::{fig7_loop_graph, key_program, listing5_graph};
use pea_core::{run_ees, run_pea, PeaOptions};
use pea_workloads::{suite_workloads, Suite};

fn bench_fixture_graphs(c: &mut Criterion) {
    let (program, p) = key_program();
    let mut group = c.benchmark_group("pea_phase/fixtures");
    group.sample_size(30);
    group.bench_function("listing5_pea", |b| {
        b.iter_with_setup(
            || listing5_graph(&p).0,
            |mut g| run_pea(&mut g, &program, &PeaOptions::default()),
        )
    });
    group.bench_function("listing5_ees", |b| {
        b.iter_with_setup(
            || listing5_graph(&p).0,
            |mut g| run_ees(&mut g, &program, &PeaOptions::default()),
        )
    });
    group.bench_function("fig7_loop_fixpoint", |b| {
        b.iter_with_setup(
            || fig7_loop_graph(&p).0,
            |mut g| run_pea(&mut g, &program, &PeaOptions::default()),
        )
    });
    group.finish();
}

fn bench_workload_compilation(c: &mut Criterion) {
    let workload = suite_workloads(Suite::ScalaDaCapo)
        .into_iter()
        .find(|w| w.name == "factorie")
        .expect("factorie workload");
    let method = workload
        .program
        .static_method_by_name("iterate")
        .expect("iterate");
    let mut group = c.benchmark_group("pea_phase/compile_factorie");
    group.sample_size(20);
    for level in [
        pea_compiler::OptLevel::None,
        pea_compiler::OptLevel::Ees,
        pea_compiler::OptLevel::Pea,
    ] {
        group.bench_function(format!("{level}"), |b| {
            let options = pea_compiler::CompilerOptions::with_opt_level(level);
            b.iter(|| {
                pea_compiler::compile(&workload.program, method, None, &options).expect("compiles")
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fixture_graphs, bench_workload_compilation);
criterion_main!(benches);
