//! Criterion benchmark: steady-state throughput of compiled workload
//! iterations at each escape-analysis level. Wall-clock throughput of the
//! evaluator correlates with the virtual cycle counts the Table 1 harness
//! reports (fewer heap operations = less work in either metric).

use criterion::{criterion_group, criterion_main, Criterion};
use pea_runtime::Value;
use pea_vm::{OptLevel, Vm, VmOptions};
use pea_workloads::{suite_workloads, Suite, Workload};

fn warmed_vm(workload: &Workload, level: OptLevel) -> Vm {
    let mut vm = Vm::new(workload.program.clone(), VmOptions::with_opt_level(level));
    for i in 0..120 {
        vm.call_entry("iterate", &[Value::Int(i)]).expect("warmup");
    }
    vm
}

fn bench_steady_state(c: &mut Criterion) {
    for (suite, name) in [
        (Suite::ScalaDaCapo, "factorie"),
        (Suite::DaCapo, "sunflow"),
        (Suite::DaCapo, "jython"),
    ] {
        let workload = suite_workloads(suite)
            .into_iter()
            .find(|w| w.name == name)
            .expect("workload");
        let mut group = c.benchmark_group(format!("evaluator/{name}"));
        group.sample_size(20);
        for level in [OptLevel::None, OptLevel::Ees, OptLevel::Pea] {
            group.bench_function(format!("{level}"), |b| {
                let mut vm = warmed_vm(&workload, level);
                let mut i = 1000i64;
                b.iter(|| {
                    i += 1;
                    vm.call_entry("iterate", &[Value::Int(i)]).expect("iterate")
                })
            });
        }
        group.finish();
    }
}

criterion_group!(benches, bench_steady_state);
criterion_main!(benches);
