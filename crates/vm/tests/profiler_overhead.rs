//! The disabled profiler must be free on every charge path.
//!
//! Same contract (and same counting-allocator technique) as the
//! interpreter's `metrics_overhead` test: with the profiler hub disabled,
//! a charge site costs at most one branch (`methods.is_empty()`) and
//! *zero heap allocations* — the allocation count of a counted loop must
//! not depend on the iteration count, through the interpreter and through
//! both compiled tiers. The enabled profiler is held to the same
//! per-iteration standard: attribution is atomic adds into pre-resolved
//! cells, so only per-frame handles (bounded by call count, not
//! iterations) may allocate.

use pea_bytecode::asm::parse_program;
use pea_metrics::profile::ProfilerHub;
use pea_runtime::Value;
use pea_vm::{ExecMode, OptLevel, Vm, VmOptions};
use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

thread_local! {
    static ALLOCS: Cell<u64> = const { Cell::new(0) };
}

struct CountingAlloc;

// SAFETY: delegates to `System` unchanged; only a thread-local counter is
// added on the allocation path.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let _ = ALLOCS.try_with(|c| c.set(c.get() + 1));
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

const COUNTED_LOOP: &str = "method f 1 returns {
  const 0
  store 1
Lhead:
  load 1
  load 0
  ifcmp ge Ldone
  load 1
  const 1
  add
  store 1
  goto Lhead
Ldone:
  load 1
  retv
}";

fn allocs_during_loop(hub: ProfilerHub, exec_mode: ExecMode, iters: i64) -> u64 {
    let program = parse_program(COUNTED_LOOP).unwrap();
    let mut vm = Vm::new(
        program,
        VmOptions {
            exec_mode,
            profiler: hub,
            ..VmOptions::with_opt_level(OptLevel::Pea)
        },
    );
    // Warm past the compile threshold so the measured call runs compiled
    // code; this also absorbs one-time lazy allocations.
    for _ in 0..60 {
        vm.call_entry("f", &[Value::Int(8)]).unwrap();
    }
    let before = ALLOCS.with(Cell::get);
    let result = vm.call_entry("f", &[Value::Int(iters)]).unwrap();
    assert_eq!(result, Some(Value::Int(iters)));
    ALLOCS.with(Cell::get) - before
}

#[test]
fn disabled_profiler_adds_zero_allocations_per_iteration() {
    // Absolute invariant on the linear tier (the graph walker allocates
    // per iteration on its own, profiler or not — see the relative test).
    let small = allocs_during_loop(ProfilerHub::disabled(), ExecMode::Linear, 1_000);
    let large = allocs_during_loop(ProfilerHub::disabled(), ExecMode::Linear, 100_000);
    assert_eq!(
        small, large,
        "allocation count must not scale with loop iterations \
         when the profiler is disabled"
    );
}

#[test]
fn profiler_adds_zero_allocations_in_both_tiers() {
    // The profiler's own footprint — enabled vs disabled on identical
    // runs — must be exactly zero allocations in either compiled tier:
    // attribution is atomic adds into cells pre-resolved at VM creation.
    for exec_mode in [ExecMode::Linear, ExecMode::Graph] {
        let disabled = allocs_during_loop(ProfilerHub::disabled(), exec_mode, 50_000);
        let enabled = allocs_during_loop(ProfilerHub::enabled(), exec_mode, 50_000);
        assert_eq!(
            enabled, disabled,
            "{exec_mode:?}: enabling the profiler must not add allocations \
             (atomic adds into pre-resolved cells only)"
        );
    }
}
