//! Cycle-attribution profiler: exact reconciliation against the VM's
//! independently maintained counters, deopt-site identity across tiers,
//! and the flight-recorder dump triggers.
//!
//! The reconciliation invariant is the profiler's core contract: every
//! cycle the VM charges is attributed to exactly one `(method, tier)`
//! cell, so the profiler total equals the `stats.cycles` delta — not
//! approximately, *exactly*, in every jit-mode × exec-mode combination.

use pea_bytecode::asm::parse_program;
use pea_metrics::profile::{ProfilerHub, Reconciliation, Tier};
use pea_runtime::Value;
use pea_trace::timeline::validate_json;
use pea_trace::{MemorySink, SharedSink, TraceEvent};
use pea_vm::{ExecMode, JitMode, OptLevel, Vm, VmOptions};
use pea_workloads::all_workloads;

fn options(jit_mode: JitMode, exec_mode: ExecMode, hub: &ProfilerHub) -> VmOptions {
    VmOptions {
        jit_mode,
        exec_mode,
        profiler: hub.clone(),
        ..VmOptions::with_opt_level(OptLevel::Pea)
    }
}

#[test]
fn profiler_reconciles_exactly_over_the_corpus_in_every_mode() {
    for jit_mode in [JitMode::Sync, JitMode::Background] {
        for exec_mode in [ExecMode::Linear, ExecMode::Graph] {
            let hub = ProfilerHub::enabled();
            let mut recon = Reconciliation::default();
            for w in all_workloads() {
                let mut vm = Vm::new(w.program.clone(), options(jit_mode, exec_mode, &hub));
                for i in 0..80 {
                    vm.call_entry("iterate", &[Value::Int(i)])
                        .unwrap_or_else(|e| panic!("{} ({jit_mode:?}/{exec_mode:?}): {e}", w.name));
                }
                if jit_mode == JitMode::Background {
                    vm.await_background_compiles();
                }
                let stats = vm.stats();
                recon.stats_cycles += stats.cycles;
                recon.vm_deopts += stats.deopts;
                recon.vm_installs += stats.compiles;
            }
            let snapshot = hub.snapshot().unwrap();
            recon.profiler_cycles = snapshot.total_cycles();
            recon.profiler_deopts = snapshot.deopts;
            recon.profiler_installs = snapshot.installs;
            assert!(
                recon.ok(),
                "{jit_mode:?}/{exec_mode:?}: reconciliation failed: {recon:?}"
            );
            assert!(recon.profiler_cycles > 0);
            assert!(
                recon.profiler_installs > 0,
                "{jit_mode:?}/{exec_mode:?}: corpus warmup must install compiled code"
            );
            // Both the interpreter and a compiled tier must have cycles:
            // the corpus warms up from cold.
            assert!(snapshot.tier_cycles(Tier::Interp) > 0);
            let compiled_tier = match exec_mode {
                ExecMode::Linear => Tier::Linear,
                ExecMode::Graph => Tier::Graph,
            };
            assert!(
                snapshot.tier_cycles(compiled_tier) > 0,
                "{jit_mode:?}/{exec_mode:?}: compiled tier saw no cycles"
            );
        }
    }
}

/// The guard-failure workload of the VM unit tests: compiled code
/// speculates the rare branch away, a large argument deopts it.
const DEOPT_SRC: &str = "
    class Box { field v int }
    static g ref
    method f 1 returns {
        new Box store 1
        load 1 load 0 putfield Box.v
        load 0 const 100 ifcmp gt Lrare
        load 1 getfield Box.v const 1 add retv
    Lrare:
        load 1 putstatic g
        load 1 getfield Box.v const 1000 add retv
    }";

fn deopt_vm(exec_mode: ExecMode, hub: &ProfilerHub, sink: Option<SharedSink>) -> Vm {
    let program = parse_program(DEOPT_SRC).unwrap();
    let mut opts = options(JitMode::Sync, exec_mode, hub);
    opts.trace = sink;
    Vm::new(program, opts)
}

#[test]
fn deopts_allocations_and_hot_spots_attribute_to_the_right_cells() {
    let hub = ProfilerHub::enabled();
    let mut vm = deopt_vm(ExecMode::Linear, &hub, None);
    for i in 0..80 {
        vm.call_entry("f", &[Value::Int(i)]).unwrap();
    }
    assert_eq!(vm.compiled_method_count(), 1);
    vm.call_entry("f", &[Value::Int(500)]).unwrap();
    let snapshot = hub.snapshot().unwrap();
    let linear = snapshot
        .rows
        .iter()
        .find(|r| r.method == "f" && r.tier == Tier::Linear)
        .expect("compiled executions must appear under the linear tier");
    assert_eq!(linear.deopts, 1, "the guard failure lands on (f, linear)");
    assert!(linear.invocations > 0);
    let interp = snapshot
        .rows
        .iter()
        .find(|r| r.method == "f" && r.tier == Tier::Interp)
        .expect("warmup must appear under the interpreter tier");
    // Interpreter warmup allocates a Box per call; the compiled tier
    // scalar-replaces it on the fast path but rematerializes on deopt.
    assert!(interp.allocs >= 50, "interp allocs: {}", interp.allocs);
    assert!(linear.allocs >= 1, "deopt rematerialization allocates");
    assert!(
        snapshot.hot_bcis.iter().any(|(m, _, c)| m == "f" && *c > 0),
        "interpreted execution must fill per-bci buckets"
    );
    assert!(
        snapshot.opcode_cycles.iter().any(|&c| c > 0),
        "interpreted execution must fill opcode buckets"
    );
    assert_eq!(snapshot.deopts, vm.stats().deopts);
    assert_eq!(snapshot.total_cycles(), vm.stats().cycles);
}

/// Satellite: every `DeoptTaken`/`Deopt` pair carries the same `(site,
/// bci)`, the identity is the innermost frame, and — because both tiers
/// rebuild the same frame chain — it is byte-identical between the linear
/// and graph executors.
#[test]
fn deopt_events_carry_identical_site_and_bci_across_tiers() {
    let mut per_tier: Vec<Vec<(String, String, u32, String)>> = Vec::new();
    for exec_mode in [ExecMode::Linear, ExecMode::Graph] {
        let (sink, mem) = SharedSink::new(MemorySink::new());
        let hub = ProfilerHub::enabled();
        let mut vm = deopt_vm(exec_mode, &hub, Some(sink));
        for i in 0..80 {
            vm.call_entry("f", &[Value::Int(i)]).unwrap();
        }
        vm.call_entry("f", &[Value::Int(500)]).unwrap();
        let log = mem.lock().unwrap();
        let mut seen = Vec::new();
        for (i, event) in log.events.iter().enumerate() {
            match event {
                TraceEvent::DeoptTaken {
                    method,
                    site,
                    bci,
                    reason,
                } => {
                    assert!(!site.is_empty());
                    // The generic Deopt record follows with the same identity.
                    let Some(TraceEvent::Deopt {
                        method: m,
                        site: s,
                        bci: b,
                        reason: r,
                        ..
                    }) = log.events.get(i + 1)
                    else {
                        panic!("{exec_mode:?}: DeoptTaken not followed by Deopt");
                    };
                    assert_eq!((m, s, b, r), (method, site, bci, reason));
                    seen.push((method.clone(), site.clone(), *bci, reason.clone()));
                }
                TraceEvent::Deopt { site, .. } => assert!(!site.is_empty()),
                _ => {}
            }
        }
        assert!(!seen.is_empty(), "{exec_mode:?}: no deopt observed");
        // No inlining here: the innermost frame is the method itself.
        assert!(seen.iter().all(|(m, s, _, _)| m == "f" && s == "f"));
        per_tier.push(seen);
    }
    assert_eq!(
        per_tier[0], per_tier[1],
        "deopt (site, bci) identities must match between linear and graph tiers"
    );
}

fn flight_path(tag: &str) -> std::path::PathBuf {
    let path = std::env::temp_dir().join(format!("pea-flight-{tag}-{}.json", std::process::id()));
    let _ = std::fs::remove_file(&path);
    path
}

#[test]
fn flight_ring_dumps_on_vm_error() {
    let path = flight_path("vmerror");
    let hub = ProfilerHub::enabled();
    let program = parse_program(DEOPT_SRC).unwrap();
    let mut opts = options(JitMode::Sync, ExecMode::Linear, &hub);
    opts.flight = Some(path.clone());
    opts.fuel = Some(100_000);
    let mut vm = Vm::new(program, opts);
    let mut failed = false;
    for i in 0..100_000 {
        // Warm up, deopt occasionally, eventually exhaust the fuel budget.
        let arg = if i % 90 == 89 { 500 } else { i % 50 };
        if vm.call_entry("f", &[Value::Int(arg)]).is_err() {
            failed = true;
            break;
        }
    }
    assert!(failed, "the fuel budget must run out");
    let dump = std::fs::read_to_string(&path).expect("FLIGHT.json written on VmError");
    validate_json(&dump).expect("flight dump must be valid JSON");
    assert!(dump.starts_with("{\"schema\":\"pea-flight/1\""));
    assert!(
        dump.contains("\"event\":\"deopt\"") || dump.contains("\"event\":\"compile-start\""),
        "ring must hold the events leading up to the failure: {dump}"
    );
    let _ = std::fs::remove_file(&path);
}

#[test]
fn flight_ring_dumps_when_a_panic_unwinds_past_the_vm() {
    let path = flight_path("panic");
    let path_clone = path.clone();
    let result = std::panic::catch_unwind(move || {
        let hub = ProfilerHub::enabled();
        let program = parse_program(DEOPT_SRC).unwrap();
        let mut opts = options(JitMode::Sync, ExecMode::Linear, &hub);
        opts.flight = Some(path_clone);
        let mut vm = Vm::new(program, opts);
        for i in 0..80 {
            vm.call_entry("f", &[Value::Int(i)]).unwrap();
        }
        // Stand-in for a sanitizer finding or compiler invariant failure:
        // the unwind drops the VM, which persists the ring.
        panic!("induced failure");
    });
    assert!(result.is_err());
    let dump = std::fs::read_to_string(&path).expect("FLIGHT.json written on panic");
    validate_json(&dump).expect("flight dump must be valid JSON");
    assert!(dump.contains("compile-start") || dump.contains("compile-end"));
    let _ = std::fs::remove_file(&path);
}
