//! Metrics/trace consistency: the `pea.*` metrics counters and the trace
//! stream's [`SiteAggregator`] fold the *same* event buffers, so their
//! totals must agree exactly — in synchronous mode and in background mode
//! (where per-worker buffers are merged through a [`SequencedMerge`]).

use pea_metrics::MetricsHub;
use pea_runtime::Value;
use pea_trace::{MemorySink, SharedSink, SiteAggregator, TraceEvent};
use pea_vm::{JitMode, OptLevel, Vm, VmOptions};
use pea_workloads::{all_workloads, Workload};

fn metrics_options(background: bool) -> VmOptions {
    let mut options = VmOptions::with_opt_level(OptLevel::Pea);
    options.metrics = MetricsHub::enabled();
    if background {
        options.jit_mode = JitMode::Background;
        options.compile_workers = Some(2);
    }
    options
}

/// Per-site totals folded by the aggregator, in the same order as the
/// metrics names checked below.
fn aggregator_totals(agg: &SiteAggregator) -> [u64; 5] {
    let mut t = [0u64; 5];
    for c in agg.sites.values() {
        t[0] += c.virtualized;
        t[1] += c.materialized;
        t[2] += c.locks_elided;
        t[3] += c.loads_elided;
        t[4] += c.stores_elided;
    }
    t
}

fn assert_consistent(workload: &Workload, background: bool) {
    let (sink, agg) = SharedSink::new(SiteAggregator::new());
    let mut options = metrics_options(background);
    options.trace = Some(sink);
    let mut vm = Vm::new(workload.program.clone(), options);
    for i in 0..200 {
        vm.call_entry("iterate", &[Value::Int(i)])
            .unwrap_or_else(|e| panic!("{} iteration {i}: {e}", workload.name));
    }
    vm.await_background_compiles();
    let snapshot = vm.metrics().snapshot().expect("metrics enabled");
    let agg = agg.lock().expect("aggregator lock poisoned");

    let totals = aggregator_totals(&agg);
    let mode = if background { "background" } else { "sync" };
    for (name, expected) in [
        ("pea.virtualized", totals[0]),
        ("pea.materialized", totals[1]),
        ("pea.locks_elided", totals[2]),
        ("pea.loads_elided", totals[3]),
        ("pea.stores_elided", totals[4]),
        ("compile.started", agg.compiles),
        ("vm.evictions", agg.evictions),
        (
            "vm.deopts",
            agg.deopts.values().map(|(deopts, _)| *deopts).sum(),
        ),
        (
            "vm.rematerialized_objects",
            agg.deopts.values().map(|(_, remat)| *remat).sum(),
        ),
    ] {
        assert_eq!(
            snapshot.counter(name),
            expected,
            "{} ({mode}): {name} disagrees with the trace aggregator",
            workload.name
        );
    }

    // Sanity: the run actually exercised the layers being counted.
    assert!(snapshot.counter("interp.steps") > 0);
    assert!(snapshot.counter("vm.installs") > 0);
    assert!(snapshot.counter("heap.allocs") > 0);
    assert!(snapshot.counter("pea.virtualized") > 0);
    let phases = snapshot
        .histogram("compile.total_us")
        .expect("total_us histogram present");
    assert_eq!(
        phases.count(),
        snapshot.counter("compile.started"),
        "{} ({mode}): one total-time sample per compilation",
        workload.name
    );
}

#[test]
fn sync_metrics_match_trace_aggregator() {
    let names = ["fop", "pmd", "SPECjbb2005"];
    for w in all_workloads()
        .iter()
        .filter(|w| names.contains(&w.name.as_str()))
    {
        assert_consistent(w, false);
    }
}

#[test]
fn background_metrics_match_trace_aggregator() {
    let names = ["fop", "luindex", "SPECjbb2005"];
    for w in all_workloads()
        .iter()
        .filter(|w| names.contains(&w.name.as_str()))
    {
        assert_consistent(w, true);
    }
}

#[test]
fn background_mode_records_queue_latency() {
    let w = all_workloads()
        .into_iter()
        .find(|w| w.name == "fop")
        .unwrap();
    let mut vm = Vm::new(w.program.clone(), metrics_options(true));
    for i in 0..200 {
        vm.call_entry("iterate", &[Value::Int(i)]).unwrap();
    }
    vm.await_background_compiles();
    let snapshot = vm.metrics().snapshot().unwrap();
    let latency = snapshot
        .histogram("compile.queue_latency_us")
        .expect("queue latency histogram present");
    assert_eq!(
        latency.count(),
        snapshot.counter("vm.installs"),
        "one latency sample per installed background compilation"
    );
    assert!(latency.count() > 0, "background run installed nothing");
    assert!(snapshot.counter("compile.enqueued") >= latency.count());
}

#[test]
fn metrics_disabled_snapshot_is_none() {
    let w = all_workloads()
        .into_iter()
        .find(|w| w.name == "fop")
        .unwrap();
    let mut vm = Vm::new(w.program.clone(), VmOptions::with_opt_level(OptLevel::Pea));
    for i in 0..40 {
        vm.call_entry("iterate", &[Value::Int(i)]).unwrap();
    }
    assert!(vm.metrics().snapshot().is_none());
}

#[test]
fn background_trace_carries_periodic_metrics_snapshots() {
    let w = all_workloads()
        .into_iter()
        .find(|w| w.name == "fop")
        .unwrap();
    let (sink, buffer) = SharedSink::new(MemorySink::new());
    let mut options = metrics_options(true);
    options.trace = Some(sink);
    options.metrics_snapshot_every = 1;
    let mut vm = Vm::new(w.program.clone(), options);
    for i in 0..200 {
        vm.call_entry("iterate", &[Value::Int(i)]).unwrap();
    }
    vm.await_background_compiles();
    drop(vm);
    let buffer = buffer.lock().expect("sink lock poisoned");
    let snapshots: Vec<(u64, usize)> = buffer
        .events
        .iter()
        .filter_map(|e| match e {
            TraceEvent::MetricsSnapshot { seq, counters } => Some((*seq, counters.len())),
            _ => None,
        })
        .collect();
    assert!(
        !snapshots.is_empty(),
        "no MetricsSnapshot events in the background trace"
    );
    for (expected, (seq, len)) in snapshots.iter().enumerate() {
        assert_eq!(*seq, expected as u64, "snapshot sequence has gaps");
        assert!(*len > 0, "empty deltas must be skipped, not emitted");
    }
}

#[test]
fn summary_cache_shared_across_compilations() {
    // At a summary-consuming configuration the interprocedural summaries
    // are computed once (one miss) and every later compilation hits the
    // shared cache — in both JIT modes.
    let src = "method f 1 returns { load 0 const 1 add retv }
         method g 1 returns { load 0 const 2 mul retv }";
    for background in [false, true] {
        let mut options = metrics_options(background);
        options.compiler.opt_level = OptLevel::PeaPreIpa;
        options.compile_threshold = 5;
        let program = pea_bytecode::asm::parse_program(src).unwrap();
        let mut vm = Vm::new(program, options);
        for i in 0..20 {
            vm.call_entry("f", &[Value::Int(i)]).unwrap();
            vm.call_entry("g", &[Value::Int(i)]).unwrap();
        }
        vm.await_background_compiles();
        assert_eq!(vm.compiled_method_count(), 2);
        let m = vm.metrics().on().expect("metrics enabled");
        let mode = if background { "background" } else { "sync" };
        assert_eq!(
            m.compile.summary_cache_misses.get(),
            1,
            "{mode}: summaries must be computed exactly once"
        );
        assert!(
            m.compile.summary_cache_hits.get() >= 1,
            "{mode}: later compilations must hit the cache"
        );
        assert!(vm.summary_cache().is_populated());
        vm.summary_cache().invalidate();
        assert!(!vm.summary_cache().is_populated());
    }
}

#[test]
fn summary_cache_untouched_when_configuration_ignores_summaries() {
    let src = "method f 1 returns { load 0 const 1 add retv }";
    let mut options = metrics_options(false);
    options.compile_threshold = 5;
    let program = pea_bytecode::asm::parse_program(src).unwrap();
    let mut vm = Vm::new(program, options);
    for i in 0..20 {
        vm.call_entry("f", &[Value::Int(i)]).unwrap();
    }
    let m = vm.metrics().on().expect("metrics enabled");
    assert_eq!(m.compile.summary_cache_misses.get(), 0);
    assert_eq!(m.compile.summary_cache_hits.get(), 0);
    assert!(!vm.summary_cache().is_populated());
}
