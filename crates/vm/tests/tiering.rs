//! VM tiering policy tests: compilation thresholds, bailout fallback,
//! code-cache behaviour, and statistics bookkeeping.

use pea_bytecode::asm::parse_program;
use pea_runtime::{Value, VmError};
use pea_vm::{OptLevel, Vm, VmOptions};

fn vm_with(src: &str, mut options: VmOptions) -> Vm {
    options.compile_threshold = 5;
    let program = parse_program(src).unwrap();
    pea_bytecode::verify_program(&program).unwrap();
    Vm::new(program, options)
}

#[test]
fn threshold_controls_compilation_point() {
    let src = "method f 0 returns { const 1 retv }";
    let mut vm = vm_with(src, VmOptions::with_opt_level(OptLevel::Pea));
    for i in 0..5 {
        vm.call_entry("f", &[]).unwrap();
        assert_eq!(
            vm.compiled_method_count(),
            0,
            "not compiled after {} calls",
            i + 1
        );
    }
    vm.call_entry("f", &[]).unwrap();
    assert_eq!(vm.compiled_method_count(), 1, "compiled at the threshold");
    assert_eq!(vm.stats().compiles, 1);
    // Further calls do not recompile.
    for _ in 0..20 {
        vm.call_entry("f", &[]).unwrap();
    }
    assert_eq!(vm.stats().compiles, 1);
}

#[test]
fn bailout_methods_stay_interpreted_but_work() {
    // Unbalanced monitors: uncompilable, must keep interpreting forever.
    let src = "
        class C { }
        static keep ref
        method f 0 returns {
            new C dup putstatic keep monitorenter
            const 7 retv
        }";
    let mut vm = vm_with(src, VmOptions::with_opt_level(OptLevel::Pea));
    for _ in 0..50 {
        assert_eq!(vm.call_entry("f", &[]).unwrap(), Some(Value::Int(7)));
    }
    assert_eq!(vm.compiled_method_count(), 0, "bailout: never compiled");
    assert_eq!(vm.stats().compiles, 0);
    // The interpreter really did enter those monitors.
    assert_eq!(vm.stats().monitor_enters, 50);
}

#[test]
fn compiled_method_reports_pea_results() {
    let src = "
        class Box { field v int }
        method f 1 returns {
            new Box store 1
            load 1 load 0 putfield Box.v
            load 1 getfield Box.v retv
        }";
    let mut vm = vm_with(src, VmOptions::with_opt_level(OptLevel::Pea));
    for i in 0..10 {
        vm.call_entry("f", &[Value::Int(i)]).unwrap();
    }
    let method = vm.program().static_method_by_name("f").unwrap();
    let code = vm.compiled(method).expect("in code cache");
    assert_eq!(code.pea_result.virtualized_allocs, 1);
    assert!(code.code_size > 0);
}

#[test]
fn reset_statics_restores_defaults() {
    let src = "
        static g int
        method f 1 returns { load 0 putstatic g getstatic g retv }";
    let mut vm = vm_with(src, VmOptions::with_opt_level(OptLevel::None));
    vm.call_entry("f", &[Value::Int(9)]).unwrap();
    let g = vm.program().static_by_name("g").unwrap();
    assert_eq!(vm.statics_ref().get(g), Value::Int(9));
    vm.reset_statics();
    assert_eq!(vm.statics_ref().get(g), Value::Int(0));
}

#[test]
fn deopt_statistics_attribute_to_the_right_method() {
    let src = "
        static sink ref
        class C { field v int }
        method g 1 returns {
            new C store 1
            load 1 load 0 putfield C.v
            load 0 const 900 ifcmp gt Lrare
            load 1 getfield C.v retv
        Lrare:
            load 1 putstatic sink
            const -1 retv
        }
        method f 1 returns { load 0 invokestatic g retv }";
    // The callee is only interpreted (and profiled) until the caller
    // compiles at its 5-invocation threshold, so the branch threshold
    // must fit inside those samples for speculation to kick in.
    let mut options = VmOptions::with_opt_level(OptLevel::Pea);
    options.compiler.build.branch_threshold = 4;
    let mut vm = vm_with(src, options);
    for i in 0..60 {
        assert_eq!(
            vm.call_entry("f", &[Value::Int(i)]).unwrap(),
            Some(Value::Int(i))
        );
    }
    let before = vm.stats();
    assert_eq!(
        vm.call_entry("f", &[Value::Int(2000)]).unwrap(),
        Some(Value::Int(-1))
    );
    let d = vm.stats().delta(&before);
    assert_eq!(d.deopts, 1);
    // g was inlined into f (or compiled itself); either way the deopt
    // resumed and finished in the interpreter with the right result and
    // the object published.
    let sink = vm.program().static_by_name("sink").unwrap();
    assert!(matches!(vm.statics_ref().get(sink), Value::Ref(_)));
}

#[test]
fn errors_do_not_poison_the_code_cache() {
    let src = "method f 1 returns { const 100 load 0 div retv }";
    let mut vm = vm_with(src, VmOptions::with_opt_level(OptLevel::Pea));
    for i in 1..20 {
        vm.call_entry("f", &[Value::Int(i)]).unwrap();
    }
    assert_eq!(vm.compiled_method_count(), 1);
    // A runtime error in compiled code propagates...
    assert_eq!(
        vm.call_entry("f", &[Value::Int(0)]).unwrap_err(),
        VmError::DivisionByZero
    );
    // ...and the method keeps running compiled afterwards.
    assert_eq!(
        vm.call_entry("f", &[Value::Int(4)]).unwrap(),
        Some(Value::Int(25))
    );
    assert_eq!(vm.compiled_method_count(), 1);
    assert_eq!(vm.stats().compiles, 1);
}

#[test]
fn ea_iterations_option_is_idempotent() {
    let src = "
        class Box { field v int }
        method f 1 returns {
            new Box store 1
            load 1 load 0 putfield Box.v
            load 1 getfield Box.v retv
        }";
    let mut once = VmOptions::with_opt_level(OptLevel::Pea);
    once.compiler.ea_iterations = 1;
    let mut thrice = VmOptions::with_opt_level(OptLevel::Pea);
    thrice.compiler.ea_iterations = 3;
    let mut results = Vec::new();
    for options in [once, thrice] {
        let mut vm = vm_with(src, options);
        for i in 0..10 {
            vm.call_entry("f", &[Value::Int(i)]).unwrap();
        }
        let before = vm.stats();
        let r = vm.call_entry("f", &[Value::Int(5)]).unwrap();
        results.push((r, vm.stats().delta(&before).alloc_count));
    }
    assert_eq!(results[0], results[1], "extra EA iterations change nothing");
    assert_eq!(results[0].1, 0);
}
