//! Mode-equivalence tests: the background compile service must be
//! observationally equivalent to synchronous compilation — identical
//! program results, identical steady-state statistics, and byte-identical
//! compiled artifacts per method (the artifact is a deterministic function
//! of the profile snapshot taken when the method crosses the threshold,
//! which is the same moment in both modes).

use pea_ir::schedule::Schedule;
use pea_runtime::Value;
use pea_vm::{JitMode, OptLevel, Vm, VmOptions};
use pea_workloads::{all_workloads, Pattern, Suite, Workload, WorkloadSpec};
use proptest::prelude::*;

/// Deterministic rendering of a schedule (`placement` is a `HashMap`, so
/// its `Debug` output has unstable ordering).
fn schedule_fingerprint(s: &Schedule) -> String {
    let mut placement: Vec<String> = s
        .placement
        .iter()
        .map(|(n, b)| format!("{n:?}@{b:?}"))
        .collect();
    placement.sort();
    format!("{:?} | {}", s.per_block, placement.join(","))
}

fn sync_options() -> VmOptions {
    VmOptions::with_opt_level(OptLevel::Pea)
}

fn background_options(workers: usize) -> VmOptions {
    VmOptions {
        jit_mode: JitMode::Background,
        compile_workers: Some(workers),
        ..VmOptions::with_opt_level(OptLevel::Pea)
    }
}

/// Runs `iters` calls of `iterate(i)` in both modes, asserting identical
/// per-iteration results throughout (including the warmup phase, where
/// background mode is still interpreting methods sync mode has already
/// compiled).
fn assert_equivalent(workload: &Workload, iters: u64, workers: usize) {
    let mut sync_vm = Vm::new(workload.program.clone(), sync_options());
    let mut bg_vm = Vm::new(workload.program.clone(), background_options(workers));
    for i in 0..iters {
        let s = sync_vm
            .call_entry("iterate", &[Value::Int(i as i64)])
            .unwrap_or_else(|e| panic!("{} sync iteration {i}: {e}", workload.name));
        let b = bg_vm
            .call_entry("iterate", &[Value::Int(i as i64)])
            .unwrap_or_else(|e| panic!("{} background iteration {i}: {e}", workload.name));
        assert_eq!(s, b, "{} diverged at iteration {i}", workload.name);
    }
    // Let the queue settle. Background may compile a *superset* of sync's
    // methods: while a caller's compilation is in flight it keeps being
    // interpreted, so callees sync-mode inlines away (freezing their
    // counts below threshold) still cross it. Every sync-compiled method
    // must be background-compiled though, and those extra compiled callees
    // are exactly the ones the compiled caller no longer invokes — they
    // cannot affect the steady state.
    bg_vm.await_background_compiles();
    let sync_methods = sync_vm.compiled_methods();
    let bg_methods = bg_vm.compiled_methods();
    for m in &sync_methods {
        assert!(
            bg_methods.contains(m),
            "{}: {m:?} compiled in sync mode but not in background mode",
            workload.name
        );
    }

    // Steady state: settle both VMs (sync may still compile previously
    // interpreted callees during these iterations), then a fresh batch of
    // iterations must produce identical statistics deltas (cycles,
    // allocations, monitor operations, deopts, compiles).
    for i in iters..iters + 30 {
        sync_vm
            .call_entry("iterate", &[Value::Int(i as i64)])
            .unwrap();
        bg_vm
            .call_entry("iterate", &[Value::Int(i as i64)])
            .unwrap();
    }
    bg_vm.await_background_compiles();
    let sync_before = sync_vm.stats();
    let bg_before = bg_vm.stats();
    for i in iters + 30..iters + 80 {
        let s = sync_vm
            .call_entry("iterate", &[Value::Int(i as i64)])
            .unwrap();
        let b = bg_vm
            .call_entry("iterate", &[Value::Int(i as i64)])
            .unwrap();
        assert_eq!(
            s, b,
            "{} diverged at steady-state iteration {i}",
            workload.name
        );
    }
    let sync_delta = sync_vm.stats().delta(&sync_before);
    let bg_delta = bg_vm.stats().delta(&bg_before);
    assert_eq!(
        sync_delta, bg_delta,
        "{}: steady-state stats differ",
        workload.name
    );

    // Artifact equality: every method compiled in both modes must have a
    // byte-identical graph and schedule (compilation is a deterministic
    // function of the profile snapshot, which is taken at the same
    // threshold crossing in both modes).
    for method in sync_methods {
        let s = sync_vm.compiled(method).expect("in sync cache");
        let b = bg_vm.compiled(method).expect("in background cache");
        assert_eq!(
            pea_ir::dump::dump(&s.graph),
            pea_ir::dump::dump(&b.graph),
            "{}: graph for {:?} differs across modes",
            workload.name,
            method
        );
        assert_eq!(
            schedule_fingerprint(&s.schedule),
            schedule_fingerprint(&b.schedule),
            "{}: schedule for {:?} differs across modes",
            workload.name,
            method
        );
        assert_eq!(s.code_size, b.code_size);
    }
}

#[test]
fn corpus_workloads_equivalent_across_modes() {
    // A cross-section of the corpus: allocation-heavy, lock-heavy,
    // escape-heavy and branchy kernels.
    let names = ["fop", "luindex", "pmd", "specjbb2005"];
    for w in all_workloads()
        .iter()
        .filter(|w| names.contains(&w.name.as_str()))
    {
        assert_equivalent(w, 120, 2);
    }
}

#[test]
fn single_worker_equivalent() {
    let w = all_workloads()
        .into_iter()
        .find(|w| w.name == "avrora")
        .unwrap();
    assert_equivalent(&w, 120, 1);
}

#[test]
fn background_compiles_eventually_install() {
    let w = all_workloads()
        .into_iter()
        .find(|w| w.name == "fop")
        .unwrap();
    let mut vm = Vm::new(w.program.clone(), background_options(2));
    for i in 0..200 {
        vm.call_entry("iterate", &[Value::Int(i)]).unwrap();
    }
    let installed = vm.await_background_compiles();
    assert!(installed > 0, "no methods were installed");
    assert!(vm.stats().compiles as usize >= installed);
}

#[test]
fn precompile_all_matches_background_artifacts() {
    // Batch precompilation from the same profiles must produce the same
    // artifacts as threshold-driven compilation does for the methods both
    // paths compile.
    let w = all_workloads()
        .into_iter()
        .find(|w| w.name == "luindex")
        .unwrap();
    let mut hot = Vm::new(w.program.clone(), sync_options());
    for i in 0..120 {
        hot.call_entry("iterate", &[Value::Int(i)]).unwrap();
    }

    let mut batch = Vm::new(
        w.program.clone(),
        VmOptions {
            jit: false,
            ..sync_options()
        },
    );
    // Same interpreted warmup (pure profiling, no compilation)...
    for i in 0..120 {
        batch.call_entry("iterate", &[Value::Int(i)]).unwrap();
    }
    // ...then compile everything in parallel.
    let installed = batch.precompile_all(4);
    assert_eq!(installed, w.program.methods.len());
    assert!(batch.compiled_method_count() >= hot.compiled_method_count());
    for i in 120..170 {
        let a = hot.call_entry("iterate", &[Value::Int(i)]).unwrap();
        let b = batch.call_entry("iterate", &[Value::Int(i)]).unwrap();
        assert_eq!(a, b, "precompiled VM diverged at iteration {i}");
    }
}

#[test]
fn precompile_all_parallelism_levels_agree() {
    let w = all_workloads()
        .into_iter()
        .find(|w| w.name == "fop")
        .unwrap();
    let mut dumps: Vec<Vec<String>> = Vec::new();
    for parallelism in [1, 4] {
        let mut vm = Vm::new(w.program.clone(), sync_options());
        let installed = vm.precompile_all(parallelism);
        assert_eq!(installed, w.program.methods.len());
        dumps.push(
            vm.compiled_methods()
                .into_iter()
                .map(|m| pea_ir::dump::dump(&vm.compiled(m).unwrap().graph))
                .collect(),
        );
    }
    assert_eq!(
        dumps[0], dumps[1],
        "parallelism changed precompiled artifacts"
    );
}

#[test]
fn compiled_only_loop_drains_background_installs_at_backedge_safepoints() {
    // A hot caller whose callee is inlined becomes a compiled-only loop:
    // once it is running, no interpreter safepoint and no method-entry
    // drain is ever reached again until it returns. Finished background
    // compilations must still install *during* such a phase, via the
    // evaluator's loop back-edge safepoint polls.
    let src = "method helper 1 returns { load 0 const 3 mul retv }
         method cold 1 returns { load 0 const 7 add retv }
         method hotloop 1 returns {
            const 0 store 1
            const 0 store 2
         Lhead:
            load 2 load 0 ifcmp ge Ldone
            load 2 invokestatic helper load 1 add store 1
            load 2 const 1 add store 2
            goto Lhead
         Ldone:
            load 1 retv
         }";
    let program = pea_bytecode::asm::parse_program(src).unwrap();
    let cold = program.static_method_by_name("cold").unwrap();
    let options = VmOptions {
        jit_mode: JitMode::Background,
        compile_workers: Some(1),
        compile_threshold: 10,
        metrics: pea_vm::MetricsHub::enabled(),
        ..VmOptions::with_opt_level(OptLevel::Pea)
    };
    let mut vm = Vm::new(program, options);

    // Compile the loop itself (helper is inlined into it).
    let hotloop = vm.program().static_method_by_name("hotloop").unwrap();
    for _ in 0..20 {
        vm.call_entry("hotloop", &[Value::Int(4)]).unwrap();
    }
    vm.await_background_compiles();
    assert!(
        vm.compiled(hotloop).is_some(),
        "hotloop must be compiled before the compiled-only phase"
    );
    let polls_before = vm
        .metrics()
        .on()
        .map(|m| m.vm.safepoint_polls.get())
        .unwrap();

    // Make `cold` cross the threshold — its final call enqueues the
    // background request — then immediately enter a long compiled-only
    // loop. The install may only happen at a back-edge safepoint inside
    // that call (or, if the worker wins the race to the call, at its
    // entry drain); either way no further drain opportunity exists after
    // the loop returns.
    // One call past the threshold: the request is issued by the call that
    // *observes* the crossed count.
    for i in 0..11 {
        vm.call_entry("cold", &[Value::Int(i)]).unwrap();
    }
    let mut attempts = 0;
    while vm.compiled(cold).is_none() {
        attempts += 1;
        assert!(
            attempts <= 10,
            "background install starved through {attempts} compiled-only loops"
        );
        vm.call_entry("hotloop", &[Value::Int(300_000)]).unwrap();
    }
    let polls_after = vm
        .metrics()
        .on()
        .map(|m| m.vm.safepoint_polls.get())
        .unwrap();
    assert!(
        polls_after > polls_before,
        "compiled loop issued no back-edge safepoint polls"
    );
}

/// N-thread rendezvous starvation: several mutators spend their time in
/// compiled-only loops while each also has a background compilation in
/// flight. Every thread's pending install must land at one of *its own*
/// back-edge safepoints — no thread may starve another's rendezvous, and
/// no lookup may ever block on the shared store's lock.
#[test]
fn n_threads_in_compiled_loops_never_starve_background_installs() {
    let src = "method helper 1 returns { load 0 const 3 mul retv }
         method cold 1 returns { load 0 const 7 add retv }
         method hotloop 1 returns {
            const 0 store 1
            const 0 store 2
         Lhead:
            load 2 load 0 ifcmp ge Ldone
            load 2 invokestatic helper load 1 add store 1
            load 2 const 1 add store 2
            goto Lhead
         Ldone:
            load 1 retv
         }";
    let program = pea_bytecode::asm::parse_program(src).unwrap();
    let options = VmOptions {
        jit_mode: JitMode::Background,
        compile_workers: Some(2),
        compile_threshold: 10,
        metrics: pea_vm::MetricsHub::enabled(),
        ..VmOptions::with_opt_level(OptLevel::Pea)
    };
    let vm = Vm::new(program, options);
    let polls = vm.run_threads(4, |t, m| {
        let cold = m.program().static_method_by_name("cold").unwrap();
        let hotloop = m.program().static_method_by_name("hotloop").unwrap();
        // Each mutator warms the loop against its own profile timeline.
        for _ in 0..20 {
            m.call_entry("hotloop", &[Value::Int(4)]).unwrap();
        }
        m.await_background_compiles();
        assert!(
            m.compiled(hotloop).is_some(),
            "thread {t}: hotloop must be compiled before the compiled-only phase"
        );
        let polls_before = m
            .metrics()
            .on()
            .map(|metrics| metrics.vm.safepoint_polls.get())
            .unwrap();
        // Cross the threshold on `cold`, then live inside compiled-only
        // loops until the worker's artifact installs at a back-edge poll.
        for i in 0..11 {
            m.call_entry("cold", &[Value::Int(i)]).unwrap();
        }
        let mut attempts = 0;
        while m.compiled(cold).is_none() {
            attempts += 1;
            assert!(
                attempts <= 20,
                "thread {t}: install starved through {attempts} compiled-only loops"
            );
            m.call_entry("hotloop", &[Value::Int(300_000)]).unwrap();
        }
        polls_before
    });
    let polls_after = vm
        .metrics()
        .on()
        .map(|m| m.vm.safepoint_polls.get())
        .unwrap();
    assert!(
        polls.iter().all(|&before| polls_after > before),
        "compiled loops issued no back-edge safepoint polls"
    );
    let cache = vm.code_cache_stats();
    assert_eq!(
        cache.read_blocked, 0,
        "a lookup blocked on the store lock under contention"
    );
}

/// Small random workloads assembled from the corpus generator's patterns.
fn pattern() -> impl Strategy<Value = Pattern> {
    prop_oneof![
        (1i64..5).prop_map(|n| Pattern::BoxingArith { n }),
        (1i64..5).prop_map(|n| Pattern::TupleReturn { n }),
        (1i64..5).prop_map(|n| Pattern::SyncCounter { n }),
        (1i64..4).prop_map(|n| Pattern::ScratchVector { n }),
        (1i64..5, 1i64..4).prop_map(|(n, escape_every)| Pattern::MixedEscape { n, escape_every }),
        (1i64..4, 2i64..5).prop_map(|(n, pool)| Pattern::EscapeHeavy { n, pool }),
        (1i64..4).prop_map(|n| Pattern::PolyDispatch { n }),
        (1i64..6).prop_map(|n| Pattern::Ballast { n }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

    #[test]
    fn generated_workloads_equivalent_across_modes(
        parts in prop::collection::vec(pattern(), 1..4),
    ) {
        let spec = WorkloadSpec {
            name: "generated",
            suite: Suite::DaCapo,
            significant: false,
            parts,
        };
        let workload = Workload::from_spec(&spec);
        assert_equivalent(&workload, 80, 2);
    }
}
