//! Multi-threaded mutator determinism: N mutators on one shared VM must
//! each behave **byte-identically** to a solo VM running the same call
//! sequence — per-iteration results, the full `Stats` struct, and the
//! normalized trace stream — while the shared layers (published-code
//! store, metrics hub, profiler hub) reconcile as the sum over threads.
//!
//! The published-code store is read-mostly: the hot lookup is one atomic
//! generation load against a thread-private view, so `read_blocked` must
//! stay zero under any schedule (pinned here on every run).

use pea_bytecode::asm::parse_program;
use pea_metrics::MetricsHub;
use pea_runtime::{Stats, Value};
use pea_trace::{MemorySink, SharedSink, TraceEvent};
use pea_vm::{ExecMode, JitMode, Mutator, OptLevel, ProfilerHub, Vm, VmOptions};
use pea_workloads::{all_workloads, Pattern, Suite, Workload, WorkloadSpec};
use proptest::prelude::*;

fn strict_options(exec_mode: ExecMode) -> VmOptions {
    VmOptions {
        exec_mode,
        checked: true,
        metrics: MetricsHub::enabled(),
        ..VmOptions::with_opt_level(OptLevel::Pea)
    }
}

/// What one mutator observed over a run: per-iteration results, the
/// final statistics, and the normalized trace stream.
#[derive(Debug, PartialEq)]
struct Observed {
    results: Vec<Option<Value>>,
    stats: Stats,
    trace: Vec<TraceEvent>,
}

/// Drives `iters` `iterate(i)` calls on one mutator with a fresh memory
/// trace sink attached, capturing everything the determinism contract
/// compares.
fn observe(m: &mut Mutator, name: &str, iters: i64) -> Observed {
    let (sink, events) = SharedSink::new(MemorySink::new());
    m.set_trace(sink);
    let results = (0..iters)
        .map(|i| {
            m.call_entry("iterate", &[Value::Int(i)])
                .unwrap_or_else(|e| panic!("{name} iteration {i}: {e}"))
        })
        .collect();
    let trace = events
        .lock()
        .expect("trace sink poisoned")
        .events
        .iter()
        .map(TraceEvent::normalized)
        .collect();
    Observed {
        results,
        stats: m.stats(),
        trace,
    }
}

/// The solo oracle: a fresh single-mutator VM running the same call
/// sequence under the same options (its own metrics hub, discarded).
fn solo_oracle(workload: &Workload, iters: i64, exec_mode: ExecMode) -> Observed {
    let mut vm = Vm::new(workload.program.clone(), strict_options(exec_mode));
    observe(&mut vm, &workload.name, iters)
}

/// Metrics counters that replay deterministically per mutator, so the
/// threaded hub total must be exactly `threads ×` the solo total.
const REPLAYED_COUNTERS: &[&str] = &[
    "heap.allocs",
    "vm.installs",
    "pea.virtualized",
    "pea.materialized",
    "pea.locks_elided",
];

/// The core contract: `threads` mutators running `workload` concurrently
/// each match the solo oracle byte-for-byte, and shared-layer totals
/// reconcile as sums over threads.
fn assert_threads_match_solo(workload: &Workload, iters: i64, threads: usize, exec_mode: ExecMode) {
    let solo = solo_oracle(workload, iters, exec_mode);

    let vm = Vm::new(workload.program.clone(), strict_options(exec_mode));
    let observed = vm.run_threads(threads, |_, m| observe(m, &workload.name, iters));

    for (t, o) in observed.iter().enumerate() {
        assert_eq!(
            o.results, solo.results,
            "{} thread {t}: per-iteration results diverged from solo run",
            workload.name
        );
        assert_eq!(
            o.stats, solo.stats,
            "{} thread {t}: statistics diverged from solo run",
            workload.name
        );
        assert_eq!(
            o.trace, solo.trace,
            "{} thread {t}: normalized trace diverged from solo run",
            workload.name
        );
    }

    // Shared-hub reconciliation: replayed counters sum over threads. The
    // main mutator ran nothing, so the threaded total is threads × solo.
    let solo_vm = Vm::new(workload.program.clone(), strict_options(exec_mode));
    let mut solo_main = solo_vm.spawn_mutator(); // buffered recorder, like the threads
    observe(&mut solo_main, &workload.name, iters);
    drop(solo_main); // flush buffered heap counters into the hub
    let solo_counters = solo_vm.metrics().snapshot().expect("metrics enabled");
    let threaded = vm.metrics().snapshot().expect("metrics enabled");
    for name in REPLAYED_COUNTERS {
        assert_eq!(
            threaded.counter(name),
            threads as u64 * solo_counters.counter(name),
            "{}: hub counter {name} is not {threads}× the solo total",
            workload.name
        );
    }

    // The lock-free read contract: no mutator ever blocked on the
    // published-code store's lock during lookup.
    let cache = vm.code_cache_stats();
    assert_eq!(
        cache.read_blocked, 0,
        "{}: a compiled-call lookup blocked on the store lock",
        workload.name
    );
    assert!(
        cache.read_fast > 0,
        "{}: expected generation-check fast-path reads",
        workload.name
    );
}

fn corpus(name: &str) -> Workload {
    all_workloads()
        .into_iter()
        .find(|w| w.name == name)
        .unwrap_or_else(|| panic!("no workload named {name}"))
}

#[test]
fn threads_match_solo_linear_tier() {
    for name in ["fop", "SPECjbb2005"] {
        assert_threads_match_solo(&corpus(name), 100, 3, ExecMode::Linear);
    }
}

#[test]
fn threads_match_solo_graph_tier() {
    assert_threads_match_solo(&corpus("luindex"), 100, 3, ExecMode::Graph);
}

/// Background mode: per-iteration results still match the solo oracle
/// exactly (each mutator tiers against its own profile timeline, same as
/// a solo background VM), and installs flow through the shared store.
#[test]
fn background_threads_match_solo_results() {
    let workload = corpus("fop");
    let options = || VmOptions {
        jit_mode: JitMode::Background,
        compile_workers: Some(2),
        checked: true,
        ..VmOptions::with_opt_level(OptLevel::Pea)
    };

    let mut solo = Vm::new(workload.program.clone(), options());
    let solo_results: Vec<_> = (0..150)
        .map(|i| solo.call_entry("iterate", &[Value::Int(i)]).unwrap())
        .collect();
    solo.await_background_compiles();

    let vm = Vm::new(workload.program.clone(), options());
    let threaded = vm.run_threads(3, |t, m| {
        let results: Vec<_> = (0..150)
            .map(|i| {
                m.call_entry("iterate", &[Value::Int(i)])
                    .unwrap_or_else(|e| panic!("thread {t} iteration {i}: {e}"))
            })
            .collect();
        let installed = m.await_background_compiles();
        (results, installed)
    });
    for (t, (results, installed)) in threaded.iter().enumerate() {
        assert_eq!(
            results, &solo_results,
            "thread {t} diverged from the solo background run"
        );
        assert!(
            *installed > 0,
            "thread {t} installed no background artifacts"
        );
    }
    assert!(vm.code_cache_stats().installs > 0);
    assert_eq!(vm.code_cache_stats().read_blocked, 0);
}

/// The guard-failure workload of the profiler tests: compiled code
/// speculates the rare branch away; large arguments deopt it, and enough
/// deopts evict the method for re-profiling.
const DEOPT_SRC: &str = "
    class Box { field v int }
    static g ref
    method f 1 returns {
        new Box store 1
        load 1 load 0 putfield Box.v
        load 0 const 100 ifcmp gt Lrare
        load 1 getfield Box.v const 1 add retv
    Lrare:
        load 1 putstatic g
        load 1 getfield Box.v const 1000 add retv
    }";

fn deopt_program() -> pea_bytecode::Program {
    let program = parse_program(DEOPT_SRC).unwrap();
    pea_bytecode::verify_program(&program).unwrap();
    program
}

/// One mutator's install → deopt → evict → recompile lifecycle: warm up
/// on the speculated fast path, hammer the rare branch until eviction,
/// then re-warm on a mixed distribution so the method recompiles without
/// the failed speculation.
fn churn(m: &mut Mutator, label: &str) -> (Vec<Option<Value>>, Stats) {
    let mut results = Vec::new();
    let mut call = |m: &mut Mutator, arg: i64| {
        results.push(
            m.call_entry("f", &[Value::Int(arg)])
                .unwrap_or_else(|e| panic!("{label} f({arg}): {e}")),
        );
    };
    for i in 0..80 {
        call(m, i % 50);
    }
    for i in 0..20 {
        call(m, 500 + i);
    }
    for i in 0..120 {
        call(m, if i % 3 == 0 { 500 } else { i % 50 });
    }
    (results, m.stats())
}

/// Concurrent install/evict/recompile stress under `--checked`: every
/// thread's results and statistics are byte-identical to a solo run, the
/// store retires superseded variants, and — once every surviving mutator
/// has passed a safepoint — reclaims them completely.
#[test]
fn concurrent_eviction_churn_matches_solo_and_reclaims() {
    let options = || VmOptions {
        compile_threshold: 20,
        max_deopts: 5,
        checked: true,
        ..VmOptions::with_opt_level(OptLevel::Pea)
    };

    let mut solo = Vm::new(deopt_program(), options());
    let solo_run = churn(&mut solo, "solo");
    assert!(solo.stats().deopts > 0, "workload must deopt");
    assert!(
        solo.stats().compiles >= 2,
        "workload must evict and recompile (compiles: {})",
        solo.stats().compiles
    );

    let vm = Vm::new(deopt_program(), options());
    let runs = vm.run_threads(4, |t, m| churn(m, &format!("thread {t}")));
    for (t, run) in runs.iter().enumerate() {
        assert_eq!(run, &solo_run, "thread {t} diverged from the solo run");
    }

    let stats = vm.code_cache_stats();
    assert!(stats.evictions > 0, "store saw no evictions");
    assert_eq!(stats.read_blocked, 0);

    // The worker mutators retired their safepoint slots on drop; one call
    // on the main mutator passes its own safepoint and reclaims whatever
    // the evictions retired.
    let mut vm = vm;
    vm.call_entry("f", &[Value::Int(1)]).unwrap();
    let stats = vm.code_cache_stats();
    assert_eq!(
        stats.retired, 0,
        "retired variants not reclaimed after rendezvous (reclaimed: {})",
        stats.reclaimed
    );
    assert!(stats.reclaimed > 0, "nothing was ever reclaimed");
}

/// Two mutators running *different* methods concurrently: the profiler
/// hub must attribute each method's cycles to the thread that ran it —
/// per-method totals equal the respective solo totals, never a mixture.
#[test]
fn concurrent_mutators_never_cross_charge_the_profiler() {
    const SRC: &str = "
        class A { field v int }
        method fa 1 returns {
            new A store 1
            load 1 load 0 putfield A.v
            load 1 getfield A.v const 2 mul retv
        }
        method fb 1 returns {
            load 0 const 3 mul const 1 add retv
        }";
    let program = || {
        let p = parse_program(SRC).unwrap();
        pea_bytecode::verify_program(&p).unwrap();
        p
    };
    let options = |hub: &ProfilerHub| VmOptions {
        profiler: hub.clone(),
        ..VmOptions::with_opt_level(OptLevel::Pea)
    };
    let drive = |m: &mut Mutator, method: &str| {
        for i in 0..200 {
            m.call_entry(method, &[Value::Int(i)]).unwrap();
        }
    };

    // Solo baselines, one hub per method.
    let method_total = |hub: &ProfilerHub, method: &str| {
        hub.snapshot()
            .unwrap()
            .rows
            .iter()
            .filter(|r| r.method == method)
            .map(|r| r.cycles)
            .sum::<u64>()
    };
    let hub_a = ProfilerHub::enabled();
    drive(&mut Vm::new(program(), options(&hub_a)), "fa");
    let solo_a = method_total(&hub_a, "fa");
    let hub_b = ProfilerHub::enabled();
    drive(&mut Vm::new(program(), options(&hub_b)), "fb");
    let solo_b = method_total(&hub_b, "fb");
    assert!(solo_a > 0 && solo_b > 0);

    // Concurrent run on one shared hub: thread 0 runs only fa, thread 1
    // only fb. Any cross-charge would inflate one total and deflate the
    // other; per-mutator recorder contexts keep both exact.
    let hub = ProfilerHub::enabled();
    let vm = Vm::new(program(), options(&hub));
    vm.run_threads(2, |t, m| drive(m, if t == 0 { "fa" } else { "fb" }));
    assert_eq!(
        method_total(&hub, "fa"),
        solo_a,
        "fa cycles cross-charged between threads"
    );
    assert_eq!(
        method_total(&hub, "fb"),
        solo_b,
        "fb cycles cross-charged between threads"
    );
}

fn pattern() -> impl Strategy<Value = Pattern> {
    prop_oneof![
        (1i64..5).prop_map(|n| Pattern::BoxingArith { n }),
        (1i64..5).prop_map(|n| Pattern::TupleReturn { n }),
        (1i64..5).prop_map(|n| Pattern::SyncCounter { n }),
        (1i64..4).prop_map(|n| Pattern::ScratchVector { n }),
        (1i64..5, 1i64..4).prop_map(|(n, escape_every)| Pattern::MixedEscape { n, escape_every }),
        (1i64..4, 2i64..5).prop_map(|(n, pool)| Pattern::EscapeHeavy { n, pool }),
        (1i64..4).prop_map(|n| Pattern::PolyDispatch { n }),
        (1i64..6).prop_map(|n| Pattern::Ballast { n }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 8, ..ProptestConfig::default() })]

    /// Fuzzed workloads stay byte-identical to the solo oracle with two
    /// concurrent mutators on the default (linear) tier.
    #[test]
    fn generated_workloads_deterministic_across_threads(
        parts in prop::collection::vec(pattern(), 1..4),
    ) {
        let spec = WorkloadSpec {
            name: "generated",
            suite: Suite::DaCapo,
            significant: false,
            parts,
        };
        let workload = Workload::from_spec(&spec);
        assert_threads_match_solo(&workload, 60, 2, ExecMode::Linear);
    }
}
