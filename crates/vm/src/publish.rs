//! Safepoint-published shared code cache and mutator rendezvous.
//!
//! With N mutator threads on one VM, compiled artifacts live in two
//! places: a **mutator-local pinned map** (the dispatch hot path — a plain
//! `HashMap` owned by the thread, zero shared accesses per call) and this
//! **shared [`CodeCache`]**, the publication layer mutators consult when a
//! method crosses the compile threshold. The shared cache is read-mostly
//! and its read path acquires no lock:
//!
//! * every mutator holds a [`CacheView`] — a generation number plus an
//!   `Arc` replica of the published map. A lookup loads the cache's
//!   generation with one `Acquire` load; when it matches the view, the
//!   lookup is answered entirely from the replica (`read_fast`).
//! * when the generation moved, the reader *tries* to refresh its replica
//!   with `try_lock` (`read_refresh`). If a writer holds the lock at that
//!   instant the reader keeps its stale replica and proceeds
//!   (`read_stale`) — publication at safepoints is best-effort by design,
//!   so the read path **never blocks**. The `read_blocked` counter exists
//!   to pin that invariant: it is structurally zero and asserted by tests.
//!
//! Writers (install/evict) take the single inner mutex, clone-on-write
//! the map, and advance the generation. Evicted entries are not dropped
//! immediately — a reader may still answer lookups from a stale replica —
//! but **retired** at the new generation and reclaimed only after every
//! registered mutator has polled a safepoint past that generation (the
//! [`SafepointRegistry`] rendezvous). Everything is `Arc`-based and safe:
//! the rendezvous bounds the retire bin, it is not a memory-safety
//! requirement.

use pea_bytecode::MethodId;
use pea_compiler::{Bailout, CompiledMethod};
use pea_trace::TraceEvent;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// Published variants kept per method; beyond this the oldest is retired.
/// Variants exist because mutators promote the same method from different
/// profile snapshots (different fingerprints).
pub const MAX_VARIANTS: usize = 4;

/// One published compilation: the artifact (or bailout) plus everything a
/// consumer needs to behave byte-identically to having compiled it
/// itself — the buffered decision events (replayed into the consumer's
/// trace sink and metrics fold) and any sanitizer findings (replayed as
/// the same panic).
#[derive(Debug)]
pub struct CachedCompile {
    /// The compiled artifact, or the bailout that keeps it interpreted.
    pub result: Result<Arc<CompiledMethod>, Bailout>,
    /// Hash of the profile-store snapshot the compilation consumed; equal
    /// fingerprints mean equal inputs mean an identical artifact.
    pub fingerprint: u64,
    /// Whether `events` was captured (the publisher compiled through a
    /// buffer). Consumers that need events for trace/metrics/sanitizer
    /// replay skip untraced entries and compile themselves.
    pub traced: bool,
    /// The compilation's decision-event stream, for consumer replay.
    pub events: Vec<TraceEvent>,
    /// Sanitizer findings (checked mode), replayed as a panic on reuse.
    pub findings: Vec<String>,
}

type CodeMap = HashMap<MethodId, Vec<Arc<CachedCompile>>>;

#[derive(Default)]
struct CacheInner {
    map: Arc<CodeMap>,
    /// Entries removed from `map` at some generation, awaiting the
    /// rendezvous: `(retire_generation, entry)`.
    retired: Vec<(u64, Arc<CachedCompile>)>,
}

/// A mutator's replica of the published map. Refreshed opportunistically
/// at safepoints and lookups; never a source of blocking.
pub struct CacheView {
    generation: u64,
    map: Arc<CodeMap>,
}

impl CacheView {
    /// The generation this replica reflects.
    pub fn generation(&self) -> u64 {
        self.generation
    }
}

/// Counter snapshot of the shared cache (see [`CodeCache::stats`]).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Current publication generation.
    pub generation: u64,
    /// Reader fast paths: generation matched, replica answered.
    pub read_fast: u64,
    /// Reader refreshes: generation moved, `try_lock` succeeded.
    pub read_refresh: u64,
    /// Reader stale reads: generation moved, a writer held the lock, the
    /// reader kept its replica. (Contention visible, but non-blocking.)
    pub read_stale: u64,
    /// Reader blocking lock acquisitions. **Structurally zero** — there is
    /// no code path that can increment it; tests assert it stays zero.
    pub read_blocked: u64,
    /// Entries published.
    pub installs: u64,
    /// Methods evicted.
    pub evictions: u64,
    /// Retired entries reclaimed after the safepoint rendezvous.
    pub reclaimed: u64,
    /// Retired entries currently awaiting the rendezvous.
    pub retired: usize,
    /// Published `(method, variant)` entries currently live.
    pub entries: usize,
}

/// The shared, read-mostly compiled-code store. See the module docs.
#[derive(Default)]
pub struct CodeCache {
    generation: AtomicU64,
    /// Mirror of `inner.retired.len()`, so the common no-retirees case
    /// skips the lock in [`Self::maybe_reclaim`].
    retired_len: AtomicUsize,
    inner: Mutex<CacheInner>,
    read_fast: AtomicU64,
    read_refresh: AtomicU64,
    read_stale: AtomicU64,
    read_blocked: AtomicU64,
    installs: AtomicU64,
    evictions: AtomicU64,
    reclaimed: AtomicU64,
}

impl CodeCache {
    /// An empty cache at generation 0.
    pub fn new() -> CodeCache {
        CodeCache::default()
    }

    /// Current publication generation.
    pub fn generation(&self) -> u64 {
        self.generation.load(Ordering::Acquire)
    }

    /// A fresh replica of the published map at the current generation.
    pub fn view(&self) -> CacheView {
        let inner = self.inner.lock().expect("code cache poisoned");
        CacheView {
            generation: self.generation.load(Ordering::Acquire),
            map: Arc::clone(&inner.map),
        }
    }

    /// Opportunistically brings `view` up to the current generation. Uses
    /// `try_lock` only: under writer contention the view stays stale and
    /// the caller proceeds — this path cannot block. Returns whether the
    /// view is now current.
    pub fn refresh(&self, view: &mut CacheView) -> bool {
        if self.generation.load(Ordering::Acquire) == view.generation {
            return true;
        }
        match self.inner.try_lock() {
            Ok(inner) => {
                // Generation only moves under the inner lock, so reading
                // it while holding the lock is exact.
                view.map = Arc::clone(&inner.map);
                view.generation = self.generation.load(Ordering::Acquire);
                true
            }
            Err(_) => false,
        }
    }

    /// Looks `method` up through `view`, refreshing the replica first when
    /// the generation moved (non-blocking; see [`Self::refresh`]). Returns
    /// the variant whose fingerprint matches, requiring a traced entry
    /// when `needs_events` (the consumer replays events into its own
    /// trace/metrics/sanitizer).
    pub fn lookup(
        &self,
        view: &mut CacheView,
        method: MethodId,
        fingerprint: u64,
        needs_events: bool,
    ) -> Option<Arc<CachedCompile>> {
        if self.generation.load(Ordering::Acquire) == view.generation {
            self.read_fast.fetch_add(1, Ordering::Relaxed);
        } else if self.refresh(view) {
            self.read_refresh.fetch_add(1, Ordering::Relaxed);
        } else {
            self.read_stale.fetch_add(1, Ordering::Relaxed);
        }
        view.map
            .get(&method)?
            .iter()
            .find(|c| c.fingerprint == fingerprint && (c.traced || !needs_events))
            .cloned()
    }

    /// Publishes one compilation. On a `(method, fingerprint)` collision
    /// the incumbent wins (both are identical by construction, and keeping
    /// the incumbent makes concurrent duplicate publishes idempotent).
    /// When a method exceeds [`MAX_VARIANTS`], the oldest variant is
    /// retired at the new generation.
    pub fn publish(&self, method: MethodId, entry: CachedCompile) {
        let mut inner = self.inner.lock().expect("code cache poisoned");
        let fingerprint = entry.fingerprint;
        if inner
            .map
            .get(&method)
            .is_some_and(|vs| vs.iter().any(|c| c.fingerprint == fingerprint))
        {
            return;
        }
        let next_gen = self.generation.load(Ordering::Acquire) + 1;
        // Clone-on-write: readers hold replicas of the old map.
        let map = Arc::make_mut(&mut inner.map);
        let variants = map.entry(method).or_default();
        variants.push(Arc::new(entry));
        let overflow = if variants.len() > MAX_VARIANTS {
            Some(variants.remove(0))
        } else {
            None
        };
        if let Some(old) = overflow {
            inner.retired.push((next_gen, old));
            self.retired_len
                .store(inner.retired.len(), Ordering::Release);
        }
        self.installs.fetch_add(1, Ordering::Relaxed);
        self.generation.store(next_gen, Ordering::Release);
    }

    /// Evicts every published variant of `method`, retiring them at the
    /// new generation (reclaimed after the safepoint rendezvous — see
    /// [`Self::maybe_reclaim`]). No-op when the method is not published.
    pub fn evict(&self, method: MethodId) {
        let mut inner = self.inner.lock().expect("code cache poisoned");
        if !inner.map.contains_key(&method) {
            return;
        }
        let next_gen = self.generation.load(Ordering::Acquire) + 1;
        let map = Arc::make_mut(&mut inner.map);
        let variants = map.remove(&method).unwrap_or_default();
        for v in variants {
            inner.retired.push((next_gen, v));
        }
        self.retired_len
            .store(inner.retired.len(), Ordering::Release);
        self.evictions.fetch_add(1, Ordering::Relaxed);
        self.generation.store(next_gen, Ordering::Release);
    }

    /// Drops retired entries whose retire generation every registered
    /// mutator has polled past. The common no-retirees case is one relaxed
    /// load; eviction epochs therefore advance (storage-wise) only after
    /// the full rendezvous, which is the protocol the starvation test
    /// exercises.
    pub fn maybe_reclaim(&self, registry: &SafepointRegistry) {
        if self.retired_len.load(Ordering::Acquire) == 0 {
            return;
        }
        // Registry lock is taken and released before the inner lock: the
        // two are never held together.
        let min_seen = registry.min_seen();
        let mut inner = self.inner.lock().expect("code cache poisoned");
        let before = inner.retired.len();
        inner.retired.retain(|(gen, _)| *gen > min_seen);
        let freed = before - inner.retired.len();
        if freed > 0 {
            self.reclaimed.fetch_add(freed as u64, Ordering::Relaxed);
            self.retired_len
                .store(inner.retired.len(), Ordering::Release);
        }
    }

    /// Retired entries currently awaiting the rendezvous.
    pub fn retired_len(&self) -> usize {
        self.retired_len.load(Ordering::Acquire)
    }

    /// Counter snapshot.
    pub fn stats(&self) -> CacheStats {
        let inner = self.inner.lock().expect("code cache poisoned");
        CacheStats {
            generation: self.generation.load(Ordering::Acquire),
            read_fast: self.read_fast.load(Ordering::Relaxed),
            read_refresh: self.read_refresh.load(Ordering::Relaxed),
            read_stale: self.read_stale.load(Ordering::Relaxed),
            read_blocked: self.read_blocked.load(Ordering::Relaxed),
            installs: self.installs.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            reclaimed: self.reclaimed.load(Ordering::Relaxed),
            retired: inner.retired.len(),
            entries: inner.map.values().map(Vec::len).sum(),
        }
    }
}

/// One mutator's presence in the rendezvous protocol.
#[derive(Debug)]
pub struct MutatorSlot {
    /// Latest generation this mutator has polled a safepoint at.
    seen: AtomicU64,
    /// False once the mutator is dropped; inactive slots are pruned.
    active: AtomicBool,
    /// True while the mutator is outside any VM call (idle). Parked
    /// mutators are excluded from `min_seen` so an idle thread cannot
    /// stall reclamation; they re-poll before touching the cache again.
    parked: AtomicBool,
}

impl MutatorSlot {
    /// Records that this mutator polled a safepoint at `generation`.
    pub fn poll(&self, generation: u64) {
        self.seen.store(generation, Ordering::Release);
    }

    /// Latest polled generation.
    pub fn seen(&self) -> u64 {
        self.seen.load(Ordering::Acquire)
    }

    /// Marks the mutator idle (outside any VM call).
    pub fn park(&self) {
        self.parked.store(true, Ordering::Release);
    }

    /// Marks the mutator running again.
    pub fn unpark(&self) {
        self.parked.store(false, Ordering::Release);
    }

    /// Permanently removes the mutator from the rendezvous.
    pub fn retire(&self) {
        self.active.store(false, Ordering::Release);
    }
}

/// Registry of every live mutator's [`MutatorSlot`].
#[derive(Default)]
pub struct SafepointRegistry {
    slots: Mutex<Vec<Arc<MutatorSlot>>>,
}

impl SafepointRegistry {
    /// An empty registry.
    pub fn new() -> SafepointRegistry {
        SafepointRegistry::default()
    }

    /// Registers a new mutator, whose slot starts at `generation` (the
    /// cache generation its initial view reflects) and parked (it has not
    /// entered a call yet).
    pub fn register(&self, generation: u64) -> Arc<MutatorSlot> {
        let slot = Arc::new(MutatorSlot {
            seen: AtomicU64::new(generation),
            active: AtomicBool::new(true),
            parked: AtomicBool::new(true),
        });
        self.slots
            .lock()
            .expect("safepoint registry poisoned")
            .push(Arc::clone(&slot));
        slot
    }

    /// Number of registered (live) mutators.
    pub fn len(&self) -> usize {
        let mut slots = self.slots.lock().expect("safepoint registry poisoned");
        slots.retain(|s| s.active.load(Ordering::Acquire));
        slots.len()
    }

    /// Whether no mutator is registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The minimum safepoint generation over every active, running
    /// mutator — the rendezvous frontier. Parked and retired mutators are
    /// excluded; with none eligible everything retired is reclaimable.
    pub fn min_seen(&self) -> u64 {
        let mut slots = self.slots.lock().expect("safepoint registry poisoned");
        slots.retain(|s| s.active.load(Ordering::Acquire));
        slots
            .iter()
            .filter(|s| !s.parked.load(Ordering::Acquire))
            .map(|s| s.seen.load(Ordering::Acquire))
            .min()
            .unwrap_or(u64::MAX)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pea_bytecode::asm::parse_program;
    use pea_compiler::{compile, CompilerOptions};

    fn artifact() -> Arc<CompiledMethod> {
        let program = parse_program("method f 1 returns { load 0 const 1 add retv }").unwrap();
        let code = compile(
            &program,
            MethodId::from_index(0),
            None,
            &CompilerOptions::default(),
        )
        .unwrap();
        Arc::new(code)
    }

    fn entry(fingerprint: u64, code: &Arc<CompiledMethod>) -> CachedCompile {
        CachedCompile {
            result: Ok(Arc::clone(code)),
            fingerprint,
            traced: false,
            events: Vec::new(),
            findings: Vec::new(),
        }
    }

    #[test]
    fn publish_lookup_round_trip_and_fingerprint_miss() {
        let cache = CodeCache::new();
        let mut view = cache.view();
        let m = MethodId::from_index(0);
        let code = artifact();
        cache.publish(m, entry(7, &code));
        assert!(cache.lookup(&mut view, m, 7, false).is_some());
        assert!(cache.lookup(&mut view, m, 8, false).is_none());
        // Untraced entries are invisible to consumers that need events.
        assert!(cache.lookup(&mut view, m, 7, true).is_none());
        let s = cache.stats();
        assert_eq!(s.installs, 1);
        assert_eq!(s.entries, 1);
        assert_eq!(s.read_blocked, 0);
    }

    #[test]
    fn duplicate_fingerprint_keeps_incumbent_and_generation() {
        let cache = CodeCache::new();
        let m = MethodId::from_index(0);
        let code = artifact();
        cache.publish(m, entry(7, &code));
        let gen = cache.generation();
        cache.publish(m, entry(7, &code));
        assert_eq!(cache.generation(), gen, "idempotent republish");
        assert_eq!(cache.stats().entries, 1);
    }

    #[test]
    fn variant_overflow_retires_the_oldest() {
        let cache = CodeCache::new();
        let m = MethodId::from_index(0);
        let code = artifact();
        for fp in 0..(MAX_VARIANTS as u64 + 1) {
            cache.publish(m, entry(fp, &code));
        }
        let mut view = cache.view();
        assert!(cache.lookup(&mut view, m, 0, false).is_none(), "oldest out");
        assert!(cache.lookup(&mut view, m, 1, false).is_some());
        assert_eq!(cache.stats().entries, MAX_VARIANTS);
        assert_eq!(cache.retired_len(), 1);
    }

    #[test]
    fn eviction_retires_until_every_mutator_polls_past_it() {
        let cache = CodeCache::new();
        let registry = SafepointRegistry::new();
        let m = MethodId::from_index(0);
        let code = artifact();
        cache.publish(m, entry(7, &code));
        let a = registry.register(cache.generation());
        let b = registry.register(cache.generation());
        a.unpark();
        b.unpark();
        cache.evict(m);
        assert_eq!(cache.retired_len(), 1);
        a.poll(cache.generation());
        cache.maybe_reclaim(&registry);
        assert_eq!(cache.retired_len(), 1, "b has not polled past the evict");
        b.poll(cache.generation());
        cache.maybe_reclaim(&registry);
        assert_eq!(cache.retired_len(), 0, "rendezvous complete");
        assert_eq!(cache.stats().reclaimed, 1);
    }

    #[test]
    fn parked_and_retired_mutators_do_not_stall_reclamation() {
        let cache = CodeCache::new();
        let registry = SafepointRegistry::new();
        let m = MethodId::from_index(0);
        let code = artifact();
        cache.publish(m, entry(7, &code));
        let runner = registry.register(cache.generation());
        let idle = registry.register(cache.generation());
        let dead = registry.register(cache.generation());
        runner.unpark();
        idle.unpark();
        dead.unpark();
        cache.evict(m);
        idle.park();
        dead.retire();
        runner.poll(cache.generation());
        cache.maybe_reclaim(&registry);
        assert_eq!(cache.retired_len(), 0);
        assert_eq!(registry.len(), 2, "retired slot pruned");
    }

    #[test]
    fn concurrent_readers_never_block_while_writers_churn() {
        let cache = Arc::new(CodeCache::new());
        let code = artifact();
        let m = MethodId::from_index(0);
        cache.publish(m, entry(0, &code));
        let stop = Arc::new(AtomicBool::new(false));
        std::thread::scope(|scope| {
            for _ in 0..3 {
                let cache = Arc::clone(&cache);
                let stop = Arc::clone(&stop);
                let code = Arc::clone(&code);
                scope.spawn(move || {
                    let mut view = cache.view();
                    let mut hits = 0u64;
                    while !stop.load(Ordering::Relaxed) {
                        // Fingerprint 0 is evicted and republished by the
                        // writer; a hit must always carry fingerprint 0.
                        if let Some(hit) = cache.lookup(&mut view, m, 0, false) {
                            assert_eq!(hit.fingerprint, 0);
                            assert!(Arc::ptr_eq(hit.result.as_ref().unwrap(), &code));
                            hits += 1;
                        }
                    }
                    assert!(hits > 0, "readers made progress");
                });
            }
            let writer_cache = Arc::clone(&cache);
            let writer_stop = Arc::clone(&stop);
            scope.spawn(move || {
                for _ in 0..2_000 {
                    writer_cache.evict(m);
                    writer_cache.publish(m, entry(0, &code));
                }
                writer_stop.store(true, Ordering::Relaxed);
            });
        });
        let s = cache.stats();
        assert_eq!(s.read_blocked, 0, "the read path never blocks");
        assert!(s.read_fast > 0, "generation-match fast path exercised");
        assert_eq!(s.evictions, 2_000);
    }
}
