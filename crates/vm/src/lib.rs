//! The tiered virtual machine: profiling interpreter → JIT compilation →
//! compiled execution → deoptimization back to the interpreter.
//!
//! This mirrors the HotSpot+Graal execution model of the paper's §2
//! (Figure 1): methods start in the interpreter, which gathers invocation
//! counts, branch profiles and receiver types; hot methods are compiled
//! (speculatively, guided by those profiles); compiled code that violates
//! a speculation **deoptimizes** — the VM rebuilds interpreter frames from
//! the compiled frame state (rematerializing scalar-replaced objects,
//! §5.5) and resumes interpretation. Methods that deoptimize repeatedly
//! are evicted, re-profiled and recompiled.
//!
//! ```
//! use pea_vm::{Vm, VmOptions, OptLevel};
//! use pea_bytecode::asm::parse_program;
//! use pea_runtime::Value;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let program = parse_program("method f 1 returns { load 0 const 1 add retv }")?;
//! let mut vm = Vm::new(program, VmOptions::with_opt_level(OptLevel::Pea));
//! assert_eq!(vm.call_entry("f", &[Value::Int(41)])?, Some(Value::Int(42)));
//! # Ok(())
//! # }
//! ```

pub mod compile_service;

pub use compile_service::{default_workers, CompileService, CompileServiceOptions};
use pea_analysis::ProgramSummaries;
use pea_bytecode::{MethodId, Program};
use pea_compiler::DeoptFrame;
pub use pea_compiler::OptLevel;
use pea_compiler::{
    compile, compile_traced, evaluate, Bailout, CompiledMethod, CompilerOptions, EvalEnv,
    EvalOutcome,
};
use pea_interp::{interpret, resume, unwind, Frame, InterpEnv};
pub use pea_metrics::profile::{ProfileRecorder, ProfilerHub, Tier};
pub use pea_metrics::MetricsHub;
use pea_metrics::{HeapRecorder, MetricsSnapshot, VmMetrics};
use pea_runtime::profile::ProfileStore;
use pea_runtime::{Heap, HeapObject, ObjRef, Statics, Stats, Value, VmError};
pub use pea_trace::SharedSink;
use pea_trace::{FlightEntry, FlightRecorder, TraceEvent, TraceSink};
use std::collections::{HashMap, HashSet};
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// How JIT compilation is scheduled.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum JitMode {
    /// Compile synchronously at the call site that crosses the threshold
    /// (the default: virtual-cycle measurements and decision traces stay
    /// deterministic).
    #[default]
    Sync,
    /// Hand hot methods to the background [`CompileService`]; the
    /// interpreter keeps running and finished code is installed at the
    /// next safepoint (method entry or interpreter loop back-edge).
    Background,
}

impl std::str::FromStr for JitMode {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "sync" => Ok(JitMode::Sync),
            "background" => Ok(JitMode::Background),
            other => Err(format!("unknown jit mode `{other}` (sync|background)")),
        }
    }
}

/// Which tier executes compiled methods.
///
/// Both tiers run the same compiled artifact with the same cycle cost
/// model, the same traces and the same deopt behavior; they differ only
/// in wall-clock speed. The graph walker survives as a differential
/// oracle for the linear tier.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum ExecMode {
    /// Dense register-machine dispatch over the lowered artifact (the
    /// default fast tier). Methods whose lowering bailed out fall back
    /// to graph walking.
    #[default]
    Linear,
    /// Graph-walking evaluation of the scheduled IR.
    Graph,
}

impl std::str::FromStr for ExecMode {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "linear" => Ok(ExecMode::Linear),
            "graph" => Ok(ExecMode::Graph),
            other => Err(format!("unknown exec mode `{other}` (linear|graph)")),
        }
    }
}

/// VM configuration.
#[derive(Clone, Debug)]
pub struct VmOptions {
    /// Invocations before a method is JIT-compiled.
    pub compile_threshold: u64,
    /// Compiler configuration (escape-analysis level, inlining,
    /// speculation, PEA ablations).
    pub compiler: CompilerOptions,
    /// Optional total cycle budget.
    pub fuel: Option<u64>,
    /// Deoptimizations tolerated before a method is evicted and
    /// re-profiled.
    pub max_deopts: u64,
    /// Master switch for JIT compilation (off = pure interpreter).
    pub jit: bool,
    /// Synchronous or background compilation.
    pub jit_mode: JitMode,
    /// Which tier executes compiled methods (linear register machine by
    /// default; graph walking as the differential oracle).
    pub exec_mode: ExecMode,
    /// Background compile worker threads; `None` picks
    /// [`default_workers`] (hardware threads minus one).
    pub compile_workers: Option<usize>,
    /// Bound on the background compile queue; requests beyond it are
    /// deferred to a later hotness check.
    pub compile_queue_capacity: usize,
    /// Optional event log: compiles (with every PEA decision), deopts
    /// (with rematerialization inventories), evictions and recompiles all
    /// flow into this sink. `None` (the default) is zero-cost.
    pub trace: Option<SharedSink>,
    /// Cross-check every compilation's PEA decisions against the static
    /// escape pre-analysis (see `pea-analysis`): virtualized/lock-elided
    /// sites must be consistent with the flow-insensitive verdicts and the
    /// compiled frame states must carry closed rematerialization info.
    /// Any inconsistency panics loudly — this is a debugging/CI mode, not
    /// a production setting.
    pub checked: bool,
    /// Metrics handle shared by every layer (interpreter, tiering,
    /// compile service, PEA, heap). The default disabled hub records
    /// nothing at the cost of one branch per site.
    pub metrics: MetricsHub,
    /// In background mode, emit a [`TraceEvent::MetricsSnapshot`] delta
    /// into the trace sink every this-many installing safepoints (0
    /// disables; requires both `metrics` and `trace` to be attached).
    pub metrics_snapshot_every: u64,
    /// Cycle-attribution profiler handle. The default disabled hub records
    /// nothing at the cost of at most one branch per charge site; when
    /// enabled, every charged cycle and every heap allocation is
    /// attributed to the `(method, tier)` executing it, with per-bci and
    /// per-opcode hot-spot buckets for interpreted code.
    pub profiler: ProfilerHub,
    /// Flight-recorder dump path. When set, the VM tees every trace event
    /// into a bounded in-memory ring (alongside `trace`, which may stay
    /// `None`) and writes the ring to this path as `FLIGHT.json` when a
    /// run ends in a [`VmError`], a `--checked` sanitizer finding, or a
    /// panic — the last compiles/installs/deopts/evictions with sequence
    /// numbers and timestamps, for post-mortem analysis.
    pub flight: Option<PathBuf>,
}

impl VmOptions {
    /// Defaults with the given escape-analysis level.
    pub fn with_opt_level(level: OptLevel) -> Self {
        VmOptions {
            compile_threshold: 50,
            compiler: CompilerOptions::with_opt_level(level),
            fuel: None,
            max_deopts: 8,
            jit: true,
            jit_mode: JitMode::Sync,
            exec_mode: ExecMode::Linear,
            compile_workers: None,
            compile_queue_capacity: 128,
            trace: None,
            checked: false,
            metrics: MetricsHub::disabled(),
            metrics_snapshot_every: 64,
            profiler: ProfilerHub::disabled(),
            flight: None,
        }
    }

    /// A pure-interpreter configuration.
    pub fn interpreter_only() -> Self {
        VmOptions {
            jit: false,
            ..Self::with_opt_level(OptLevel::None)
        }
    }
}

impl Default for VmOptions {
    fn default() -> Self {
        Self::with_opt_level(OptLevel::Pea)
    }
}

/// Shared cache of interprocedural escape summaries, consulted by the
/// synchronous compile path and every background compile worker of one VM.
///
/// Summaries are a function of the program bytecode alone, so one
/// computation serves every compilation; the cache still follows the code
/// cache's invalidation discipline (cleared on method eviction, so a
/// recompile after re-profiling starts from a fresh slot) to keep the
/// summary lifetime observable and never longer than the compiled code it
/// informed. Hits and misses are counted in
/// `compile.summary_cache_hits` / `compile.summary_cache_misses`.
#[derive(Clone, Debug, Default)]
pub struct SummaryCache {
    slot: Arc<Mutex<Option<Arc<ProgramSummaries>>>>,
}

impl SummaryCache {
    pub fn new() -> SummaryCache {
        SummaryCache::default()
    }

    /// The cached summaries, computing and caching them on miss.
    pub fn resolve(&self, program: &Program, metrics: &MetricsHub) -> Arc<ProgramSummaries> {
        let mut slot = self.slot.lock().expect("summary cache poisoned");
        if let Some(s) = &*slot {
            if let Some(m) = metrics.on() {
                m.compile.summary_cache_hits.inc();
            }
            return Arc::clone(s);
        }
        if let Some(m) = metrics.on() {
            m.compile.summary_cache_misses.inc();
        }
        let s = Arc::new(ProgramSummaries::compute(program));
        *slot = Some(Arc::clone(&s));
        s
    }

    /// Drops the cached summaries; the next [`resolve`](Self::resolve)
    /// recomputes.
    pub fn invalidate(&self) {
        *self.slot.lock().expect("summary cache poisoned") = None;
    }

    /// Whether the cache currently holds summaries.
    pub fn is_populated(&self) -> bool {
        self.slot.lock().expect("summary cache poisoned").is_some()
    }
}

/// The virtual machine.
pub struct Vm {
    program: Arc<Program>,
    heap: Heap,
    statics: Statics,
    profiles: ProfileStore,
    code_cache: HashMap<MethodId, Arc<CompiledMethod>>,
    bailed_out: HashSet<MethodId>,
    deopt_counts: HashMap<MethodId, u64>,
    /// Methods evicted at least once (a later compile is a recompile).
    evicted: HashSet<MethodId>,
    /// Per-method eviction epoch; background outcomes compiled before the
    /// latest eviction are discarded (their speculation is the one that
    /// kept deoptimizing).
    evict_epochs: HashMap<MethodId, u64>,
    /// Background compilation pool, started lazily on the first request.
    service: Option<CompileService>,
    /// Static escape verdicts for the sanitizer, computed lazily on the
    /// first checked compilation.
    verdicts: Option<Arc<pea_analysis::StaticVerdicts>>,
    /// Interprocedural summary cache shared with the compile service.
    summary_cache: SummaryCache,
    /// Cycle-attribution recorder (disabled by default: one branch per
    /// charge site, zero allocations). Methods are pre-resolved by index
    /// at construction, mirroring [`HeapRecorder`].
    profile: ProfileRecorder,
    /// Flight-recorder ring, present when [`VmOptions::flight`] is set.
    /// Every trace event is teed into it via the sink chain.
    flight: Option<Arc<Mutex<FlightRecorder>>>,
    options: VmOptions,
    /// Re-entrancy depth (interpreter/compiled frames currently active).
    depth: usize,
    /// Installing safepoints seen since the last metrics snapshot event.
    snapshot_polls: u64,
    /// Sequence number of the next metrics snapshot event.
    snapshot_seq: u64,
    /// Baseline for metrics snapshot deltas.
    last_snapshot: MetricsSnapshot,
}

impl Vm {
    /// Creates a VM for `program`.
    pub fn new(program: Program, mut options: VmOptions) -> Vm {
        let statics = Statics::new(&program.statics);
        let mut heap = Heap::new();
        if options.metrics.is_enabled() {
            heap.set_metrics(HeapRecorder::new(
                &options.metrics,
                program.classes.iter().map(|c| c.name.as_str()),
            ));
        }
        let names: Vec<(String, usize)> = (0..program.methods.len())
            .map(|i| {
                let m = program.method(MethodId::from_index(i));
                (m.qualified_name(&program), m.code.len())
            })
            .collect();
        let profile = ProfileRecorder::new(
            &options.profiler,
            names.iter().map(|(n, l)| (n.as_str(), *l)),
        );
        let flight = options.flight.as_ref().map(|_| {
            let ring = Arc::new(Mutex::new(FlightRecorder::new()));
            let tee = FlightTee {
                user: options.trace.take(),
                flight: Arc::clone(&ring),
            };
            options.trace = Some(SharedSink::new(tee).0);
            ring
        });
        Vm {
            program: Arc::new(program),
            heap,
            statics,
            profiles: ProfileStore::new(),
            code_cache: HashMap::new(),
            bailed_out: HashSet::new(),
            deopt_counts: HashMap::new(),
            evicted: HashSet::new(),
            evict_epochs: HashMap::new(),
            service: None,
            verdicts: None,
            summary_cache: SummaryCache::new(),
            profile,
            flight,
            options,
            depth: 0,
            snapshot_polls: 0,
            snapshot_seq: 0,
            last_snapshot: MetricsSnapshot::default(),
        }
    }

    /// Attaches (or replaces) the VM event-log sink after construction.
    ///
    /// In background mode, attach the sink before the first method turns
    /// hot: the compile service captures the sink when it starts. When the
    /// flight recorder is active, the new sink is teed through it so the
    /// ring keeps seeing every event.
    pub fn set_trace(&mut self, sink: SharedSink) {
        self.options.trace = Some(match &self.flight {
            Some(ring) => {
                let tee = FlightTee {
                    user: Some(sink),
                    flight: Arc::clone(ring),
                };
                SharedSink::new(tee).0
            }
            None => sink,
        });
    }

    /// The cycle-attribution profiler hub (disabled unless enabled via
    /// [`VmOptions::profiler`]); snapshot it for reports.
    pub fn profiler_hub(&self) -> &ProfilerHub {
        self.profile.hub()
    }

    /// The flight-recorder ring contents in sequence order, when the
    /// recorder is active.
    pub fn flight_entries(&self) -> Option<Vec<FlightEntry>> {
        self.flight.as_ref().map(|ring| match ring.lock() {
            Ok(f) => f.entries(),
            Err(poisoned) => poisoned.into_inner().entries(),
        })
    }

    /// The flight ring serialized as `pea-flight/1` JSON, when active.
    pub fn flight_json(&self) -> Option<String> {
        self.flight.as_ref().map(|ring| match ring.lock() {
            Ok(f) => f.dump_json(),
            Err(poisoned) => poisoned.into_inner().dump_json(),
        })
    }

    /// Writes the flight ring to the configured dump path. Called on
    /// [`VmError`], sanitizer findings and panics; best-effort (a failed
    /// write must not mask the original failure).
    fn dump_flight(&self) {
        let (Some(json), Some(path)) = (self.flight_json(), &self.options.flight) else {
            return;
        };
        let _ = std::fs::write(path, json);
    }

    /// The executed program.
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// Cumulative execution statistics.
    pub fn stats(&self) -> Stats {
        self.heap.stats
    }

    /// The managed heap (read access for tests and harnesses).
    pub fn heap(&self) -> &Heap {
        &self.heap
    }

    /// Gathered profiles (read access).
    pub fn profiles(&self) -> &ProfileStore {
        &self.profiles
    }

    /// Replaces the profile store with an imported one (see
    /// [`ProfileStore::import_json`]): methods that were hot in a previous
    /// run cross the compile threshold immediately.
    pub fn import_profiles(&mut self, profiles: ProfileStore) {
        self.profiles = profiles;
    }

    /// The VM's metrics handle.
    pub fn metrics(&self) -> &MetricsHub {
        &self.options.metrics
    }

    /// Static variable storage (read access for tests and harnesses).
    pub fn statics_ref(&self) -> &Statics {
        &self.statics
    }

    /// Number of methods currently JIT-compiled.
    pub fn compiled_method_count(&self) -> usize {
        self.code_cache.len()
    }

    /// The compiled form of `method`, if it is in the code cache.
    pub fn compiled(&self, method: MethodId) -> Option<&CompiledMethod> {
        self.code_cache.get(&method).map(Arc::as_ref)
    }

    /// Methods currently in the code cache (for artifact comparisons).
    pub fn compiled_methods(&self) -> Vec<MethodId> {
        let mut methods: Vec<MethodId> = self.code_cache.keys().copied().collect();
        methods.sort_unstable_by_key(|m| m.index());
        methods
    }

    /// Resets static variables to defaults (heap contents and statistics
    /// are preserved; benchmarks use deltas).
    pub fn reset_statics(&mut self) {
        self.statics.reset(&self.program.statics);
    }

    /// Calls a static method by name.
    ///
    /// # Errors
    ///
    /// [`VmError::NoSuchMethod`] for unknown names; otherwise whatever the
    /// program raises.
    pub fn call_entry(&mut self, name: &str, args: &[Value]) -> Result<Option<Value>, VmError> {
        let method = self
            .program
            .static_method_by_name(name)
            .ok_or_else(|| VmError::NoSuchMethod(name.to_string()))?;
        let result = match self.call(method, args.to_vec()) {
            // An exception escaped every frame: report it structurally
            // (class name + int fields) — raw heap ids differ between
            // tiers when scalar replacement elides allocations.
            Err(VmError::Thrown(obj)) => Err(self.uncaught(obj)),
            result => result,
        };
        if result.is_err() {
            self.dump_flight();
        }
        result
    }

    /// Converts an in-flight exception object that escaped the entry call
    /// into its structural [`VmError::UncaughtException`] identity.
    fn uncaught(&self, obj: ObjRef) -> VmError {
        match &self.heap.cell(obj).object {
            HeapObject::Instance { class, fields } => VmError::UncaughtException {
                class: self.program.classes[class.index()].name.clone(),
                fields: fields
                    .iter()
                    .filter_map(|v| match v {
                        Value::Int(i) => Some(*i),
                        _ => None,
                    })
                    .collect(),
            },
            HeapObject::Array { .. } => VmError::Internal("thrown array".into()),
        }
    }

    /// Calls a method through the tiering policy.
    ///
    /// # Errors
    ///
    /// Whatever the method raises.
    pub fn call(&mut self, method: MethodId, args: Vec<Value>) -> Result<Option<Value>, VmError> {
        self.depth += 1;
        // Outermost call: establish a base attribution context so cycles
        // charged before a tier takes over (call overhead, unwinding) are
        // never dropped — profiler totals must reconcile exactly with
        // `stats.cycles`.
        let base = if self.depth == 1 {
            Some(self.profile.enter(method.index(), Tier::Interp))
        } else {
            None
        };
        let result = self.call_inner(method, args);
        if let Some(prev) = base {
            self.profile.restore(prev);
        }
        self.depth -= 1;
        result
    }

    fn call_inner(&mut self, method: MethodId, args: Vec<Value>) -> Result<Option<Value>, VmError> {
        if self.depth > 400 {
            return Err(VmError::Internal("call stack overflow".into()));
        }
        let program = Arc::clone(&self.program);
        // Method-entry safepoint: install anything the background
        // compilers finished since the last poll.
        if self.options.jit_mode == JitMode::Background {
            self.drain_background();
        }
        if let Some(code) = self.code_cache.get(&method).cloned() {
            return self.run_compiled(&program, &code, args);
        }
        if self.options.jit
            && !self.bailed_out.contains(&method)
            && self.profiles.invocation_count(method) >= self.options.compile_threshold
        {
            match self.options.jit_mode {
                JitMode::Sync => {
                    if self.evicted.contains(&method) {
                        if let Some(m) = self.options.metrics.on() {
                            m.vm.recompiles.inc();
                        }
                        if let Some(sink) = &self.options.trace {
                            sink.emit_event(&TraceEvent::Recompile {
                                method: program.method(method).qualified_name(&program),
                            });
                        }
                    }
                    let copts = self.effective_compiler_options(&program);
                    let compiled = if self.options.checked
                        || self.options.trace.is_some()
                        || self.options.metrics.is_enabled()
                    {
                        // Buffer the decision events so the sanitizer and
                        // the metrics fold can inspect them; forward to the
                        // user's sink after.
                        let mut buffer = pea_trace::MemorySink::new();
                        let result = compile_traced(
                            &program,
                            method,
                            Some(&self.profiles),
                            &copts,
                            &mut buffer,
                        );
                        if self.options.checked {
                            if let Ok(code) = &result {
                                self.sanitize(&program, method, &code.graph, &buffer.events);
                            }
                        }
                        if let Some(m) = self.options.metrics.on() {
                            record_compile_metrics(m, &buffer.events, &result);
                        }
                        if let Some(sink) = &self.options.trace {
                            sink.with_sink(|s| {
                                for event in &buffer.events {
                                    s.emit(event);
                                }
                            });
                        }
                        result
                    } else {
                        compile(&program, method, Some(&self.profiles), &copts)
                    };
                    match compiled {
                        Ok(code) => {
                            self.heap.stats.compiles += 1;
                            self.profile.record_install();
                            if let Some(m) = self.options.metrics.on() {
                                m.vm.installs.inc();
                                if code.linear.is_some() {
                                    m.vm.linear_installs.inc();
                                }
                            }
                            let code = Arc::new(code);
                            self.code_cache.insert(method, Arc::clone(&code));
                            return self.run_compiled(&program, &code, args);
                        }
                        Err(_) => {
                            self.bailed_out.insert(method);
                        }
                    }
                }
                JitMode::Background => {
                    // Snapshot the profiles and keep interpreting; the
                    // artifact is installed at a later safepoint.
                    self.request_background(method);
                }
            }
        }
        interpret(&program, self, method, args)
    }

    /// The compiler options for one compilation: when the configuration
    /// consumes interprocedural summaries (`pea-pre-ipa`, `pea-pre-flow`
    /// or the summary
    /// inline policy), the shared [`SummaryCache`] is resolved (computing
    /// on miss) and injected so the pipeline never recomputes per method.
    fn effective_compiler_options(&self, program: &Program) -> CompilerOptions {
        let mut copts = self.options.compiler.clone();
        if copts.needs_summaries() && copts.summaries.is_none() {
            copts.summaries = Some(self.summary_cache.resolve(program, &self.options.metrics));
        }
        copts
    }

    /// The VM's interprocedural summary cache (shared with the background
    /// compile service; read access for tests and harnesses).
    pub fn summary_cache(&self) -> &SummaryCache {
        &self.summary_cache
    }

    /// The static escape verdicts, computed over the whole program on
    /// first use and reused for every checked compilation.
    fn static_verdicts(&mut self) -> Arc<pea_analysis::StaticVerdicts> {
        if let Some(v) = &self.verdicts {
            return Arc::clone(v);
        }
        let v = Arc::new(pea_analysis::StaticVerdicts::analyze(&self.program));
        self.verdicts = Some(Arc::clone(&v));
        v
    }

    /// Cross-checks one finished compilation against the static verdicts
    /// and panics on any inconsistency (checked mode is a debugging/CI
    /// tool: an inconsistency is a compiler bug, not a user error).
    fn sanitize(
        &mut self,
        program: &Program,
        method: MethodId,
        graph: &pea_ir::Graph,
        events: &[TraceEvent],
    ) {
        let verdicts = self.static_verdicts();
        let findings = pea_analysis::check_compilation(program, &verdicts, method, graph, events);
        if !findings.is_empty() {
            self.dump_flight();
            let name = program.method(method).qualified_name(program);
            let lines: Vec<String> = findings.iter().map(|f| format!("  - {f}")).collect();
            panic!(
                "PEA decision sanitizer: {} inconsistenc{} compiling {name}:\n{}",
                findings.len(),
                if findings.len() == 1 { "y" } else { "ies" },
                lines.join("\n"),
            );
        }
    }

    /// Enqueues a background compilation of `method` (deduplicated by the
    /// service). The profile snapshot makes the artifact a deterministic
    /// function of the request: later interpreter profiling cannot leak
    /// into an in-flight compilation.
    fn request_background(&mut self, method: MethodId) {
        if self.service.is_none() {
            self.service = Some(CompileService::start(
                Arc::clone(&self.program),
                self.options.compiler.clone(),
                self.options.trace.clone(),
                &CompileServiceOptions {
                    workers: self.options.compile_workers,
                    queue_capacity: self.options.compile_queue_capacity,
                    checked: self.options.checked,
                    metrics: self.options.metrics.clone(),
                    summary_cache: Some(self.summary_cache.clone()),
                },
            ));
        }
        let hotness = self.profiles.invocation_count(method);
        let epoch = self.evict_epochs.get(&method).copied().unwrap_or(0);
        let snapshot = self.profiles.clone();
        let service = self.service.as_ref().expect("service just started");
        if service.request(method, hotness, epoch, snapshot) && self.evicted.contains(&method) {
            if let Some(m) = self.options.metrics.on() {
                m.vm.recompiles.inc();
            }
            if let Some(sink) = &self.options.trace {
                sink.emit_event(&TraceEvent::Recompile {
                    method: self.program.method(method).qualified_name(&self.program),
                });
            }
        }
    }

    /// Installs finished background compilations (a safepoint action:
    /// called at method entry and interpreter loop back-edges).
    fn drain_background(&mut self) {
        let Some(service) = &self.service else {
            return;
        };
        for outcome in service.drain() {
            let current_epoch = self.evict_epochs.get(&outcome.method).copied().unwrap_or(0);
            if outcome.epoch != current_epoch {
                // Compiled before the method's latest eviction: the
                // speculation that kept deoptimizing. Drop it; the fresh
                // profile will trigger a new request.
                if let Some(m) = self.options.metrics.on() {
                    m.compile.stale_dropped.inc();
                }
                continue;
            }
            // Workers never panic (that would wedge `wait_idle`); sanitizer
            // findings surface here, at the installing safepoint.
            if !outcome.findings.is_empty() {
                self.dump_flight();
                let name = self
                    .program
                    .method(outcome.method)
                    .qualified_name(&self.program);
                panic!(
                    "PEA decision sanitizer: {} inconsistenc{} in background compile of {name}:\n{}",
                    outcome.findings.len(),
                    if outcome.findings.len() == 1 { "y" } else { "ies" },
                    outcome
                        .findings
                        .iter()
                        .map(|f| format!("  - {f}"))
                        .collect::<Vec<_>>()
                        .join("\n"),
                );
            }
            match outcome.result {
                Ok(code) => {
                    self.heap.stats.compiles += 1;
                    self.profile.record_install();
                    if let Some(m) = self.options.metrics.on() {
                        m.vm.installs.inc();
                        if code.linear.is_some() {
                            m.vm.linear_installs.inc();
                        }
                        m.compile
                            .queue_latency_us
                            .record(outcome.enqueued_at.elapsed().as_micros() as u64);
                    }
                    self.code_cache.insert(outcome.method, Arc::new(code));
                }
                Err(_) => {
                    self.bailed_out.insert(outcome.method);
                }
            }
        }
        self.maybe_emit_metrics_snapshot();
    }

    /// Emits a [`TraceEvent::MetricsSnapshot`] delta into the trace sink
    /// every `metrics_snapshot_every` installing safepoints (background
    /// mode only — that is the only caller of [`Self::drain_background`]).
    fn maybe_emit_metrics_snapshot(&mut self) {
        let every = self.options.metrics_snapshot_every;
        if every == 0 || !self.options.metrics.is_enabled() || self.options.trace.is_none() {
            return;
        }
        self.snapshot_polls += 1;
        if self.snapshot_polls < every {
            return;
        }
        self.snapshot_polls = 0;
        self.emit_metrics_snapshot();
    }

    /// Unconditionally emits one metrics snapshot delta (skipping empty
    /// deltas), advancing the snapshot baseline.
    fn emit_metrics_snapshot(&mut self) {
        let (Some(snapshot), Some(sink)) = (self.options.metrics.snapshot(), &self.options.trace)
        else {
            return;
        };
        let counters = snapshot.delta(&self.last_snapshot).delta_lines();
        if counters.is_empty() {
            return;
        }
        sink.emit_event(&TraceEvent::MetricsSnapshot {
            seq: self.snapshot_seq,
            counters,
        });
        self.snapshot_seq += 1;
        self.last_snapshot = snapshot;
    }

    /// Blocks until every requested background compilation has finished,
    /// then installs the artifacts. Returns the number of methods now in
    /// the code cache. No-op in sync mode.
    pub fn await_background_compiles(&mut self) -> usize {
        if let Some(service) = &self.service {
            service.wait_idle();
            self.drain_background();
            // Close the metrics stream with a final delta so the event log
            // accounts for everything up to the settle point.
            self.emit_metrics_snapshot();
        }
        self.code_cache.len()
    }

    /// Compiles every method of the program on `parallelism` threads from
    /// the current profiles and installs the results, skipping methods
    /// already compiled. Methods that bail out are marked interpreted.
    /// Returns the number of methods installed.
    ///
    /// This is the batch counterpart of the background service: workloads
    /// with a known method universe (benchmark corpora, ahead-of-time
    /// warmup) compile everything at once instead of discovering hot
    /// methods one threshold crossing at a time.
    pub fn precompile_all(&mut self, parallelism: usize) -> usize {
        let parallelism = parallelism.max(1);
        let program = Arc::clone(&self.program);
        let options = self.effective_compiler_options(&program);
        let options = &options;
        let profiles = &self.profiles;
        let metrics = &self.options.metrics;
        let methods: Vec<MethodId> = (0..program.methods.len())
            .map(MethodId::from_index)
            .filter(|m| !self.code_cache.contains_key(m))
            .collect();
        let next = AtomicUsize::new(0);
        let results: Mutex<Vec<(MethodId, Result<CompiledMethod, Bailout>)>> =
            Mutex::new(Vec::with_capacity(methods.len()));
        std::thread::scope(|scope| {
            for _ in 0..parallelism.min(methods.len().max(1)) {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    let Some(&method) = methods.get(i) else {
                        break;
                    };
                    // Metrics fold needs the decision events, so the
                    // enabled path compiles through a private buffer
                    // (atomics make the fold safe from worker threads).
                    let r = if let Some(m) = metrics.on() {
                        let mut buffer = pea_trace::MemorySink::new();
                        let r =
                            compile_traced(&program, method, Some(profiles), options, &mut buffer);
                        record_compile_metrics(m, &buffer.events, &r);
                        r
                    } else {
                        compile(&program, method, Some(profiles), options)
                    };
                    results
                        .lock()
                        .expect("precompile results poisoned")
                        .push((method, r));
                });
            }
        });
        let mut results = results.into_inner().expect("precompile results poisoned");
        // Install in method order so the cache state is independent of
        // thread completion order.
        results.sort_unstable_by_key(|(m, _)| m.index());
        let mut installed = 0;
        for (method, result) in results {
            match result {
                Ok(code) => {
                    self.heap.stats.compiles += 1;
                    self.profile.record_install();
                    if let Some(m) = self.options.metrics.on() {
                        m.vm.installs.inc();
                        if code.linear.is_some() {
                            m.vm.linear_installs.inc();
                        }
                    }
                    self.code_cache.insert(method, Arc::new(code));
                    installed += 1;
                }
                Err(_) => {
                    self.bailed_out.insert(method);
                }
            }
        }
        installed
    }

    fn run_compiled(
        &mut self,
        program: &Program,
        code: &CompiledMethod,
        args: Vec<Value>,
    ) -> Result<Option<Value>, VmError> {
        let tier = if self.options.exec_mode == ExecMode::Linear && code.linear.is_some() {
            Tier::Linear
        } else {
            Tier::Graph
        };
        self.profile.record_invocation(code.method.index(), tier);
        let prev_ctx = self.profile.enter(code.method.index(), tier);
        if let Some(m) = self.options.metrics.on() {
            m.vm.invocations_compiled.inc();
        }
        let outcome = if self.options.exec_mode == ExecMode::Linear {
            if code.linear.is_some() {
                if let Some(m) = self.options.metrics.on() {
                    m.vm.linear_exec.inc();
                }
                pea_compiler::linear::execute(program, self, code, &args)
            } else {
                if let Some(m) = self.options.metrics.on() {
                    m.vm.graph_exec_fallback.inc();
                }
                evaluate(program, self, code, &args)
            }
        } else {
            evaluate(program, self, code, &args)
        };
        let outcome = match outcome {
            Ok(o) => o,
            Err(e) => {
                self.profile.restore(prev_ctx);
                return Err(e);
            }
        };
        match outcome {
            EvalOutcome::Return(v) => {
                self.profile.restore(prev_ctx);
                Ok(v)
            }
            EvalOutcome::Deopt {
                reason,
                frames,
                rematerialized,
            } => {
                self.heap.stats.deopts += 1;
                // Attributed to the compiled (method, tier) that failed
                // its speculation — the context is still entered here.
                self.profile.record_deopt();
                let method = code.method;
                let count = self.deopt_counts.entry(method).or_insert(0);
                *count += 1;
                let deopts = *count;
                if let Some(m) = self.options.metrics.on() {
                    m.vm.deopts.inc();
                    m.vm.rematerialized_objects.add(rematerialized.len() as u64);
                }
                if let Some(sink) = &self.options.trace {
                    // The innermost deopt frame names the site actually
                    // executing when the guard failed (it differs from the
                    // compiled root under inlining).
                    let (site, bci) = deopt_site(program, &frames, method);
                    // DeoptTaken first: the narrow guard-failure marker,
                    // then the generic deopt record with the inventory.
                    sink.emit_event(&TraceEvent::DeoptTaken {
                        method: program.method(method).qualified_name(program),
                        site: site.clone(),
                        bci,
                        reason: reason.to_string(),
                    });
                    sink.emit_event(&TraceEvent::Deopt {
                        method: program.method(method).qualified_name(program),
                        site,
                        bci,
                        reason: reason.to_string(),
                        rematerialized,
                    });
                }
                if deopts >= self.options.max_deopts {
                    // Evict and re-profile: the speculation no longer
                    // matches reality.
                    self.code_cache.remove(&method);
                    self.bailed_out.remove(&method);
                    self.profiles.clear_method(method);
                    self.deopt_counts.remove(&method);
                    self.evicted.insert(method);
                    // Invalidate in-flight background compilations of this
                    // method: they speculate from the profile that just
                    // failed.
                    *self.evict_epochs.entry(method).or_insert(0) += 1;
                    // Same discipline for the summary cache: the next
                    // compilation (sync or background) re-resolves.
                    self.summary_cache.invalidate();
                    if let Some(m) = self.options.metrics.on() {
                        m.vm.evictions.inc();
                    }
                    if let Some(sink) = &self.options.trace {
                        sink.emit_event(&TraceEvent::Evict {
                            method: program.method(method).qualified_name(program),
                            deopts,
                        });
                    }
                }
                self.profile.restore(prev_ctx);
                resume(program, self, to_interp_frames(frames))
            }
            EvalOutcome::Unwind {
                exception,
                frames,
                rematerialized,
            } => {
                // An out-of-line callee threw into this compiled frame.
                // This is an exception transfer, not a misspeculation:
                // record the deopt (frames are rebuilt and objects
                // rematerialized exactly as for a guard failure) but do
                // not count it toward eviction — the compiled code would
                // deopt here for every throw, and exception-heavy but
                // correctly-speculated methods must stay compiled.
                self.heap.stats.deopts += 1;
                self.profile.record_deopt();
                if let Some(m) = self.options.metrics.on() {
                    m.vm.deopts.inc();
                    m.vm.rematerialized_objects.add(rematerialized.len() as u64);
                }
                if let Some(sink) = &self.options.trace {
                    let (site, bci) = deopt_site(program, &frames, code.method);
                    sink.emit_event(&TraceEvent::Deopt {
                        method: program.method(code.method).qualified_name(program),
                        site,
                        bci,
                        reason: "exception-unwind".to_string(),
                        rematerialized,
                    });
                }
                self.profile.restore(prev_ctx);
                unwind(program, self, to_interp_frames(frames), exception)
            }
        }
    }

    fn charge_cycles(&mut self, cycles: u64) -> Result<(), VmError> {
        self.profile.charge(cycles);
        self.heap.stats.cycles += cycles;
        match self.options.fuel {
            Some(limit) if self.heap.stats.cycles > limit => Err(VmError::OutOfFuel),
            _ => Ok(()),
        }
    }
}

impl Drop for Vm {
    fn drop(&mut self) {
        // A panic anywhere above the VM (sanitizer, compiler invariant,
        // test assertion) unwinds through this drop: persist the flight
        // ring so the post-mortem has the last events leading up to it.
        if std::thread::panicking() {
            self.dump_flight();
        }
    }
}

/// Tees every trace event into the flight ring alongside the user's sink
/// (which may be absent: the flight recorder works without an event log
/// attached).
struct FlightTee {
    user: Option<SharedSink>,
    flight: Arc<Mutex<FlightRecorder>>,
}

impl TraceSink for FlightTee {
    fn emit(&mut self, event: &TraceEvent) {
        if let Some(user) = &self.user {
            user.emit_event(event);
        }
        if let Ok(mut ring) = self.flight.lock() {
            ring.emit(event);
        }
    }
}

/// The `(site, bci)` identity of a deoptimization: the qualified name and
/// bytecode index of the **innermost** rebuilt frame — the code actually
/// executing when the guard failed or the exception crossed the compiled
/// boundary. Under inlining this differs from the compiled root method;
/// both tiers rebuild the same frame chain, so the identity is
/// tier-independent. Falls back to `(root, 0)` for an empty chain.
fn deopt_site(program: &Program, frames: &[DeoptFrame], root: MethodId) -> (String, u32) {
    frames.last().map_or_else(
        || (program.method(root).qualified_name(program), 0),
        |f| (program.method(f.method).qualified_name(program), f.bci),
    )
}

/// Converts the deopt frame chain of a compiled method (outermost first)
/// into interpreter frames for `resume`/`unwind`.
fn to_interp_frames(frames: Vec<DeoptFrame>) -> Vec<Frame> {
    frames
        .into_iter()
        .map(|f| Frame {
            method: f.method,
            bci: f.bci,
            locals: f.locals,
            stack: f.stack,
            // Only synchronized-method monitors are released
            // automatically on frame return; explicit pairs are
            // re-executed by the bytecode itself.
            locked: f
                .locked
                .into_iter()
                .filter_map(|(obj, sync)| sync.then_some(obj))
                .collect(),
        })
        .collect()
}

/// Folds one compilation's buffered decision events (plus its result) into
/// the metrics registry. This is the same stream the trace
/// [`pea_trace::SiteAggregator`] consumes, so the `pea.*` totals and the
/// per-site trace aggregation cross-check exactly — which the test suite
/// asserts on every corpus program.
pub(crate) fn record_compile_metrics(
    m: &VmMetrics,
    events: &[TraceEvent],
    result: &Result<CompiledMethod, Bailout>,
) {
    for event in events {
        match event {
            TraceEvent::CompileStart { .. } => m.compile.started.inc(),
            TraceEvent::CompileEnd { phases, .. } => {
                m.compile.build_us.record(phases.build);
                m.compile.canonicalize_us.record(phases.canonicalize);
                m.compile.escape_analysis_us.record(phases.escape_analysis);
                m.compile.schedule_us.record(phases.schedule);
                m.compile.lower_us.record(phases.lower);
                m.compile.total_us.record(phases.total());
            }
            TraceEvent::Virtualized { .. } => m.pea.virtualized.inc(),
            TraceEvent::Materialized { .. } => m.pea.materialized.inc(),
            TraceEvent::LockElided { .. } => m.pea.locks_elided.inc(),
            TraceEvent::LoadElided { .. } => m.pea.loads_elided.inc(),
            TraceEvent::StoreElided { .. } => m.pea.stores_elided.inc(),
            TraceEvent::CheckFolded { .. } => m.pea.checks_folded.inc(),
            TraceEvent::PhiCreated { .. } => m.pea.phis_created.inc(),
            TraceEvent::LoopRound { .. } => m.pea.loop_rounds.inc(),
            TraceEvent::InlineDecision { inlined, .. } => {
                if *inlined {
                    m.compile.inline_accepted.inc();
                } else {
                    m.compile.inline_rejected.inc();
                }
            }
            TraceEvent::DevirtGuard { .. } => m.compile.devirt_guards.inc(),
            // VM-side events are counted at their emission sites;
            // summaries are program-wide, not per-compilation.
            TraceEvent::SummaryComputed { .. }
            | TraceEvent::Deopt { .. }
            | TraceEvent::DeoptTaken { .. }
            | TraceEvent::Evict { .. }
            | TraceEvent::Recompile { .. }
            | TraceEvent::MetricsSnapshot { .. } => {}
        }
    }
    match result {
        Ok(code) => {
            m.compile.succeeded.inc();
            m.pea
                .prefiltered_sites
                .add(code.pea_result.prefiltered_allocs as u64);
        }
        Err(_) => m.compile.bailouts.inc(),
    }
}

impl InterpEnv for Vm {
    fn heap(&mut self) -> &mut Heap {
        &mut self.heap
    }
    fn statics(&mut self) -> &mut Statics {
        &mut self.statics
    }
    fn profiles(&mut self) -> &mut ProfileStore {
        &mut self.profiles
    }
    fn charge(&mut self, cycles: u64) -> Result<(), VmError> {
        self.charge_cycles(cycles)
    }
    fn invoke(&mut self, method: MethodId, args: Vec<Value>) -> Result<Option<Value>, VmError> {
        self.call(method, args)
    }
    fn safepoint(&mut self) {
        // Loop back-edge: install finished background compilations so a
        // long-running interpreted loop still picks up compiled callees.
        if self.options.jit_mode == JitMode::Background {
            self.drain_background();
        }
    }
    fn metrics(&self) -> &MetricsHub {
        &self.options.metrics
    }
    fn profiler(&self) -> &ProfileRecorder {
        &self.profile
    }
}

impl EvalEnv for Vm {
    fn heap(&mut self) -> &mut Heap {
        &mut self.heap
    }
    fn statics(&mut self) -> &mut Statics {
        &mut self.statics
    }
    fn charge(&mut self, cycles: u64) -> Result<(), VmError> {
        self.charge_cycles(cycles)
    }
    fn invoke(&mut self, method: MethodId, args: Vec<Value>) -> Result<Option<Value>, VmError> {
        self.call(method, args)
    }
    fn has_fuel_limit(&self) -> bool {
        self.options.fuel.is_some()
    }
    fn safepoint(&mut self) {
        if let Some(m) = self.options.metrics.on() {
            m.vm.safepoint_polls.inc();
        }
        // Compiled-loop back-edge: install anything the background
        // compilers finished, so compiled-only phases (hot caller with
        // inlined or compiled callees) cannot starve installs.
        if self.options.jit_mode == JitMode::Background {
            self.drain_background();
        }
    }
    fn profiler(&self) -> &ProfileRecorder {
        &self.profile
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pea_bytecode::asm::parse_program;

    fn vm(src: &str, options: VmOptions) -> Vm {
        let program = parse_program(src).unwrap();
        pea_bytecode::verify_program(&program).unwrap();
        Vm::new(program, options)
    }

    #[test]
    fn interprets_then_compiles() {
        let mut v = vm(
            "method f 1 returns { load 0 const 1 add retv }",
            VmOptions::with_opt_level(OptLevel::Pea),
        );
        for i in 0..100 {
            let r = v.call_entry("f", &[Value::Int(i)]).unwrap();
            assert_eq!(r, Some(Value::Int(i + 1)));
        }
        assert_eq!(v.compiled_method_count(), 1);
        assert_eq!(v.stats().compiles, 1);
    }

    #[test]
    fn interpreter_only_never_compiles() {
        let mut v = vm(
            "method f 0 returns { const 7 retv }",
            VmOptions::interpreter_only(),
        );
        for _ in 0..200 {
            v.call_entry("f", &[]).unwrap();
        }
        assert_eq!(v.compiled_method_count(), 0);
    }

    #[test]
    fn deopt_resumes_in_interpreter_with_correct_result() {
        // Branch taken only after warmup: the compiled code speculates it
        // never happens and must deopt, producing the same result the
        // interpreter would.
        let src = "
            class Box { field v int }
            static g ref
            method f 1 returns {
                new Box store 1
                load 1 load 0 putfield Box.v
                load 0 const 100 ifcmp gt Lrare
                load 1 getfield Box.v const 1 add retv
            Lrare:
                load 1 putstatic g
                load 1 getfield Box.v const 1000 add retv
            }";
        let mut v = vm(src, VmOptions::with_opt_level(OptLevel::Pea));
        for i in 0..80 {
            assert_eq!(
                v.call_entry("f", &[Value::Int(i)]).unwrap(),
                Some(Value::Int(i + 1))
            );
        }
        assert_eq!(v.compiled_method_count(), 1);
        let before = v.stats();
        let r = v.call_entry("f", &[Value::Int(500)]).unwrap();
        assert_eq!(r, Some(Value::Int(1500)));
        let delta = v.stats().delta(&before);
        assert_eq!(delta.deopts, 1);
        assert_eq!(delta.rematerialized, 1);
        // The interpreter finished the rare path: the box escaped into g.
        let g = v.program().static_by_name("g").unwrap();
        assert!(matches!(v.statics.get(g), Value::Ref(_)));
    }

    #[test]
    fn repeated_deopts_evict_and_recompile() {
        let src = "
            static g int
            method f 1 returns {
                load 0 const 0 ifcmp le Lneg
                const 1 retv
            Lneg:
                const -1 retv
            }";
        let mut v = vm(src, VmOptions::with_opt_level(OptLevel::Pea));
        // Warm up with positive args: speculation = never negative.
        for _ in 0..80 {
            v.call_entry("f", &[Value::Int(5)]).unwrap();
        }
        assert_eq!(v.compiled_method_count(), 1);
        // Hammer the cold branch until eviction.
        for _ in 0..20 {
            assert_eq!(
                v.call_entry("f", &[Value::Int(-3)]).unwrap(),
                Some(Value::Int(-1))
            );
        }
        // Evicted at max_deopts, then re-profiled; it may have been
        // recompiled without the failing speculation afterwards.
        assert!(v.stats().deopts >= 8);
        // Re-warm: both branches now profiled, recompilation must not
        // speculate the branch away.
        for _ in 0..80 {
            v.call_entry("f", &[Value::Int(-3)]).unwrap();
            v.call_entry("f", &[Value::Int(3)]).unwrap();
        }
        let before = v.stats();
        v.call_entry("f", &[Value::Int(-3)]).unwrap();
        v.call_entry("f", &[Value::Int(3)]).unwrap();
        assert_eq!(
            v.stats().delta(&before).deopts,
            0,
            "stable after re-profile"
        );
    }

    #[test]
    fn fuel_limit_applies_across_tiers() {
        let mut v = vm(
            "method f 0 returns { Lx: goto Lx }",
            VmOptions {
                fuel: Some(100_000),
                ..VmOptions::default()
            },
        );
        assert_eq!(v.call_entry("f", &[]).unwrap_err(), VmError::OutOfFuel);
    }

    #[test]
    fn virtual_dispatch_through_tiers() {
        let src = "
            class A { }
            class B extends A { }
            method virtual A.tag 1 returns { const 1 retv }
            method virtual B.tag 1 returns { const 2 retv }
            method mk 1 returns {
                load 0 const 0 ifcmp eq La
                new B retv
            La:
                new A retv
            }
            method f 1 returns { load 0 invokestatic mk invokevirtual A.tag retv }";
        let mut v = vm(src, VmOptions::with_opt_level(OptLevel::Pea));
        for i in 0..200 {
            let r = v.call_entry("f", &[Value::Int(i % 2)]).unwrap();
            assert_eq!(r, Some(Value::Int(if i % 2 == 0 { 1 } else { 2 })));
        }
    }
}
