//! The tiered virtual machine: profiling interpreter → JIT compilation →
//! compiled execution → deoptimization back to the interpreter.
//!
//! This mirrors the HotSpot+Graal execution model of the paper's §2
//! (Figure 1): methods start in the interpreter, which gathers invocation
//! counts, branch profiles and receiver types; hot methods are compiled
//! (speculatively, guided by those profiles); compiled code that violates
//! a speculation **deoptimizes** — the VM rebuilds interpreter frames from
//! the compiled frame state (rematerializing scalar-replaced objects,
//! §5.5) and resumes interpretation. Methods that deoptimize repeatedly
//! are evicted, re-profiled and recompiled.
//!
//! # Threading model
//!
//! One VM hosts **N mutator threads**. The state split is:
//!
//! * [`VmShared`] — everything program-wide and thread-safe: the program,
//!   the safepoint-published shared [`CodeCache`], the
//!   [`SafepointRegistry`] rendezvous, the background [`CompileService`]
//!   (started lazily, shared by every mutator), the static-verdict and
//!   interprocedural-summary caches, and the TLAB chunk allocator.
//! * [`Mutator`] — everything per-thread and lock-free on the hot path:
//!   the heap (a private bump arena fed TLAB chunks by the shared
//!   allocator), statics, profiles, the **pinned** code cache (a plain
//!   `HashMap` — compiled-call dispatch performs no lock acquisition and
//!   no shared access), the cycle-attribution recorder, and the trace tee.
//!
//! [`Vm`] owns the shared state plus a main mutator and dereferences to
//! it, so single-threaded use is unchanged. [`Vm::spawn_mutator`] /
//! [`Vm::run_threads`] run additional mutators; each behaves exactly like
//! a solo VM over its own workload (same results, same virtual cycles,
//! same PEA decision traces), which the cross-thread determinism tests
//! assert byte-for-byte.
//!
//! ```
//! use pea_vm::{Vm, VmOptions, OptLevel};
//! use pea_bytecode::asm::parse_program;
//! use pea_runtime::Value;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let program = parse_program("method f 1 returns { load 0 const 1 add retv }")?;
//! let mut vm = Vm::new(program, VmOptions::with_opt_level(OptLevel::Pea));
//! assert_eq!(vm.call_entry("f", &[Value::Int(41)])?, Some(Value::Int(42)));
//! # Ok(())
//! # }
//! ```

pub mod compile_service;
pub mod publish;

pub use compile_service::{
    default_workers, CompileOutcome, CompileService, CompileServiceOptions, Mailbox,
};
use pea_analysis::ProgramSummaries;
use pea_bytecode::{MethodId, Program};
use pea_compiler::DeoptFrame;
pub use pea_compiler::OptLevel;
use pea_compiler::{
    compile, compile_traced, evaluate, Bailout, CompiledMethod, CompilerOptions, EvalEnv,
    EvalOutcome,
};
use pea_interp::{interpret, resume, unwind, Frame, InterpEnv};
pub use pea_metrics::profile::{ProfileRecorder, ProfilerHub, Tier};
pub use pea_metrics::MetricsHub;
use pea_metrics::{HeapRecorder, MetricsSnapshot, VmMetrics};
use pea_runtime::profile::ProfileStore;
use pea_runtime::{ChunkAllocator, Heap, HeapObject, ObjRef, Statics, Stats, Value, VmError};
pub use pea_trace::SharedSink;
use pea_trace::{FlightEntry, FlightRecorder, TraceEvent, TraceSink};
pub use publish::{
    CacheStats, CacheView, CachedCompile, CodeCache, MutatorSlot, SafepointRegistry, MAX_VARIANTS,
};
use std::collections::hash_map::DefaultHasher;
use std::collections::{HashMap, HashSet};
use std::hash::{Hash, Hasher};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// How JIT compilation is scheduled.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum JitMode {
    /// Compile synchronously at the call site that crosses the threshold
    /// (the default: virtual-cycle measurements and decision traces stay
    /// deterministic).
    #[default]
    Sync,
    /// Hand hot methods to the background [`CompileService`]; the
    /// interpreter keeps running and finished code is installed at the
    /// next safepoint (method entry or interpreter loop back-edge).
    Background,
}

impl std::str::FromStr for JitMode {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "sync" => Ok(JitMode::Sync),
            "background" => Ok(JitMode::Background),
            other => Err(format!("unknown jit mode `{other}` (sync|background)")),
        }
    }
}

/// Which tier executes compiled methods.
///
/// Both tiers run the same compiled artifact with the same cycle cost
/// model, the same traces and the same deopt behavior; they differ only
/// in wall-clock speed. The graph walker survives as a differential
/// oracle for the linear tier.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum ExecMode {
    /// Dense register-machine dispatch over the lowered artifact (the
    /// default fast tier). Methods whose lowering bailed out fall back
    /// to graph walking.
    #[default]
    Linear,
    /// Graph-walking evaluation of the scheduled IR.
    Graph,
}

impl std::str::FromStr for ExecMode {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "linear" => Ok(ExecMode::Linear),
            "graph" => Ok(ExecMode::Graph),
            other => Err(format!("unknown exec mode `{other}` (linear|graph)")),
        }
    }
}

/// VM configuration.
#[derive(Clone, Debug)]
pub struct VmOptions {
    /// Invocations before a method is JIT-compiled.
    pub compile_threshold: u64,
    /// Compiler configuration (escape-analysis level, inlining,
    /// speculation, PEA ablations).
    pub compiler: CompilerOptions,
    /// Optional total cycle budget.
    pub fuel: Option<u64>,
    /// Deoptimizations tolerated before a method is evicted and
    /// re-profiled.
    pub max_deopts: u64,
    /// Master switch for JIT compilation (off = pure interpreter).
    pub jit: bool,
    /// Synchronous or background compilation.
    pub jit_mode: JitMode,
    /// Which tier executes compiled methods (linear register machine by
    /// default; graph walking as the differential oracle).
    pub exec_mode: ExecMode,
    /// Background compile worker threads; `None` picks
    /// [`default_workers`] (hardware threads minus one).
    pub compile_workers: Option<usize>,
    /// Bound on the background compile queue; requests beyond it are
    /// deferred to a later hotness check.
    pub compile_queue_capacity: usize,
    /// Optional event log: compiles (with every PEA decision), deopts
    /// (with rematerialization inventories), evictions and recompiles all
    /// flow into this sink. `None` (the default) is zero-cost. The sink is
    /// **per mutator**: spawned mutators start without one and attach
    /// their own via [`Mutator::set_trace`], so event streams never
    /// interleave across threads.
    pub trace: Option<SharedSink>,
    /// Cross-check every compilation's PEA decisions against the static
    /// escape pre-analysis (see `pea-analysis`): virtualized/lock-elided
    /// sites must be consistent with the flow-insensitive verdicts and the
    /// compiled frame states must carry closed rematerialization info.
    /// Any inconsistency panics loudly — this is a debugging/CI mode, not
    /// a production setting.
    pub checked: bool,
    /// Metrics handle shared by every layer (interpreter, tiering,
    /// compile service, PEA, heap). The default disabled hub records
    /// nothing at the cost of one branch per site. With several mutators
    /// the hub aggregates: totals are the sum over threads (spawned
    /// mutators buffer heap counters thread-locally and fold on flush).
    pub metrics: MetricsHub,
    /// In background mode, emit a [`TraceEvent::MetricsSnapshot`] delta
    /// into the trace sink every this-many installing safepoints (0
    /// disables; requires both `metrics` and `trace` to be attached).
    pub metrics_snapshot_every: u64,
    /// Cycle-attribution profiler handle. The default disabled hub records
    /// nothing at the cost of at most one branch per charge site; when
    /// enabled, every charged cycle and every heap allocation is
    /// attributed to the `(method, tier)` executing it, with per-bci and
    /// per-opcode hot-spot buckets for interpreted code. Each mutator
    /// carries its own recorder context, so concurrent threads never
    /// cross-charge; same-named cells merge in the hub, making totals the
    /// sum over threads.
    pub profiler: ProfilerHub,
    /// Flight-recorder dump path. When set, the VM tees every trace event
    /// into a bounded in-memory ring (alongside `trace`, which may stay
    /// `None`) and writes the ring to this path as `FLIGHT.json` when a
    /// run ends in a [`VmError`], a `--checked` sanitizer finding, or a
    /// panic — the last compiles/installs/deopts/evictions with sequence
    /// numbers and timestamps, for post-mortem analysis.
    pub flight: Option<PathBuf>,
}

impl VmOptions {
    /// Defaults with the given escape-analysis level.
    pub fn with_opt_level(level: OptLevel) -> Self {
        VmOptions {
            compile_threshold: 50,
            compiler: CompilerOptions::with_opt_level(level),
            fuel: None,
            max_deopts: 8,
            jit: true,
            jit_mode: JitMode::Sync,
            exec_mode: ExecMode::Linear,
            compile_workers: None,
            compile_queue_capacity: 128,
            trace: None,
            checked: false,
            metrics: MetricsHub::disabled(),
            metrics_snapshot_every: 64,
            profiler: ProfilerHub::disabled(),
            flight: None,
        }
    }

    /// A pure-interpreter configuration.
    pub fn interpreter_only() -> Self {
        VmOptions {
            jit: false,
            ..Self::with_opt_level(OptLevel::None)
        }
    }
}

impl Default for VmOptions {
    fn default() -> Self {
        Self::with_opt_level(OptLevel::Pea)
    }
}

/// Shared cache of interprocedural escape summaries, consulted by the
/// synchronous compile path of every mutator and every background compile
/// worker of one VM.
///
/// Summaries are a function of the program bytecode alone, so one
/// computation serves every compilation; the cache still follows the code
/// cache's invalidation discipline (cleared on method eviction, so a
/// recompile after re-profiling starts from a fresh slot) to keep the
/// summary lifetime observable and never longer than the compiled code it
/// informed.
///
/// Readers hold a [`SummaryView`] and resolve through
/// [`resolve_view`](Self::resolve_view): once populated, a resolve is one
/// `Acquire` generation load plus an `Arc` clone of the reader's replica —
/// no lock. The generation advances only on
/// [`invalidate`](Self::invalidate), which readers observe coherently (a
/// stale replica is never returned after its invalidation). Hits and
/// misses are counted in `compile.summary_cache_hits` /
/// `compile.summary_cache_misses`.
#[derive(Clone, Debug, Default)]
pub struct SummaryCache {
    /// Bumped on invalidation, under the slot lock; readers compare
    /// against their view with one `Acquire` load.
    generation: Arc<AtomicU64>,
    slot: Arc<Mutex<Option<Arc<ProgramSummaries>>>>,
}

/// A reader's replica of the [`SummaryCache`]: the generation it reflects
/// plus the summaries resolved at that generation. Lets repeated resolves
/// skip the cache lock entirely until an invalidation moves the
/// generation.
#[derive(Debug, Default)]
pub struct SummaryView {
    generation: u64,
    cached: Option<Arc<ProgramSummaries>>,
}

impl SummaryCache {
    pub fn new() -> SummaryCache {
        SummaryCache::default()
    }

    /// A fresh, unpopulated view at the current generation.
    pub fn view(&self) -> SummaryView {
        SummaryView {
            generation: self.generation.load(Ordering::Acquire),
            cached: None,
        }
    }

    /// Resolves through `view`: when the view is populated and the
    /// generation has not moved, the replica answers without touching the
    /// lock (counted as a hit — the shared slot is populated whenever a
    /// replica of the current generation exists). Otherwise falls back to
    /// the locked path and repopulates the view.
    pub fn resolve_view(
        &self,
        view: &mut SummaryView,
        program: &Program,
        metrics: &MetricsHub,
    ) -> Arc<ProgramSummaries> {
        if self.generation.load(Ordering::Acquire) == view.generation {
            if let Some(s) = &view.cached {
                if let Some(m) = metrics.on() {
                    m.compile.summary_cache_hits.inc();
                }
                return Arc::clone(s);
            }
        }
        let (generation, s) = self.resolve_slow(program, metrics);
        view.generation = generation;
        view.cached = Some(Arc::clone(&s));
        s
    }

    /// The cached summaries, computing and caching them on miss. Locked
    /// path; the generation is read under the slot lock (it only moves
    /// there), so the returned pair is coherent for view repopulation.
    fn resolve_slow(
        &self,
        program: &Program,
        metrics: &MetricsHub,
    ) -> (u64, Arc<ProgramSummaries>) {
        let mut slot = self.slot.lock().expect("summary cache poisoned");
        if let Some(s) = &*slot {
            if let Some(m) = metrics.on() {
                m.compile.summary_cache_hits.inc();
            }
            return (self.generation.load(Ordering::Acquire), Arc::clone(s));
        }
        if let Some(m) = metrics.on() {
            m.compile.summary_cache_misses.inc();
        }
        let s = Arc::new(ProgramSummaries::compute(program));
        *slot = Some(Arc::clone(&s));
        (self.generation.load(Ordering::Acquire), s)
    }

    /// The cached summaries, computing and caching them on miss (the
    /// viewless compatibility path; always takes the lock).
    pub fn resolve(&self, program: &Program, metrics: &MetricsHub) -> Arc<ProgramSummaries> {
        self.resolve_slow(program, metrics).1
    }

    /// Drops the cached summaries and advances the generation; every
    /// reader's next resolve goes through the locked path and recomputes.
    pub fn invalidate(&self) {
        let mut slot = self.slot.lock().expect("summary cache poisoned");
        *slot = None;
        self.generation.fetch_add(1, Ordering::Release);
    }

    /// Whether the cache currently holds summaries.
    pub fn is_populated(&self) -> bool {
        self.slot.lock().expect("summary cache poisoned").is_some()
    }
}

/// The state one VM shares across all of its mutator threads. Everything
/// here is thread-safe; per-thread state lives on [`Mutator`].
pub struct VmShared {
    program: Arc<Program>,
    /// Template options for spawned mutators: the user's options with the
    /// per-mutator sinks (`trace`, `flight`) stripped.
    options: VmOptions,
    /// The safepoint-published shared code store (see [`publish`]).
    code_cache: CodeCache,
    /// The mutator rendezvous: eviction storage is reclaimed only after
    /// every registered, running mutator polls past the retire generation.
    safepoints: SafepointRegistry,
    /// Background compilation pool, started lazily on the first request
    /// from any mutator.
    service: OnceLock<CompileService>,
    /// Static escape verdicts for the sanitizer, computed lazily on the
    /// first checked compilation.
    verdicts: OnceLock<Arc<pea_analysis::StaticVerdicts>>,
    /// Interprocedural summary cache shared with the compile service.
    summary_cache: SummaryCache,
    /// TLAB chunk allocator: every mutator heap draws bump-arena capacity
    /// from here in [`pea_runtime::TLAB_CELLS`]-sized chunks.
    chunks: Arc<ChunkAllocator>,
    /// `(qualified name, code length)` per method, precomputed once for
    /// constructing per-mutator profiler recorders.
    profile_names: Vec<(String, usize)>,
}

impl VmShared {
    /// The executed program.
    pub fn program(&self) -> &Arc<Program> {
        &self.program
    }

    /// The shared published-code store.
    pub fn code_cache(&self) -> &CodeCache {
        &self.code_cache
    }

    /// The safepoint rendezvous registry.
    pub fn safepoints(&self) -> &SafepointRegistry {
        &self.safepoints
    }

    /// The TLAB chunk allocator.
    pub fn chunk_allocator(&self) -> &Arc<ChunkAllocator> {
        &self.chunks
    }

    /// Constructs a mutator against this shared state. The main mutator
    /// records heap metrics directly (preserving single-threaded snapshot
    /// behavior); spawned mutators buffer thread-locally and fold on
    /// flush, so concurrent threads do not contend on the shared atomics.
    fn new_mutator(self: &Arc<VmShared>, mut options: VmOptions, main: bool) -> Mutator {
        let statics = Statics::new(&self.program.statics);
        let mut heap = Heap::new();
        heap.set_chunk_source(Arc::clone(&self.chunks));
        if options.metrics.is_enabled() {
            let classes = self.program.classes.iter().map(|c| c.name.as_str());
            heap.set_metrics(if main {
                HeapRecorder::new(&options.metrics, classes)
            } else {
                HeapRecorder::buffered(&options.metrics, classes)
            });
        }
        let profile = ProfileRecorder::new(
            &options.profiler,
            self.profile_names.iter().map(|(n, l)| (n.as_str(), *l)),
        );
        let flight = options.flight.as_ref().map(|_| {
            let ring = Arc::new(Mutex::new(FlightRecorder::new()));
            let tee = FlightTee {
                user: options.trace.take(),
                flight: Arc::clone(&ring),
            };
            options.trace = Some(SharedSink::new(tee).0);
            ring
        });
        let view = self.code_cache.view();
        let slot = self.safepoints.register(view.generation());
        let summaries = self.summary_cache.view();
        Mutator {
            shared: Arc::clone(self),
            heap,
            statics,
            profiles: ProfileStore::new(),
            pinned: HashMap::new(),
            bailed_out: HashSet::new(),
            deopt_counts: HashMap::new(),
            evicted: HashSet::new(),
            evict_epochs: HashMap::new(),
            mailbox: None,
            slot,
            view,
            summaries,
            profile,
            flight,
            options,
            depth: 0,
            snapshot_polls: 0,
            snapshot_seq: 0,
            last_snapshot: MetricsSnapshot::default(),
        }
    }
}

/// One mutator thread's execution state: interpreter state, heap,
/// profiles, pinned code cache, profiler context and trace tee. Obtained
/// from [`Vm::spawn_mutator`] (or implicitly as the [`Vm`]'s main
/// mutator); safe to move to another thread.
pub struct Mutator {
    shared: Arc<VmShared>,
    heap: Heap,
    statics: Statics,
    profiles: ProfileStore,
    /// The dispatch hot path: compiled methods this mutator installed.
    /// Thread-private — a compiled call performs no lock acquisition and
    /// no shared-memory access beyond its own map.
    pinned: HashMap<MethodId, Arc<CompiledMethod>>,
    bailed_out: HashSet<MethodId>,
    deopt_counts: HashMap<MethodId, u64>,
    /// Methods evicted at least once (a later compile is a recompile).
    evicted: HashSet<MethodId>,
    /// Per-method eviction epoch; background outcomes compiled before the
    /// mutator's latest eviction are discarded (their speculation is the
    /// one that kept deoptimizing).
    evict_epochs: HashMap<MethodId, u64>,
    /// This mutator's registration with the shared compile service,
    /// created lazily with the first background request.
    mailbox: Option<Arc<Mailbox>>,
    /// This mutator's slot in the safepoint rendezvous.
    slot: Arc<MutatorSlot>,
    /// Replica of the shared code store, refreshed non-blockingly at
    /// safepoints.
    view: CacheView,
    /// Replica of the summary cache.
    summaries: SummaryView,
    /// Cycle-attribution recorder (disabled by default: one branch per
    /// charge site, zero allocations). Per-mutator context — concurrent
    /// threads never cross-charge; cells merge in the shared hub.
    profile: ProfileRecorder,
    /// Flight-recorder ring, present when [`VmOptions::flight`] is set.
    /// Every trace event is teed into it via the sink chain.
    flight: Option<Arc<Mutex<FlightRecorder>>>,
    options: VmOptions,
    /// Re-entrancy depth (interpreter/compiled frames currently active).
    depth: usize,
    /// Installing safepoints seen since the last metrics snapshot event.
    snapshot_polls: u64,
    /// Sequence number of the next metrics snapshot event.
    snapshot_seq: u64,
    /// Baseline for metrics snapshot deltas.
    last_snapshot: MetricsSnapshot,
}

/// The virtual machine: the shared state plus its main mutator.
/// Dereferences to [`Mutator`], so single-threaded call sites are
/// unchanged.
pub struct Vm {
    shared: Arc<VmShared>,
    main: Mutator,
}

impl std::ops::Deref for Vm {
    type Target = Mutator;

    fn deref(&self) -> &Mutator {
        &self.main
    }
}

impl std::ops::DerefMut for Vm {
    fn deref_mut(&mut self) -> &mut Mutator {
        &mut self.main
    }
}

impl Vm {
    /// Creates a VM for `program`.
    pub fn new(program: Program, options: VmOptions) -> Vm {
        let program = Arc::new(program);
        let profile_names: Vec<(String, usize)> = (0..program.methods.len())
            .map(|i| {
                let m = program.method(MethodId::from_index(i));
                (m.qualified_name(&program), m.code.len())
            })
            .collect();
        let template = VmOptions {
            trace: None,
            flight: None,
            ..options.clone()
        };
        let shared = Arc::new(VmShared {
            program,
            options: template,
            code_cache: CodeCache::new(),
            safepoints: SafepointRegistry::new(),
            service: OnceLock::new(),
            verdicts: OnceLock::new(),
            summary_cache: SummaryCache::new(),
            chunks: Arc::new(ChunkAllocator::new()),
            profile_names,
        });
        let main = shared.new_mutator(options, true);
        Vm { shared, main }
    }

    /// The shared half of the VM (read access for tests and harnesses).
    pub fn shared(&self) -> &Arc<VmShared> {
        &self.shared
    }

    /// Spawns a fresh mutator on this VM: its own heap, statics, profiles
    /// and pinned code, sharing the program, the published-code store, the
    /// compile service and the metrics/profiler hubs. Move it to another
    /// thread and call into it exactly like a solo VM.
    pub fn spawn_mutator(&self) -> Mutator {
        self.shared.new_mutator(self.shared.options.clone(), false)
    }

    /// Spawns a mutator pre-warmed from the main mutator's **tiering
    /// state**: profiles, pinned compiled code, bailout and eviction
    /// records are cloned, so the new thread starts at the main mutator's
    /// tier without re-profiling. Application state (heap, statics) starts
    /// fresh — warm spawning shares code, not data.
    pub fn spawn_warm_mutator(&self) -> Mutator {
        self.main.fork()
    }

    /// Runs `f(thread_index, &mut mutator)` on `n` freshly spawned
    /// mutators, one OS thread each, and returns the results in thread
    /// order. Panics propagate.
    pub fn run_threads<T, F>(&self, n: usize, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize, &mut Mutator) -> T + Sync,
    {
        let mutators = (0..n).map(|_| self.spawn_mutator()).collect();
        run_mutators(mutators, f)
    }

    /// [`run_threads`](Self::run_threads) over pre-warmed mutators (see
    /// [`spawn_warm_mutator`](Self::spawn_warm_mutator)).
    pub fn run_threads_warm<T, F>(&self, n: usize, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize, &mut Mutator) -> T + Sync,
    {
        let mutators = (0..n).map(|_| self.spawn_warm_mutator()).collect();
        run_mutators(mutators, f)
    }
}

/// Runs each mutator on its own scoped thread and collects results in
/// thread order; a panicking thread re-raises on the caller.
fn run_mutators<T, F>(mutators: Vec<Mutator>, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize, &mut Mutator) -> T + Sync,
{
    let f = &f;
    std::thread::scope(|scope| {
        let handles: Vec<_> = mutators
            .into_iter()
            .enumerate()
            .map(|(i, mut m)| scope.spawn(move || f(i, &mut m)))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().unwrap_or_else(|e| std::panic::resume_unwind(e)))
            .collect()
    })
}

impl Mutator {
    /// The shared half of the VM this mutator belongs to.
    pub fn vm_shared(&self) -> &Arc<VmShared> {
        &self.shared
    }

    /// Counter snapshot of the shared published-code store.
    pub fn code_cache_stats(&self) -> CacheStats {
        self.shared.code_cache.stats()
    }

    /// Spawns a mutator pre-warmed from this one's tiering state (see
    /// [`Vm::spawn_warm_mutator`]).
    pub fn fork(&self) -> Mutator {
        let mut m = self.shared.new_mutator(self.shared.options.clone(), false);
        m.profiles = self.profiles.clone();
        m.pinned = self.pinned.clone();
        m.bailed_out = self.bailed_out.clone();
        m.deopt_counts = self.deopt_counts.clone();
        m.evicted = self.evicted.clone();
        m.evict_epochs = self.evict_epochs.clone();
        m
    }

    /// Attaches (or replaces) this mutator's event-log sink after
    /// construction.
    ///
    /// In background mode, attach the sink before the first method turns
    /// hot: the compile service captures the sink when the mutator's
    /// mailbox registers. When the flight recorder is active, the new sink
    /// is teed through it so the ring keeps seeing every event.
    pub fn set_trace(&mut self, sink: SharedSink) {
        self.options.trace = Some(match &self.flight {
            Some(ring) => {
                let tee = FlightTee {
                    user: Some(sink),
                    flight: Arc::clone(ring),
                };
                SharedSink::new(tee).0
            }
            None => sink,
        });
    }

    /// The cycle-attribution profiler hub (disabled unless enabled via
    /// [`VmOptions::profiler`]); snapshot it for reports.
    pub fn profiler_hub(&self) -> &ProfilerHub {
        self.profile.hub()
    }

    /// The flight-recorder ring contents in sequence order, when the
    /// recorder is active.
    pub fn flight_entries(&self) -> Option<Vec<FlightEntry>> {
        self.flight.as_ref().map(|ring| match ring.lock() {
            Ok(f) => f.entries(),
            Err(poisoned) => poisoned.into_inner().entries(),
        })
    }

    /// The flight ring serialized as `pea-flight/1` JSON, when active.
    pub fn flight_json(&self) -> Option<String> {
        self.flight.as_ref().map(|ring| match ring.lock() {
            Ok(f) => f.dump_json(),
            Err(poisoned) => poisoned.into_inner().dump_json(),
        })
    }

    /// Writes the flight ring to the configured dump path. Called on
    /// [`VmError`], sanitizer findings and panics; best-effort (a failed
    /// write must not mask the original failure).
    fn dump_flight(&self) {
        let (Some(json), Some(path)) = (self.flight_json(), &self.options.flight) else {
            return;
        };
        let _ = std::fs::write(path, json);
    }

    /// The executed program.
    pub fn program(&self) -> &Program {
        &self.shared.program
    }

    /// Cumulative execution statistics.
    pub fn stats(&self) -> Stats {
        self.heap.stats
    }

    /// The managed heap (read access for tests and harnesses).
    pub fn heap(&self) -> &Heap {
        &self.heap
    }

    /// Gathered profiles (read access).
    pub fn profiles(&self) -> &ProfileStore {
        &self.profiles
    }

    /// Replaces the profile store with an imported one (see
    /// [`ProfileStore::import_json`]): methods that were hot in a previous
    /// run cross the compile threshold immediately.
    pub fn import_profiles(&mut self, profiles: ProfileStore) {
        self.profiles = profiles;
    }

    /// The VM's metrics handle.
    pub fn metrics(&self) -> &MetricsHub {
        &self.options.metrics
    }

    /// Static variable storage (read access for tests and harnesses).
    pub fn statics_ref(&self) -> &Statics {
        &self.statics
    }

    /// Number of methods currently JIT-compiled (pinned by this mutator).
    pub fn compiled_method_count(&self) -> usize {
        self.pinned.len()
    }

    /// The compiled form of `method`, if this mutator has it pinned.
    pub fn compiled(&self, method: MethodId) -> Option<&CompiledMethod> {
        self.pinned.get(&method).map(Arc::as_ref)
    }

    /// Methods currently pinned (for artifact comparisons).
    pub fn compiled_methods(&self) -> Vec<MethodId> {
        let mut methods: Vec<MethodId> = self.pinned.keys().copied().collect();
        methods.sort_unstable_by_key(|m| m.index());
        methods
    }

    /// Resets static variables to defaults (heap contents and statistics
    /// are preserved; benchmarks use deltas).
    pub fn reset_statics(&mut self) {
        self.statics.reset(&self.shared.program.statics);
    }

    /// Calls a static method by name.
    ///
    /// # Errors
    ///
    /// [`VmError::NoSuchMethod`] for unknown names; otherwise whatever the
    /// program raises.
    pub fn call_entry(&mut self, name: &str, args: &[Value]) -> Result<Option<Value>, VmError> {
        let method = self
            .shared
            .program
            .static_method_by_name(name)
            .ok_or_else(|| VmError::NoSuchMethod(name.to_string()))?;
        let result = match self.call(method, args.to_vec()) {
            // An exception escaped every frame: report it structurally
            // (class name + int fields) — raw heap ids differ between
            // tiers when scalar replacement elides allocations.
            Err(VmError::Thrown(obj)) => Err(self.uncaught(obj)),
            result => result,
        };
        if result.is_err() {
            self.dump_flight();
        }
        result
    }

    /// Converts an in-flight exception object that escaped the entry call
    /// into its structural [`VmError::UncaughtException`] identity.
    fn uncaught(&self, obj: ObjRef) -> VmError {
        match &self.heap.cell(obj).object {
            HeapObject::Instance { class, fields } => VmError::UncaughtException {
                class: self.shared.program.classes[class.index()].name.clone(),
                fields: fields
                    .iter()
                    .filter_map(|v| match v {
                        Value::Int(i) => Some(*i),
                        _ => None,
                    })
                    .collect(),
            },
            HeapObject::Array { .. } => VmError::Internal("thrown array".into()),
        }
    }

    /// Calls a method through the tiering policy.
    ///
    /// # Errors
    ///
    /// Whatever the method raises.
    pub fn call(&mut self, method: MethodId, args: Vec<Value>) -> Result<Option<Value>, VmError> {
        self.depth += 1;
        // Outermost call: establish a base attribution context so cycles
        // charged before a tier takes over (call overhead, unwinding) are
        // never dropped — profiler totals must reconcile exactly with
        // `stats.cycles` — and join the safepoint rendezvous (parked
        // mutators are excluded from it so idle threads cannot stall
        // storage reclamation).
        let base = if self.depth == 1 {
            self.slot.unpark();
            self.poll_publication();
            Some(self.profile.enter(method.index(), Tier::Interp))
        } else {
            None
        };
        let result = self.call_inner(method, args);
        if let Some(prev) = base {
            self.profile.restore(prev);
            self.heap.flush_metrics();
            self.poll_publication();
            self.slot.park();
        }
        self.depth -= 1;
        result
    }

    /// Safepoint poll against the shared code store: opportunistically
    /// refreshes this mutator's replica (non-blocking — under writer
    /// contention the stale replica is kept), advances its rendezvous
    /// slot, and reclaims retired storage whose rendezvous completed. The
    /// no-movement case is two relaxed/acquire loads.
    fn poll_publication(&mut self) {
        let cache = &self.shared.code_cache;
        if cache.generation() != self.view.generation() && cache.refresh(&mut self.view) {
            self.slot.poll(self.view.generation());
        }
        cache.maybe_reclaim(&self.shared.safepoints);
    }

    fn call_inner(&mut self, method: MethodId, args: Vec<Value>) -> Result<Option<Value>, VmError> {
        if self.depth > 400 {
            return Err(VmError::Internal("call stack overflow".into()));
        }
        let program = Arc::clone(&self.shared.program);
        // Method-entry safepoint: install anything the background
        // compilers finished since the last poll.
        if self.options.jit_mode == JitMode::Background {
            self.drain_background();
        }
        if let Some(code) = self.pinned.get(&method).cloned() {
            // The dispatch hot path: thread-private map, no locks, no
            // shared loads.
            return self.run_compiled(&program, &code, args);
        }
        if self.options.jit
            && !self.bailed_out.contains(&method)
            && self.profiles.invocation_count(method) >= self.options.compile_threshold
        {
            match self.options.jit_mode {
                JitMode::Sync => {
                    if self.evicted.contains(&method) {
                        if let Some(m) = self.options.metrics.on() {
                            m.vm.recompiles.inc();
                        }
                        if let Some(sink) = &self.options.trace {
                            sink.emit_event(&TraceEvent::Recompile {
                                method: program.method(method).qualified_name(&program),
                            });
                        }
                    }
                    // Promotion is the only point a mutator consults the
                    // shared store: an artifact published by another
                    // mutator from an identical profile snapshot (equal
                    // fingerprints) is reused, with its buffered decision
                    // events replayed into this mutator's trace, metrics
                    // and sanitizer so behavior is byte-identical to
                    // having compiled it here.
                    let fingerprint = self.profile_fingerprint();
                    let traced = self.needs_compile_events();
                    let hit =
                        self.shared
                            .code_cache
                            .lookup(&mut self.view, method, fingerprint, traced);
                    if let Some(hit) = hit {
                        self.slot.poll(self.view.generation());
                        return self.install_published(&program, method, &hit, args);
                    }
                    let copts = self.effective_compiler_options(&program);
                    let (compiled, events) = if traced {
                        // Buffer the decision events so the sanitizer and
                        // the metrics fold can inspect them; forward to the
                        // user's sink after.
                        let mut buffer = pea_trace::MemorySink::new();
                        let result = compile_traced(
                            &program,
                            method,
                            Some(&self.profiles),
                            &copts,
                            &mut buffer,
                        );
                        if self.options.checked {
                            if let Ok(code) = &result {
                                self.sanitize(&program, method, &code.graph, &buffer.events);
                            }
                        }
                        if let Some(m) = self.options.metrics.on() {
                            record_compile_metrics(m, &buffer.events, result.as_ref());
                        }
                        if let Some(sink) = &self.options.trace {
                            sink.with_sink(|s| {
                                for event in &buffer.events {
                                    s.emit(event);
                                }
                            });
                        }
                        (result, buffer.events)
                    } else {
                        (
                            compile(&program, method, Some(&self.profiles), &copts),
                            Vec::new(),
                        )
                    };
                    match compiled {
                        Ok(code) => {
                            self.heap.stats.compiles += 1;
                            self.profile.record_install();
                            if let Some(m) = self.options.metrics.on() {
                                m.vm.installs.inc();
                                if code.linear.is_some() {
                                    m.vm.linear_installs.inc();
                                }
                            }
                            let code = Arc::new(code);
                            self.pinned.insert(method, Arc::clone(&code));
                            self.shared.code_cache.publish(
                                method,
                                CachedCompile {
                                    result: Ok(Arc::clone(&code)),
                                    fingerprint,
                                    traced,
                                    events,
                                    findings: Vec::new(),
                                },
                            );
                            return self.run_compiled(&program, &code, args);
                        }
                        Err(bailout) => {
                            self.bailed_out.insert(method);
                            // Publish the bailout too: another mutator at
                            // the same fingerprint replays it instead of
                            // re-running a doomed compilation.
                            self.shared.code_cache.publish(
                                method,
                                CachedCompile {
                                    result: Err(bailout),
                                    fingerprint,
                                    traced,
                                    events,
                                    findings: Vec::new(),
                                },
                            );
                        }
                    }
                }
                JitMode::Background => {
                    // Snapshot the profiles and keep interpreting; the
                    // artifact is installed at a later safepoint.
                    self.request_background(method);
                }
            }
        }
        interpret(&program, self, method, args)
    }

    /// Installs a store hit: replays the publisher's buffered decision
    /// events into this mutator's sanitizer, metrics fold and trace sink —
    /// exactly what compiling locally would have produced — then pins and
    /// runs the artifact (or records the bailout and interprets).
    fn install_published(
        &mut self,
        program: &Program,
        method: MethodId,
        hit: &CachedCompile,
        args: Vec<Value>,
    ) -> Result<Option<Value>, VmError> {
        // Publishers panic on their own findings before publishing, so
        // this is defensive; replaying keeps the invariant that a checked
        // consumer behaves identically to a checked compiler.
        if self.options.checked && !hit.findings.is_empty() {
            self.dump_flight();
            let name = program.method(method).qualified_name(program);
            let lines: Vec<String> = hit.findings.iter().map(|f| format!("  - {f}")).collect();
            panic!(
                "PEA decision sanitizer: {} inconsistenc{} compiling {name}:\n{}",
                hit.findings.len(),
                if hit.findings.len() == 1 { "y" } else { "ies" },
                lines.join("\n"),
            );
        }
        if self.options.checked {
            if let Ok(code) = &hit.result {
                self.sanitize(program, method, &code.graph, &hit.events);
            }
        }
        if let Some(m) = self.options.metrics.on() {
            record_compile_metrics(m, &hit.events, hit.result.as_ref().map(|c| c.as_ref()));
        }
        if let Some(sink) = &self.options.trace {
            sink.with_sink(|s| {
                for event in &hit.events {
                    s.emit(event);
                }
            });
        }
        match &hit.result {
            Ok(code) => {
                self.heap.stats.compiles += 1;
                self.profile.record_install();
                if let Some(m) = self.options.metrics.on() {
                    m.vm.installs.inc();
                    if code.linear.is_some() {
                        m.vm.linear_installs.inc();
                    }
                }
                let code = Arc::clone(code);
                self.pinned.insert(method, Arc::clone(&code));
                self.run_compiled(program, &code, args)
            }
            Err(_) => {
                self.bailed_out.insert(method);
                interpret(program, self, method, args)
            }
        }
    }

    /// Hash of the current profile snapshot for `method`'s compilation
    /// inputs — the publication identity in the shared store. Computed
    /// over the store's deterministic JSON export, so equal profiling
    /// histories hash equal across threads.
    fn profile_fingerprint(&self) -> u64 {
        let mut h = DefaultHasher::new();
        self.profiles.export_json().hash(&mut h);
        h.finish()
    }

    /// Whether this mutator must see a compilation's buffered decision
    /// events (to replay into the sanitizer, the metrics fold, or the
    /// trace sink). Consumers needing events skip untraced store entries
    /// and compile themselves.
    fn needs_compile_events(&self) -> bool {
        self.options.checked || self.options.trace.is_some() || self.options.metrics.is_enabled()
    }

    /// The compiler options for one compilation: when the configuration
    /// consumes interprocedural summaries (`pea-pre-ipa`, `pea-pre-flow`
    /// or the summary inline policy), the shared [`SummaryCache`] is
    /// resolved through this mutator's view (lock-free once populated)
    /// and injected so the pipeline never recomputes per method.
    fn effective_compiler_options(&mut self, program: &Program) -> CompilerOptions {
        let mut copts = self.options.compiler.clone();
        if copts.needs_summaries() && copts.summaries.is_none() {
            copts.summaries = Some(self.shared.summary_cache.resolve_view(
                &mut self.summaries,
                program,
                &self.options.metrics,
            ));
        }
        copts
    }

    /// The VM's interprocedural summary cache (shared with the background
    /// compile service; read access for tests and harnesses).
    pub fn summary_cache(&self) -> &SummaryCache {
        &self.shared.summary_cache
    }

    /// The static escape verdicts, computed over the whole program on
    /// first use and reused for every checked compilation of every
    /// mutator.
    fn static_verdicts(&self) -> Arc<pea_analysis::StaticVerdicts> {
        Arc::clone(
            self.shared.verdicts.get_or_init(|| {
                Arc::new(pea_analysis::StaticVerdicts::analyze(&self.shared.program))
            }),
        )
    }

    /// Cross-checks one finished compilation against the static verdicts
    /// and panics on any inconsistency (checked mode is a debugging/CI
    /// tool: an inconsistency is a compiler bug, not a user error).
    fn sanitize(
        &self,
        program: &Program,
        method: MethodId,
        graph: &pea_ir::Graph,
        events: &[TraceEvent],
    ) {
        let verdicts = self.static_verdicts();
        let findings = pea_analysis::check_compilation(program, &verdicts, method, graph, events);
        if !findings.is_empty() {
            self.dump_flight();
            let name = program.method(method).qualified_name(program);
            let lines: Vec<String> = findings.iter().map(|f| format!("  - {f}")).collect();
            panic!(
                "PEA decision sanitizer: {} inconsistenc{} compiling {name}:\n{}",
                findings.len(),
                if findings.len() == 1 { "y" } else { "ies" },
                lines.join("\n"),
            );
        }
    }

    /// Enqueues a background compilation of `method` (deduplicated per
    /// mailbox by the service). The profile snapshot makes the artifact a
    /// deterministic function of the request: later interpreter profiling
    /// cannot leak into an in-flight compilation. The service is shared by
    /// every mutator and started by whichever requests first.
    fn request_background(&mut self, method: MethodId) {
        let shared = Arc::clone(&self.shared);
        let service = shared.service.get_or_init(|| {
            CompileService::start(
                Arc::clone(&shared.program),
                shared.options.compiler.clone(),
                &CompileServiceOptions {
                    workers: shared.options.compile_workers,
                    queue_capacity: shared.options.compile_queue_capacity,
                    checked: shared.options.checked,
                    metrics: shared.options.metrics.clone(),
                    summary_cache: Some(shared.summary_cache.clone()),
                },
            )
        });
        if self.mailbox.is_none() {
            self.mailbox = Some(service.register_mailbox(self.options.trace.clone()));
        }
        let mailbox = Arc::clone(self.mailbox.as_ref().expect("mailbox just registered"));
        let hotness = self.profiles.invocation_count(method);
        let epoch = self.evict_epochs.get(&method).copied().unwrap_or(0);
        let fingerprint = self.profile_fingerprint();
        let snapshot = self.profiles.clone();
        if service.request(&mailbox, method, hotness, epoch, fingerprint, snapshot)
            && self.evicted.contains(&method)
        {
            if let Some(m) = self.options.metrics.on() {
                m.vm.recompiles.inc();
            }
            if let Some(sink) = &self.options.trace {
                sink.emit_event(&TraceEvent::Recompile {
                    method: self
                        .shared
                        .program
                        .method(method)
                        .qualified_name(&self.shared.program),
                });
            }
        }
    }

    /// Installs finished background compilations (a safepoint action:
    /// called at method entry and interpreter loop back-edges). Only this
    /// mutator's mailbox is drained — its tiering schedule stays a
    /// function of its own execution. Installed artifacts are also
    /// published (untraced) to the shared store so evictions retire them
    /// through the rendezvous.
    fn drain_background(&mut self) {
        let shared = Arc::clone(&self.shared);
        let Some(service) = shared.service.get() else {
            return;
        };
        let Some(mailbox) = self.mailbox.clone() else {
            return;
        };
        for outcome in service.take(&mailbox) {
            let current_epoch = self.evict_epochs.get(&outcome.method).copied().unwrap_or(0);
            if outcome.epoch != current_epoch {
                // Compiled before the method's latest eviction: the
                // speculation that kept deoptimizing. Drop it; the fresh
                // profile will trigger a new request.
                if let Some(m) = self.options.metrics.on() {
                    m.compile.stale_dropped.inc();
                }
                continue;
            }
            // Workers never panic (that would wedge `wait_idle`); sanitizer
            // findings surface here, at the installing safepoint.
            if !outcome.findings.is_empty() {
                self.dump_flight();
                let name = shared
                    .program
                    .method(outcome.method)
                    .qualified_name(&shared.program);
                panic!(
                    "PEA decision sanitizer: {} inconsistenc{} in background compile of {name}:\n{}",
                    outcome.findings.len(),
                    if outcome.findings.len() == 1 { "y" } else { "ies" },
                    outcome
                        .findings
                        .iter()
                        .map(|f| format!("  - {f}"))
                        .collect::<Vec<_>>()
                        .join("\n"),
                );
            }
            match outcome.result {
                Ok(code) => {
                    self.heap.stats.compiles += 1;
                    self.profile.record_install();
                    if let Some(m) = self.options.metrics.on() {
                        m.vm.installs.inc();
                        if code.linear.is_some() {
                            m.vm.linear_installs.inc();
                        }
                        m.compile
                            .queue_latency_us
                            .record(outcome.enqueued_at.elapsed().as_micros() as u64);
                    }
                    let code = Arc::new(code);
                    self.pinned.insert(outcome.method, Arc::clone(&code));
                    shared.code_cache.publish(
                        outcome.method,
                        CachedCompile {
                            result: Ok(code),
                            fingerprint: outcome.fingerprint,
                            traced: false,
                            events: Vec::new(),
                            findings: Vec::new(),
                        },
                    );
                }
                Err(_) => {
                    self.bailed_out.insert(outcome.method);
                }
            }
        }
        self.maybe_emit_metrics_snapshot();
    }

    /// Emits a [`TraceEvent::MetricsSnapshot`] delta into the trace sink
    /// every `metrics_snapshot_every` installing safepoints (background
    /// mode only — that is the only caller of [`Self::drain_background`]).
    fn maybe_emit_metrics_snapshot(&mut self) {
        let every = self.options.metrics_snapshot_every;
        if every == 0 || !self.options.metrics.is_enabled() || self.options.trace.is_none() {
            return;
        }
        self.snapshot_polls += 1;
        if self.snapshot_polls < every {
            return;
        }
        self.snapshot_polls = 0;
        self.emit_metrics_snapshot();
    }

    /// Unconditionally emits one metrics snapshot delta (skipping empty
    /// deltas), advancing the snapshot baseline.
    fn emit_metrics_snapshot(&mut self) {
        let (Some(snapshot), Some(sink)) = (self.options.metrics.snapshot(), &self.options.trace)
        else {
            return;
        };
        let counters = snapshot.delta(&self.last_snapshot).delta_lines();
        if counters.is_empty() {
            return;
        }
        sink.emit_event(&TraceEvent::MetricsSnapshot {
            seq: self.snapshot_seq,
            counters,
        });
        self.snapshot_seq += 1;
        self.last_snapshot = snapshot;
    }

    /// Blocks until every requested background compilation has finished,
    /// then installs this mutator's artifacts. Returns the number of
    /// methods now pinned. No-op in sync mode.
    pub fn await_background_compiles(&mut self) -> usize {
        let shared = Arc::clone(&self.shared);
        if let Some(service) = shared.service.get() {
            service.wait_idle();
            self.drain_background();
            // Close the metrics stream with a final delta so the event log
            // accounts for everything up to the settle point.
            self.emit_metrics_snapshot();
        }
        self.pinned.len()
    }

    /// Compiles every method of the program on `parallelism` threads from
    /// the current profiles and installs the results, skipping methods
    /// already compiled. Methods that bail out are marked interpreted.
    /// Returns the number of methods installed.
    ///
    /// This is the batch counterpart of the background service: workloads
    /// with a known method universe (benchmark corpora, ahead-of-time
    /// warmup) compile everything at once instead of discovering hot
    /// methods one threshold crossing at a time.
    pub fn precompile_all(&mut self, parallelism: usize) -> usize {
        let parallelism = parallelism.max(1);
        let program = Arc::clone(&self.shared.program);
        let options = self.effective_compiler_options(&program);
        let options = &options;
        let profiles = &self.profiles;
        let metrics = &self.options.metrics;
        let methods: Vec<MethodId> = (0..program.methods.len())
            .map(MethodId::from_index)
            .filter(|m| !self.pinned.contains_key(m))
            .collect();
        let next = AtomicUsize::new(0);
        let results: Mutex<Vec<(MethodId, Result<CompiledMethod, Bailout>)>> =
            Mutex::new(Vec::with_capacity(methods.len()));
        std::thread::scope(|scope| {
            for _ in 0..parallelism.min(methods.len().max(1)) {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    let Some(&method) = methods.get(i) else {
                        break;
                    };
                    // Metrics fold needs the decision events, so the
                    // enabled path compiles through a private buffer
                    // (atomics make the fold safe from worker threads).
                    let r = if let Some(m) = metrics.on() {
                        let mut buffer = pea_trace::MemorySink::new();
                        let r =
                            compile_traced(&program, method, Some(profiles), options, &mut buffer);
                        record_compile_metrics(m, &buffer.events, r.as_ref());
                        r
                    } else {
                        compile(&program, method, Some(profiles), options)
                    };
                    results
                        .lock()
                        .expect("precompile results poisoned")
                        .push((method, r));
                });
            }
        });
        let mut results = results.into_inner().expect("precompile results poisoned");
        // Install in method order so the cache state is independent of
        // thread completion order.
        results.sort_unstable_by_key(|(m, _)| m.index());
        let mut installed = 0;
        for (method, result) in results {
            match result {
                Ok(code) => {
                    self.heap.stats.compiles += 1;
                    self.profile.record_install();
                    if let Some(m) = self.options.metrics.on() {
                        m.vm.installs.inc();
                        if code.linear.is_some() {
                            m.vm.linear_installs.inc();
                        }
                    }
                    self.pinned.insert(method, Arc::new(code));
                    installed += 1;
                }
                Err(_) => {
                    self.bailed_out.insert(method);
                }
            }
        }
        installed
    }

    fn run_compiled(
        &mut self,
        program: &Program,
        code: &CompiledMethod,
        args: Vec<Value>,
    ) -> Result<Option<Value>, VmError> {
        let tier = if self.options.exec_mode == ExecMode::Linear && code.linear.is_some() {
            Tier::Linear
        } else {
            Tier::Graph
        };
        self.profile.record_invocation(code.method.index(), tier);
        let prev_ctx = self.profile.enter(code.method.index(), tier);
        if let Some(m) = self.options.metrics.on() {
            m.vm.invocations_compiled.inc();
        }
        let outcome = if self.options.exec_mode == ExecMode::Linear {
            if code.linear.is_some() {
                if let Some(m) = self.options.metrics.on() {
                    m.vm.linear_exec.inc();
                }
                pea_compiler::linear::execute(program, self, code, &args)
            } else {
                if let Some(m) = self.options.metrics.on() {
                    m.vm.graph_exec_fallback.inc();
                }
                evaluate(program, self, code, &args)
            }
        } else {
            evaluate(program, self, code, &args)
        };
        let outcome = match outcome {
            Ok(o) => o,
            Err(e) => {
                self.profile.restore(prev_ctx);
                return Err(e);
            }
        };
        match outcome {
            EvalOutcome::Return(v) => {
                self.profile.restore(prev_ctx);
                Ok(v)
            }
            EvalOutcome::Deopt {
                reason,
                frames,
                rematerialized,
            } => {
                self.heap.stats.deopts += 1;
                // Attributed to the compiled (method, tier) that failed
                // its speculation — the context is still entered here.
                self.profile.record_deopt();
                let method = code.method;
                let count = self.deopt_counts.entry(method).or_insert(0);
                *count += 1;
                let deopts = *count;
                if let Some(m) = self.options.metrics.on() {
                    m.vm.deopts.inc();
                    m.vm.rematerialized_objects.add(rematerialized.len() as u64);
                }
                if let Some(sink) = &self.options.trace {
                    // The innermost deopt frame names the site actually
                    // executing when the guard failed (it differs from the
                    // compiled root under inlining).
                    let (site, bci) = deopt_site(program, &frames, method);
                    // DeoptTaken first: the narrow guard-failure marker,
                    // then the generic deopt record with the inventory.
                    sink.emit_event(&TraceEvent::DeoptTaken {
                        method: program.method(method).qualified_name(program),
                        site: site.clone(),
                        bci,
                        reason: reason.to_string(),
                    });
                    sink.emit_event(&TraceEvent::Deopt {
                        method: program.method(method).qualified_name(program),
                        site,
                        bci,
                        reason: reason.to_string(),
                        rematerialized,
                    });
                }
                if deopts >= self.options.max_deopts {
                    // Evict and re-profile: the speculation no longer
                    // matches reality. Local state is dropped immediately;
                    // the shared store retires its published variants,
                    // reclaimed after every mutator's rendezvous poll.
                    self.pinned.remove(&method);
                    self.bailed_out.remove(&method);
                    self.profiles.clear_method(method);
                    self.deopt_counts.remove(&method);
                    self.evicted.insert(method);
                    // Invalidate in-flight background compilations of this
                    // method: they speculate from the profile that just
                    // failed.
                    *self.evict_epochs.entry(method).or_insert(0) += 1;
                    // Same discipline for the summary cache: the next
                    // compilation (sync or background) re-resolves.
                    self.shared.summary_cache.invalidate();
                    self.shared.code_cache.evict(method);
                    if let Some(m) = self.options.metrics.on() {
                        m.vm.evictions.inc();
                    }
                    if let Some(sink) = &self.options.trace {
                        sink.emit_event(&TraceEvent::Evict {
                            method: program.method(method).qualified_name(program),
                            deopts,
                        });
                    }
                }
                self.profile.restore(prev_ctx);
                resume(program, self, to_interp_frames(frames))
            }
            EvalOutcome::Unwind {
                exception,
                frames,
                rematerialized,
            } => {
                // An out-of-line callee threw into this compiled frame.
                // This is an exception transfer, not a misspeculation:
                // record the deopt (frames are rebuilt and objects
                // rematerialized exactly as for a guard failure) but do
                // not count it toward eviction — the compiled code would
                // deopt here for every throw, and exception-heavy but
                // correctly-speculated methods must stay compiled.
                self.heap.stats.deopts += 1;
                self.profile.record_deopt();
                if let Some(m) = self.options.metrics.on() {
                    m.vm.deopts.inc();
                    m.vm.rematerialized_objects.add(rematerialized.len() as u64);
                }
                if let Some(sink) = &self.options.trace {
                    let (site, bci) = deopt_site(program, &frames, code.method);
                    sink.emit_event(&TraceEvent::Deopt {
                        method: program.method(code.method).qualified_name(program),
                        site,
                        bci,
                        reason: "exception-unwind".to_string(),
                        rematerialized,
                    });
                }
                self.profile.restore(prev_ctx);
                unwind(program, self, to_interp_frames(frames), exception)
            }
        }
    }

    fn charge_cycles(&mut self, cycles: u64) -> Result<(), VmError> {
        self.profile.charge(cycles);
        self.heap.stats.cycles += cycles;
        match self.options.fuel {
            Some(limit) if self.heap.stats.cycles > limit => Err(VmError::OutOfFuel),
            _ => Ok(()),
        }
    }
}

impl Drop for Mutator {
    fn drop(&mut self) {
        // Fold any buffered heap counters, leave the rendezvous (a dead
        // mutator must not stall reclamation), and — when a panic anywhere
        // above the VM (sanitizer, compiler invariant, test assertion)
        // unwinds through this drop — persist the flight ring so the
        // post-mortem has the last events leading up to it.
        self.heap.flush_metrics();
        self.slot.retire();
        if std::thread::panicking() {
            self.dump_flight();
        }
    }
}

/// Tees every trace event into the flight ring alongside the user's sink
/// (which may be absent: the flight recorder works without an event log
/// attached).
struct FlightTee {
    user: Option<SharedSink>,
    flight: Arc<Mutex<FlightRecorder>>,
}

impl TraceSink for FlightTee {
    fn emit(&mut self, event: &TraceEvent) {
        if let Some(user) = &self.user {
            user.emit_event(event);
        }
        if let Ok(mut ring) = self.flight.lock() {
            ring.emit(event);
        }
    }
}

/// The `(site, bci)` identity of a deoptimization: the qualified name and
/// bytecode index of the **innermost** rebuilt frame — the code actually
/// executing when the guard failed or the exception crossed the compiled
/// boundary. Under inlining this differs from the compiled root method;
/// both tiers rebuild the same frame chain, so the identity is
/// tier-independent. Falls back to `(root, 0)` for an empty chain.
fn deopt_site(program: &Program, frames: &[DeoptFrame], root: MethodId) -> (String, u32) {
    frames.last().map_or_else(
        || (program.method(root).qualified_name(program), 0),
        |f| (program.method(f.method).qualified_name(program), f.bci),
    )
}

/// Converts the deopt frame chain of a compiled method (outermost first)
/// into interpreter frames for `resume`/`unwind`.
fn to_interp_frames(frames: Vec<DeoptFrame>) -> Vec<Frame> {
    frames
        .into_iter()
        .map(|f| Frame {
            method: f.method,
            bci: f.bci,
            locals: f.locals,
            stack: f.stack,
            // Only synchronized-method monitors are released
            // automatically on frame return; explicit pairs are
            // re-executed by the bytecode itself.
            locked: f
                .locked
                .into_iter()
                .filter_map(|(obj, sync)| sync.then_some(obj))
                .collect(),
        })
        .collect()
}

/// Folds one compilation's buffered decision events (plus its result) into
/// the metrics registry. This is the same stream the trace
/// [`pea_trace::SiteAggregator`] consumes, so the `pea.*` totals and the
/// per-site trace aggregation cross-check exactly — which the test suite
/// asserts on every corpus program.
pub(crate) fn record_compile_metrics(
    m: &VmMetrics,
    events: &[TraceEvent],
    result: Result<&CompiledMethod, &Bailout>,
) {
    for event in events {
        match event {
            TraceEvent::CompileStart { .. } => m.compile.started.inc(),
            TraceEvent::CompileEnd { phases, .. } => {
                m.compile.build_us.record(phases.build);
                m.compile.canonicalize_us.record(phases.canonicalize);
                m.compile.escape_analysis_us.record(phases.escape_analysis);
                m.compile.schedule_us.record(phases.schedule);
                m.compile.lower_us.record(phases.lower);
                m.compile.total_us.record(phases.total());
            }
            TraceEvent::Virtualized { .. } => m.pea.virtualized.inc(),
            TraceEvent::Materialized { .. } => m.pea.materialized.inc(),
            TraceEvent::LockElided { .. } => m.pea.locks_elided.inc(),
            TraceEvent::LoadElided { .. } => m.pea.loads_elided.inc(),
            TraceEvent::StoreElided { .. } => m.pea.stores_elided.inc(),
            TraceEvent::CheckFolded { .. } => m.pea.checks_folded.inc(),
            TraceEvent::PhiCreated { .. } => m.pea.phis_created.inc(),
            TraceEvent::LoopRound { .. } => m.pea.loop_rounds.inc(),
            TraceEvent::InlineDecision { inlined, .. } => {
                if *inlined {
                    m.compile.inline_accepted.inc();
                } else {
                    m.compile.inline_rejected.inc();
                }
            }
            TraceEvent::DevirtGuard { .. } => m.compile.devirt_guards.inc(),
            // VM-side events are counted at their emission sites;
            // summaries are program-wide, not per-compilation.
            TraceEvent::SummaryComputed { .. }
            | TraceEvent::Deopt { .. }
            | TraceEvent::DeoptTaken { .. }
            | TraceEvent::Evict { .. }
            | TraceEvent::Recompile { .. }
            | TraceEvent::MetricsSnapshot { .. } => {}
        }
    }
    match result {
        Ok(code) => {
            m.compile.succeeded.inc();
            m.pea
                .prefiltered_sites
                .add(code.pea_result.prefiltered_allocs as u64);
        }
        Err(_) => m.compile.bailouts.inc(),
    }
}

impl InterpEnv for Mutator {
    fn heap(&mut self) -> &mut Heap {
        &mut self.heap
    }
    fn statics(&mut self) -> &mut Statics {
        &mut self.statics
    }
    fn profiles(&mut self) -> &mut ProfileStore {
        &mut self.profiles
    }
    fn charge(&mut self, cycles: u64) -> Result<(), VmError> {
        self.charge_cycles(cycles)
    }
    fn invoke(&mut self, method: MethodId, args: Vec<Value>) -> Result<Option<Value>, VmError> {
        self.call(method, args)
    }
    fn safepoint(&mut self) {
        // Loop back-edge: install finished background compilations so a
        // long-running interpreted loop still picks up compiled callees,
        // and poll the publication rendezvous so evictions by other
        // mutators can reclaim storage.
        if self.options.jit_mode == JitMode::Background {
            self.drain_background();
        }
        self.poll_publication();
    }
    fn metrics(&self) -> &MetricsHub {
        &self.options.metrics
    }
    fn profiler(&self) -> &ProfileRecorder {
        &self.profile
    }
}

impl EvalEnv for Mutator {
    fn heap(&mut self) -> &mut Heap {
        &mut self.heap
    }
    fn statics(&mut self) -> &mut Statics {
        &mut self.statics
    }
    fn charge(&mut self, cycles: u64) -> Result<(), VmError> {
        self.charge_cycles(cycles)
    }
    fn invoke(&mut self, method: MethodId, args: Vec<Value>) -> Result<Option<Value>, VmError> {
        self.call(method, args)
    }
    fn has_fuel_limit(&self) -> bool {
        self.options.fuel.is_some()
    }
    fn safepoint(&mut self) {
        if let Some(m) = self.options.metrics.on() {
            m.vm.safepoint_polls.inc();
        }
        // Compiled-loop back-edge: install anything the background
        // compilers finished, so compiled-only phases (hot caller with
        // inlined or compiled callees) cannot starve installs — and poll
        // the rendezvous, so a spinning compiled loop still releases
        // eviction epochs for reclamation.
        if self.options.jit_mode == JitMode::Background {
            self.drain_background();
        }
        self.poll_publication();
    }
    fn profiler(&self) -> &ProfileRecorder {
        &self.profile
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pea_bytecode::asm::parse_program;

    fn vm(src: &str, options: VmOptions) -> Vm {
        let program = parse_program(src).unwrap();
        pea_bytecode::verify_program(&program).unwrap();
        Vm::new(program, options)
    }

    #[test]
    fn interprets_then_compiles() {
        let mut v = vm(
            "method f 1 returns { load 0 const 1 add retv }",
            VmOptions::with_opt_level(OptLevel::Pea),
        );
        for i in 0..100 {
            let r = v.call_entry("f", &[Value::Int(i)]).unwrap();
            assert_eq!(r, Some(Value::Int(i + 1)));
        }
        assert_eq!(v.compiled_method_count(), 1);
        assert_eq!(v.stats().compiles, 1);
    }

    #[test]
    fn interpreter_only_never_compiles() {
        let mut v = vm(
            "method f 0 returns { const 7 retv }",
            VmOptions::interpreter_only(),
        );
        for _ in 0..200 {
            v.call_entry("f", &[]).unwrap();
        }
        assert_eq!(v.compiled_method_count(), 0);
    }

    #[test]
    fn deopt_resumes_in_interpreter_with_correct_result() {
        // Branch taken only after warmup: the compiled code speculates it
        // never happens and must deopt, producing the same result the
        // interpreter would.
        let src = "
            class Box { field v int }
            static g ref
            method f 1 returns {
                new Box store 1
                load 1 load 0 putfield Box.v
                load 0 const 100 ifcmp gt Lrare
                load 1 getfield Box.v const 1 add retv
            Lrare:
                load 1 putstatic g
                load 1 getfield Box.v const 1000 add retv
            }";
        let mut v = vm(src, VmOptions::with_opt_level(OptLevel::Pea));
        for i in 0..80 {
            assert_eq!(
                v.call_entry("f", &[Value::Int(i)]).unwrap(),
                Some(Value::Int(i + 1))
            );
        }
        assert_eq!(v.compiled_method_count(), 1);
        let before = v.stats();
        let r = v.call_entry("f", &[Value::Int(500)]).unwrap();
        assert_eq!(r, Some(Value::Int(1500)));
        let delta = v.stats().delta(&before);
        assert_eq!(delta.deopts, 1);
        assert_eq!(delta.rematerialized, 1);
        // The interpreter finished the rare path: the box escaped into g.
        let g = v.program().static_by_name("g").unwrap();
        assert!(matches!(v.statics_ref().get(g), Value::Ref(_)));
    }

    #[test]
    fn repeated_deopts_evict_and_recompile() {
        let src = "
            static g int
            method f 1 returns {
                load 0 const 0 ifcmp le Lneg
                const 1 retv
            Lneg:
                const -1 retv
            }";
        let mut v = vm(src, VmOptions::with_opt_level(OptLevel::Pea));
        // Warm up with positive args: speculation = never negative.
        for _ in 0..80 {
            v.call_entry("f", &[Value::Int(5)]).unwrap();
        }
        assert_eq!(v.compiled_method_count(), 1);
        // Hammer the cold branch until eviction.
        for _ in 0..20 {
            assert_eq!(
                v.call_entry("f", &[Value::Int(-3)]).unwrap(),
                Some(Value::Int(-1))
            );
        }
        // Evicted at max_deopts, then re-profiled; it may have been
        // recompiled without the failing speculation afterwards.
        assert!(v.stats().deopts >= 8);
        // Re-warm: both branches now profiled, recompilation must not
        // speculate the branch away.
        for _ in 0..80 {
            v.call_entry("f", &[Value::Int(-3)]).unwrap();
            v.call_entry("f", &[Value::Int(3)]).unwrap();
        }
        let before = v.stats();
        v.call_entry("f", &[Value::Int(-3)]).unwrap();
        v.call_entry("f", &[Value::Int(3)]).unwrap();
        assert_eq!(
            v.stats().delta(&before).deopts,
            0,
            "stable after re-profile"
        );
    }

    #[test]
    fn fuel_limit_applies_across_tiers() {
        let mut v = vm(
            "method f 0 returns { Lx: goto Lx }",
            VmOptions {
                fuel: Some(100_000),
                ..VmOptions::default()
            },
        );
        assert_eq!(v.call_entry("f", &[]).unwrap_err(), VmError::OutOfFuel);
    }

    #[test]
    fn virtual_dispatch_through_tiers() {
        let src = "
            class A { }
            class B extends A { }
            method virtual A.tag 1 returns { const 1 retv }
            method virtual B.tag 1 returns { const 2 retv }
            method mk 1 returns {
                load 0 const 0 ifcmp eq La
                new B retv
            La:
                new A retv
            }
            method f 1 returns { load 0 invokestatic mk invokevirtual A.tag retv }";
        let mut v = vm(src, VmOptions::with_opt_level(OptLevel::Pea));
        for i in 0..200 {
            let r = v.call_entry("f", &[Value::Int(i % 2)]).unwrap();
            assert_eq!(r, Some(Value::Int(if i % 2 == 0 { 1 } else { 2 })));
        }
    }

    #[test]
    fn spawned_mutators_tier_independently_and_agree_with_solo() {
        let src = "method f 1 returns { load 0 const 1 add retv }";
        let v = vm(src, VmOptions::with_opt_level(OptLevel::Pea));
        let results = v.run_threads(2, |t, m| {
            let mut out = Vec::new();
            for i in 0..100 {
                out.push(m.call_entry("f", &[Value::Int(i + t as i64)]).unwrap());
            }
            (out, m.compiled_method_count(), m.stats().compiles)
        });
        for (t, (out, pinned, compiles)) in results.iter().enumerate() {
            assert_eq!(out.len(), 100);
            assert_eq!(out[0], Some(Value::Int(1 + t as i64)));
            assert_eq!(*pinned, 1, "each thread tiers on its own");
            assert_eq!(*compiles, 1);
        }
        // The shared store saw the publications; readers never blocked.
        let s = v.code_cache_stats();
        assert!(s.installs >= 1);
        assert_eq!(s.read_blocked, 0);
    }

    #[test]
    fn warm_fork_starts_compiled() {
        let src = "method f 1 returns { load 0 const 1 add retv }";
        let mut v = vm(src, VmOptions::with_opt_level(OptLevel::Pea));
        for i in 0..100 {
            v.call_entry("f", &[Value::Int(i)]).unwrap();
        }
        assert_eq!(v.compiled_method_count(), 1);
        let mut warm = v.spawn_warm_mutator();
        assert_eq!(warm.compiled_method_count(), 1, "pinned code carried over");
        assert_eq!(
            warm.call_entry("f", &[Value::Int(41)]).unwrap(),
            Some(Value::Int(42))
        );
        assert_eq!(warm.stats().compiles, 0, "no recompilation needed");
    }
}
