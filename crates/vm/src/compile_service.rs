//! The background JIT compilation service: a worker-thread pool fed by a
//! bounded, hotness-ordered priority queue with request deduplication.
//!
//! This mirrors the HotSpot execution model the paper's system lives in
//! (§2): compilation happens on **background compiler threads** while the
//! interpreter keeps serving execution, and finished code is installed at
//! safepoints. In this reproduction the VM requests a compilation when a
//! method crosses the hotness threshold, hands the service an immutable
//! [`ProfileStore`] snapshot (so the artifact is a deterministic function
//! of the request, independent of concurrent profile updates), keeps
//! interpreting, and drains finished [`CompiledMethod`]s into its code
//! cache at the next safepoint (method entry or an interpreter loop
//! back-edge).
//!
//! Queue policy:
//!
//! * **priority** — requests are ordered by hotness (invocation count at
//!   request time); ties go to the earlier request;
//! * **dedup** — a method that is queued, compiling, or finished but not
//!   yet drained is never enqueued twice;
//! * **bounded with backpressure** — when `queue_capacity` requests are
//!   pending, a new request evicts the coldest queued one if the newcomer
//!   is strictly hotter (the evicted method stays interpreted, keeps
//!   getting hotter, and is retried at a later threshold check);
//!   otherwise the newcomer itself is rejected.

use crate::SummaryCache;
use pea_bytecode::{MethodId, Program};
use pea_compiler::{compile, compile_traced, Bailout, CompiledMethod, CompilerOptions};
use pea_metrics::MetricsHub;
use pea_runtime::profile::ProfileStore;
use pea_trace::{MemorySink, SequencedMerge, SharedSink};
use std::cmp::Ordering;
use std::collections::{BinaryHeap, HashSet};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::Instant;

/// Configuration of the service's pool and queue.
#[derive(Clone, Debug)]
pub struct CompileServiceOptions {
    /// Worker thread count; `None` picks [`default_workers`].
    pub workers: Option<usize>,
    /// Maximum queued (not yet started) requests; at capacity a new
    /// request either evicts the coldest pending one (if strictly hotter)
    /// or is rejected.
    pub queue_capacity: usize,
    /// Run the PEA decision sanitizer (see `pea-analysis`) over every
    /// finished compilation; findings are reported on the
    /// [`CompileOutcome`] and the VM panics when installing them.
    pub checked: bool,
    /// Metrics handle; queue admission/rejection counters, the depth
    /// gauge, and per-compilation PEA/phase metrics flow through it.
    pub metrics: MetricsHub,
    /// Interprocedural summary cache shared with the VM's synchronous
    /// compile path. When the compiler configuration consumes summaries,
    /// workers resolve from here per compilation (so a VM-side
    /// invalidation reaches in-flight workers' *next* compilations);
    /// `None` makes each worker compilation compute its own.
    pub summary_cache: Option<SummaryCache>,
}

impl Default for CompileServiceOptions {
    fn default() -> Self {
        CompileServiceOptions {
            workers: None,
            queue_capacity: 128,
            checked: false,
            metrics: MetricsHub::disabled(),
            summary_cache: None,
        }
    }
}

/// Default worker count: all hardware threads minus one (the one running
/// the VM), but at least one.
pub fn default_workers() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get().saturating_sub(1))
        .unwrap_or(1)
        .max(1)
}

/// One finished compilation, ready to install at a safepoint.
#[derive(Debug)]
pub struct CompileOutcome {
    /// The compiled method.
    pub method: MethodId,
    /// Eviction epoch of the method at request time; the VM discards
    /// outcomes from before the latest eviction (their speculation is the
    /// one that kept deoptimizing).
    pub epoch: u64,
    /// The artifact, or the bailout that keeps the method interpreted.
    pub result: Result<CompiledMethod, Bailout>,
    /// Sanitizer inconsistencies (only populated in checked mode; always
    /// empty for bailouts). Workers report rather than panic so a finding
    /// cannot wedge [`CompileService::wait_idle`].
    pub findings: Vec<String>,
    /// When the request entered the queue; the VM measures the
    /// enqueue→install latency histogram from this.
    pub enqueued_at: Instant,
}

/// A queued compilation request.
struct Request {
    hotness: u64,
    /// Monotonic sequence number; earlier requests win hotness ties.
    seq: u64,
    epoch: u64,
    method: MethodId,
    profiles: ProfileStore,
    enqueued_at: Instant,
}

impl PartialEq for Request {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}

impl Eq for Request {}

impl PartialOrd for Request {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Request {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap: hotter first, then FIFO.
        (self.hotness, std::cmp::Reverse(self.seq))
            .cmp(&(other.hotness, std::cmp::Reverse(other.seq)))
    }
}

struct Queue {
    heap: BinaryHeap<Request>,
    /// Methods queued, compiling, or awaiting drain (the dedup set).
    inflight: HashSet<MethodId>,
    seq: u64,
    /// Next trace-flush sequence number, assigned when a worker *pops* a
    /// request (not when it is enqueued — evicted requests never compile,
    /// so enqueue-time numbering would leave permanent gaps in the
    /// [`SequencedMerge`] order). Every popped request flushes exactly
    /// once, so the merge sequence is dense.
    flush_seq: u64,
    /// Workers currently compiling.
    active: usize,
    shutdown: bool,
}

impl Queue {
    /// Backpressure policy for a full queue: evict the coldest pending
    /// request if it is strictly colder than a newcomer of `hotness`,
    /// freeing its slot (and dedup entry, so the method can re-request
    /// later). Returns whether a slot was freed. On a hotness tie the
    /// incumbent wins — eviction must not livelock two equally hot
    /// methods displacing each other.
    fn evict_coldest_below(&mut self, hotness: u64) -> bool {
        let colder = self.heap.iter().min().is_some_and(|r| r.hotness < hotness);
        if !colder {
            return false;
        }
        let mut pending = std::mem::take(&mut self.heap).into_vec();
        let victim_at = pending
            .iter()
            .enumerate()
            .min_by(|(_, a), (_, b)| a.cmp(b))
            .map(|(i, _)| i)
            .expect("non-empty: min exists");
        let victim = pending.swap_remove(victim_at);
        self.inflight.remove(&victim.method);
        self.heap = pending.into();
        true
    }
}

struct Shared {
    program: Arc<Program>,
    options: CompilerOptions,
    /// Sequence-ordered fan-in to the user's trace sink (`Some` iff a sink
    /// is attached): each worker buffers a compilation's events privately
    /// and flushes the block here, keyed by pop-order, so downstream
    /// consumers see deterministically ordered, never-interleaved
    /// compilation streams.
    merge: Option<SequencedMerge>,
    metrics: MetricsHub,
    /// Static escape verdicts for the sanitizer; `Some` iff checked mode
    /// is on (computed once at service start, shared by all workers).
    verdicts: Option<pea_analysis::StaticVerdicts>,
    /// Summary cache shared with the VM (see
    /// [`CompileServiceOptions::summary_cache`]).
    summary_cache: Option<SummaryCache>,
    queue: Mutex<Queue>,
    /// Signals workers that work (or shutdown) is available.
    work: Condvar,
    /// Signals waiters that the queue went empty with no active compile.
    idle: Condvar,
}

/// The compilation service. Dropping it shuts the pool down (workers
/// finish their current compile and exit).
pub struct CompileService {
    shared: Arc<Shared>,
    results: Receiver<CompileOutcome>,
    workers: Vec<JoinHandle<()>>,
    capacity: usize,
}

impl CompileService {
    /// Starts `options.workers` worker threads compiling against
    /// `program` at `compiler` options. When `trace` is set, each
    /// compilation's decision events are buffered locally and flushed to
    /// the sink as one contiguous block on completion (so events from
    /// parallel compilations never interleave within a method).
    pub fn start(
        program: Arc<Program>,
        compiler: CompilerOptions,
        trace: Option<SharedSink>,
        options: &CompileServiceOptions,
    ) -> CompileService {
        let verdicts = options
            .checked
            .then(|| pea_analysis::StaticVerdicts::analyze(&program));
        let shared = Arc::new(Shared {
            program,
            options: compiler,
            merge: trace.map(SequencedMerge::new),
            metrics: options.metrics.clone(),
            verdicts,
            summary_cache: options.summary_cache.clone(),
            queue: Mutex::new(Queue {
                heap: BinaryHeap::new(),
                inflight: HashSet::new(),
                seq: 0,
                flush_seq: 0,
                active: 0,
                shutdown: false,
            }),
            work: Condvar::new(),
            idle: Condvar::new(),
        });
        let (tx, rx) = channel();
        let worker_count = options.workers.unwrap_or_else(default_workers).max(1);
        let workers = (0..worker_count)
            .map(|i| {
                let shared = Arc::clone(&shared);
                let tx = tx.clone();
                std::thread::Builder::new()
                    .name(format!("pea-compile-{i}"))
                    .spawn(move || worker_loop(&shared, &tx))
                    .expect("spawn compile worker")
            })
            .collect();
        CompileService {
            shared,
            results: rx,
            workers,
            capacity: options.queue_capacity.max(1),
        }
    }

    /// Enqueues a compilation of `method` from the given profile
    /// snapshot. Returns `false` (and does nothing) if the method is
    /// already in flight, or if the queue is full and every pending
    /// request is at least as hot (a full queue evicts its coldest
    /// request to admit a strictly hotter newcomer).
    pub fn request(
        &self,
        method: MethodId,
        hotness: u64,
        epoch: u64,
        profiles: ProfileStore,
    ) -> bool {
        let metrics = &self.shared.metrics;
        let mut q = self.lock_queue();
        if q.inflight.contains(&method) {
            if let Some(m) = metrics.on() {
                m.compile.dedup_rejected.inc();
            }
            return false;
        }
        if q.heap.len() >= self.queue_capacity() {
            if q.evict_coldest_below(hotness) {
                if let Some(m) = metrics.on() {
                    m.compile.queue_evicted.inc();
                }
            } else {
                if let Some(m) = metrics.on() {
                    m.compile.queue_rejected.inc();
                }
                return false;
            }
        }
        q.inflight.insert(method);
        let seq = q.seq;
        q.seq += 1;
        q.heap.push(Request {
            hotness,
            seq,
            epoch,
            method,
            profiles,
            enqueued_at: Instant::now(),
        });
        if let Some(m) = metrics.on() {
            m.compile.enqueued.inc();
            m.compile.queue_depth.set(q.heap.len() as i64);
        }
        drop(q);
        self.shared.work.notify_one();
        true
    }

    /// Collects every finished compilation without blocking. Drained
    /// methods leave the dedup set and may be requested again (the VM
    /// does so after evictions).
    pub fn drain(&self) -> Vec<CompileOutcome> {
        let mut out = Vec::new();
        while let Ok(outcome) = self.results.try_recv() {
            self.lock_queue().inflight.remove(&outcome.method);
            out.push(outcome);
        }
        out
    }

    /// Number of requests in flight (queued, compiling, or awaiting
    /// drain).
    pub fn inflight(&self) -> usize {
        self.lock_queue().inflight.len()
    }

    /// Blocks until the queue is empty and no worker is mid-compile.
    /// Finished outcomes may still be waiting in [`drain`](Self::drain).
    pub fn wait_idle(&self) {
        let mut q = self.lock_queue();
        while !(q.heap.is_empty() && q.active == 0) {
            q = self.shared.idle.wait(q).expect("compile queue poisoned");
        }
    }

    fn queue_capacity(&self) -> usize {
        self.capacity
    }

    fn lock_queue(&self) -> MutexGuard<'_, Queue> {
        self.shared.queue.lock().expect("compile queue poisoned")
    }
}

impl Drop for CompileService {
    fn drop(&mut self) {
        self.lock_queue().shutdown = true;
        self.shared.work.notify_all();
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

fn worker_loop(shared: &Shared, tx: &Sender<CompileOutcome>) {
    loop {
        let (request, flush_seq) = {
            let mut q = shared.queue.lock().expect("compile queue poisoned");
            loop {
                if q.shutdown {
                    return;
                }
                if let Some(r) = q.heap.pop() {
                    q.active += 1;
                    // Flush order is fixed here, under the queue lock, so
                    // the merged trace stream is pop-deterministic however
                    // the workers themselves get scheduled.
                    let flush_seq = q.flush_seq;
                    q.flush_seq += 1;
                    if let Some(m) = shared.metrics.on() {
                        m.compile.queue_depth.set(q.heap.len() as i64);
                    }
                    break (r, flush_seq);
                }
                q = shared.work.wait(q).expect("compile queue poisoned");
            }
        };
        let (result, findings) = run_one(shared, &request, flush_seq);
        // The VM may already be gone (send fails); nothing to do then.
        let _ = tx.send(CompileOutcome {
            method: request.method,
            epoch: request.epoch,
            result,
            findings,
            enqueued_at: request.enqueued_at,
        });
        let mut q = shared.queue.lock().expect("compile queue poisoned");
        q.active -= 1;
        if q.heap.is_empty() && q.active == 0 {
            shared.idle.notify_all();
        }
    }
}

fn run_one(
    shared: &Shared,
    request: &Request,
    flush_seq: u64,
) -> (Result<CompiledMethod, Bailout>, Vec<String>) {
    // Resolve interprocedural summaries through the shared cache when the
    // configuration consumes them, so workers and the VM's synchronous
    // path compile against the same set (and the cache's hit/miss
    // counters cover both JIT modes).
    let mut options_owned;
    let options = match &shared.summary_cache {
        Some(cache) if shared.options.needs_summaries() && shared.options.summaries.is_none() => {
            options_owned = shared.options.clone();
            options_owned.summaries = Some(cache.resolve(&shared.program, &shared.metrics));
            &options_owned
        }
        _ => &shared.options,
    };
    if shared.merge.is_none() && shared.verdicts.is_none() && !shared.metrics.is_enabled() {
        let result = compile(
            &shared.program,
            request.method,
            Some(&request.profiles),
            options,
        );
        return (result, Vec::new());
    }
    // Buffer locally, flush as one block: compilations stay parallel and
    // each method's event run stays contiguous. The sanitizer and the
    // metrics fold read the same buffer.
    let mut buffer = MemorySink::new();
    let result = compile_traced(
        &shared.program,
        request.method,
        Some(&request.profiles),
        options,
        &mut buffer,
    );
    let mut findings = Vec::new();
    if let (Some(verdicts), Ok(code)) = (&shared.verdicts, &result) {
        findings = pea_analysis::check_compilation(
            &shared.program,
            verdicts,
            request.method,
            &code.graph,
            &buffer.events,
        )
        .into_iter()
        .map(|f| f.to_string())
        .collect();
    }
    if let Some(m) = shared.metrics.on() {
        crate::record_compile_metrics(m, &buffer.events, &result);
    }
    if let Some(merge) = &shared.merge {
        merge.flush(flush_seq, buffer.events);
    }
    (result, findings)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn queue() -> Queue {
        Queue {
            heap: BinaryHeap::new(),
            inflight: HashSet::new(),
            seq: 0,
            flush_seq: 0,
            active: 0,
            shutdown: false,
        }
    }

    fn push(q: &mut Queue, method: u32, hotness: u64) {
        let method = MethodId::from_index(method as usize);
        assert!(q.inflight.insert(method), "test enqueued {method:?} twice");
        let seq = q.seq;
        q.seq += 1;
        q.heap.push(Request {
            hotness,
            seq,
            epoch: 0,
            method,
            profiles: ProfileStore::new(),
            enqueued_at: Instant::now(),
        });
    }

    fn queued_methods(q: &Queue) -> Vec<(u32, u64)> {
        let mut v: Vec<(u32, u64)> = q
            .heap
            .iter()
            .map(|r| (r.method.index() as u32, r.hotness))
            .collect();
        v.sort_unstable();
        v
    }

    #[test]
    fn evicts_the_coldest_for_a_strictly_hotter_newcomer() {
        let mut q = queue();
        push(&mut q, 0, 50);
        push(&mut q, 1, 80);
        push(&mut q, 2, 120);
        assert!(q.evict_coldest_below(60));
        assert_eq!(queued_methods(&q), vec![(1, 80), (2, 120)]);
        // The victim left the dedup set: it may be re-requested later.
        assert!(!q.inflight.contains(&MethodId::from_index(0)));
        assert!(q.inflight.contains(&MethodId::from_index(1)));
    }

    #[test]
    fn equal_hotness_keeps_the_incumbent() {
        // Strictly-hotter only: otherwise two equally hot methods would
        // displace each other forever without either compiling.
        let mut q = queue();
        push(&mut q, 0, 50);
        push(&mut q, 1, 80);
        assert!(!q.evict_coldest_below(50));
        assert_eq!(queued_methods(&q), vec![(0, 50), (1, 80)]);
        assert!(q.inflight.contains(&MethodId::from_index(0)));
    }

    #[test]
    fn among_equally_cold_requests_the_newest_is_evicted() {
        let mut q = queue();
        push(&mut q, 0, 50); // older request at the coldest hotness
        push(&mut q, 1, 50); // newer request at the coldest hotness
        assert!(q.evict_coldest_below(99));
        // FIFO among ties: the earlier request keeps its slot.
        assert_eq!(queued_methods(&q), vec![(0, 50)]);
    }

    #[test]
    fn capacity_one_queue_still_upgrades() {
        let mut q = queue();
        push(&mut q, 0, 10);
        assert!(!q.evict_coldest_below(10), "not strictly hotter");
        assert!(q.evict_coldest_below(11));
        assert!(q.heap.is_empty());
        assert!(q.inflight.is_empty());
    }

    #[test]
    fn duplicate_requests_are_rejected_regardless_of_hotness() {
        let program =
            pea_bytecode::asm::parse_program("method f 1 returns { load 0 const 1 add retv }")
                .unwrap();
        let service = CompileService::start(
            Arc::new(program),
            CompilerOptions::default(),
            None,
            &CompileServiceOptions {
                workers: Some(1),
                queue_capacity: 1,
                checked: false,
                metrics: MetricsHub::disabled(),
                summary_cache: None,
            },
        );
        let m = MethodId::from_index(0);
        assert!(service.request(m, 5, 0, ProfileStore::new()));
        // In flight (queued or compiling): dedup rejects, even hotter.
        assert!(!service.request(m, 100, 0, ProfileStore::new()));
        service.wait_idle();
        assert_eq!(service.drain().len(), 1);
    }
}
