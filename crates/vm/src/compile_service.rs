//! The background JIT compilation service: a worker-thread pool fed by a
//! bounded, hotness-ordered priority queue with request deduplication.
//!
//! This mirrors the HotSpot execution model the paper's system lives in
//! (§2): compilation happens on **background compiler threads** while the
//! interpreter keeps serving execution, and finished code is installed at
//! safepoints. In this reproduction a mutator requests a compilation when
//! a method crosses the hotness threshold, hands the service an immutable
//! [`ProfileStore`] snapshot (so the artifact is a deterministic function
//! of the request, independent of concurrent profile updates), keeps
//! interpreting, and drains finished [`CompiledMethod`]s into its code
//! cache at the next safepoint (method entry or an interpreter loop
//! back-edge).
//!
//! One service serves **every mutator thread** of a VM. Each mutator
//! registers a [`Mailbox`]; requests carry the requester's mailbox and
//! finished outcomes are deposited there, so a mutator only ever installs
//! what it asked for — its tiering schedule stays a function of its own
//! execution, exactly as with a private service. Per-mailbox trace merge
//! sequencing keeps each mutator's event stream pop-deterministic.
//!
//! Queue policy:
//!
//! * **priority** — requests are ordered by hotness (invocation count at
//!   request time); ties go to the earlier request;
//! * **dedup** — a `(mailbox, method)` pair that is queued, compiling, or
//!   finished but not yet drained is never enqueued twice (two mutators
//!   may have the same method in flight — each compiles from its own
//!   profile snapshot);
//! * **bounded with backpressure** — when `queue_capacity` requests are
//!   pending, a new request evicts the coldest queued one if the newcomer
//!   is strictly hotter (the evicted method stays interpreted, keeps
//!   getting hotter, and is retried at a later threshold check);
//!   otherwise the newcomer itself is rejected.

use crate::{SummaryCache, SummaryView};
use pea_bytecode::{MethodId, Program};
use pea_compiler::{compile, compile_traced, Bailout, CompiledMethod, CompilerOptions};
use pea_metrics::MetricsHub;
use pea_runtime::profile::ProfileStore;
use pea_trace::{MemorySink, SequencedMerge, SharedSink};
use std::cmp::Ordering;
use std::collections::{BinaryHeap, HashSet};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering as AtomicOrdering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::Instant;

/// Configuration of the service's pool and queue.
#[derive(Clone, Debug)]
pub struct CompileServiceOptions {
    /// Worker thread count; `None` picks [`default_workers`].
    pub workers: Option<usize>,
    /// Maximum queued (not yet started) requests; at capacity a new
    /// request either evicts the coldest pending one (if strictly hotter)
    /// or is rejected.
    pub queue_capacity: usize,
    /// Run the PEA decision sanitizer (see `pea-analysis`) over every
    /// finished compilation; findings are reported on the
    /// [`CompileOutcome`] and the VM panics when installing them.
    pub checked: bool,
    /// Metrics handle; queue admission/rejection counters, the depth
    /// gauge, and per-compilation PEA/phase metrics flow through it.
    pub metrics: MetricsHub,
    /// Interprocedural summary cache shared with the VM's synchronous
    /// compile path. When the compiler configuration consumes summaries,
    /// workers resolve from here per compilation (so a VM-side
    /// invalidation reaches in-flight workers' *next* compilations);
    /// `None` makes each worker compilation compute its own.
    pub summary_cache: Option<SummaryCache>,
}

impl Default for CompileServiceOptions {
    fn default() -> Self {
        CompileServiceOptions {
            workers: None,
            queue_capacity: 128,
            checked: false,
            metrics: MetricsHub::disabled(),
            summary_cache: None,
        }
    }
}

/// Default worker count: all hardware threads minus one (the one running
/// the VM), but at least one.
pub fn default_workers() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get().saturating_sub(1))
        .unwrap_or(1)
        .max(1)
}

/// A mutator's registration with the service: where its finished
/// compilations are deposited, and the per-mutator trace fan-in.
///
/// Obtained from [`CompileService::register_mailbox`]; cheap to clone via
/// `Arc`. The `ready` counter lets the draining safepoint skip both locks
/// when nothing has finished — the common case on a hot loop back-edge.
pub struct Mailbox {
    id: u64,
    /// Sequence-ordered fan-in to this mutator's trace sink (`Some` iff a
    /// sink was attached at registration): each worker buffers a
    /// compilation's events privately and flushes the block here, keyed by
    /// per-mailbox pop order, so the mutator sees deterministically
    /// ordered, never-interleaved compilation streams.
    merge: Option<SequencedMerge>,
    /// Next flush sequence for `merge`; assigned when a worker *pops* a
    /// request of this mailbox (under the queue lock), so the per-mailbox
    /// sequence is dense and pop-deterministic.
    flush_seq: AtomicU64,
    /// Finished-outcome count (lock-free emptiness check for safepoints).
    ready: AtomicUsize,
    outcomes: Mutex<Vec<CompileOutcome>>,
}

impl Mailbox {
    /// Whether any finished compilation awaits
    /// [`CompileService::take`].
    pub fn has_ready(&self) -> bool {
        self.ready.load(AtomicOrdering::Acquire) != 0
    }
}

/// One finished compilation, ready to install at a safepoint.
#[derive(Debug)]
pub struct CompileOutcome {
    /// The compiled method.
    pub method: MethodId,
    /// Eviction epoch of the method at request time; the requester
    /// discards outcomes from before its latest eviction (their
    /// speculation is the one that kept deoptimizing).
    pub epoch: u64,
    /// Fingerprint of the profile snapshot the request carried; echoed
    /// back so the installer can publish the artifact to the shared code
    /// cache under its input identity.
    pub fingerprint: u64,
    /// The artifact, or the bailout that keeps the method interpreted.
    pub result: Result<CompiledMethod, Bailout>,
    /// Sanitizer inconsistencies (only populated in checked mode; always
    /// empty for bailouts). Workers report rather than panic so a finding
    /// cannot wedge [`CompileService::wait_idle`].
    pub findings: Vec<String>,
    /// When the request entered the queue; the VM measures the
    /// enqueue→install latency histogram from this.
    pub enqueued_at: Instant,
}

/// A queued compilation request.
struct Request {
    hotness: u64,
    /// Monotonic sequence number; earlier requests win hotness ties.
    seq: u64,
    epoch: u64,
    fingerprint: u64,
    method: MethodId,
    mailbox: Arc<Mailbox>,
    profiles: ProfileStore,
    enqueued_at: Instant,
}

impl PartialEq for Request {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}

impl Eq for Request {}

impl PartialOrd for Request {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Request {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap: hotter first, then FIFO.
        (self.hotness, std::cmp::Reverse(self.seq))
            .cmp(&(other.hotness, std::cmp::Reverse(other.seq)))
    }
}

struct Queue {
    heap: BinaryHeap<Request>,
    /// `(mailbox, method)` pairs queued, compiling, or awaiting drain
    /// (the dedup set).
    inflight: HashSet<(u64, MethodId)>,
    seq: u64,
    /// Workers currently compiling.
    active: usize,
    shutdown: bool,
}

impl Queue {
    /// Backpressure policy for a full queue: evict the coldest pending
    /// request if it is strictly colder than a newcomer of `hotness`,
    /// freeing its slot (and dedup entry, so the method can re-request
    /// later). Returns whether a slot was freed. On a hotness tie the
    /// incumbent wins — eviction must not livelock two equally hot
    /// methods displacing each other.
    fn evict_coldest_below(&mut self, hotness: u64) -> bool {
        let colder = self.heap.iter().min().is_some_and(|r| r.hotness < hotness);
        if !colder {
            return false;
        }
        let mut pending = std::mem::take(&mut self.heap).into_vec();
        let victim_at = pending
            .iter()
            .enumerate()
            .min_by(|(_, a), (_, b)| a.cmp(b))
            .map(|(i, _)| i)
            .expect("non-empty: min exists");
        let victim = pending.swap_remove(victim_at);
        self.inflight.remove(&(victim.mailbox.id, victim.method));
        self.heap = pending.into();
        true
    }
}

struct Shared {
    program: Arc<Program>,
    options: CompilerOptions,
    metrics: MetricsHub,
    /// Static escape verdicts for the sanitizer; `Some` iff checked mode
    /// is on (computed once at service start, shared by all workers).
    verdicts: Option<pea_analysis::StaticVerdicts>,
    /// Summary cache shared with the VM (see
    /// [`CompileServiceOptions::summary_cache`]).
    summary_cache: Option<SummaryCache>,
    /// Next mailbox id.
    mailbox_seq: AtomicU64,
    queue: Mutex<Queue>,
    /// Signals workers that work (or shutdown) is available.
    work: Condvar,
    /// Signals waiters that the queue went empty with no active compile.
    idle: Condvar,
}

/// The compilation service. Dropping it shuts the pool down (workers
/// finish their current compile and exit).
pub struct CompileService {
    shared: Arc<Shared>,
    workers: Mutex<Vec<JoinHandle<()>>>,
    capacity: usize,
}

impl CompileService {
    /// Starts `options.workers` worker threads compiling against
    /// `program` at `compiler` options.
    pub fn start(
        program: Arc<Program>,
        compiler: CompilerOptions,
        options: &CompileServiceOptions,
    ) -> CompileService {
        let verdicts = options
            .checked
            .then(|| pea_analysis::StaticVerdicts::analyze(&program));
        let shared = Arc::new(Shared {
            program,
            options: compiler,
            metrics: options.metrics.clone(),
            verdicts,
            summary_cache: options.summary_cache.clone(),
            mailbox_seq: AtomicU64::new(0),
            queue: Mutex::new(Queue {
                heap: BinaryHeap::new(),
                inflight: HashSet::new(),
                seq: 0,
                active: 0,
                shutdown: false,
            }),
            work: Condvar::new(),
            idle: Condvar::new(),
        });
        let worker_count = options.workers.unwrap_or_else(default_workers).max(1);
        let workers = (0..worker_count)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("pea-compile-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn compile worker")
            })
            .collect();
        CompileService {
            shared,
            workers: Mutex::new(workers),
            capacity: options.queue_capacity.max(1),
        }
    }

    /// Registers a mutator with the service. When `trace` is set, each of
    /// the mutator's compilations flushes its buffered decision events to
    /// the sink as one contiguous block, in per-mailbox pop order.
    pub fn register_mailbox(&self, trace: Option<SharedSink>) -> Arc<Mailbox> {
        Arc::new(Mailbox {
            id: self
                .shared
                .mailbox_seq
                .fetch_add(1, AtomicOrdering::Relaxed),
            merge: trace.map(SequencedMerge::new),
            flush_seq: AtomicU64::new(0),
            ready: AtomicUsize::new(0),
            outcomes: Mutex::new(Vec::new()),
        })
    }

    /// Enqueues a compilation of `method` for `mailbox` from the given
    /// profile snapshot. Returns `false` (and does nothing) if the pair is
    /// already in flight, or if the queue is full and every pending
    /// request is at least as hot (a full queue evicts its coldest
    /// request to admit a strictly hotter newcomer).
    pub fn request(
        &self,
        mailbox: &Arc<Mailbox>,
        method: MethodId,
        hotness: u64,
        epoch: u64,
        fingerprint: u64,
        profiles: ProfileStore,
    ) -> bool {
        let metrics = &self.shared.metrics;
        let mut q = self.lock_queue();
        if q.inflight.contains(&(mailbox.id, method)) {
            if let Some(m) = metrics.on() {
                m.compile.dedup_rejected.inc();
            }
            return false;
        }
        if q.heap.len() >= self.queue_capacity() {
            if q.evict_coldest_below(hotness) {
                if let Some(m) = metrics.on() {
                    m.compile.queue_evicted.inc();
                }
            } else {
                if let Some(m) = metrics.on() {
                    m.compile.queue_rejected.inc();
                }
                return false;
            }
        }
        q.inflight.insert((mailbox.id, method));
        let seq = q.seq;
        q.seq += 1;
        q.heap.push(Request {
            hotness,
            seq,
            epoch,
            fingerprint,
            method,
            mailbox: Arc::clone(mailbox),
            profiles,
            enqueued_at: Instant::now(),
        });
        if let Some(m) = metrics.on() {
            m.compile.enqueued.inc();
            m.compile.queue_depth.set(q.heap.len() as i64);
        }
        drop(q);
        self.shared.work.notify_one();
        true
    }

    /// Collects `mailbox`'s finished compilations without blocking.
    /// Drained `(mailbox, method)` pairs leave the dedup set and may be
    /// requested again (the VM does so after evictions). The empty case
    /// is one atomic load.
    pub fn take(&self, mailbox: &Mailbox) -> Vec<CompileOutcome> {
        if !mailbox.has_ready() {
            return Vec::new();
        }
        let out = std::mem::take(&mut *mailbox.outcomes.lock().expect("mailbox poisoned"));
        mailbox.ready.fetch_sub(out.len(), AtomicOrdering::Release);
        let mut q = self.lock_queue();
        for o in &out {
            q.inflight.remove(&(mailbox.id, o.method));
        }
        out
    }

    /// Number of requests in flight (queued, compiling, or awaiting
    /// drain), across every mailbox.
    pub fn inflight(&self) -> usize {
        self.lock_queue().inflight.len()
    }

    /// Blocks until the queue is empty and no worker is mid-compile.
    /// Finished outcomes may still be waiting in [`take`](Self::take).
    pub fn wait_idle(&self) {
        let mut q = self.lock_queue();
        while !(q.heap.is_empty() && q.active == 0) {
            q = self.shared.idle.wait(q).expect("compile queue poisoned");
        }
    }

    fn queue_capacity(&self) -> usize {
        self.capacity
    }

    fn lock_queue(&self) -> MutexGuard<'_, Queue> {
        self.shared.queue.lock().expect("compile queue poisoned")
    }
}

impl Drop for CompileService {
    fn drop(&mut self) {
        self.lock_queue().shutdown = true;
        self.shared.work.notify_all();
        let mut workers = self.workers.lock().expect("worker handles poisoned");
        for worker in workers.drain(..) {
            let _ = worker.join();
        }
    }
}

fn worker_loop(shared: &Shared) {
    // Per-worker replica of the summary cache: once populated, resolving
    // summaries for a compilation is one atomic load, not a lock — the
    // same read protocol the mutators use. Invalidations (generation
    // bumps) are observed on the next resolve.
    let mut summaries = shared
        .summary_cache
        .as_ref()
        .map(|_| SummaryView::default());
    loop {
        let (request, flush_seq) = {
            let mut q = shared.queue.lock().expect("compile queue poisoned");
            loop {
                if q.shutdown {
                    return;
                }
                if let Some(r) = q.heap.pop() {
                    q.active += 1;
                    // Flush order is fixed here, under the queue lock, so
                    // each mailbox's merged trace stream is
                    // pop-deterministic however the workers themselves
                    // get scheduled.
                    let flush_seq = r.mailbox.flush_seq.fetch_add(1, AtomicOrdering::Relaxed);
                    if let Some(m) = shared.metrics.on() {
                        m.compile.queue_depth.set(q.heap.len() as i64);
                    }
                    break (r, flush_seq);
                }
                q = shared.work.wait(q).expect("compile queue poisoned");
            }
        };
        let (result, findings) = run_one(shared, &request, flush_seq, &mut summaries);
        let mailbox = Arc::clone(&request.mailbox);
        mailbox
            .outcomes
            .lock()
            .expect("mailbox poisoned")
            .push(CompileOutcome {
                method: request.method,
                epoch: request.epoch,
                fingerprint: request.fingerprint,
                result,
                findings,
                enqueued_at: request.enqueued_at,
            });
        mailbox.ready.fetch_add(1, AtomicOrdering::Release);
        let mut q = shared.queue.lock().expect("compile queue poisoned");
        q.active -= 1;
        if q.heap.is_empty() && q.active == 0 {
            shared.idle.notify_all();
        }
    }
}

fn run_one(
    shared: &Shared,
    request: &Request,
    flush_seq: u64,
    summaries: &mut Option<SummaryView>,
) -> (Result<CompiledMethod, Bailout>, Vec<String>) {
    // Resolve interprocedural summaries through the shared cache when the
    // configuration consumes them, so workers and the VM's synchronous
    // path compile against the same set (and the cache's hit/miss
    // counters cover both JIT modes). Resolution goes through the
    // worker's view: lock-free once populated.
    let mut options_owned;
    let options = match (&shared.summary_cache, summaries) {
        (Some(cache), Some(view))
            if shared.options.needs_summaries() && shared.options.summaries.is_none() =>
        {
            options_owned = shared.options.clone();
            options_owned.summaries =
                Some(cache.resolve_view(view, &shared.program, &shared.metrics));
            &options_owned
        }
        _ => &shared.options,
    };
    let merge = &request.mailbox.merge;
    if merge.is_none() && shared.verdicts.is_none() && !shared.metrics.is_enabled() {
        let result = compile(
            &shared.program,
            request.method,
            Some(&request.profiles),
            options,
        );
        return (result, Vec::new());
    }
    // Buffer locally, flush as one block: compilations stay parallel and
    // each method's event run stays contiguous. The sanitizer and the
    // metrics fold read the same buffer.
    let mut buffer = MemorySink::new();
    let result = compile_traced(
        &shared.program,
        request.method,
        Some(&request.profiles),
        options,
        &mut buffer,
    );
    let mut findings = Vec::new();
    if let (Some(verdicts), Ok(code)) = (&shared.verdicts, &result) {
        findings = pea_analysis::check_compilation(
            &shared.program,
            verdicts,
            request.method,
            &code.graph,
            &buffer.events,
        )
        .into_iter()
        .map(|f| f.to_string())
        .collect();
    }
    if let Some(m) = shared.metrics.on() {
        crate::record_compile_metrics(m, &buffer.events, result.as_ref());
    }
    if let Some(merge) = merge {
        merge.flush(flush_seq, buffer.events);
    }
    (result, findings)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn queue() -> Queue {
        Queue {
            heap: BinaryHeap::new(),
            inflight: HashSet::new(),
            seq: 0,
            active: 0,
            shutdown: false,
        }
    }

    fn mailbox() -> Arc<Mailbox> {
        Arc::new(Mailbox {
            id: 0,
            merge: None,
            flush_seq: AtomicU64::new(0),
            ready: AtomicUsize::new(0),
            outcomes: Mutex::new(Vec::new()),
        })
    }

    fn push(q: &mut Queue, mailbox: &Arc<Mailbox>, method: u32, hotness: u64) {
        let method = MethodId::from_index(method as usize);
        assert!(
            q.inflight.insert((mailbox.id, method)),
            "test enqueued {method:?} twice"
        );
        let seq = q.seq;
        q.seq += 1;
        q.heap.push(Request {
            hotness,
            seq,
            epoch: 0,
            fingerprint: 0,
            method,
            mailbox: Arc::clone(mailbox),
            profiles: ProfileStore::new(),
            enqueued_at: Instant::now(),
        });
    }

    fn queued_methods(q: &Queue) -> Vec<(u32, u64)> {
        let mut v: Vec<(u32, u64)> = q
            .heap
            .iter()
            .map(|r| (r.method.index() as u32, r.hotness))
            .collect();
        v.sort_unstable();
        v
    }

    #[test]
    fn evicts_the_coldest_for_a_strictly_hotter_newcomer() {
        let mut q = queue();
        let mb = mailbox();
        push(&mut q, &mb, 0, 50);
        push(&mut q, &mb, 1, 80);
        push(&mut q, &mb, 2, 120);
        assert!(q.evict_coldest_below(60));
        assert_eq!(queued_methods(&q), vec![(1, 80), (2, 120)]);
        // The victim left the dedup set: it may be re-requested later.
        assert!(!q.inflight.contains(&(mb.id, MethodId::from_index(0))));
        assert!(q.inflight.contains(&(mb.id, MethodId::from_index(1))));
    }

    #[test]
    fn equal_hotness_keeps_the_incumbent() {
        // Strictly-hotter only: otherwise two equally hot methods would
        // displace each other forever without either compiling.
        let mut q = queue();
        let mb = mailbox();
        push(&mut q, &mb, 0, 50);
        push(&mut q, &mb, 1, 80);
        assert!(!q.evict_coldest_below(50));
        assert_eq!(queued_methods(&q), vec![(0, 50), (1, 80)]);
        assert!(q.inflight.contains(&(mb.id, MethodId::from_index(0))));
    }

    #[test]
    fn among_equally_cold_requests_the_newest_is_evicted() {
        let mut q = queue();
        let mb = mailbox();
        push(&mut q, &mb, 0, 50); // older request at the coldest hotness
        push(&mut q, &mb, 1, 50); // newer request at the coldest hotness
        assert!(q.evict_coldest_below(99));
        // FIFO among ties: the earlier request keeps its slot.
        assert_eq!(queued_methods(&q), vec![(0, 50)]);
    }

    #[test]
    fn capacity_one_queue_still_upgrades() {
        let mut q = queue();
        let mb = mailbox();
        push(&mut q, &mb, 0, 10);
        assert!(!q.evict_coldest_below(10), "not strictly hotter");
        assert!(q.evict_coldest_below(11));
        assert!(q.heap.is_empty());
        assert!(q.inflight.is_empty());
    }

    #[test]
    fn duplicate_requests_are_rejected_per_mailbox() {
        let program =
            pea_bytecode::asm::parse_program("method f 1 returns { load 0 const 1 add retv }")
                .unwrap();
        let service = CompileService::start(
            Arc::new(program),
            CompilerOptions::default(),
            &CompileServiceOptions {
                workers: Some(1),
                queue_capacity: 4,
                checked: false,
                metrics: MetricsHub::disabled(),
                summary_cache: None,
            },
        );
        let a = service.register_mailbox(None);
        let b = service.register_mailbox(None);
        let m = MethodId::from_index(0);
        assert!(service.request(&a, m, 5, 0, 0, ProfileStore::new()));
        // In flight (queued or compiling): dedup rejects, even hotter.
        assert!(!service.request(&a, m, 100, 0, 0, ProfileStore::new()));
        // A different mutator's request for the same method is distinct.
        assert!(service.request(&b, m, 5, 0, 0, ProfileStore::new()));
        service.wait_idle();
        assert_eq!(service.take(&a).len(), 1);
        assert_eq!(service.take(&b).len(), 1);
        assert!(!a.has_ready() && !b.has_ready());
        // Drained: the pair may be requested again.
        assert!(service.request(&a, m, 5, 0, 0, ProfileStore::new()));
        service.wait_idle();
        assert_eq!(service.take(&a).len(), 1);
    }
}
