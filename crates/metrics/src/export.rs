//! Renderers for [`MetricsSnapshot`]: human-readable report, stable JSON,
//! and Prometheus-style text exposition — plus file helpers that create
//! missing parent directories (so `--metrics-json out/run1/METRICS.json`
//! just works).

use crate::{bucket_upper_bound, HistogramSnapshot, MetricsSnapshot};
use std::fmt::Write as _;
use std::fs::File;
use std::io;
use std::path::Path;

/// Renders the end-of-run human-readable report (`--metrics` prints this
/// to stderr).
pub fn render_text(snapshot: &MetricsSnapshot) -> String {
    let mut out = String::from("== metrics ==\n");
    let mut group = "";
    for (name, value) in &snapshot.counters {
        let g = name.split('.').next().unwrap_or("");
        if g != group {
            group = g;
            let _ = writeln!(out, "[{g}]");
        }
        let _ = writeln!(out, "  {name:<40} {value}");
    }
    let _ = writeln!(out, "[gauges]");
    for (name, value) in &snapshot.gauges {
        let _ = writeln!(out, "  {name:<40} {value}");
    }
    let _ = writeln!(out, "[histograms]");
    for (name, h) in &snapshot.histograms {
        let _ = writeln!(
            out,
            "  {name:<40} count={} sum={} mean={} p50<={} p90<={} p99<={} max={}",
            h.count(),
            h.sum,
            h.mean(),
            h.quantile(0.5),
            h.quantile(0.9),
            h.quantile(0.99),
            h.max,
        );
    }
    out
}

fn escape_json_into(buf: &mut String, s: &str) {
    buf.push('"');
    for c in s.chars() {
        match c {
            '"' => buf.push_str("\\\""),
            '\\' => buf.push_str("\\\\"),
            '\n' => buf.push_str("\\n"),
            '\r' => buf.push_str("\\r"),
            '\t' => buf.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(buf, "\\u{:04x}", c as u32);
            }
            c => buf.push(c),
        }
    }
    buf.push('"');
}

fn histogram_json(h: &HistogramSnapshot) -> String {
    let mut out = String::from("{");
    let _ = write!(
        out,
        "\"count\":{},\"sum\":{},\"max\":{},\"mean\":{},\"p50\":{},\"p90\":{},\"p99\":{},",
        h.count(),
        h.sum,
        h.max,
        h.mean(),
        h.quantile(0.5),
        h.quantile(0.9),
        h.quantile(0.99),
    );
    out.push_str("\"buckets\":[");
    let mut first = true;
    for (i, &c) in h.buckets.iter().enumerate() {
        if c == 0 {
            continue;
        }
        if !first {
            out.push(',');
        }
        first = false;
        let le = bucket_upper_bound(i);
        if le == u64::MAX {
            let _ = write!(out, "{{\"le\":\"+Inf\",\"count\":{c}}}");
        } else {
            let _ = write!(out, "{{\"le\":{le},\"count\":{c}}}");
        }
    }
    out.push_str("]}");
    out
}

/// Renders the snapshot as one stable-schema JSON document
/// (`pea-metrics/1`): counters and gauges as flat name→value maps,
/// histograms as summaries with non-empty `{le, count}` buckets.
pub fn render_json(snapshot: &MetricsSnapshot) -> String {
    let mut out = String::from("{\"schema\":\"pea-metrics/1\",\"counters\":{");
    for (i, (name, value)) in snapshot.counters.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        escape_json_into(&mut out, name);
        let _ = write!(out, ":{value}");
    }
    out.push_str("},\"gauges\":{");
    for (i, (name, value)) in snapshot.gauges.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        escape_json_into(&mut out, name);
        let _ = write!(out, ":{value}");
    }
    out.push_str("},\"histograms\":{");
    for (i, (name, h)) in snapshot.histograms.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        escape_json_into(&mut out, name);
        out.push(':');
        out.push_str(&histogram_json(h));
    }
    out.push_str("}}\n");
    out
}

/// Maps a dotted metric name onto a Prometheus-legal one.
fn prometheus_name(name: &str) -> String {
    let mut out = String::from("pea_");
    for c in name.chars() {
        if c.is_ascii_alphanumeric() {
            out.push(c);
        } else {
            out.push('_');
        }
    }
    out
}

/// Renders the snapshot as a Prometheus-style text exposition (the format
/// a future `/metrics` server endpoint would serve): counters, gauges,
/// and cumulative histogram buckets with `_sum`/`_count` series.
pub fn render_prometheus(snapshot: &MetricsSnapshot) -> String {
    let mut out = String::new();
    for (name, value) in &snapshot.counters {
        let n = prometheus_name(name);
        let _ = writeln!(out, "# TYPE {n} counter");
        let _ = writeln!(out, "{n} {value}");
    }
    for (name, value) in &snapshot.gauges {
        let n = prometheus_name(name);
        let _ = writeln!(out, "# TYPE {n} gauge");
        let _ = writeln!(out, "{n} {value}");
    }
    for (name, h) in &snapshot.histograms {
        let n = prometheus_name(name);
        let _ = writeln!(out, "# TYPE {n} histogram");
        let mut cumulative = 0u64;
        for (i, &c) in h.buckets.iter().enumerate() {
            if c == 0 {
                continue;
            }
            cumulative += c;
            let le = bucket_upper_bound(i);
            if le == u64::MAX {
                continue; // folded into the +Inf bucket below
            }
            let _ = writeln!(out, "{n}_bucket{{le=\"{le}\"}} {cumulative}");
        }
        let _ = writeln!(out, "{n}_bucket{{le=\"+Inf\"}} {}", h.count());
        let _ = writeln!(out, "{n}_sum {}", h.sum);
        let _ = writeln!(out, "{n}_count {}", h.count());
    }
    out
}

/// Creates (truncating) a file, first creating any missing parent
/// directories.
///
/// # Errors
///
/// Any I/O error from directory creation or file creation.
pub fn create_file_with_dirs(path: &Path) -> io::Result<File> {
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    File::create(path)
}

/// Writes `contents` to `path`, creating missing parent directories.
///
/// # Errors
///
/// Any I/O error from directory or file creation, or the write.
pub fn write_with_dirs(path: &Path, contents: &str) -> io::Result<()> {
    use io::Write as _;
    let mut f = create_file_with_dirs(path)?;
    f.write_all(contents.as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::VmMetrics;

    fn sample() -> MetricsSnapshot {
        let m = VmMetrics::default();
        m.interp.steps.add(42);
        m.pea.virtualized.add(3);
        m.compile.queue_depth.set(2);
        m.compile.total_us.record(100);
        m.compile.total_us.record(3000);
        m.heap.classes.resolve("Key").allocs.inc();
        m.snapshot()
    }

    #[test]
    fn text_report_contains_every_section() {
        let t = render_text(&sample());
        assert!(t.contains("[interp]"));
        assert!(t.contains("interp.steps"));
        assert!(t.contains("42"));
        assert!(t.contains("[gauges]"));
        assert!(t.contains("compile.queue_depth"));
        assert!(t.contains("[histograms]"));
        assert!(t.contains("compile.total_us"));
        assert!(t.contains("count=2"));
        assert!(t.contains("heap.class.Key.allocs"));
    }

    #[test]
    fn json_is_parseable_enough_and_stable() {
        let j = render_json(&sample());
        assert!(j.starts_with("{\"schema\":\"pea-metrics/1\""));
        assert!(j.contains("\"interp.steps\":42"));
        assert!(j.contains("\"compile.queue_depth\":2"));
        assert!(j.contains("\"compile.total_us\":{\"count\":2,\"sum\":3100"));
        assert!(j.contains("\"le\":127,\"count\":1"));
        // Two renders of the same snapshot are byte-identical.
        assert_eq!(j, render_json(&sample()));
    }

    #[test]
    fn prometheus_exposition_has_types_buckets_and_counts() {
        let p = render_prometheus(&sample());
        assert!(p.contains("# TYPE pea_interp_steps counter"));
        assert!(p.contains("pea_interp_steps 42"));
        assert!(p.contains("# TYPE pea_compile_queue_depth gauge"));
        assert!(p.contains("# TYPE pea_compile_total_us histogram"));
        assert!(p.contains("pea_compile_total_us_bucket{le=\"127\"} 1"));
        assert!(p.contains("pea_compile_total_us_bucket{le=\"+Inf\"} 2"));
        assert!(p.contains("pea_compile_total_us_sum 3100"));
        assert!(p.contains("pea_compile_total_us_count 2"));
        assert!(p.contains("pea_heap_class_Key_allocs 1"));
    }

    #[test]
    fn write_with_dirs_creates_missing_parents() {
        let dir = std::env::temp_dir().join(format!("pea-metrics-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let path = dir.join("a/b/METRICS.json");
        write_with_dirs(&path, "{}\n").unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "{}\n");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
