//! Renderers for [`MetricsSnapshot`]: human-readable report, stable JSON,
//! and Prometheus-style text exposition — plus file helpers that create
//! missing parent directories (so `--metrics-json out/run1/METRICS.json`
//! just works).

use crate::{bucket_upper_bound, HistogramSnapshot, MetricsSnapshot};
use std::fmt::Write as _;
use std::fs::File;
use std::io;
use std::path::Path;

/// Renders the end-of-run human-readable report (`--metrics` prints this
/// to stderr).
pub fn render_text(snapshot: &MetricsSnapshot) -> String {
    let mut out = String::from("== metrics ==\n");
    let mut group = "";
    for (name, value) in &snapshot.counters {
        let g = name.split('.').next().unwrap_or("");
        if g != group {
            group = g;
            let _ = writeln!(out, "[{g}]");
        }
        let _ = writeln!(out, "  {name:<40} {value}");
    }
    let _ = writeln!(out, "[gauges]");
    for (name, value) in &snapshot.gauges {
        let _ = writeln!(out, "  {name:<40} {value}");
    }
    let _ = writeln!(out, "[histograms]");
    for (name, h) in &snapshot.histograms {
        let _ = writeln!(
            out,
            "  {name:<40} count={} sum={} mean={} p50<={} p90<={} p99<={} max={}",
            h.count(),
            h.sum,
            h.mean(),
            h.quantile(0.5),
            h.quantile(0.9),
            h.quantile(0.99),
            h.max,
        );
    }
    out
}

pub(crate) fn escape_json_into(buf: &mut String, s: &str) {
    buf.push('"');
    for c in s.chars() {
        match c {
            '"' => buf.push_str("\\\""),
            '\\' => buf.push_str("\\\\"),
            '\n' => buf.push_str("\\n"),
            '\r' => buf.push_str("\\r"),
            '\t' => buf.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(buf, "\\u{:04x}", c as u32);
            }
            c => buf.push(c),
        }
    }
    buf.push('"');
}

fn histogram_json(h: &HistogramSnapshot) -> String {
    let mut out = String::from("{");
    let _ = write!(
        out,
        "\"count\":{},\"sum\":{},\"max\":{},\"mean\":{},\"p50\":{},\"p90\":{},\"p99\":{},",
        h.count(),
        h.sum,
        h.max,
        h.mean(),
        h.quantile(0.5),
        h.quantile(0.9),
        h.quantile(0.99),
    );
    out.push_str("\"buckets\":[");
    let mut first = true;
    for (i, &c) in h.buckets.iter().enumerate() {
        if c == 0 {
            continue;
        }
        if !first {
            out.push(',');
        }
        first = false;
        let le = bucket_upper_bound(i);
        if le == u64::MAX {
            let _ = write!(out, "{{\"le\":\"+Inf\",\"count\":{c}}}");
        } else {
            let _ = write!(out, "{{\"le\":{le},\"count\":{c}}}");
        }
    }
    out.push_str("]}");
    out
}

/// Renders the snapshot as one stable-schema JSON document
/// (`pea-metrics/1`): counters and gauges as flat name→value maps,
/// histograms as summaries with non-empty `{le, count}` buckets.
pub fn render_json(snapshot: &MetricsSnapshot) -> String {
    let mut out = String::from("{\"schema\":\"pea-metrics/1\",\"counters\":{");
    for (i, (name, value)) in snapshot.counters.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        escape_json_into(&mut out, name);
        let _ = write!(out, ":{value}");
    }
    out.push_str("},\"gauges\":{");
    for (i, (name, value)) in snapshot.gauges.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        escape_json_into(&mut out, name);
        let _ = write!(out, ":{value}");
    }
    out.push_str("},\"histograms\":{");
    for (i, (name, h)) in snapshot.histograms.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        escape_json_into(&mut out, name);
        out.push(':');
        out.push_str(&histogram_json(h));
    }
    out.push_str("}}\n");
    out
}

/// Maps a dotted metric name onto a Prometheus-legal one.
fn prometheus_name(name: &str) -> String {
    let mut out = String::from("pea_");
    for c in name.chars() {
        if c.is_ascii_alphanumeric() {
            out.push(c);
        } else {
            out.push('_');
        }
    }
    out
}

/// Escapes a Prometheus label value: backslash, double quote, and newline
/// must be backslash-escaped inside the quoted value.
fn escape_label_value(s: &str) -> String {
    let mut out = String::new();
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// Splits a counter name into its Prometheus metric family and optional
/// label set. Per-class heap rows (`heap.class.<Name>.allocs` /
/// `.bytes`) become one labeled family
/// (`pea_heap_class_allocs{class="<Name>"}`) instead of a mangled metric
/// name per class, with the class name escaped as a label value.
fn family_and_labels(name: &str) -> (String, Option<String>) {
    if let Some(rest) = name.strip_prefix("heap.class.") {
        if let Some(class) = rest.strip_suffix(".allocs") {
            return (
                "pea_heap_class_allocs".to_string(),
                Some(format!("class=\"{}\"", escape_label_value(class))),
            );
        }
        if let Some(class) = rest.strip_suffix(".bytes") {
            return (
                "pea_heap_class_bytes".to_string(),
                Some(format!("class=\"{}\"", escape_label_value(class))),
            );
        }
    }
    (prometheus_name(name), None)
}

/// One-line help text for a metric family.
fn help_text(family: &str) -> &'static str {
    match family {
        "pea_interp_steps" => "Bytecode instructions interpreted.",
        "pea_interp_invocations" => "Method invocations dispatched to the interpreter.",
        "pea_vm_cycles" => "Virtual cycles charged by the cost model.",
        "pea_heap_class_allocs" => "Heap allocations per class.",
        "pea_heap_class_bytes" => "Heap bytes allocated per class.",
        "pea_compile_queue_depth" => "Compile-service queue depth.",
        _ => "pea VM metric (virtual units; see DESIGN.md cost model).",
    }
}

/// Writes the `# HELP` / `# TYPE` header for `family` unless it was the
/// previously announced family (labeled series share one header).
fn write_header(out: &mut String, announced: &mut Option<String>, family: &str, kind: &str) {
    if announced.as_deref() != Some(family) {
        let _ = writeln!(out, "# HELP {family} {}", help_text(family));
        let _ = writeln!(out, "# TYPE {family} {kind}");
        *announced = Some(family.to_string());
    }
}

/// Renders the snapshot as a Prometheus-style text exposition (the format
/// a future `/metrics` server endpoint would serve): `# HELP`/`# TYPE`
/// headers per family, per-class heap rows as labeled series with escaped
/// label values, and cumulative histogram buckets with `_sum`/`_count`
/// series.
pub fn render_prometheus(snapshot: &MetricsSnapshot) -> String {
    let mut out = String::new();
    let mut announced = None;
    // Group counter samples by family first: labeled per-class rows
    // (`…allocs`/`…bytes`) interleave in the snapshot's name order, but
    // the exposition format wants each family's samples contiguous under
    // one header.
    let mut order: Vec<String> = Vec::new();
    let mut families: std::collections::BTreeMap<String, Vec<String>> =
        std::collections::BTreeMap::new();
    for (name, value) in &snapshot.counters {
        let (family, labels) = family_and_labels(name);
        let line = match labels {
            Some(l) => format!("{family}{{{l}}} {value}"),
            None => format!("{family} {value}"),
        };
        if !families.contains_key(&family) {
            order.push(family.clone());
        }
        families.entry(family).or_default().push(line);
    }
    for family in order {
        write_header(&mut out, &mut announced, &family, "counter");
        for line in &families[&family] {
            let _ = writeln!(out, "{line}");
        }
    }
    for (name, value) in &snapshot.gauges {
        let n = prometheus_name(name);
        write_header(&mut out, &mut announced, &n, "gauge");
        let _ = writeln!(out, "{n} {value}");
    }
    for (name, h) in &snapshot.histograms {
        let n = prometheus_name(name);
        write_header(&mut out, &mut announced, &n, "histogram");
        let mut cumulative = 0u64;
        for (i, &c) in h.buckets.iter().enumerate() {
            if c == 0 {
                continue;
            }
            cumulative += c;
            let le = bucket_upper_bound(i);
            if le == u64::MAX {
                continue; // folded into the +Inf bucket below
            }
            let _ = writeln!(out, "{n}_bucket{{le=\"{le}\"}} {cumulative}");
        }
        let _ = writeln!(out, "{n}_bucket{{le=\"+Inf\"}} {}", h.count());
        let _ = writeln!(out, "{n}_sum {}", h.sum);
        let _ = writeln!(out, "{n}_count {}", h.count());
    }
    out
}

/// Creates (truncating) a file, first creating any missing parent
/// directories.
///
/// # Errors
///
/// Any I/O error from directory creation or file creation.
pub fn create_file_with_dirs(path: &Path) -> io::Result<File> {
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    File::create(path)
}

/// Writes `contents` to `path`, creating missing parent directories.
///
/// # Errors
///
/// Any I/O error from directory or file creation, or the write.
pub fn write_with_dirs(path: &Path, contents: &str) -> io::Result<()> {
    use io::Write as _;
    let mut f = create_file_with_dirs(path)?;
    f.write_all(contents.as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::VmMetrics;

    fn sample() -> MetricsSnapshot {
        let m = VmMetrics::default();
        m.interp.steps.add(42);
        m.pea.virtualized.add(3);
        m.compile.queue_depth.set(2);
        m.compile.total_us.record(100);
        m.compile.total_us.record(3000);
        m.heap.classes.resolve("Key").allocs.inc();
        m.snapshot()
    }

    #[test]
    fn text_report_contains_every_section() {
        let t = render_text(&sample());
        assert!(t.contains("[interp]"));
        assert!(t.contains("interp.steps"));
        assert!(t.contains("42"));
        assert!(t.contains("[gauges]"));
        assert!(t.contains("compile.queue_depth"));
        assert!(t.contains("[histograms]"));
        assert!(t.contains("compile.total_us"));
        assert!(t.contains("count=2"));
        assert!(t.contains("heap.class.Key.allocs"));
    }

    #[test]
    fn json_is_parseable_enough_and_stable() {
        let j = render_json(&sample());
        assert!(j.starts_with("{\"schema\":\"pea-metrics/1\""));
        assert!(j.contains("\"interp.steps\":42"));
        assert!(j.contains("\"compile.queue_depth\":2"));
        assert!(j.contains("\"compile.total_us\":{\"count\":2,\"sum\":3100"));
        assert!(j.contains("\"le\":127,\"count\":1"));
        // Two renders of the same snapshot are byte-identical.
        assert_eq!(j, render_json(&sample()));
    }

    #[test]
    fn prometheus_exposition_has_types_buckets_and_counts() {
        let p = render_prometheus(&sample());
        assert!(p.contains("# TYPE pea_interp_steps counter"));
        assert!(p.contains("pea_interp_steps 42"));
        assert!(p.contains("# TYPE pea_compile_queue_depth gauge"));
        assert!(p.contains("# TYPE pea_compile_total_us histogram"));
        assert!(p.contains("pea_compile_total_us_bucket{le=\"127\"} 1"));
        assert!(p.contains("pea_compile_total_us_bucket{le=\"+Inf\"} 2"));
        assert!(p.contains("pea_compile_total_us_sum 3100"));
        assert!(p.contains("pea_compile_total_us_count 2"));
        assert!(p.contains("pea_heap_class_allocs{class=\"Key\"} 1"));
    }

    #[test]
    fn prometheus_scrape_format_is_well_formed() {
        let m = VmMetrics::default();
        m.interp.steps.add(1);
        m.heap.classes.resolve("Key").allocs.inc();
        m.heap.classes.resolve("Pair$Inner").allocs.add(2);
        m.heap.classes.resolve("we\"ird\\name").allocs.inc();
        m.compile.total_us.record(9);
        let p = render_prometheus(&m.snapshot());

        // Every metric family is announced with # HELP then # TYPE, exactly
        // once, before its first sample line.
        let mut seen = std::collections::HashSet::new();
        let mut pending_help: Option<String> = None;
        let mut announced = std::collections::HashSet::new();
        for line in p.lines() {
            if let Some(rest) = line.strip_prefix("# HELP ") {
                let family = rest.split_whitespace().next().unwrap().to_string();
                assert!(seen.insert(family.clone()), "duplicate HELP for {family}");
                pending_help = Some(family);
            } else if let Some(rest) = line.strip_prefix("# TYPE ") {
                let mut parts = rest.split_whitespace();
                let family = parts.next().unwrap();
                assert!(
                    matches!(parts.next(), Some("counter" | "gauge" | "histogram")),
                    "bad TYPE line: {line}"
                );
                assert_eq!(
                    pending_help.take().as_deref(),
                    Some(family),
                    "TYPE without HELP"
                );
                announced.insert(family.to_string());
            } else if !line.is_empty() {
                let name = line
                    .split(['{', ' '])
                    .next()
                    .unwrap()
                    .trim_end_matches("_bucket")
                    .trim_end_matches("_sum")
                    .trim_end_matches("_count");
                assert!(
                    announced.contains(name),
                    "sample {line:?} before its family header"
                );
            }
        }

        // Per-class rows are one labeled family with escaped label values.
        assert!(p.contains("pea_heap_class_allocs{class=\"Key\"} 1"));
        assert!(p.contains("pea_heap_class_allocs{class=\"Pair$Inner\"} 2"));
        assert!(p.contains("pea_heap_class_allocs{class=\"we\\\"ird\\\\name\"} 1"));
        assert_eq!(
            p.matches("# TYPE pea_heap_class_allocs counter").count(),
            1,
            "labeled series share one header"
        );
        assert!(p.contains("# HELP pea_heap_class_allocs Heap allocations per class."));
    }

    #[test]
    fn write_with_dirs_creates_missing_parents() {
        let dir = std::env::temp_dir().join(format!("pea-metrics-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let path = dir.join("a/b/METRICS.json");
        write_with_dirs(&path, "{}\n").unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "{}\n");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
