//! Cycle-attribution profiler for the tiered VM.
//!
//! The metrics registry answers "how many cycles did the whole run burn";
//! this module answers **where**: virtual cycles and allocation counts per
//! `(method, tier)`, per-bytecode-index hot-spot buckets for interpreted
//! code, and a per-opcode-kind breakdown — all fed from the points that
//! already charge the `pea_runtime::cost` constants.
//!
//! The design mirrors [`crate::MetricsHub`] exactly:
//!
//! * [`ProfilerHub`] is the clonable enabled/disabled handle (an
//!   `Option<Arc<VmProfiler>>`), with a `const` disabled value and a
//!   `'static` disabled reference for trait-default methods;
//! * the VM pre-resolves one [`MethodStats`] cell per program method at
//!   construction into a [`ProfileRecorder`] (the [`crate::HeapRecorder`]
//!   pattern), so the hot path is array indexing plus relaxed atomic adds
//!   — no lock, no name lookup, no allocation;
//! * attribution context (which method, which tier) lives *in* the
//!   recorder: the VM's `charge` implementation calls
//!   [`ProfileRecorder::charge`] and every cycle lands in the current
//!   `(method, tier)` cell. Because every charged cycle is attributed to
//!   exactly one cell, the profiler's total reconciles **exactly** with
//!   the VM's `stats.cycles` — asserted over the corpus in both JIT modes
//!   and both exec tiers.
//!
//! When disabled, every recording entry point is a single branch (an
//! empty-table or `Option` check) with zero allocations, pinned by a
//! counting-allocator test in `pea-vm`.
//!
//! With several mutator threads on one VM, every mutator carries its
//! **own** [`ProfileRecorder`] — the attribution context (current
//! method, current tier) is recorder state, so concurrent threads can
//! never cross-charge each other's cycles. Same-named cells resolved
//! from one hub share their atomics, so a [`ProfilerHub`] snapshot is
//! the exact sum over threads; per-thread exactness is asserted in
//! `crates/vm/tests/threads.rs` (two mutators running distinct methods
//! match their solo totals cell for cell).

use crate::Counter;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Execution tiers cycles are attributed to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Tier {
    /// The profiling interpreter.
    Interp = 0,
    /// The graph-walking evaluator (`--exec-mode graph`).
    Graph = 1,
    /// The linear register-machine tier (`--exec-mode linear`).
    Linear = 2,
}

/// Number of tiers (array dimension of per-method cells).
pub const TIERS: usize = 3;

impl Tier {
    /// Stable kebab-case name.
    pub fn as_str(self) -> &'static str {
        match self {
            Tier::Interp => "interp",
            Tier::Graph => "graph",
            Tier::Linear => "linear",
        }
    }

    /// The tier with index `i` (inverse of `as usize`).
    pub fn from_index(i: usize) -> Tier {
        match i {
            0 => Tier::Interp,
            1 => Tier::Graph,
            _ => Tier::Linear,
        }
    }
}

/// Number of per-opcode-kind buckets (generously above the bytecode's
/// opcode count; out-of-range slots clamp into the last bucket).
pub const OPCODE_BUCKETS: usize = 64;

/// Counters for one `(method, tier)` pair.
#[derive(Debug, Default)]
pub struct TierStats {
    /// Virtual cycles charged while this method ran on this tier.
    pub cycles: Counter,
    /// Heap allocations performed while this method ran on this tier
    /// (including commit-group and deopt rematerializations).
    pub allocs: Counter,
    /// Invocations dispatched to this tier.
    pub invocations: Counter,
    /// Deoptimizations taken while this method ran on this tier.
    pub deopts: Counter,
}

/// Per-method profile cells, shared between the registry (for reporting)
/// and the recorder (for lock-free recording by method index).
#[derive(Debug)]
pub struct MethodStats {
    /// Method name (registry key).
    pub name: String,
    /// Per-tier counters, indexed by `Tier as usize`.
    pub tiers: [TierStats; TIERS],
    /// Interpreter cycles per bytecode index (hot-spot buckets); sized by
    /// the method's code length at registration.
    pub bci_cycles: Vec<AtomicU64>,
}

impl MethodStats {
    fn new(name: String, code_len: usize) -> Self {
        MethodStats {
            name,
            tiers: Default::default(),
            bci_cycles: (0..code_len).map(|_| AtomicU64::new(0)).collect(),
        }
    }
}

/// The profiler registry: every cell of every VM attached to one hub.
#[derive(Debug, Default)]
pub struct VmProfiler {
    methods: Mutex<BTreeMap<String, Arc<MethodStats>>>,
    opcode_cycles: Vec<AtomicU64>,
    /// Deoptimizations recorded (reconciles with `vm.deopts`).
    pub deopts: Counter,
    /// Compiled-method installs recorded (reconciles with `vm.installs`).
    pub installs: Counter,
}

impl VmProfiler {
    fn new() -> Self {
        VmProfiler {
            methods: Mutex::new(BTreeMap::new()),
            opcode_cycles: (0..OPCODE_BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            deopts: Counter::default(),
            installs: Counter::default(),
        }
    }

    /// Returns (creating if needed) the cell for `name`. Same-named
    /// methods of several VMs sharing one hub merge, like
    /// [`crate::ClassRegistry`] rows.
    pub fn resolve(&self, name: &str, code_len: usize) -> Arc<MethodStats> {
        let mut methods = self.methods.lock().expect("profiler registry poisoned");
        Arc::clone(
            methods
                .entry(name.to_string())
                .or_insert_with(|| Arc::new(MethodStats::new(name.to_string(), code_len))),
        )
    }

    /// Adds interpreter cycles to an opcode-kind bucket.
    #[inline]
    pub fn record_opcode(&self, slot: usize, cycles: u64) {
        self.opcode_cycles[slot.min(OPCODE_BUCKETS - 1)].fetch_add(cycles, Ordering::Relaxed);
    }

    /// Freezes the registry into a plain-data [`ProfileSnapshot`].
    pub fn snapshot(&self) -> ProfileSnapshot {
        let methods = self.methods.lock().expect("profiler registry poisoned");
        let mut rows = Vec::new();
        let mut hot_bcis = Vec::new();
        for stats in methods.values() {
            for (i, t) in stats.tiers.iter().enumerate() {
                let (cycles, allocs, invocations, deopts) = (
                    t.cycles.get(),
                    t.allocs.get(),
                    t.invocations.get(),
                    t.deopts.get(),
                );
                if cycles | allocs | invocations | deopts != 0 {
                    rows.push(ProfileRow {
                        method: stats.name.clone(),
                        tier: Tier::from_index(i),
                        cycles,
                        allocs,
                        invocations,
                        deopts,
                    });
                }
            }
            for (bci, c) in stats.bci_cycles.iter().enumerate() {
                let cycles = c.load(Ordering::Relaxed);
                if cycles != 0 {
                    hot_bcis.push((stats.name.clone(), bci as u32, cycles));
                }
            }
        }
        rows.sort_by(|a, b| b.cycles.cmp(&a.cycles).then(a.method.cmp(&b.method)));
        hot_bcis.sort_by(|a, b| b.2.cmp(&a.2).then(a.0.cmp(&b.0)).then(a.1.cmp(&b.1)));
        ProfileSnapshot {
            rows,
            hot_bcis,
            opcode_cycles: self
                .opcode_cycles
                .iter()
                .map(|c| c.load(Ordering::Relaxed))
                .collect(),
            deopts: self.deopts.get(),
            installs: self.installs.get(),
        }
    }
}

/// One `(method, tier)` row of a [`ProfileSnapshot`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProfileRow {
    pub method: String,
    pub tier: Tier,
    pub cycles: u64,
    pub allocs: u64,
    pub invocations: u64,
    pub deopts: u64,
}

/// Plain-data freeze of a [`VmProfiler`], ordered hottest-first.
#[derive(Debug, Clone, Default)]
pub struct ProfileSnapshot {
    /// Per-`(method, tier)` rows with any non-zero counter, by cycles
    /// descending.
    pub rows: Vec<ProfileRow>,
    /// `(method, bci, cycles)` interpreter hot spots, by cycles descending.
    pub hot_bcis: Vec<(String, u32, u64)>,
    /// Interpreter cycles per opcode-kind bucket ([`OPCODE_BUCKETS`]
    /// entries; index with the interpreter's opcode-slot mapping).
    pub opcode_cycles: Vec<u64>,
    /// Total deopts recorded.
    pub deopts: u64,
    /// Total installs recorded.
    pub installs: u64,
}

fn pct(part: u64, total: u64) -> f64 {
    if total == 0 {
        0.0
    } else {
        part as f64 * 100.0 / total as f64
    }
}

impl ProfileSnapshot {
    /// Sum of attributed cycles across every `(method, tier)` cell — the
    /// quantity that must equal the VM's `stats.cycles` delta.
    pub fn total_cycles(&self) -> u64 {
        self.rows.iter().map(|r| r.cycles).sum()
    }

    /// Sum of attributed allocations.
    pub fn total_allocs(&self) -> u64 {
        self.rows.iter().map(|r| r.allocs).sum()
    }

    /// Cycles attributed to one tier.
    pub fn tier_cycles(&self, tier: Tier) -> u64 {
        self.rows
            .iter()
            .filter(|r| r.tier == tier)
            .map(|r| r.cycles)
            .sum()
    }

    /// Renders the top-`n` table: `(method, tier)` rows hottest-first with
    /// cycle share, allocations, invocations and deopts.
    pub fn render_top(&self, n: usize) -> String {
        let total = self.total_cycles();
        let mut out = String::new();
        out.push_str(&format!(
            "{:<40} {:>7} {:>14} {:>6} {:>10} {:>10} {:>7}\n",
            "method", "tier", "cycles", "%", "allocs", "invocs", "deopts"
        ));
        for row in self.rows.iter().take(n) {
            out.push_str(&format!(
                "{:<40} {:>7} {:>14} {:>6.2} {:>10} {:>10} {:>7}\n",
                row.method,
                row.tier.as_str(),
                row.cycles,
                pct(row.cycles, total),
                row.allocs,
                row.invocations,
                row.deopts
            ));
        }
        out.push_str(&format!(
            "total: {} cycles over {} (method, tier) rows; {} deopts, {} installs\n",
            total,
            self.rows.len(),
            self.deopts,
            self.installs
        ));
        out
    }

    /// Renders collapsed-stack lines (`method;tier cycles`), the input
    /// format of flamegraph generators.
    pub fn collapsed_stacks(&self) -> String {
        let mut out = String::new();
        for row in &self.rows {
            if row.cycles != 0 {
                out.push_str(&format!(
                    "{};{} {}\n",
                    row.method,
                    row.tier.as_str(),
                    row.cycles
                ));
            }
        }
        out
    }

    /// Renders the per-opcode table using `names[slot]` labels (slots past
    /// the table render as `op<slot>`).
    pub fn render_opcodes(&self, names: &[&str]) -> String {
        let mut rows: Vec<(usize, u64)> = self
            .opcode_cycles
            .iter()
            .copied()
            .enumerate()
            .filter(|&(_, c)| c != 0)
            .collect();
        rows.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        let total: u64 = rows.iter().map(|&(_, c)| c).sum();
        let mut out = String::new();
        for (slot, cycles) in rows {
            let name = names
                .get(slot)
                .copied()
                .map_or_else(|| format!("op{slot}"), str::to_string);
            out.push_str(&format!(
                "{name:<16} {cycles:>14} {:>6.2}%\n",
                pct(cycles, total)
            ));
        }
        out
    }

    /// Serializes the snapshot (plus an optional reconciliation section)
    /// as a `pea-profile/1` JSON document.
    pub fn to_json(&self, opcode_names: &[&str], recon: Option<&Reconciliation>) -> String {
        let mut out = String::from("{\"schema\":\"pea-profile/1\"");
        out.push_str(&format!(
            ",\"total_cycles\":{},\"total_allocs\":{},\"deopts\":{},\"installs\":{}",
            self.total_cycles(),
            self.total_allocs(),
            self.deopts,
            self.installs
        ));
        out.push_str(",\"rows\":[");
        for (i, row) in self.rows.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let mut method = String::new();
            crate::export::escape_json_into(&mut method, &row.method);
            out.push_str(&format!(
                "{{\"method\":{method},\"tier\":\"{}\",\"cycles\":{},\"allocs\":{},\
                 \"invocations\":{},\"deopts\":{}}}",
                row.tier.as_str(),
                row.cycles,
                row.allocs,
                row.invocations,
                row.deopts
            ));
        }
        out.push_str("],\"hot_bcis\":[");
        for (i, (method, bci, cycles)) in self.hot_bcis.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let mut m = String::new();
            crate::export::escape_json_into(&mut m, method);
            out.push_str(&format!(
                "{{\"method\":{m},\"bci\":{bci},\"cycles\":{cycles}}}"
            ));
        }
        out.push_str("],\"opcodes\":[");
        let mut first = true;
        for (slot, &cycles) in self.opcode_cycles.iter().enumerate() {
            if cycles == 0 {
                continue;
            }
            if !first {
                out.push(',');
            }
            first = false;
            let mut name = String::new();
            let label = opcode_names
                .get(slot)
                .copied()
                .map_or_else(|| format!("op{slot}"), str::to_string);
            crate::export::escape_json_into(&mut name, &label);
            out.push_str(&format!("{{\"op\":{name},\"cycles\":{cycles}}}"));
        }
        out.push(']');
        if let Some(r) = recon {
            out.push_str(&format!(
                ",\"reconciliation\":{{\"profiler_cycles\":{},\"stats_cycles\":{},\
                 \"profiler_deopts\":{},\"vm_deopts\":{},\"profiler_installs\":{},\
                 \"vm_installs\":{},\"ok\":{}}}",
                r.profiler_cycles,
                r.stats_cycles,
                r.profiler_deopts,
                r.vm_deopts,
                r.profiler_installs,
                r.vm_installs,
                r.ok()
            ));
        }
        out.push('}');
        out
    }
}

/// Profiler totals next to the independently maintained VM counters they
/// must match (`stats.cycles`, `vm.deopts`, `vm.installs`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Reconciliation {
    pub profiler_cycles: u64,
    pub stats_cycles: u64,
    pub profiler_deopts: u64,
    pub vm_deopts: u64,
    pub profiler_installs: u64,
    pub vm_installs: u64,
}

impl Reconciliation {
    /// Whether every pair agrees exactly.
    pub fn ok(&self) -> bool {
        self.profiler_cycles == self.stats_cycles
            && self.profiler_deopts == self.vm_deopts
            && self.profiler_installs == self.vm_installs
    }
}

/// The handle instrumented code holds: enabled (shared registry) or
/// disabled. Mirrors [`crate::MetricsHub`].
#[derive(Clone, Debug, Default)]
pub struct ProfilerHub(Option<Arc<VmProfiler>>);

static DISABLED_HUB: ProfilerHub = ProfilerHub::disabled();

impl ProfilerHub {
    /// A hub with a fresh registry attached.
    pub fn enabled() -> ProfilerHub {
        ProfilerHub(Some(Arc::new(VmProfiler::new())))
    }

    /// A recording-nothing hub (const: usable in statics).
    pub const fn disabled() -> ProfilerHub {
        ProfilerHub(None)
    }

    /// A `'static` reference to the disabled hub.
    pub fn disabled_ref() -> &'static ProfilerHub {
        &DISABLED_HUB
    }

    /// The registry, when enabled.
    #[inline]
    pub fn on(&self) -> Option<&VmProfiler> {
        self.0.as_deref()
    }

    /// Whether recording is enabled.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.0.is_some()
    }

    /// Snapshot of the registry, when enabled.
    pub fn snapshot(&self) -> Option<ProfileSnapshot> {
        self.0.as_ref().map(|p| p.snapshot())
    }
}

/// Sentinel context meaning "no method entered yet" (out of range of any
/// resolved table, so charges before the first dispatch drop harmlessly —
/// the VM enters a context before anything charges).
const NO_CTX: u64 = u64::MAX;

/// Pre-resolved recorder held by one VM: per-method cells in method-index
/// order plus the current attribution context `(method, tier)`.
///
/// The context is packed into one relaxed atomic (`method << 2 | tier`) so
/// the recorder can live in a `static` for the disabled default and the
/// hot path stays a load + two array indexes + an atomic add.
#[derive(Debug)]
pub struct ProfileRecorder {
    hub: ProfilerHub,
    methods: Vec<Arc<MethodStats>>,
    ctx: AtomicU64,
}

static DISABLED_RECORDER: ProfileRecorder = ProfileRecorder::disabled();

/// A per-frame handle the interpreter resolves once at method entry, so
/// per-instruction hot-spot recording needs no map or registry access.
#[derive(Debug)]
pub struct FrameProfile {
    method: Arc<MethodStats>,
    registry: Arc<VmProfiler>,
}

impl FrameProfile {
    /// Adds `cycles` to the frame's per-bci bucket and the global
    /// per-opcode bucket.
    #[inline]
    pub fn record_op(&self, bci: u32, opcode_slot: usize, cycles: u64) {
        if let Some(cell) = self.method.bci_cycles.get(bci as usize) {
            cell.fetch_add(cycles, Ordering::Relaxed);
        }
        self.registry.record_opcode(opcode_slot, cycles);
    }
}

impl ProfileRecorder {
    /// A recording-nothing recorder (const: usable in statics). Every
    /// entry point is one branch on the empty method table.
    pub const fn disabled() -> Self {
        ProfileRecorder {
            hub: ProfilerHub::disabled(),
            methods: Vec::new(),
            ctx: AtomicU64::new(NO_CTX),
        }
    }

    /// A `'static` reference to the disabled recorder, for trait-default
    /// methods.
    pub fn disabled_ref() -> &'static ProfileRecorder {
        &DISABLED_RECORDER
    }

    /// Builds a recorder for `hub`, resolving one cell per method in
    /// method-index order. A disabled hub yields the recording-nothing
    /// default.
    pub fn new<'a>(
        hub: &ProfilerHub,
        methods: impl IntoIterator<Item = (&'a str, usize)>,
    ) -> ProfileRecorder {
        let Some(p) = hub.on() else {
            return ProfileRecorder::disabled();
        };
        ProfileRecorder {
            hub: hub.clone(),
            methods: methods
                .into_iter()
                .map(|(name, code_len)| p.resolve(name, code_len))
                .collect(),
            ctx: AtomicU64::new(NO_CTX),
        }
    }

    /// Whether this recorder is attached to an enabled hub.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        !self.methods.is_empty()
    }

    /// The hub this recorder records into.
    pub fn hub(&self) -> &ProfilerHub {
        &self.hub
    }

    /// Enters attribution context `(method, tier)`, returning the packed
    /// previous context to pass to [`restore`](Self::restore) on exit.
    #[inline]
    pub fn enter(&self, method: usize, tier: Tier) -> u64 {
        if self.methods.is_empty() {
            return NO_CTX;
        }
        self.ctx
            .swap(((method as u64) << 2) | tier as u64, Ordering::Relaxed)
    }

    /// Restores a context saved by [`enter`](Self::enter).
    #[inline]
    pub fn restore(&self, prev: u64) {
        if self.methods.is_empty() {
            return;
        }
        self.ctx.store(prev, Ordering::Relaxed);
    }

    #[inline]
    fn current(&self) -> Option<(&MethodStats, usize)> {
        let ctx = self.ctx.load(Ordering::Relaxed);
        let stats = self.methods.get((ctx >> 2) as usize)?;
        Some((stats, (ctx & 3) as usize))
    }

    /// Attributes `cycles` to the current `(method, tier)` context. The
    /// VM calls this from its `charge` implementation, so *every* charged
    /// cycle lands in exactly one cell.
    #[inline]
    pub fn charge(&self, cycles: u64) {
        if self.methods.is_empty() {
            return;
        }
        if let Some((stats, tier)) = self.current() {
            stats.tiers[tier].cycles.add(cycles);
        }
    }

    /// Attributes one heap allocation to the current context.
    #[inline]
    pub fn record_alloc(&self) {
        if self.methods.is_empty() {
            return;
        }
        if let Some((stats, tier)) = self.current() {
            stats.tiers[tier].allocs.inc();
        }
    }

    /// Counts an invocation of `method` on `tier`.
    #[inline]
    pub fn record_invocation(&self, method: usize, tier: Tier) {
        if let Some(stats) = self.methods.get(method) {
            stats.tiers[tier as usize].invocations.inc();
        }
    }

    /// Counts a deoptimization, attributed to the current context.
    #[inline]
    pub fn record_deopt(&self) {
        if self.methods.is_empty() {
            return;
        }
        if let Some((stats, tier)) = self.current() {
            stats.tiers[tier].deopts.inc();
        }
        if let Some(p) = self.hub.on() {
            p.deopts.inc();
        }
    }

    /// Counts a compiled-method install.
    #[inline]
    pub fn record_install(&self) {
        if let Some(p) = self.hub.on() {
            p.installs.inc();
        }
    }

    /// The per-frame hot-spot handle for `method`, when enabled.
    #[inline]
    pub fn frame(&self, method: usize) -> Option<FrameProfile> {
        let stats = self.methods.get(method)?;
        let registry = self.hub.0.as_ref()?;
        Some(FrameProfile {
            method: Arc::clone(stats),
            registry: Arc::clone(registry),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn recorder(hub: &ProfilerHub) -> ProfileRecorder {
        ProfileRecorder::new(hub, [("Main.f", 8), ("Main.g", 4)])
    }

    #[test]
    fn disabled_recorder_drops_everything() {
        let rec = ProfileRecorder::disabled();
        assert!(!rec.is_enabled());
        let prev = rec.enter(0, Tier::Interp);
        rec.charge(100);
        rec.record_alloc();
        rec.record_invocation(0, Tier::Interp);
        rec.record_deopt();
        rec.record_install();
        assert!(rec.frame(0).is_none());
        rec.restore(prev);
        assert!(ProfileRecorder::disabled_ref().frame(0).is_none());
        assert!(ProfilerHub::disabled_ref().snapshot().is_none());
    }

    #[test]
    fn charges_land_in_the_current_method_and_tier() {
        let hub = ProfilerHub::enabled();
        let rec = recorder(&hub);
        let outer = rec.enter(0, Tier::Interp);
        rec.record_invocation(0, Tier::Interp);
        rec.charge(10);
        // Nested call on another tier: save/restore brackets it.
        let inner = rec.enter(1, Tier::Linear);
        rec.record_invocation(1, Tier::Linear);
        rec.charge(7);
        rec.record_alloc();
        rec.restore(inner);
        rec.charge(5);
        rec.restore(outer);
        let snap = hub.snapshot().unwrap();
        assert_eq!(snap.total_cycles(), 22);
        assert_eq!(snap.total_allocs(), 1);
        let f = snap
            .rows
            .iter()
            .find(|r| r.method == "Main.f" && r.tier == Tier::Interp)
            .unwrap();
        assert_eq!(f.cycles, 15);
        assert_eq!(f.invocations, 1);
        let g = snap
            .rows
            .iter()
            .find(|r| r.method == "Main.g" && r.tier == Tier::Linear)
            .unwrap();
        assert_eq!(g.cycles, 7);
        assert_eq!(g.allocs, 1);
        assert_eq!(snap.tier_cycles(Tier::Interp), 15);
        assert_eq!(snap.tier_cycles(Tier::Linear), 7);
    }

    #[test]
    fn frame_handle_feeds_bci_and_opcode_buckets() {
        let hub = ProfilerHub::enabled();
        let rec = recorder(&hub);
        let frame = rec.frame(0).unwrap();
        frame.record_op(2, 1, 14);
        frame.record_op(2, 1, 14);
        frame.record_op(7, 3, 40);
        frame.record_op(999, 999, 5); // out-of-range bci drops, opcode clamps
        let snap = hub.snapshot().unwrap();
        assert_eq!(
            snap.hot_bcis,
            vec![("Main.f".into(), 7, 40), ("Main.f".into(), 2, 28),]
        );
        assert_eq!(snap.opcode_cycles[1], 28);
        assert_eq!(snap.opcode_cycles[3], 40);
        assert_eq!(snap.opcode_cycles[OPCODE_BUCKETS - 1], 5);
    }

    #[test]
    fn deopts_and_installs_reconcile() {
        let hub = ProfilerHub::enabled();
        let rec = recorder(&hub);
        let prev = rec.enter(0, Tier::Linear);
        rec.record_deopt();
        rec.record_deopt();
        rec.record_install();
        rec.restore(prev);
        let snap = hub.snapshot().unwrap();
        assert_eq!(snap.deopts, 2);
        assert_eq!(snap.installs, 1);
        let row = snap
            .rows
            .iter()
            .find(|r| r.method == "Main.f" && r.tier == Tier::Linear)
            .unwrap();
        assert_eq!(row.deopts, 2);
        let recon = Reconciliation {
            profiler_cycles: 0,
            stats_cycles: 0,
            profiler_deopts: snap.deopts,
            vm_deopts: 2,
            profiler_installs: snap.installs,
            vm_installs: 1,
        };
        assert!(recon.ok());
    }

    #[test]
    fn renders_table_stacks_and_json() {
        let hub = ProfilerHub::enabled();
        let rec = recorder(&hub);
        let prev = rec.enter(0, Tier::Interp);
        rec.charge(100);
        rec.record_alloc();
        rec.restore(prev);
        let frame = rec.frame(0).unwrap();
        frame.record_op(3, 2, 100);
        let snap = hub.snapshot().unwrap();
        let table = snap.render_top(10);
        assert!(table.contains("Main.f"));
        assert!(table.contains("interp"));
        assert!(table.contains("100.00"));
        let stacks = snap.collapsed_stacks();
        assert_eq!(stacks, "Main.f;interp 100\n");
        let ops = snap.render_opcodes(&["a", "b", "load"]);
        assert!(ops.contains("load"));
        let json = snap.to_json(
            &["a", "b", "load"],
            Some(&Reconciliation {
                profiler_cycles: 100,
                stats_cycles: 100,
                ..Default::default()
            }),
        );
        assert!(json.starts_with("{\"schema\":\"pea-profile/1\""));
        assert!(json.contains("\"method\":\"Main.f\""));
        assert!(json.contains("\"tier\":\"interp\""));
        assert!(json.contains("\"hot_bcis\":[{\"method\":\"Main.f\",\"bci\":3,\"cycles\":100}]"));
        assert!(json.contains("\"op\":\"load\""));
        assert!(json.contains("\"reconciliation\":"));
        assert!(json.contains("\"ok\":true"));
    }

    #[test]
    fn shared_hub_merges_same_named_methods_across_recorders() {
        let hub = ProfilerHub::enabled();
        let a = recorder(&hub);
        let b = recorder(&hub);
        let pa = a.enter(0, Tier::Interp);
        a.charge(3);
        a.restore(pa);
        let pb = b.enter(0, Tier::Interp);
        b.charge(4);
        b.restore(pb);
        let snap = hub.snapshot().unwrap();
        assert_eq!(snap.total_cycles(), 7);
        assert_eq!(snap.rows.len(), 1);
    }
}
