//! Lock-free runtime metrics for the tiered VM.
//!
//! The trace layer (`pea-trace`) explains *what* the compiler decided,
//! event by event; this crate answers the aggregate questions — how many
//! interpreter steps ran, how deep the compile queue got, how long a
//! request waited between enqueue and install, how the per-phase compile
//! times are distributed — without perturbing the measured system.
//!
//! Three primitives, all updated with relaxed atomics so any thread can
//! record without locking:
//!
//! * [`Counter`] — monotonically increasing `u64`;
//! * [`Gauge`] — instantaneous `i64` level (queue depth);
//! * [`Histogram`] — fixed-bucket log₂-scale distribution of `u64`
//!   samples (latencies in µs), with count/sum/max and quantile
//!   estimates.
//!
//! Instrumented code holds a [`MetricsHub`]: a clonable handle that is
//! either *enabled* (an `Arc` of the [`VmMetrics`] registry) or
//! *disabled* (`None`). Every metric is a **struct field** resolved at
//! compile time — the *static handle* pattern — so recording is a direct
//! atomic add with no name lookup, and the disabled path is a single
//! `Option` branch with no allocation (asserted by an allocator-counting
//! test in `pea-interp`).
//!
//! [`MetricsHub::snapshot`] freezes the registry into an ordered
//! [`MetricsSnapshot`]; [`export`] renders it as a human-readable report,
//! a stable JSON document, or a Prometheus-style text exposition.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

pub mod export;
pub mod profile;

/// A monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// An instantaneous level (e.g. queue depth). Signed so transient
/// decrements below an unsynchronized zero cannot wrap.
#[derive(Debug, Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    /// Sets the level.
    #[inline]
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Adjusts the level by `delta` (may be negative).
    #[inline]
    pub fn add(&self, delta: i64) {
        self.0.fetch_add(delta, Ordering::Relaxed);
    }

    /// Current level.
    #[inline]
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Number of histogram buckets. Bucket `i` holds samples whose bit length
/// is `i` — i.e. bucket 0 holds the value 0, bucket `i ≥ 1` holds
/// `2^(i-1) ..= 2^i - 1` — and the last bucket absorbs everything larger.
pub const HISTOGRAM_BUCKETS: usize = 32;

/// A fixed-bucket log₂-scale histogram of `u64` samples.
///
/// Recording is one relaxed `fetch_add` into the sample's bucket plus two
/// more for the running sum and max — no locks, no allocation, safe from
/// any thread.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }
}

/// Bucket index for a sample: its bit length, clamped to the last bucket.
#[inline]
fn bucket_index(v: u64) -> usize {
    ((u64::BITS - v.leading_zeros()) as usize).min(HISTOGRAM_BUCKETS - 1)
}

/// Inclusive upper bound of bucket `i` (`u64::MAX` for the last bucket).
pub fn bucket_upper_bound(i: usize) -> u64 {
    if i + 1 >= HISTOGRAM_BUCKETS {
        u64::MAX
    } else {
        (1u64 << i) - 1
    }
}

impl Histogram {
    /// Records one sample.
    #[inline]
    pub fn record(&self, v: u64) {
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).sum()
    }

    /// Sum of recorded samples.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Freezes the histogram into a plain-data snapshot.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: self
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
            sum: self.sum.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
        }
    }
}

/// Plain-data frozen histogram (see [`Histogram::snapshot`]).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket sample counts ([`HISTOGRAM_BUCKETS`] entries).
    pub buckets: Vec<u64>,
    /// Sum of all samples.
    pub sum: u64,
    /// Largest sample seen (not delta-correct; reported as-is).
    pub max: u64,
}

impl HistogramSnapshot {
    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// Mean sample value (0 when empty).
    pub fn mean(&self) -> u64 {
        self.sum.checked_div(self.count()).unwrap_or(0)
    }

    /// Upper bound of the bucket containing the `q`-quantile (`0.0..=1.0`).
    /// A log-bucket estimate: correct to within one power of two.
    pub fn quantile(&self, q: f64) -> u64 {
        let n = self.count();
        if n == 0 {
            return 0;
        }
        let rank = ((q * n as f64).ceil() as u64).clamp(1, n);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return bucket_upper_bound(i).min(self.max);
            }
        }
        self.max
    }

    /// Per-bucket difference against an earlier snapshot of the same
    /// histogram (`max` is carried over from `self`, as it cannot be
    /// un-recorded).
    pub fn delta(&self, earlier: &HistogramSnapshot) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: self
                .buckets
                .iter()
                .zip(earlier.buckets.iter().chain(std::iter::repeat(&0)))
                .map(|(a, b)| a.saturating_sub(*b))
                .collect(),
            sum: self.sum.saturating_sub(earlier.sum),
            max: self.max,
        }
    }
}

/// Per-class allocation counters, registered by name.
///
/// Registration (`resolve`) takes a lock, but it happens once per VM at
/// construction; recording goes through the returned [`ClassCell`]s and is
/// lock-free. Keying by *name* lets several VMs (e.g. a benchmark corpus
/// of many programs) share one hub: same-named classes merge.
#[derive(Debug, Default)]
pub struct ClassRegistry {
    cells: Mutex<BTreeMap<String, Arc<ClassCell>>>,
}

/// Allocation counters for one class (or the synthetic `array` slot).
#[derive(Debug, Default)]
pub struct ClassCell {
    /// Allocations of this class.
    pub allocs: Counter,
    /// Bytes allocated for this class.
    pub bytes: Counter,
}

impl ClassRegistry {
    /// Returns (creating if needed) the cell for `name`.
    pub fn resolve(&self, name: &str) -> Arc<ClassCell> {
        let mut cells = self.cells.lock().expect("class registry poisoned");
        Arc::clone(cells.entry(name.to_string()).or_default())
    }

    /// All registered `(name, allocs, bytes)` rows, in name order.
    pub fn rows(&self) -> Vec<(String, u64, u64)> {
        let cells = self.cells.lock().expect("class registry poisoned");
        cells
            .iter()
            .map(|(name, c)| (name.clone(), c.allocs.get(), c.bytes.get()))
            .collect()
    }
}

/// Interpreter-side counters.
#[derive(Debug, Default)]
pub struct InterpMetrics {
    /// Bytecode instructions dispatched.
    pub steps: Counter,
    /// Loop back-edges taken.
    pub back_edges: Counter,
    /// Safepoint polls issued at back-edges.
    pub safepoint_polls: Counter,
    /// Method invocations executed in the interpreter tier.
    pub invocations: Counter,
}

/// Tiering/deoptimization counters.
#[derive(Debug, Default)]
pub struct TierMetrics {
    /// Method invocations that ran compiled code.
    pub invocations_compiled: Counter,
    /// Deoptimizations (compiled → interpreter transfers).
    pub deopts: Counter,
    /// Scalar-replaced objects rematerialized across all deopts.
    pub rematerialized_objects: Counter,
    /// Compiled methods installed into the code cache.
    pub installs: Counter,
    /// Compiled methods evicted after repeated deopts.
    pub evictions: Counter,
    /// Recompilations of previously evicted methods requested.
    pub recompiles: Counter,
    /// Safepoint polls issued from compiled code (loop back-edges in the
    /// evaluator); the interpreter's polls are counted separately in
    /// `interp.safepoint_polls`.
    pub safepoint_polls: Counter,
    /// Installed compiled methods that carried a linear artifact.
    pub linear_installs: Counter,
    /// Compiled invocations executed on the linear register-machine tier.
    pub linear_exec: Counter,
    /// Compiled invocations that requested the linear tier but fell back
    /// to graph-walking evaluation (no linear artifact).
    pub graph_exec_fallback: Counter,
}

/// Compile-pipeline and compile-service counters.
#[derive(Debug, Default)]
pub struct CompileMetrics {
    /// Compilations started.
    pub started: Counter,
    /// Compilations that produced an artifact.
    pub succeeded: Counter,
    /// Compilations that bailed out.
    pub bailouts: Counter,
    /// Requests accepted into the background queue.
    pub enqueued: Counter,
    /// Requests rejected because the method was already in flight.
    pub dedup_rejected: Counter,
    /// Requests rejected because the queue was full of hotter work.
    pub queue_rejected: Counter,
    /// Queued requests evicted to admit a strictly hotter newcomer.
    pub queue_evicted: Counter,
    /// Finished artifacts dropped at install because the method was
    /// evicted after the request (stale eviction epoch).
    pub stale_dropped: Counter,
    /// Receiver-type speculations planted (mono guards and inline caches).
    pub devirt_guards: Counter,
    /// Inline candidates the active policy accepted.
    pub inline_accepted: Counter,
    /// Inline candidates the active policy refused.
    pub inline_rejected: Counter,
    /// Compilations that reused the VM's cached interprocedural summaries.
    pub summary_cache_hits: Counter,
    /// Compilations that had to (re)compute interprocedural summaries.
    pub summary_cache_misses: Counter,
    /// Current background queue depth.
    pub queue_depth: Gauge,
    /// Enqueue→install latency of background compilations, µs.
    pub queue_latency_us: Histogram,
    /// Graph-building phase time per compilation, µs.
    pub build_us: Histogram,
    /// Canonicalization time per compilation, µs.
    pub canonicalize_us: Histogram,
    /// Escape-analysis time per compilation, µs.
    pub escape_analysis_us: Histogram,
    /// Scheduling time per compilation, µs.
    pub schedule_us: Histogram,
    /// Linear-lowering time per compilation, µs.
    pub lower_us: Histogram,
    /// Total compile time per compilation, µs.
    pub total_us: Histogram,
}

/// PEA decision totals, fed from the same event stream the trace
/// `SiteAggregator` folds — the two views are cross-checkable exactly.
#[derive(Debug, Default)]
pub struct PeaMetrics {
    /// Allocations taken virtual.
    pub virtualized: Counter,
    /// Materializations (one per group member forced into existence).
    pub materialized: Counter,
    /// Monitor operations elided on virtual objects.
    pub locks_elided: Counter,
    /// Loads satisfied from virtual state.
    pub loads_elided: Counter,
    /// Stores absorbed into virtual state.
    pub stores_elided: Counter,
    /// Reference checks folded via virtual identity.
    pub checks_folded: Counter,
    /// Field/reference phis created at merges.
    pub phis_created: Counter,
    /// Loop fixpoint re-analysis rounds.
    pub loop_rounds: Counter,
    /// Allocation sites excluded up front by the static pre-filter.
    pub prefiltered_sites: Counter,
}

/// Heap allocation counters.
#[derive(Debug, Default)]
pub struct HeapMetrics {
    /// Total heap allocations (instances + arrays + rematerializations).
    pub allocs: Counter,
    /// Total allocated bytes.
    pub bytes: Counter,
    /// TLAB chunks granted by the shared chunk allocator.
    pub tlab_chunks: Counter,
    /// TLAB capacity cells granted by the shared chunk allocator.
    pub tlab_cells: Counter,
    /// Per-class breakdown (the synthetic name `array` covers arrays).
    pub classes: ClassRegistry,
}

/// The full metrics registry: one instance shared (via [`MetricsHub`]) by
/// every layer of one VM — or by several VMs, when a harness wants
/// corpus-wide totals.
#[derive(Debug, Default)]
pub struct VmMetrics {
    /// Interpreter counters.
    pub interp: InterpMetrics,
    /// Tiering/deopt counters.
    pub vm: TierMetrics,
    /// Compile pipeline and service counters.
    pub compile: CompileMetrics,
    /// PEA decision totals.
    pub pea: PeaMetrics,
    /// Heap allocation counters.
    pub heap: HeapMetrics,
}

impl VmMetrics {
    /// Freezes every metric into an ordered [`MetricsSnapshot`].
    pub fn snapshot(&self) -> MetricsSnapshot {
        let mut counters: Vec<(String, u64)> = vec![
            ("interp.steps".into(), self.interp.steps.get()),
            ("interp.back_edges".into(), self.interp.back_edges.get()),
            (
                "interp.safepoint_polls".into(),
                self.interp.safepoint_polls.get(),
            ),
            ("interp.invocations".into(), self.interp.invocations.get()),
            (
                "vm.invocations_compiled".into(),
                self.vm.invocations_compiled.get(),
            ),
            ("vm.deopts".into(), self.vm.deopts.get()),
            (
                "vm.rematerialized_objects".into(),
                self.vm.rematerialized_objects.get(),
            ),
            ("vm.installs".into(), self.vm.installs.get()),
            ("vm.evictions".into(), self.vm.evictions.get()),
            ("vm.recompiles".into(), self.vm.recompiles.get()),
            ("vm.safepoint_polls".into(), self.vm.safepoint_polls.get()),
            ("vm.linear_installs".into(), self.vm.linear_installs.get()),
            ("vm.linear_exec".into(), self.vm.linear_exec.get()),
            (
                "vm.graph_exec_fallback".into(),
                self.vm.graph_exec_fallback.get(),
            ),
            ("compile.started".into(), self.compile.started.get()),
            ("compile.succeeded".into(), self.compile.succeeded.get()),
            ("compile.bailouts".into(), self.compile.bailouts.get()),
            ("compile.enqueued".into(), self.compile.enqueued.get()),
            (
                "compile.dedup_rejected".into(),
                self.compile.dedup_rejected.get(),
            ),
            (
                "compile.queue_rejected".into(),
                self.compile.queue_rejected.get(),
            ),
            (
                "compile.queue_evicted".into(),
                self.compile.queue_evicted.get(),
            ),
            (
                "compile.stale_dropped".into(),
                self.compile.stale_dropped.get(),
            ),
            (
                "compile.devirt_guards".into(),
                self.compile.devirt_guards.get(),
            ),
            (
                "compile.inline_accepted".into(),
                self.compile.inline_accepted.get(),
            ),
            (
                "compile.inline_rejected".into(),
                self.compile.inline_rejected.get(),
            ),
            (
                "compile.summary_cache_hits".into(),
                self.compile.summary_cache_hits.get(),
            ),
            (
                "compile.summary_cache_misses".into(),
                self.compile.summary_cache_misses.get(),
            ),
            ("pea.virtualized".into(), self.pea.virtualized.get()),
            ("pea.materialized".into(), self.pea.materialized.get()),
            ("pea.locks_elided".into(), self.pea.locks_elided.get()),
            ("pea.loads_elided".into(), self.pea.loads_elided.get()),
            ("pea.stores_elided".into(), self.pea.stores_elided.get()),
            ("pea.checks_folded".into(), self.pea.checks_folded.get()),
            ("pea.phis_created".into(), self.pea.phis_created.get()),
            ("pea.loop_rounds".into(), self.pea.loop_rounds.get()),
            (
                "pea.prefiltered_sites".into(),
                self.pea.prefiltered_sites.get(),
            ),
            ("heap.allocs".into(), self.heap.allocs.get()),
            ("heap.bytes".into(), self.heap.bytes.get()),
            ("heap.tlab_chunks".into(), self.heap.tlab_chunks.get()),
            ("heap.tlab_cells".into(), self.heap.tlab_cells.get()),
        ];
        for (name, allocs, bytes) in self.heap.classes.rows() {
            counters.push((format!("heap.class.{name}.allocs"), allocs));
            counters.push((format!("heap.class.{name}.bytes"), bytes));
        }
        let gauges = vec![("compile.queue_depth".into(), self.compile.queue_depth.get())];
        let histograms = vec![
            (
                "compile.queue_latency_us".into(),
                self.compile.queue_latency_us.snapshot(),
            ),
            ("compile.build_us".into(), self.compile.build_us.snapshot()),
            (
                "compile.canonicalize_us".into(),
                self.compile.canonicalize_us.snapshot(),
            ),
            (
                "compile.escape_analysis_us".into(),
                self.compile.escape_analysis_us.snapshot(),
            ),
            (
                "compile.schedule_us".into(),
                self.compile.schedule_us.snapshot(),
            ),
            ("compile.lower_us".into(), self.compile.lower_us.snapshot()),
            ("compile.total_us".into(), self.compile.total_us.snapshot()),
        ];
        MetricsSnapshot {
            counters,
            gauges,
            histograms,
        }
    }
}

/// An ordered, plain-data freeze of a [`VmMetrics`] registry.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// `(name, value)` counter rows, in stable report order.
    pub counters: Vec<(String, u64)>,
    /// `(name, level)` gauge rows.
    pub gauges: Vec<(String, i64)>,
    /// `(name, snapshot)` histogram rows.
    pub histograms: Vec<(String, HistogramSnapshot)>,
}

impl MetricsSnapshot {
    /// Value of a counter by name (0 when absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map_or(0, |(_, v)| *v)
    }

    /// A histogram by name.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, h)| h)
    }

    /// Difference against an earlier snapshot: counters and histogram
    /// buckets subtract (names missing from `earlier` count from zero);
    /// gauges keep their current level (a gauge has no meaningful delta).
    pub fn delta(&self, earlier: &MetricsSnapshot) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: self
                .counters
                .iter()
                .map(|(n, v)| (n.clone(), v.saturating_sub(earlier.counter(n))))
                .collect(),
            gauges: self.gauges.clone(),
            histograms: self
                .histograms
                .iter()
                .map(|(n, h)| {
                    let d = match earlier.histogram(n) {
                        Some(e) => h.delta(e),
                        None => h.clone(),
                    };
                    (n.clone(), d)
                })
                .collect(),
        }
    }

    /// Compact `name=value` lines for embedding the snapshot in a trace
    /// event: non-zero counters, non-zero gauges, and `count`/`sum` of
    /// non-empty histograms.
    pub fn delta_lines(&self) -> Vec<String> {
        let mut lines = Vec::new();
        for (n, v) in &self.counters {
            if *v != 0 {
                lines.push(format!("{n}={v}"));
            }
        }
        for (n, v) in &self.gauges {
            if *v != 0 {
                lines.push(format!("{n}={v}"));
            }
        }
        for (n, h) in &self.histograms {
            let count = h.count();
            if count != 0 {
                lines.push(format!("{n}.count={count}"));
                lines.push(format!("{n}.sum={}", h.sum));
            }
        }
        lines
    }
}

/// The handle instrumented code holds: enabled (shared registry) or
/// disabled (`None`). Cloning shares the registry; the default is
/// disabled.
#[derive(Clone, Debug, Default)]
pub struct MetricsHub(Option<Arc<VmMetrics>>);

/// The process-wide disabled hub, for trait-default methods that must
/// return a `&'static` handle.
static DISABLED: MetricsHub = MetricsHub::disabled();

impl MetricsHub {
    /// A hub with a fresh registry attached.
    pub fn enabled() -> MetricsHub {
        MetricsHub(Some(Arc::new(VmMetrics::default())))
    }

    /// A recording-nothing hub (const: usable in statics).
    pub const fn disabled() -> MetricsHub {
        MetricsHub(None)
    }

    /// A `'static` reference to the disabled hub.
    pub fn disabled_ref() -> &'static MetricsHub {
        &DISABLED
    }

    /// The registry, when enabled. The instrumentation idiom is
    /// `if let Some(m) = hub.on() { m.interp.steps.inc(); }` — one branch
    /// and nothing else when disabled.
    #[inline]
    pub fn on(&self) -> Option<&VmMetrics> {
        self.0.as_deref()
    }

    /// Whether recording is enabled.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.0.is_some()
    }

    /// Snapshot of the registry, when enabled.
    pub fn snapshot(&self) -> Option<MetricsSnapshot> {
        self.0.as_ref().map(|m| m.snapshot())
    }
}

/// Pre-resolved heap-allocation recorder held by the managed heap.
///
/// Class cells are resolved once (by class *index* into the program's class
/// table) when the VM attaches metrics, so the per-allocation path is two
/// atomic adds on the totals plus two on the class cell — no lock, no name
/// lookup. The default recorder is disabled and records nothing.
///
/// [`HeapRecorder::buffered`] builds the *sharded* variant used by
/// multi-threaded mutator execution: each mutator's recorder accumulates
/// per-class counts in plain (non-atomic) thread-local fields and folds
/// them into the shared registry on [`flush`](HeapRecorder::flush) — the
/// per-allocation path is then free of shared-cache-line traffic entirely,
/// and the registry stays exact at every quiescent point (outermost call
/// exit, metrics snapshot, mutator teardown).
#[derive(Clone, Debug, Default)]
pub struct HeapRecorder {
    hub: MetricsHub,
    classes: Vec<Arc<ClassCell>>,
    arrays: Option<Arc<ClassCell>>,
    /// Thread-local shard, present in buffered mode.
    buffer: Option<Box<AllocBuffer>>,
}

/// One mutator's unflushed allocation counts (buffered mode).
#[derive(Clone, Debug, Default)]
struct AllocBuffer {
    allocs: u64,
    bytes: u64,
    /// Parallel to `HeapRecorder::classes`; `class_allocs.len()` is the
    /// class count, the last two implicit rows being covered by
    /// `array_allocs`/`array_bytes`.
    class_allocs: Vec<u64>,
    class_bytes: Vec<u64>,
    array_allocs: u64,
    array_bytes: u64,
    tlab_chunks: u64,
    tlab_cells: u64,
}

impl HeapRecorder {
    /// Builds a recorder for `hub`, resolving one cell per class name (in
    /// class-index order) plus the synthetic `array` cell. A disabled hub
    /// yields the recording-nothing default.
    pub fn new<'a>(hub: &MetricsHub, class_names: impl IntoIterator<Item = &'a str>) -> Self {
        let Some(m) = hub.on() else {
            return HeapRecorder::default();
        };
        HeapRecorder {
            hub: hub.clone(),
            classes: class_names
                .into_iter()
                .map(|name| m.heap.classes.resolve(name))
                .collect(),
            arrays: Some(m.heap.classes.resolve("array")),
            buffer: None,
        }
    }

    /// Builds the sharded variant: counts accumulate locally and reach the
    /// registry on [`flush`](Self::flush). See the type docs.
    pub fn buffered<'a>(hub: &MetricsHub, class_names: impl IntoIterator<Item = &'a str>) -> Self {
        let mut r = HeapRecorder::new(hub, class_names);
        if r.is_enabled() {
            r.buffer = Some(Box::new(AllocBuffer {
                class_allocs: vec![0; r.classes.len()],
                class_bytes: vec![0; r.classes.len()],
                ..AllocBuffer::default()
            }));
        }
        r
    }

    /// Whether this recorder is attached to an enabled hub.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.hub.is_enabled()
    }

    /// Records an instance allocation of the class at `class_index`.
    #[inline]
    pub fn record_instance(&mut self, class_index: usize, bytes: u64) {
        if let Some(b) = &mut self.buffer {
            b.allocs += 1;
            b.bytes += bytes;
            if let Some(slot) = b.class_allocs.get_mut(class_index) {
                *slot += 1;
                b.class_bytes[class_index] += bytes;
            }
            return;
        }
        if let Some(m) = self.hub.on() {
            m.heap.allocs.inc();
            m.heap.bytes.add(bytes);
            if let Some(cell) = self.classes.get(class_index) {
                cell.allocs.inc();
                cell.bytes.add(bytes);
            }
        }
    }

    /// Records an array allocation.
    #[inline]
    pub fn record_array(&mut self, bytes: u64) {
        if let Some(b) = &mut self.buffer {
            b.allocs += 1;
            b.bytes += bytes;
            b.array_allocs += 1;
            b.array_bytes += bytes;
            return;
        }
        if let Some(m) = self.hub.on() {
            m.heap.allocs.inc();
            m.heap.bytes.add(bytes);
            if let Some(cell) = &self.arrays {
                cell.allocs.inc();
                cell.bytes.add(bytes);
            }
        }
    }

    /// Records one TLAB grant of `chunks` chunks totalling `cells`
    /// capacity cells (grants grow geometrically, so one grant may span
    /// several chunks).
    #[inline]
    pub fn record_tlab_grant(&mut self, chunks: u64, cells: u64) {
        if let Some(b) = &mut self.buffer {
            b.tlab_chunks += chunks;
            b.tlab_cells += cells;
            return;
        }
        if let Some(m) = self.hub.on() {
            m.heap.tlab_chunks.add(chunks);
            m.heap.tlab_cells.add(cells);
        }
    }

    /// Folds the thread-local shard into the shared registry and clears
    /// it. A no-op for the direct (unbuffered) and disabled recorders, and
    /// when nothing accumulated since the last flush.
    pub fn flush(&mut self) {
        let Some(b) = &mut self.buffer else {
            return;
        };
        if b.allocs == 0 && b.tlab_chunks == 0 {
            return;
        }
        let Some(m) = self.hub.on() else {
            return;
        };
        m.heap.allocs.add(b.allocs);
        m.heap.bytes.add(b.bytes);
        m.heap.tlab_chunks.add(b.tlab_chunks);
        m.heap.tlab_cells.add(b.tlab_cells);
        for (i, cell) in self.classes.iter().enumerate() {
            if b.class_allocs[i] != 0 {
                cell.allocs.add(b.class_allocs[i]);
                cell.bytes.add(b.class_bytes[i]);
            }
        }
        if b.array_allocs != 0 {
            if let Some(cell) = &self.arrays {
                cell.allocs.add(b.array_allocs);
                cell.bytes.add(b.array_bytes);
            }
        }
        **b = AllocBuffer {
            class_allocs: vec![0; self.classes.len()],
            class_bytes: vec![0; self.classes.len()],
            ..AllocBuffer::default()
        };
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_basics() {
        let c = Counter::default();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        let g = Gauge::default();
        g.set(3);
        g.add(-5);
        assert_eq!(g.get(), -2);
    }

    #[test]
    fn histogram_buckets_by_bit_length() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(u64::MAX), HISTOGRAM_BUCKETS - 1);
        assert_eq!(bucket_upper_bound(1), 1);
        assert_eq!(bucket_upper_bound(3), 7);
        assert_eq!(bucket_upper_bound(HISTOGRAM_BUCKETS - 1), u64::MAX);
    }

    #[test]
    fn histogram_count_sum_max_and_quantiles() {
        let h = Histogram::default();
        for v in [1u64, 2, 3, 100, 1000] {
            h.record(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum(), 1106);
        let s = h.snapshot();
        assert_eq!(s.count(), 5);
        assert_eq!(s.max, 1000);
        assert_eq!(s.mean(), 1106 / 5);
        // p50 of [1,2,3,100,1000] lands in the bucket of 3 (bound 3).
        assert_eq!(s.quantile(0.5), 3);
        // p100 is clamped to the observed max.
        assert_eq!(s.quantile(1.0), 1000);
        assert_eq!(HistogramSnapshot::default().quantile(0.9), 0);
    }

    #[test]
    fn histogram_bucket_boundaries_at_powers_of_two() {
        // Exhaustive boundary sweep: for every power of two the values
        // 2^k - 1, 2^k, 2^k + 1 land in the documented buckets, and every
        // value is <= its bucket's inclusive upper bound while being above
        // the previous bucket's.
        for k in 0..64u32 {
            let p = 1u64 << k;
            assert_eq!(
                bucket_index(p),
                ((k + 1) as usize).min(HISTOGRAM_BUCKETS - 1)
            );
            for v in [p.saturating_sub(1), p, p.saturating_add(1)] {
                let i = bucket_index(v);
                assert!(
                    v <= bucket_upper_bound(i),
                    "v={v} above bound of bucket {i}"
                );
                if i > 0 && i < HISTOGRAM_BUCKETS - 1 {
                    assert!(
                        v > bucket_upper_bound(i - 1),
                        "v={v} also fits bucket {}",
                        i - 1
                    );
                }
            }
        }
        // The extremes.
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_upper_bound(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(u64::MAX), HISTOGRAM_BUCKETS - 1);
        assert_eq!(bucket_upper_bound(HISTOGRAM_BUCKETS - 1), u64::MAX);
        // Upper bounds are strictly increasing across the whole table.
        for i in 1..HISTOGRAM_BUCKETS {
            assert!(bucket_upper_bound(i) > bucket_upper_bound(i - 1));
        }
        // Values past the 2^30 clamp point all share the last bucket.
        assert_eq!(bucket_index(1 << 31), HISTOGRAM_BUCKETS - 1);
        assert_eq!(bucket_index(1 << 63), HISTOGRAM_BUCKETS - 1);
    }

    #[test]
    fn histogram_snapshot_and_delta_under_concurrent_increments() {
        let h = Histogram::default();
        let stop = std::sync::atomic::AtomicBool::new(false);
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let (h, stop) = (&h, &stop);
                s.spawn(move || {
                    let mut v = t;
                    while !stop.load(Ordering::Relaxed) {
                        h.record(v % 4096);
                        v = v.wrapping_mul(6364136223846793005).wrapping_add(1);
                    }
                });
            }
            // Snapshots taken mid-flight must stay internally consistent:
            // monotone counts/sums, and deltas that never underflow.
            let mut prev = h.snapshot();
            for _ in 0..50 {
                let now = h.snapshot();
                assert!(now.count() >= prev.count());
                assert!(now.sum >= prev.sum);
                assert!(now.max >= prev.max);
                let d = now.delta(&prev);
                assert_eq!(d.count(), now.count() - prev.count());
                assert!(d.sum <= now.sum);
                assert_eq!(d.max, now.max);
                for (i, &b) in d.buckets.iter().enumerate() {
                    assert!(b <= now.buckets[i]);
                }
                prev = now;
            }
            stop.store(true, Ordering::Relaxed);
        });
        // After the writers join, per-bucket counts sum to the total count
        // and the delta against an empty snapshot reproduces the snapshot.
        let fin = h.snapshot();
        assert_eq!(fin.buckets.iter().sum::<u64>(), fin.count());
        let d = fin.delta(&HistogramSnapshot::default());
        assert_eq!(d.count(), fin.count());
        assert_eq!(d.sum, fin.sum);
    }

    #[test]
    fn histogram_records_from_many_threads() {
        let h = Histogram::default();
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for v in 0..1000u64 {
                        h.record(v);
                    }
                });
            }
        });
        assert_eq!(h.count(), 4000);
        assert_eq!(h.snapshot().max, 999);
    }

    #[test]
    fn snapshot_delta_subtracts_counters_and_buckets() {
        let m = VmMetrics::default();
        m.interp.steps.add(10);
        m.compile.total_us.record(100);
        let early = m.snapshot();
        m.interp.steps.add(5);
        m.compile.total_us.record(200);
        let late = m.snapshot();
        let d = late.delta(&early);
        assert_eq!(d.counter("interp.steps"), 5);
        assert_eq!(d.histogram("compile.total_us").unwrap().count(), 1);
        assert_eq!(d.histogram("compile.total_us").unwrap().sum, 200);
    }

    #[test]
    fn class_registry_merges_by_name_and_reports_rows() {
        let m = VmMetrics::default();
        let a = m.heap.classes.resolve("Key");
        let b = m.heap.classes.resolve("Key");
        a.allocs.inc();
        b.allocs.inc();
        b.bytes.add(32);
        m.heap.classes.resolve("array").allocs.inc();
        assert_eq!(
            m.heap.classes.rows(),
            vec![("Key".into(), 2, 32), ("array".into(), 1, 0)]
        );
        let snap = m.snapshot();
        assert_eq!(snap.counter("heap.class.Key.allocs"), 2);
        assert_eq!(snap.counter("heap.class.array.allocs"), 1);
    }

    #[test]
    fn disabled_hub_records_nothing_and_snapshots_none() {
        let hub = MetricsHub::disabled();
        assert!(hub.on().is_none());
        assert!(!hub.is_enabled());
        assert!(hub.snapshot().is_none());
        assert!(!MetricsHub::disabled_ref().is_enabled());
        assert!(!MetricsHub::default().is_enabled());
    }

    #[test]
    fn enabled_hub_shares_the_registry_across_clones() {
        let hub = MetricsHub::enabled();
        let clone = hub.clone();
        hub.on().unwrap().interp.steps.inc();
        clone.on().unwrap().interp.steps.inc();
        assert_eq!(hub.snapshot().unwrap().counter("interp.steps"), 2);
    }

    #[test]
    fn heap_recorder_feeds_totals_and_class_cells() {
        let hub = MetricsHub::enabled();
        let mut rec = HeapRecorder::new(&hub, ["Key", "Value"]);
        assert!(rec.is_enabled());
        rec.record_instance(0, 32);
        rec.record_instance(1, 16);
        rec.record_instance(0, 32);
        rec.record_array(96);
        rec.record_instance(99, 8); // unknown index: totals only
        let snap = hub.snapshot().unwrap();
        assert_eq!(snap.counter("heap.allocs"), 5);
        assert_eq!(snap.counter("heap.bytes"), 32 + 16 + 32 + 96 + 8);
        assert_eq!(snap.counter("heap.class.Key.allocs"), 2);
        assert_eq!(snap.counter("heap.class.Key.bytes"), 64);
        assert_eq!(snap.counter("heap.class.Value.allocs"), 1);
        assert_eq!(snap.counter("heap.class.array.allocs"), 1);
        assert_eq!(snap.counter("heap.class.array.bytes"), 96);

        let mut off = HeapRecorder::default();
        assert!(!off.is_enabled());
        off.record_instance(0, 8);
        off.record_array(8);
    }

    #[test]
    fn buffered_recorder_defers_until_flush() {
        let hub = MetricsHub::enabled();
        let mut rec = HeapRecorder::buffered(&hub, ["Key"]);
        rec.record_instance(0, 32);
        rec.record_array(96);
        rec.record_tlab_grant(1, 256);
        assert_eq!(hub.snapshot().unwrap().counter("heap.allocs"), 0);
        rec.flush();
        let snap = hub.snapshot().unwrap();
        assert_eq!(snap.counter("heap.allocs"), 2);
        assert_eq!(snap.counter("heap.bytes"), 128);
        assert_eq!(snap.counter("heap.class.Key.allocs"), 1);
        assert_eq!(snap.counter("heap.class.array.bytes"), 96);
        assert_eq!(snap.counter("heap.tlab_chunks"), 1);
        assert_eq!(snap.counter("heap.tlab_cells"), 256);
        rec.flush(); // empty flush is a no-op
        assert_eq!(hub.snapshot().unwrap().counter("heap.allocs"), 2);
    }

    #[test]
    fn delta_lines_keep_only_nonzero_entries() {
        let m = VmMetrics::default();
        m.pea.virtualized.add(3);
        m.compile.queue_depth.set(2);
        m.compile.queue_latency_us.record(50);
        let lines = m.snapshot().delta_lines();
        assert!(lines.contains(&"pea.virtualized=3".to_string()));
        assert!(lines.contains(&"compile.queue_depth=2".to_string()));
        assert!(lines.contains(&"compile.queue_latency_us.count=1".to_string()));
        assert!(lines.contains(&"compile.queue_latency_us.sum=50".to_string()));
        assert!(!lines.iter().any(|l| l.starts_with("interp.steps")));
    }
}
