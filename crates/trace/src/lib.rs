//! Decision-trace observability for the PEA pipeline and the tiered VM.
//!
//! The optimizer and the VM explain *what* they decided through typed
//! [`TraceEvent`]s: every allocation virtualized or materialized (with the
//! forcing node, block, and [`MaterializeReason`]), every lock elided, every
//! field phi created at a merge, every loop re-iteration, and — on the VM
//! side — every compile, deoptimization (with its rematerialization
//! inventory), eviction, and recompile.
//!
//! Events flow into a [`TraceSink`]. Three sinks ship here:
//! [`MemorySink`] (collect for assertions), [`PrettySink`] (human-readable
//! lines), and [`JsonLinesSink`] (one JSON object per line, parseable back
//! via [`TraceEvent::from_json_line`]). [`SiteAggregator`] is a fourth,
//! derived sink that folds the stream into per-allocation-site counters for
//! the benchmark tables.
//!
//! Tracing is zero-cost when disabled: producers hold a [`Tracer`] handle
//! and construct events inside [`Tracer::emit_with`] closures, so a
//! disabled tracer is a single branch on an `Option`.

use std::collections::BTreeMap;
use std::fmt;
use std::io::Write;
use std::sync::{Arc, Mutex};

pub mod flight;
pub mod json;
pub mod timeline;

pub use flight::{FlightEntry, FlightRecorder};

/// Why a virtual allocation had to be materialized.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum MaterializeReason {
    /// Stored into an object (or static) that is itself not virtual.
    EscapeToStore,
    /// Passed as an argument to a call.
    CallArgument,
    /// Returned from the method.
    ReturnValue,
    /// Thrown as an exception value.
    ThrowValue,
    /// Reached an `Unwind` exit: the exception object (or state reachable
    /// from it) leaves the compiled frame without a local handler, so the
    /// allocation must exist on the heap when the caller sees it.
    ThrownEscape,
    /// A monitor operation that could not be elided (lock elision disabled
    /// or lock state not tracked).
    MonitorOperation,
    /// Virtual in some predecessors of a control-flow merge, escaped in
    /// others (§5.3: the virtual predecessors materialize before the merge).
    MergeOfMixedStates,
    /// Virtual in all predecessors, but the per-field states could not be
    /// reconciled (field phis disabled, or lock depths disagree).
    MergeFieldConflict,
    /// Flowed into a value phi at a merge, forcing a real reference.
    MergePhiInput,
    /// Loop state could not be kept virtual across iterations (loop
    /// processing disabled, or the fixpoint hit the round limit).
    LoopStateMismatch,
    /// Any other escaping operation (§5.2 default rule).
    Other,
}

impl MaterializeReason {
    /// Stable kebab-case name used by both printers and the JSON codec.
    pub fn as_str(self) -> &'static str {
        match self {
            MaterializeReason::EscapeToStore => "escape-to-store",
            MaterializeReason::CallArgument => "call-argument",
            MaterializeReason::ReturnValue => "return-value",
            MaterializeReason::ThrowValue => "throw-value",
            MaterializeReason::ThrownEscape => "thrown-escape",
            MaterializeReason::MonitorOperation => "monitor-operation",
            MaterializeReason::MergeOfMixedStates => "merge-of-mixed-states",
            MaterializeReason::MergeFieldConflict => "merge-field-conflict",
            MaterializeReason::MergePhiInput => "merge-phi-input",
            MaterializeReason::LoopStateMismatch => "loop-state-mismatch",
            MaterializeReason::Other => "other",
        }
    }

    /// Inverse of [`as_str`](Self::as_str).
    pub fn parse(s: &str) -> Option<Self> {
        Some(match s {
            "escape-to-store" => MaterializeReason::EscapeToStore,
            "call-argument" => MaterializeReason::CallArgument,
            "return-value" => MaterializeReason::ReturnValue,
            "throw-value" => MaterializeReason::ThrowValue,
            "thrown-escape" => MaterializeReason::ThrownEscape,
            "monitor-operation" => MaterializeReason::MonitorOperation,
            "merge-of-mixed-states" => MaterializeReason::MergeOfMixedStates,
            "merge-field-conflict" => MaterializeReason::MergeFieldConflict,
            "merge-phi-input" => MaterializeReason::MergePhiInput,
            "loop-state-mismatch" => MaterializeReason::LoopStateMismatch,
            "other" => MaterializeReason::Other,
            _ => return None,
        })
    }
}

impl fmt::Display for MaterializeReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Per-phase compile cost in microseconds, attached to
/// [`TraceEvent::CompileEnd`]. Mirrors the compiler's `PhaseTimes`
/// wall-clock breakdown but in a fixed-width unit so it can round-trip
/// through the JSON-lines codec.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PhaseMicros {
    /// Graph building (parsing bytecode into IR, inlining).
    pub build: u64,
    /// Canonicalization rounds.
    pub canonicalize: u64,
    /// Partial escape analysis (zero when EA is disabled).
    pub escape_analysis: u64,
    /// Control-flow scheduling of the final graph.
    pub schedule: u64,
    /// Lowering of the schedule to the linear register-machine form.
    pub lower: u64,
}

impl PhaseMicros {
    /// Total compile time across the recorded phases.
    pub fn total(&self) -> u64 {
        self.build + self.canonicalize + self.escape_analysis + self.schedule + self.lower
    }
}

/// One decision made by the PEA phase or the VM.
///
/// Compile-time events identify allocations by `site` — the IR node id of
/// the original `new` — which is stable across analysis and usable as a key
/// into source listings. `block` and `anchor`/`node` ids refer to the IR of
/// the method named by the enclosing [`CompileStart`](Self::CompileStart).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceEvent {
    /// The compiler started (re)compiling a method at an optimization level.
    CompileStart { method: String, level: String },
    /// Compilation finished; `code_size` is the scheduled node count and
    /// `phases` the per-phase wall-clock breakdown.
    CompileEnd {
        method: String,
        code_size: u64,
        phases: PhaseMicros,
    },
    /// An allocation was taken virtual (scalar-replaced unless forced back).
    Virtualized { site: u32, shape: String },
    /// A virtual allocation was forced into existence.
    Materialized {
        /// Node id of the original allocation.
        site: u32,
        /// Node that forced the materialization.
        anchor: u32,
        /// Block the materialization code lands in.
        block: u32,
        reason: MaterializeReason,
    },
    /// A monitor enter/exit on a virtual object was removed.
    LockElided { site: u32, node: u32, exit: bool },
    /// A field/array load was satisfied from the virtual state.
    LoadElided { site: u32, node: u32 },
    /// A field/array store was absorbed into the virtual state.
    StoreElided { site: u32, node: u32 },
    /// A reference check (ref-eq, null check, instanceof, checkcast,
    /// array-length) was folded using virtual object identity.
    CheckFolded { node: u32, value: i64 },
    /// A phi was created at a merge to carry virtual field state (§5.3).
    /// `field` is `None` for the materialized-reference phi.
    PhiCreated {
        merge: u32,
        site: u32,
        field: Option<u32>,
    },
    /// The loop fixpoint (§5.4) ran another analysis round.
    LoopRound { loop_begin: u32, round: u32 },
    /// The VM deoptimized compiled code; `rematerialized` lists the shapes
    /// of virtual objects reallocated while reconstructing interpreter
    /// frames (§5.5). `site` and `bci` name the innermost interpreter frame
    /// being resumed — the actual deopt site, which under inlining may be a
    /// different method than the compiled root `method`.
    Deopt {
        method: String,
        /// Method of the innermost resumed frame (equals `method` unless
        /// the deopt happened inside an inlined callee).
        site: String,
        /// Bytecode index of the innermost resumed frame.
        bci: u32,
        reason: String,
        rematerialized: Vec<String>,
    },
    /// The VM discarded a compiled method after repeated deopts.
    Evict { method: String, deopts: u64 },
    /// The VM is compiling a method it previously evicted.
    Recompile { method: String },
    /// A periodic metrics delta emitted by the VM at a background-mode
    /// safepoint: `counters` holds `name=value` lines of every metric
    /// that changed since the previous snapshot (see `pea-metrics`).
    MetricsSnapshot { seq: u64, counters: Vec<String> },
    /// The graph builder decided whether to inline a call site. `policy`
    /// names the active inline policy (`size` or `summary`), `reason` the
    /// kebab-case rule that settled the decision (e.g. `within-size-budget`,
    /// `publishes-argument`, `recursive`; may-throw callees under the
    /// summary policy settle via the path-qualified throw summary —
    /// `cold-throw-speculated` when a guarded throw path is provably cold,
    /// `no-throw-profile`/`throw-path-hot`/`may-throw` when it is not).
    InlineDecision {
        method: String,
        bci: u32,
        callee: String,
        policy: String,
        inlined: bool,
        reason: String,
    },
    /// The graph builder speculated on receiver types at a virtual call
    /// site and planted a deopt guard: `classes` lists the speculated
    /// receiver classes hottest-first (one entry for a monomorphic guard,
    /// 2..=4 for a polymorphic inline cache).
    DevirtGuard {
        method: String,
        bci: u32,
        callee: String,
        classes: Vec<String>,
    },
    /// Compiled code hit a speculation guard at runtime and transferred to
    /// the interpreter. Narrower than [`Deopt`](Self::Deopt): emitted only
    /// for guard-triggered transfers, before the generic deopt event, so
    /// golden traces can pin guard-failure ordering. Carries the same
    /// `(site, bci)` deopt-site coordinates as [`Deopt`](Self::Deopt).
    DeoptTaken {
        method: String,
        /// Method of the innermost resumed frame.
        site: String,
        /// Bytecode index of the innermost resumed frame.
        bci: u32,
        reason: String,
    },
    /// An interprocedural escape summary was computed for a method:
    /// `params` holds one escape-class tag per parameter (`no-escape`,
    /// `arg-escape`, `global-escape`), `returns_fresh` whether every
    /// returned reference is a fresh allocation of the method itself.
    SummaryComputed {
        method: String,
        params: Vec<String>,
        returns_fresh: bool,
    },
}

impl TraceEvent {
    /// Stable event-kind tag shared by the pretty printer and JSON codec.
    pub fn kind(&self) -> &'static str {
        match self {
            TraceEvent::CompileStart { .. } => "compile-start",
            TraceEvent::CompileEnd { .. } => "compile-end",
            TraceEvent::Virtualized { .. } => "virtualized",
            TraceEvent::Materialized { .. } => "materialized",
            TraceEvent::LockElided { .. } => "lock-elided",
            TraceEvent::LoadElided { .. } => "load-elided",
            TraceEvent::StoreElided { .. } => "store-elided",
            TraceEvent::CheckFolded { .. } => "check-folded",
            TraceEvent::PhiCreated { .. } => "phi-created",
            TraceEvent::LoopRound { .. } => "loop-round",
            TraceEvent::Deopt { .. } => "deopt",
            TraceEvent::Evict { .. } => "evict",
            TraceEvent::Recompile { .. } => "recompile",
            TraceEvent::MetricsSnapshot { .. } => "metrics-snapshot",
            TraceEvent::InlineDecision { .. } => "inline-decision",
            TraceEvent::DevirtGuard { .. } => "devirt-guard",
            TraceEvent::DeoptTaken { .. } => "deopt-taken",
            TraceEvent::SummaryComputed { .. } => "summary-computed",
        }
    }

    /// The event with wall-clock-dependent payload zeroed: compile phase
    /// timings vary run to run, so determinism tests compare normalized
    /// streams while everything semantic (methods, sites, counts) must
    /// still match exactly.
    pub fn normalized(&self) -> TraceEvent {
        match self {
            TraceEvent::CompileEnd {
                method, code_size, ..
            } => TraceEvent::CompileEnd {
                method: method.clone(),
                code_size: *code_size,
                phases: PhaseMicros::default(),
            },
            other => other.clone(),
        }
    }

    /// Renders the event as one human-readable line (no trailing newline).
    pub fn pretty(&self) -> String {
        match self {
            TraceEvent::CompileStart { method, level } => {
                format!("compile {method} (level={level})")
            }
            TraceEvent::CompileEnd {
                method,
                code_size,
                phases,
            } => {
                if phases.total() == 0 {
                    format!("compiled {method}: {code_size} nodes scheduled")
                } else {
                    format!(
                        "compiled {method}: {code_size} nodes scheduled in {}us \
                         (build {}us, canon {}us, ea {}us, sched {}us, lower {}us)",
                        phases.total(),
                        phases.build,
                        phases.canonicalize,
                        phases.escape_analysis,
                        phases.schedule,
                        phases.lower
                    )
                }
            }
            TraceEvent::Virtualized { site, shape } => {
                format!("  alloc n{site} ({shape}) virtualized")
            }
            TraceEvent::Materialized {
                site,
                anchor,
                block,
                reason,
            } => format!("  alloc n{site} materialized at n{anchor} in b{block}: {reason}"),
            TraceEvent::LockElided { site, node, exit } => {
                let what = if *exit {
                    "monitor-exit"
                } else {
                    "monitor-enter"
                };
                format!("  {what} n{node} elided (alloc n{site})")
            }
            TraceEvent::LoadElided { site, node } => {
                format!("  load n{node} elided (alloc n{site})")
            }
            TraceEvent::StoreElided { site, node } => {
                format!("  store n{node} elided (alloc n{site})")
            }
            TraceEvent::CheckFolded { node, value } => {
                format!("  check n{node} folded to {value}")
            }
            TraceEvent::PhiCreated { merge, site, field } => match field {
                Some(f) => format!("  phi at n{merge} for field {f} of alloc n{site}"),
                None => format!("  phi at n{merge} for materialized alloc n{site}"),
            },
            TraceEvent::LoopRound { loop_begin, round } => {
                format!("  loop n{loop_begin} re-analyzed (round {round})")
            }
            TraceEvent::Deopt {
                method,
                site,
                bci,
                reason,
                rematerialized,
            } => {
                if rematerialized.is_empty() {
                    format!("deopt {method} at {site}:{bci} ({reason})")
                } else {
                    format!(
                        "deopt {method} at {site}:{bci} ({reason}): rematerialized [{}]",
                        rematerialized.join(", ")
                    )
                }
            }
            TraceEvent::Evict { method, deopts } => {
                format!("evict {method} after {deopts} deopts")
            }
            TraceEvent::Recompile { method } => format!("recompile {method}"),
            TraceEvent::MetricsSnapshot { seq, counters } => {
                if counters.is_empty() {
                    format!("metrics #{seq}: (no change)")
                } else {
                    format!("metrics #{seq}: {}", counters.join(" "))
                }
            }
            TraceEvent::InlineDecision {
                method,
                bci,
                callee,
                policy,
                inlined,
                reason,
            } => {
                let verdict = if *inlined { "inline" } else { "no-inline" };
                format!("  {verdict} {callee} at {method}:{bci} (policy={policy}, {reason})")
            }
            TraceEvent::DevirtGuard {
                method,
                bci,
                callee,
                classes,
            } => format!(
                "  devirt-guard {callee} at {method}:{bci} on [{}]",
                classes.join(", ")
            ),
            TraceEvent::DeoptTaken {
                method,
                site,
                bci,
                reason,
            } => {
                format!("deopt-taken {method} at {site}:{bci} ({reason})")
            }
            TraceEvent::SummaryComputed {
                method,
                params,
                returns_fresh,
            } => format!(
                "summary {method}: params [{}]{}",
                params.join(", "),
                if *returns_fresh {
                    ", returns fresh"
                } else {
                    ""
                }
            ),
        }
    }

    /// Serializes the event as a single-line JSON object.
    pub fn to_json_line(&self) -> String {
        let mut o = json::ObjectWriter::new();
        o.str("event", self.kind());
        match self {
            TraceEvent::CompileStart { method, level } => {
                o.str("method", method);
                o.str("level", level);
            }
            TraceEvent::CompileEnd {
                method,
                code_size,
                phases,
            } => {
                o.str("method", method);
                o.num("code_size", *code_size as i64);
                o.num("build_us", phases.build as i64);
                o.num("canonicalize_us", phases.canonicalize as i64);
                o.num("escape_analysis_us", phases.escape_analysis as i64);
                o.num("schedule_us", phases.schedule as i64);
                o.num("lower_us", phases.lower as i64);
            }
            TraceEvent::Virtualized { site, shape } => {
                o.num("site", *site as i64);
                o.str("shape", shape);
            }
            TraceEvent::Materialized {
                site,
                anchor,
                block,
                reason,
            } => {
                o.num("site", *site as i64);
                o.num("anchor", *anchor as i64);
                o.num("block", *block as i64);
                o.str("reason", reason.as_str());
            }
            TraceEvent::LockElided { site, node, exit } => {
                o.num("site", *site as i64);
                o.num("node", *node as i64);
                o.bool("exit", *exit);
            }
            TraceEvent::LoadElided { site, node } => {
                o.num("site", *site as i64);
                o.num("node", *node as i64);
            }
            TraceEvent::StoreElided { site, node } => {
                o.num("site", *site as i64);
                o.num("node", *node as i64);
            }
            TraceEvent::CheckFolded { node, value } => {
                o.num("node", *node as i64);
                o.num("value", *value);
            }
            TraceEvent::PhiCreated { merge, site, field } => {
                o.num("merge", *merge as i64);
                o.num("site", *site as i64);
                match field {
                    Some(f) => o.num("field", *f as i64),
                    None => o.null("field"),
                }
            }
            TraceEvent::LoopRound { loop_begin, round } => {
                o.num("loop_begin", *loop_begin as i64);
                o.num("round", *round as i64);
            }
            TraceEvent::Deopt {
                method,
                site,
                bci,
                reason,
                rematerialized,
            } => {
                o.str("method", method);
                o.str("site", site);
                o.num("bci", *bci as i64);
                o.str("reason", reason);
                o.str_array("rematerialized", rematerialized);
            }
            TraceEvent::Evict { method, deopts } => {
                o.str("method", method);
                o.num("deopts", *deopts as i64);
            }
            TraceEvent::Recompile { method } => o.str("method", method),
            TraceEvent::MetricsSnapshot { seq, counters } => {
                o.num("seq", *seq as i64);
                o.str_array("counters", counters);
            }
            TraceEvent::InlineDecision {
                method,
                bci,
                callee,
                policy,
                inlined,
                reason,
            } => {
                o.str("method", method);
                o.num("bci", *bci as i64);
                o.str("callee", callee);
                o.str("policy", policy);
                o.bool("inlined", *inlined);
                o.str("reason", reason);
            }
            TraceEvent::DevirtGuard {
                method,
                bci,
                callee,
                classes,
            } => {
                o.str("method", method);
                o.num("bci", *bci as i64);
                o.str("callee", callee);
                o.str_array("classes", classes);
            }
            TraceEvent::DeoptTaken {
                method,
                site,
                bci,
                reason,
            } => {
                o.str("method", method);
                o.str("site", site);
                o.num("bci", *bci as i64);
                o.str("reason", reason);
            }
            TraceEvent::SummaryComputed {
                method,
                params,
                returns_fresh,
            } => {
                o.str("method", method);
                o.str_array("params", params);
                o.bool("returns_fresh", *returns_fresh);
            }
        }
        o.finish()
    }

    /// Parses a line produced by [`to_json_line`](Self::to_json_line).
    pub fn from_json_line(line: &str) -> Result<TraceEvent, json::JsonError> {
        let obj = json::parse_object(line)?;
        let kind = obj.get_str("event")?;
        let event = match kind {
            "compile-start" => TraceEvent::CompileStart {
                method: obj.get_str("method")?.to_string(),
                level: obj.get_str("level")?.to_string(),
            },
            "compile-end" => TraceEvent::CompileEnd {
                method: obj.get_str("method")?.to_string(),
                code_size: obj.get_num("code_size")? as u64,
                // The timing fields are optional so traces recorded before
                // the payload existed still parse.
                phases: PhaseMicros {
                    build: obj.get_opt_num("build_us")?.unwrap_or(0) as u64,
                    canonicalize: obj.get_opt_num("canonicalize_us")?.unwrap_or(0) as u64,
                    escape_analysis: obj.get_opt_num("escape_analysis_us")?.unwrap_or(0) as u64,
                    schedule: obj.get_opt_num("schedule_us")?.unwrap_or(0) as u64,
                    lower: obj.get_opt_num("lower_us")?.unwrap_or(0) as u64,
                },
            },
            "virtualized" => TraceEvent::Virtualized {
                site: obj.get_num("site")? as u32,
                shape: obj.get_str("shape")?.to_string(),
            },
            "materialized" => TraceEvent::Materialized {
                site: obj.get_num("site")? as u32,
                anchor: obj.get_num("anchor")? as u32,
                block: obj.get_num("block")? as u32,
                reason: {
                    let raw = obj.get_str("reason")?;
                    MaterializeReason::parse(raw)
                        .ok_or_else(|| json::JsonError::new(format!("unknown reason {raw:?}")))?
                },
            },
            "lock-elided" => TraceEvent::LockElided {
                site: obj.get_num("site")? as u32,
                node: obj.get_num("node")? as u32,
                exit: obj.get_bool("exit")?,
            },
            "load-elided" => TraceEvent::LoadElided {
                site: obj.get_num("site")? as u32,
                node: obj.get_num("node")? as u32,
            },
            "store-elided" => TraceEvent::StoreElided {
                site: obj.get_num("site")? as u32,
                node: obj.get_num("node")? as u32,
            },
            "check-folded" => TraceEvent::CheckFolded {
                node: obj.get_num("node")? as u32,
                value: obj.get_num("value")?,
            },
            "phi-created" => TraceEvent::PhiCreated {
                merge: obj.get_num("merge")? as u32,
                site: obj.get_num("site")? as u32,
                field: obj.get_opt_num("field")?.map(|n| n as u32),
            },
            "loop-round" => TraceEvent::LoopRound {
                loop_begin: obj.get_num("loop_begin")? as u32,
                round: obj.get_num("round")? as u32,
            },
            "deopt" => {
                let method = obj.get_str("method")?.to_string();
                // `site`/`bci` are optional so traces recorded before the
                // deopt-site payload existed still parse (site defaults to
                // the compiled method, bci to 0).
                let site = obj.opt_str("site").unwrap_or(&method).to_string();
                TraceEvent::Deopt {
                    site,
                    bci: obj.opt_num("bci").unwrap_or(0) as u32,
                    reason: obj.get_str("reason")?.to_string(),
                    rematerialized: obj.get_str_array("rematerialized")?,
                    method,
                }
            }
            "evict" => TraceEvent::Evict {
                method: obj.get_str("method")?.to_string(),
                deopts: obj.get_num("deopts")? as u64,
            },
            "recompile" => TraceEvent::Recompile {
                method: obj.get_str("method")?.to_string(),
            },
            "metrics-snapshot" => TraceEvent::MetricsSnapshot {
                seq: obj.get_num("seq")? as u64,
                counters: obj.get_str_array("counters")?,
            },
            "inline-decision" => TraceEvent::InlineDecision {
                method: obj.get_str("method")?.to_string(),
                bci: obj.get_num("bci")? as u32,
                callee: obj.get_str("callee")?.to_string(),
                policy: obj.get_str("policy")?.to_string(),
                inlined: obj.get_bool("inlined")?,
                reason: obj.get_str("reason")?.to_string(),
            },
            "devirt-guard" => TraceEvent::DevirtGuard {
                method: obj.get_str("method")?.to_string(),
                bci: obj.get_num("bci")? as u32,
                callee: obj.get_str("callee")?.to_string(),
                classes: obj.get_str_array("classes")?,
            },
            "deopt-taken" => {
                let method = obj.get_str("method")?.to_string();
                let site = obj.opt_str("site").unwrap_or(&method).to_string();
                TraceEvent::DeoptTaken {
                    site,
                    bci: obj.opt_num("bci").unwrap_or(0) as u32,
                    reason: obj.get_str("reason")?.to_string(),
                    method,
                }
            }
            "summary-computed" => TraceEvent::SummaryComputed {
                method: obj.get_str("method")?.to_string(),
                params: obj.get_str_array("params")?,
                returns_fresh: obj.get_bool("returns_fresh")?,
            },
            other => {
                return Err(json::JsonError::new(format!(
                    "unknown event kind {other:?}"
                )));
            }
        };
        Ok(event)
    }
}

/// Receives trace events. Implementations must be cheap per call; producers
/// only invoke them when tracing is enabled.
pub trait TraceSink {
    fn emit(&mut self, event: &TraceEvent);
}

/// Discards everything (useful for overhead measurements with a sink
/// attached but inert).
#[derive(Debug, Default, Clone, Copy)]
pub struct NullSink;

impl TraceSink for NullSink {
    fn emit(&mut self, _event: &TraceEvent) {}
}

/// Collects events in order for later inspection (golden-trace tests).
#[derive(Debug, Default)]
pub struct MemorySink {
    pub events: Vec<TraceEvent>,
}

impl MemorySink {
    pub fn new() -> Self {
        Self::default()
    }

    /// Events of one kind, in emission order.
    pub fn of_kind(&self, kind: &str) -> Vec<&TraceEvent> {
        self.events.iter().filter(|e| e.kind() == kind).collect()
    }
}

impl TraceSink for MemorySink {
    fn emit(&mut self, event: &TraceEvent) {
        self.events.push(event.clone());
    }
}

/// Writes one human-readable line per event.
pub struct PrettySink<W: Write> {
    out: W,
}

impl<W: Write> PrettySink<W> {
    pub fn new(out: W) -> Self {
        PrettySink { out }
    }

    pub fn into_inner(self) -> W {
        self.out
    }
}

impl<W: Write> TraceSink for PrettySink<W> {
    fn emit(&mut self, event: &TraceEvent) {
        let _ = writeln!(self.out, "{}", event.pretty());
    }
}

/// Writes one JSON object per line; parseable by
/// [`TraceEvent::from_json_line`].
pub struct JsonLinesSink<W: Write> {
    out: W,
}

impl<W: Write> JsonLinesSink<W> {
    pub fn new(out: W) -> Self {
        JsonLinesSink { out }
    }

    pub fn into_inner(self) -> W {
        self.out
    }
}

impl<W: Write> TraceSink for JsonLinesSink<W> {
    fn emit(&mut self, event: &TraceEvent) {
        let _ = writeln!(self.out, "{}", event.to_json_line());
    }
}

/// Broadcasts each event to every attached sink, in order.
#[derive(Default)]
pub struct FanoutSink {
    sinks: Vec<Box<dyn TraceSink>>,
}

impl FanoutSink {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn push(&mut self, sink: Box<dyn TraceSink>) {
        self.sinks.push(sink);
    }
}

impl TraceSink for FanoutSink {
    fn emit(&mut self, event: &TraceEvent) {
        for sink in &mut self.sinks {
            sink.emit(event);
        }
    }
}

/// A clonable, shared handle to a sink, for producers that outlive a simple
/// borrow (the VM holds one in its options and emits from nested calls;
/// background compiler threads hold clones and emit concurrently).
///
/// The handle is `Send + Sync`: events are serialized through an internal
/// mutex, so streams from parallel compilations interleave at event
/// granularity but individual events are never torn.
#[derive(Clone)]
pub struct SharedSink(Arc<Mutex<dyn TraceSink + Send>>);

impl SharedSink {
    /// Wraps `sink`, returning the shared handle plus a typed handle the
    /// caller keeps for reading results back out.
    pub fn new<S: TraceSink + Send + 'static>(sink: S) -> (SharedSink, Arc<Mutex<S>>) {
        let typed = Arc::new(Mutex::new(sink));
        (SharedSink(typed.clone()), typed)
    }

    /// Emits through a shared reference (the trait method needs `&mut`).
    pub fn emit_event(&self, event: &TraceEvent) {
        self.0.lock().expect("trace sink poisoned").emit(event);
    }

    /// Runs `f` with exclusive access to the sink — used to hand the sink
    /// to a nested phase that expects a plain `&mut dyn TraceSink` (e.g. a
    /// traced compilation on a worker thread).
    pub fn with_sink<R>(&self, f: impl FnOnce(&mut dyn TraceSink) -> R) -> R {
        let mut guard = self.0.lock().expect("trace sink poisoned");
        f(&mut *guard)
    }
}

impl TraceSink for SharedSink {
    fn emit(&mut self, event: &TraceEvent) {
        self.emit_event(event);
    }
}

impl fmt::Debug for SharedSink {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("SharedSink(..)")
    }
}

/// Merges per-worker event buffers into a [`SharedSink`] in sequence order.
///
/// Background compile workers buffer each compilation's events privately
/// (no shared-sink lock on the hot path) and flush the whole block here with
/// the sequence number the compile queue assigned when the request was
/// popped. Blocks are released downstream strictly in `0, 1, 2, …` order:
/// an out-of-order flush parks its block until every earlier sequence has
/// arrived, so consumers see deterministically ordered, never-interleaved
/// compilation streams regardless of worker scheduling.
pub struct SequencedMerge {
    sink: SharedSink,
    state: Mutex<MergeState>,
}

struct MergeState {
    next: u64,
    pending: BTreeMap<u64, Vec<TraceEvent>>,
}

impl SequencedMerge {
    /// A merge that releases blocks into `sink`, starting at sequence 0.
    pub fn new(sink: SharedSink) -> SequencedMerge {
        SequencedMerge {
            sink,
            state: Mutex::new(MergeState {
                next: 0,
                pending: BTreeMap::new(),
            }),
        }
    }

    /// Hands over the block for sequence `seq`. Every sequence number must
    /// be flushed exactly once; the block (and any parked successors it
    /// unblocks) is forwarded downstream as soon as it is next in line.
    pub fn flush(&self, seq: u64, events: Vec<TraceEvent>) {
        let mut state = self.state.lock().expect("merge state poisoned");
        state.pending.insert(seq, events);
        while let Some(block) = {
            let next = state.next;
            state.pending.remove(&next)
        } {
            state.next += 1;
            self.sink.with_sink(|sink| {
                for event in &block {
                    sink.emit(event);
                }
            });
        }
    }

    /// Number of blocks parked waiting for an earlier sequence.
    pub fn pending(&self) -> usize {
        self.state
            .lock()
            .expect("merge state poisoned")
            .pending
            .len()
    }
}

impl fmt::Debug for SequencedMerge {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("SequencedMerge(..)")
    }
}

/// Producer-side handle: either a live borrow of a sink, or off.
///
/// `emit_with` takes a closure so event construction (string formatting,
/// allocation) is skipped entirely when tracing is disabled — the disabled
/// path is one `Option` branch.
pub struct Tracer<'a> {
    sink: Option<&'a mut dyn TraceSink>,
}

impl<'a> Tracer<'a> {
    /// A tracer that records nothing and costs one branch per emit site.
    pub fn off() -> Tracer<'a> {
        Tracer { sink: None }
    }

    pub fn new(sink: &'a mut dyn TraceSink) -> Tracer<'a> {
        Tracer { sink: Some(sink) }
    }

    #[inline]
    pub fn enabled(&self) -> bool {
        self.sink.is_some()
    }

    /// The underlying sink, for handing to a nested traced phase.
    pub fn sink(&mut self) -> Option<&mut dyn TraceSink> {
        match self.sink.as_mut() {
            Some(s) => Some(&mut **s),
            None => None,
        }
    }

    /// Emits the event produced by `f`, constructing it only if enabled.
    #[inline]
    pub fn emit_with(&mut self, f: impl FnOnce() -> TraceEvent) {
        if let Some(sink) = self.sink.as_mut() {
            sink.emit(&f());
        }
    }

    /// Emits an already-constructed event.
    pub fn emit(&mut self, event: &TraceEvent) {
        if let Some(sink) = self.sink.as_mut() {
            sink.emit(event);
        }
    }
}

impl fmt::Debug for Tracer<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tracer(enabled={})", self.enabled())
    }
}

/// Per-allocation-site counters folded from a trace stream.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct SiteCounters {
    pub shape: String,
    pub virtualized: u64,
    pub materialized: u64,
    /// Materializations by reason, in reason order.
    pub by_reason: BTreeMap<MaterializeReason, u64>,
    pub locks_elided: u64,
    pub loads_elided: u64,
    pub stores_elided: u64,
}

/// Folds a trace stream into per-(method, site) counters — the benchmark
/// tables use this for per-site materialization breakdowns.
///
/// Compile-scoped events are attributed to the most recent
/// [`TraceEvent::CompileStart`]; VM events carry their own method name.
#[derive(Debug, Default)]
pub struct SiteAggregator {
    current_method: String,
    /// (method, site) → counters.
    pub sites: BTreeMap<(String, u32), SiteCounters>,
    /// method → (deopts, rematerialized objects across those deopts).
    pub deopts: BTreeMap<String, (u64, u64)>,
    pub compiles: u64,
    pub evictions: u64,
}

impl SiteAggregator {
    pub fn new() -> Self {
        Self::default()
    }

    fn site(&mut self, site: u32) -> &mut SiteCounters {
        self.sites
            .entry((self.current_method.clone(), site))
            .or_default()
    }

    /// Total materializations per reason across all sites.
    pub fn reason_totals(&self) -> BTreeMap<MaterializeReason, u64> {
        let mut totals = BTreeMap::new();
        for c in self.sites.values() {
            for (&reason, &n) in &c.by_reason {
                *totals.entry(reason).or_insert(0) += n;
            }
        }
        totals
    }

    /// Renders the per-site breakdown as indented text lines.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for ((method, site), c) in &self.sites {
            let reasons = c
                .by_reason
                .iter()
                .map(|(r, n)| format!("{r} {n}"))
                .collect::<Vec<_>>()
                .join(", ");
            out.push_str(&format!(
                "{method} n{site} ({}): virtualized {}, materialized {}{}{}\n",
                if c.shape.is_empty() { "?" } else { &c.shape },
                c.virtualized,
                c.materialized,
                if reasons.is_empty() {
                    String::new()
                } else {
                    format!(" [{reasons}]")
                },
                {
                    let mut extras = Vec::new();
                    if c.locks_elided > 0 {
                        extras.push(format!("locks elided {}", c.locks_elided));
                    }
                    if c.loads_elided > 0 {
                        extras.push(format!("loads elided {}", c.loads_elided));
                    }
                    if c.stores_elided > 0 {
                        extras.push(format!("stores elided {}", c.stores_elided));
                    }
                    if extras.is_empty() {
                        String::new()
                    } else {
                        format!(", {}", extras.join(", "))
                    }
                },
            ));
        }
        for (method, (deopts, remat)) in &self.deopts {
            out.push_str(&format!(
                "{method}: {deopts} deopts, {remat} objects rematerialized\n"
            ));
        }
        out
    }
}

impl TraceSink for SiteAggregator {
    fn emit(&mut self, event: &TraceEvent) {
        match event {
            TraceEvent::CompileStart { method, .. } => {
                self.current_method = method.clone();
                self.compiles += 1;
            }
            TraceEvent::CompileEnd { .. } => {}
            TraceEvent::Virtualized { site, shape } => {
                let shape = shape.clone();
                let c = self.site(*site);
                c.virtualized += 1;
                c.shape = shape;
            }
            TraceEvent::Materialized { site, reason, .. } => {
                let reason = *reason;
                let c = self.site(*site);
                c.materialized += 1;
                *c.by_reason.entry(reason).or_insert(0) += 1;
            }
            TraceEvent::LockElided { site, .. } => self.site(*site).locks_elided += 1,
            TraceEvent::LoadElided { site, .. } => self.site(*site).loads_elided += 1,
            TraceEvent::StoreElided { site, .. } => self.site(*site).stores_elided += 1,
            TraceEvent::CheckFolded { .. }
            | TraceEvent::PhiCreated { .. }
            | TraceEvent::LoopRound { .. } => {}
            TraceEvent::Deopt {
                method,
                rematerialized,
                ..
            } => {
                let entry = self.deopts.entry(method.clone()).or_insert((0, 0));
                entry.0 += 1;
                entry.1 += rematerialized.len() as u64;
            }
            TraceEvent::Evict { .. } => self.evictions += 1,
            TraceEvent::Recompile { .. }
            | TraceEvent::MetricsSnapshot { .. }
            | TraceEvent::InlineDecision { .. }
            | TraceEvent::DevirtGuard { .. }
            | TraceEvent::DeoptTaken { .. }
            | TraceEvent::SummaryComputed { .. } => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_events() -> Vec<TraceEvent> {
        vec![
            TraceEvent::CompileStart {
                method: "Cache.getValue".into(),
                level: "pea".into(),
            },
            TraceEvent::Virtualized {
                site: 3,
                shape: "Key".into(),
            },
            TraceEvent::LoadElided { site: 3, node: 12 },
            TraceEvent::StoreElided { site: 3, node: 13 },
            TraceEvent::LockElided {
                site: 3,
                node: 7,
                exit: false,
            },
            TraceEvent::LockElided {
                site: 3,
                node: 9,
                exit: true,
            },
            TraceEvent::CheckFolded { node: 15, value: 1 },
            TraceEvent::PhiCreated {
                merge: 20,
                site: 3,
                field: Some(1),
            },
            TraceEvent::PhiCreated {
                merge: 20,
                site: 3,
                field: None,
            },
            TraceEvent::LoopRound {
                loop_begin: 18,
                round: 2,
            },
            TraceEvent::Materialized {
                site: 3,
                anchor: 27,
                block: 4,
                reason: MaterializeReason::EscapeToStore,
            },
            TraceEvent::CompileEnd {
                method: "Cache.getValue".into(),
                code_size: 41,
                phases: PhaseMicros {
                    build: 120,
                    canonicalize: 35,
                    escape_analysis: 88,
                    schedule: 12,
                    lower: 7,
                },
            },
            TraceEvent::Deopt {
                method: "Cache.getValue".into(),
                site: "Cache.getValue".into(),
                bci: 6,
                reason: "untaken-branch".into(),
                rematerialized: vec!["Key".into(), "int[8]".into()],
            },
            TraceEvent::Deopt {
                method: "Cache.getValue".into(),
                site: "Cache.hash".into(),
                bci: 2,
                reason: "type-check".into(),
                rematerialized: vec![],
            },
            TraceEvent::Evict {
                method: "Cache.getValue".into(),
                deopts: 4,
            },
            TraceEvent::Recompile {
                method: "Cache.getValue".into(),
            },
            TraceEvent::MetricsSnapshot {
                seq: 1,
                counters: vec!["interp.steps=120".into(), "vm.deopts=2".into()],
            },
            TraceEvent::InlineDecision {
                method: "Cache.getValue".into(),
                bci: 4,
                callee: "Cache.hash".into(),
                policy: "summary".into(),
                inlined: true,
                reason: "allocation-flows-in".into(),
            },
            TraceEvent::InlineDecision {
                method: "Cache.getValue".into(),
                bci: 9,
                callee: "Registry.publish".into(),
                policy: "summary".into(),
                inlined: false,
                reason: "publishes-argument".into(),
            },
            TraceEvent::DevirtGuard {
                method: "Cache.getValue".into(),
                bci: 11,
                callee: "Shape.area".into(),
                classes: vec!["Circle".into(), "Square".into()],
            },
            TraceEvent::DeoptTaken {
                method: "Cache.getValue".into(),
                site: "Cache.getValue".into(),
                bci: 11,
                reason: "type-check".into(),
            },
            TraceEvent::SummaryComputed {
                method: "Cache.hash".into(),
                params: vec!["no-escape".into(), "arg-escape".into()],
                returns_fresh: true,
            },
        ]
    }

    #[test]
    fn json_lines_round_trip_every_variant() {
        for event in sample_events() {
            let line = event.to_json_line();
            let back = TraceEvent::from_json_line(&line)
                .unwrap_or_else(|e| panic!("parse failed for {line}: {e}"));
            assert_eq!(back, event, "round-trip mismatch for {line}");
        }
    }

    #[test]
    fn json_escaping_survives_round_trip() {
        let event = TraceEvent::Recompile {
            method: "weird \"name\"\\with\n\tcontrol \u{1} chars".into(),
        };
        let line = event.to_json_line();
        assert!(!line.contains('\n'), "JSON-lines output must be one line");
        assert_eq!(TraceEvent::from_json_line(&line).unwrap(), event);
    }

    #[test]
    fn json_lines_sink_output_parses_back() {
        let mut sink = JsonLinesSink::new(Vec::new());
        for event in sample_events() {
            sink.emit(&event);
        }
        let text = String::from_utf8(sink.into_inner()).unwrap();
        let parsed: Vec<TraceEvent> = text
            .lines()
            .map(|l| TraceEvent::from_json_line(l).unwrap())
            .collect();
        assert_eq!(parsed, sample_events());
    }

    #[test]
    fn deopt_lines_without_site_payload_still_parse() {
        // Traces recorded before the deopt-site fields existed.
        let old = "{\"event\":\"deopt\",\"method\":\"Cache.getValue\",\
                   \"reason\":\"type-check\",\"rematerialized\":[]}";
        assert_eq!(
            TraceEvent::from_json_line(old).unwrap(),
            TraceEvent::Deopt {
                method: "Cache.getValue".into(),
                site: "Cache.getValue".into(),
                bci: 0,
                reason: "type-check".into(),
                rematerialized: vec![],
            }
        );
        let old = "{\"event\":\"deopt-taken\",\"method\":\"M.f\",\"reason\":\"null-check\"}";
        assert_eq!(
            TraceEvent::from_json_line(old).unwrap(),
            TraceEvent::DeoptTaken {
                method: "M.f".into(),
                site: "M.f".into(),
                bci: 0,
                reason: "null-check".into(),
            }
        );
    }

    #[test]
    fn parse_rejects_malformed_input() {
        assert!(TraceEvent::from_json_line("").is_err());
        assert!(TraceEvent::from_json_line("{}").is_err());
        assert!(TraceEvent::from_json_line("{\"event\":\"nope\"}").is_err());
        assert!(TraceEvent::from_json_line("{\"event\":\"deopt\"}").is_err());
        assert!(TraceEvent::from_json_line("not json").is_err());
        assert!(TraceEvent::from_json_line("{\"event\":12}").is_err());
    }

    #[test]
    fn memory_sink_collects_in_order() {
        let mut sink = MemorySink::new();
        for event in sample_events() {
            sink.emit(&event);
        }
        assert_eq!(sink.events, sample_events());
        assert_eq!(sink.of_kind("lock-elided").len(), 2);
    }

    #[test]
    fn pretty_sink_writes_one_line_per_event() {
        let mut sink = PrettySink::new(Vec::new());
        for event in sample_events() {
            sink.emit(&event);
        }
        let text = String::from_utf8(sink.into_inner()).unwrap();
        assert_eq!(text.lines().count(), sample_events().len());
        assert!(text.contains("alloc n3 (Key) virtualized"));
        assert!(text.contains("materialized at n27 in b4: escape-to-store"));
        assert!(text.contains("rematerialized [Key, int[8]]"));
    }

    #[test]
    fn disabled_tracer_never_constructs_events() {
        let mut tracer = Tracer::off();
        let mut constructed = false;
        tracer.emit_with(|| {
            constructed = true;
            TraceEvent::Recompile { method: "x".into() }
        });
        assert!(!constructed);
        assert!(!tracer.enabled());
    }

    #[test]
    fn shared_sink_feeds_back_to_typed_handle() {
        let (mut shared, typed) = SharedSink::new(MemorySink::new());
        let mut clone = shared.clone();
        shared.emit(&TraceEvent::Recompile { method: "a".into() });
        clone.emit(&TraceEvent::Recompile { method: "b".into() });
        assert_eq!(typed.lock().unwrap().events.len(), 2);
    }

    #[test]
    fn shared_sink_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SharedSink>();
    }

    #[test]
    fn shared_sink_collects_across_threads() {
        let (shared, typed) = SharedSink::new(MemorySink::new());
        std::thread::scope(|scope| {
            for t in 0..4 {
                let sink = shared.clone();
                scope.spawn(move || {
                    sink.emit_event(&TraceEvent::Recompile {
                        method: format!("m{t}"),
                    });
                });
            }
        });
        let mut methods: Vec<String> = typed
            .lock()
            .unwrap()
            .events
            .iter()
            .map(|e| match e {
                TraceEvent::Recompile { method } => method.clone(),
                other => panic!("unexpected event {other:?}"),
            })
            .collect();
        methods.sort();
        assert_eq!(methods, ["m0", "m1", "m2", "m3"]);
    }

    #[test]
    fn site_aggregator_folds_per_site_counters() {
        let mut agg = SiteAggregator::new();
        for event in sample_events() {
            agg.emit(&event);
        }
        let c = &agg.sites[&("Cache.getValue".to_string(), 3)];
        assert_eq!(c.shape, "Key");
        assert_eq!(c.virtualized, 1);
        assert_eq!(c.materialized, 1);
        assert_eq!(c.by_reason[&MaterializeReason::EscapeToStore], 1);
        assert_eq!(c.locks_elided, 2);
        assert_eq!(c.loads_elided, 1);
        assert_eq!(c.stores_elided, 1);
        assert_eq!(agg.deopts["Cache.getValue"], (2, 2));
        assert_eq!(agg.compiles, 1);
        assert_eq!(agg.evictions, 1);
        let render = agg.render();
        assert!(render.contains("Cache.getValue n3 (Key)"));
        assert!(render.contains("escape-to-store 1"));
        assert_eq!(agg.reason_totals()[&MaterializeReason::EscapeToStore], 1);
    }

    fn block(tag: &str, len: usize) -> Vec<TraceEvent> {
        (0..len)
            .map(|i| TraceEvent::Recompile {
                method: format!("{tag}.{i}"),
            })
            .collect()
    }

    #[test]
    fn sequenced_merge_releases_blocks_in_sequence_order() {
        let (shared, typed) = SharedSink::new(MemorySink::new());
        let merge = SequencedMerge::new(shared);
        merge.flush(2, block("c", 1));
        merge.flush(1, block("b", 2));
        assert_eq!(typed.lock().unwrap().events.len(), 0, "0 not yet flushed");
        assert_eq!(merge.pending(), 2);
        merge.flush(0, block("a", 1));
        assert_eq!(merge.pending(), 0);
        let expected: Vec<TraceEvent> = [block("a", 1), block("b", 2), block("c", 1)]
            .into_iter()
            .flatten()
            .collect();
        assert_eq!(typed.lock().unwrap().events, expected);
    }

    #[test]
    fn sequenced_merge_loses_no_events_across_threads() {
        let (shared, typed) = SharedSink::new(MemorySink::new());
        let merge = SequencedMerge::new(shared);
        let blocks: Vec<Vec<TraceEvent>> = (0..16)
            .map(|seq| block(&format!("w{seq}"), seq % 4 + 1))
            .collect();
        std::thread::scope(|scope| {
            for (seq, events) in blocks.iter().enumerate() {
                let merge = &merge;
                let events = events.clone();
                scope.spawn(move || merge.flush(seq as u64, events));
            }
        });
        assert_eq!(merge.pending(), 0);
        let merged = typed.lock().unwrap().events.clone();
        let expected: Vec<TraceEvent> = blocks.into_iter().flatten().collect();
        assert_eq!(merged, expected, "blocks must come out whole and in order");
    }

    #[test]
    fn sequenced_merge_forwards_empty_blocks_to_unblock_successors() {
        let (shared, typed) = SharedSink::new(MemorySink::new());
        let merge = SequencedMerge::new(shared);
        merge.flush(1, block("b", 3));
        merge.flush(0, Vec::new());
        assert_eq!(merge.pending(), 0);
        assert_eq!(typed.lock().unwrap().events, block("b", 3));
    }
}
