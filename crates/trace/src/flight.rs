//! The flight recorder: a bounded ring buffer of the most recent trace
//! events, kept so that a crash (sanitizer finding, `VmError`, panic) can
//! be explained *after the fact* from the window that led up to it.
//!
//! [`FlightRecorder`] is an ordinary [`TraceSink`]: the VM fans its event
//! stream out to the recorder alongside whatever sink the user attached.
//! Each event is stamped with a monotonically increasing sequence number
//! and a microsecond timestamp relative to recorder creation, then written
//! into a fixed-capacity ring — old events are overwritten, never moved,
//! so steady-state recording does no allocation beyond what the event
//! clone itself needs and never grows memory with run length.
//!
//! [`FlightRecorder::dump_json`] renders the surviving window (oldest
//! first) as a single `FLIGHT.json` document; the same timestamped entries
//! feed the Chrome-trace timeline renderer in [`crate::timeline`].

use crate::{TraceEvent, TraceSink};
use std::time::Instant;

/// Default ring capacity: enough for the compiles/installs/deopts of a
/// sizable warmup while staying trivially small in memory.
pub const DEFAULT_CAPACITY: usize = 1024;

/// One recorded event: its global sequence number, its timestamp in
/// microseconds since the recorder was created, and the event itself.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlightEntry {
    /// 0-based position in the full event stream (not just the ring).
    pub seq: u64,
    /// Microseconds since recorder creation.
    pub t_us: u64,
    pub event: TraceEvent,
}

/// Bounded ring-buffer sink keeping the last `capacity` trace events.
pub struct FlightRecorder {
    capacity: usize,
    next_seq: u64,
    ring: Vec<FlightEntry>,
    start: Instant,
}

impl FlightRecorder {
    /// A recorder keeping the last [`DEFAULT_CAPACITY`] events.
    pub fn new() -> Self {
        Self::with_capacity(DEFAULT_CAPACITY)
    }

    /// A recorder keeping the last `capacity` events (at least 1).
    pub fn with_capacity(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        FlightRecorder {
            capacity,
            next_seq: 0,
            ring: Vec::with_capacity(capacity),
            start: Instant::now(),
        }
    }

    /// Total events ever recorded (including overwritten ones).
    pub fn recorded(&self) -> u64 {
        self.next_seq
    }

    /// Events overwritten because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.next_seq.saturating_sub(self.ring.len() as u64)
    }

    /// The surviving window, oldest first.
    pub fn entries(&self) -> Vec<FlightEntry> {
        let mut out = self.ring.clone();
        out.sort_by_key(|e| e.seq);
        out
    }

    /// Renders the surviving window as one `pea-flight/1` JSON document:
    /// `{"schema":…,"recorded":N,"dropped":N,"events":[{seq,t_us,event},…]}`.
    pub fn dump_json(&self) -> String {
        let mut out = String::from("{\"schema\":\"pea-flight/1\"");
        out.push_str(&format!(
            ",\"recorded\":{},\"dropped\":{},\"events\":[",
            self.recorded(),
            self.dropped()
        ));
        for (i, entry) in self.entries().iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"seq\":{},\"t_us\":{},\"event\":{}}}",
                entry.seq,
                entry.t_us,
                entry.event.to_json_line()
            ));
        }
        out.push_str("]}");
        out
    }
}

impl Default for FlightRecorder {
    fn default() -> Self {
        Self::new()
    }
}

impl TraceSink for FlightRecorder {
    fn emit(&mut self, event: &TraceEvent) {
        let entry = FlightEntry {
            seq: self.next_seq,
            t_us: self.start.elapsed().as_micros() as u64,
            event: event.clone(),
        };
        if self.ring.len() < self.capacity {
            self.ring.push(entry);
        } else {
            let slot = (self.next_seq % self.capacity as u64) as usize;
            self.ring[slot] = entry;
        }
        self.next_seq += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn event(i: usize) -> TraceEvent {
        TraceEvent::Recompile {
            method: format!("m{i}"),
        }
    }

    #[test]
    fn keeps_the_last_capacity_events_in_order() {
        let mut rec = FlightRecorder::with_capacity(4);
        for i in 0..10 {
            rec.emit(&event(i));
        }
        assert_eq!(rec.recorded(), 10);
        assert_eq!(rec.dropped(), 6);
        let entries = rec.entries();
        assert_eq!(entries.len(), 4);
        let seqs: Vec<u64> = entries.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, [6, 7, 8, 9]);
        assert_eq!(entries[0].event, event(6));
        assert_eq!(entries[3].event, event(9));
        // Timestamps are monotone within the window.
        assert!(entries.windows(2).all(|w| w[0].t_us <= w[1].t_us));
    }

    #[test]
    fn underfull_ring_reports_no_drops() {
        let mut rec = FlightRecorder::with_capacity(8);
        for i in 0..3 {
            rec.emit(&event(i));
        }
        assert_eq!(rec.dropped(), 0);
        assert_eq!(rec.entries().len(), 3);
    }

    #[test]
    fn dump_json_embeds_event_objects_with_seq_and_timestamp() {
        let mut rec = FlightRecorder::with_capacity(2);
        for i in 0..3 {
            rec.emit(&event(i));
        }
        let dump = rec.dump_json();
        assert!(dump.starts_with("{\"schema\":\"pea-flight/1\""));
        assert!(dump.contains("\"recorded\":3"));
        assert!(dump.contains("\"dropped\":1"));
        assert!(!dump.contains("\"m0\""), "oldest event was overwritten");
        assert!(dump.contains("\"seq\":1"));
        assert!(dump.contains("{\"event\":\"recompile\",\"method\":\"m2\"}"));
        crate::timeline::validate_json(&dump).expect("FLIGHT.json must be valid JSON");
    }
}
