//! Chrome trace-event ("Perfetto") timeline export.
//!
//! [`render_chrome_trace`] turns a timestamped event window (the
//! [`FlightEntry`] stream a [`crate::FlightRecorder`] collects) into the
//! Chrome trace-event JSON format that <https://ui.perfetto.dev> and
//! `chrome://tracing` load directly:
//!
//! * every `CompileStart`/`CompileEnd` pair becomes a complete (`"X"`)
//!   span, with the [`crate::PhaseMicros`] payload unfolded into
//!   back-to-back child spans (build → canonicalize → escape-analysis →
//!   schedule → lower) so the compile pipeline is visible per method;
//!   overlapping compilations (background mode) are laid out on separate
//!   lanes (`tid`s);
//! * deopts, guard failures, evictions, recompiles and metrics snapshots
//!   become instant (`"i"`) events on the VM lane, carrying their
//!   `(site, bci)` coordinates as args.
//!
//! Timestamps are the entry timestamps (microseconds, the unit the format
//! specifies). The renderer is deliberately tolerant: a `CompileEnd`
//! whose start fell out of the ring synthesizes its start from the phase
//! total, so a bounded flight window still renders.

use crate::flight::FlightEntry;
use crate::TraceEvent;
use std::collections::HashMap;

/// Lane (`tid`) carrying the VM's instant events.
const VM_LANE: u64 = 0;

fn esc(s: &str) -> String {
    let mut out = String::new();
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

struct TraceWriter {
    events: Vec<String>,
}

/// Trace-event phase: a complete duration event (`ph:"X"` with `dur`) or
/// a thread-scoped instant (`ph:"i"`).
enum Phase {
    Span { dur: u64 },
    Instant,
}

impl TraceWriter {
    fn span(
        &mut self,
        name: &str,
        cat: &str,
        tid: u64,
        ts: u64,
        dur: u64,
        args: &[(&str, String)],
    ) {
        self.record(Phase::Span { dur }, name, cat, tid, ts, args);
    }

    fn instant(&mut self, name: &str, cat: &str, tid: u64, ts: u64, args: &[(&str, String)]) {
        self.record(Phase::Instant, name, cat, tid, ts, args);
    }

    fn record(
        &mut self,
        phase: Phase,
        name: &str,
        cat: &str,
        tid: u64,
        ts: u64,
        args: &[(&str, String)],
    ) {
        let ph = match phase {
            Phase::Span { .. } => "X",
            Phase::Instant => "i",
        };
        let mut e = format!(
            "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"{ph}\",\"pid\":1,\"tid\":{tid},\"ts\":{ts}",
            esc(name),
            esc(cat)
        );
        match phase {
            Phase::Span { dur } => e.push_str(&format!(",\"dur\":{dur}")),
            Phase::Instant => e.push_str(",\"s\":\"t\""),
        }
        if !args.is_empty() {
            e.push_str(",\"args\":{");
            for (i, (k, v)) in args.iter().enumerate() {
                if i > 0 {
                    e.push(',');
                }
                e.push_str(&format!("\"{}\":{v}", esc(k)));
            }
            e.push('}');
        }
        e.push('}');
        self.events.push(e);
    }

    fn thread_name(&mut self, tid: u64, name: &str) {
        self.events.push(format!(
            "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":{tid},\
             \"args\":{{\"name\":\"{}\"}}}}",
            esc(name)
        ));
    }
}

fn qstr(s: &str) -> String {
    format!("\"{}\"", esc(s))
}

/// Renders a timestamped event window as one Chrome trace-event JSON
/// document (`{"traceEvents":[…]}`).
pub fn render_chrome_trace(entries: &[FlightEntry]) -> String {
    let mut w = TraceWriter { events: Vec::new() };
    // Open compiles: method → start timestamp. Background-mode streams are
    // sequence-merged per compilation, so at most one open compile per
    // method exists at a time.
    let mut open: HashMap<&str, u64> = HashMap::new();
    // Compile lanes: end timestamp each lane is busy until. Overlapping
    // compile spans (background workers) get distinct lanes.
    let mut lanes: Vec<u64> = Vec::new();
    let mut max_lane = 0u64;
    for entry in entries {
        let ts = entry.t_us;
        match &entry.event {
            TraceEvent::CompileStart { method, .. } => {
                open.insert(method.as_str(), ts);
            }
            TraceEvent::CompileEnd {
                method,
                code_size,
                phases,
            } => {
                let start = open
                    .remove(method.as_str())
                    .unwrap_or_else(|| ts.saturating_sub(phases.total()));
                let dur = ts.saturating_sub(start);
                let lane_idx = match lanes.iter().position(|&busy_until| busy_until <= start) {
                    Some(i) => i,
                    None => {
                        lanes.push(0);
                        lanes.len() - 1
                    }
                };
                lanes[lane_idx] = ts;
                let tid = lane_idx as u64 + 1;
                max_lane = max_lane.max(tid);
                w.span(
                    method,
                    "compile",
                    tid,
                    start,
                    dur,
                    &[("code_size", code_size.to_string())],
                );
                // Phase sub-spans laid back-to-back so they end at install
                // time (queue wait, if any, shows as the leading gap).
                let named = [
                    ("build", phases.build),
                    ("canonicalize", phases.canonicalize),
                    ("escape-analysis", phases.escape_analysis),
                    ("schedule", phases.schedule),
                    ("lower", phases.lower),
                ];
                let mut cursor = ts.saturating_sub(phases.total());
                for (name, dur) in named {
                    if dur > 0 {
                        w.span(name, "compile-phase", tid, cursor, dur, &[]);
                    }
                    cursor += dur;
                }
            }
            TraceEvent::Deopt {
                method,
                site,
                bci,
                reason,
                rematerialized,
            } => {
                w.instant(
                    &format!("deopt:{reason}"),
                    "deopt",
                    VM_LANE,
                    ts,
                    &[
                        ("method", qstr(method)),
                        ("site", qstr(site)),
                        ("bci", bci.to_string()),
                        ("rematerialized", rematerialized.len().to_string()),
                    ],
                );
            }
            TraceEvent::DeoptTaken {
                method,
                site,
                bci,
                reason,
            } => {
                w.instant(
                    &format!("deopt-taken:{reason}"),
                    "deopt",
                    VM_LANE,
                    ts,
                    &[
                        ("method", qstr(method)),
                        ("site", qstr(site)),
                        ("bci", bci.to_string()),
                    ],
                );
            }
            TraceEvent::Evict { method, deopts } => {
                w.instant(
                    "evict",
                    "vm",
                    VM_LANE,
                    ts,
                    &[("method", qstr(method)), ("deopts", deopts.to_string())],
                );
            }
            TraceEvent::Recompile { method } => {
                w.instant("recompile", "vm", VM_LANE, ts, &[("method", qstr(method))]);
            }
            TraceEvent::MetricsSnapshot { seq, counters } => {
                w.instant(
                    "metrics-snapshot",
                    "vm",
                    VM_LANE,
                    ts,
                    &[
                        ("seq", seq.to_string()),
                        ("changed", counters.len().to_string()),
                    ],
                );
            }
            // Per-node PEA decisions live inside the compile spans; the
            // per-site tables already break them down better than a
            // timeline can.
            _ => {}
        }
    }
    w.thread_name(VM_LANE, "vm");
    for lane in 1..=max_lane {
        w.thread_name(lane, &format!("compile-lane-{lane}"));
    }
    let mut out = String::from("{\"traceEvents\":[");
    out.push_str(&w.events.join(","));
    out.push_str("],\"displayTimeUnit\":\"ms\"}");
    out
}

/// Minimal full-JSON well-formedness check (objects, arrays, strings,
/// numbers, literals — nesting allowed). Used to assert `TIMELINE.json`
/// and `FLIGHT.json` are loadable by real JSON parsers; the flat codec in
/// [`crate::json`] deliberately cannot represent them.
pub fn validate_json(input: &str) -> Result<(), String> {
    let bytes = input.as_bytes();
    let mut pos = 0usize;
    skip_ws(bytes, &mut pos);
    value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing data at byte {pos}"));
    }
    Ok(())
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while matches!(bytes.get(*pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
        *pos += 1;
    }
}

fn value(bytes: &[u8], pos: &mut usize) -> Result<(), String> {
    match bytes.get(*pos) {
        Some(b'{') => {
            *pos += 1;
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(());
            }
            loop {
                skip_ws(bytes, pos);
                string(bytes, pos)?;
                skip_ws(bytes, pos);
                if bytes.get(*pos) != Some(&b':') {
                    return Err(format!("expected ':' at byte {pos}"));
                }
                *pos += 1;
                skip_ws(bytes, pos);
                value(bytes, pos)?;
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(());
                    }
                    _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
                }
            }
        }
        Some(b'[') => {
            *pos += 1;
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(());
            }
            loop {
                skip_ws(bytes, pos);
                value(bytes, pos)?;
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(());
                    }
                    _ => return Err(format!("expected ',' or ']' at byte {pos}")),
                }
            }
        }
        Some(b'"') => string(bytes, pos),
        Some(b't') => literal(bytes, pos, "true"),
        Some(b'f') => literal(bytes, pos, "false"),
        Some(b'n') => literal(bytes, pos, "null"),
        Some(b'-' | b'0'..=b'9') => {
            *pos += 1;
            while matches!(
                bytes.get(*pos),
                Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
            ) {
                *pos += 1;
            }
            Ok(())
        }
        other => Err(format!("unexpected {other:?} at byte {pos}")),
    }
}

fn string(bytes: &[u8], pos: &mut usize) -> Result<(), String> {
    if bytes.get(*pos) != Some(&b'"') {
        return Err(format!("expected string at byte {pos}"));
    }
    *pos += 1;
    loop {
        match bytes.get(*pos) {
            Some(b'"') => {
                *pos += 1;
                return Ok(());
            }
            Some(b'\\') => *pos += 2,
            Some(_) => *pos += 1,
            None => return Err("unterminated string".into()),
        }
    }
}

fn literal(bytes: &[u8], pos: &mut usize, text: &str) -> Result<(), String> {
    let end = *pos + text.len();
    if bytes.len() >= end && &bytes[*pos..end] == text.as_bytes() {
        *pos = end;
        Ok(())
    } else {
        Err(format!("bad literal at byte {pos}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PhaseMicros;

    fn entry(seq: u64, t_us: u64, event: TraceEvent) -> FlightEntry {
        FlightEntry { seq, t_us, event }
    }

    fn sample() -> Vec<FlightEntry> {
        vec![
            entry(
                0,
                10,
                TraceEvent::CompileStart {
                    method: "Cache.getValue".into(),
                    level: "pea".into(),
                },
            ),
            entry(
                1,
                240,
                TraceEvent::CompileEnd {
                    method: "Cache.getValue".into(),
                    code_size: 41,
                    phases: PhaseMicros {
                        build: 100,
                        canonicalize: 30,
                        escape_analysis: 60,
                        schedule: 10,
                        lower: 5,
                    },
                },
            ),
            entry(
                2,
                400,
                TraceEvent::DeoptTaken {
                    method: "Cache.getValue".into(),
                    site: "Cache.getValue".into(),
                    bci: 7,
                    reason: "type-check".into(),
                },
            ),
            entry(
                3,
                401,
                TraceEvent::Deopt {
                    method: "Cache.getValue".into(),
                    site: "Cache.getValue".into(),
                    bci: 7,
                    reason: "type-check".into(),
                    rematerialized: vec!["Key".into()],
                },
            ),
            entry(
                4,
                500,
                TraceEvent::Evict {
                    method: "Cache.getValue".into(),
                    deopts: 8,
                },
            ),
        ]
    }

    #[test]
    fn renders_valid_chrome_trace_json() {
        let doc = render_chrome_trace(&sample());
        validate_json(&doc).expect("timeline must be valid JSON");
        assert!(doc.starts_with("{\"traceEvents\":["));
        assert!(doc.contains("\"name\":\"Cache.getValue\""));
        assert!(doc.contains("\"ph\":\"X\""));
        assert!(doc.contains("\"dur\":230"), "span covers start→end");
        assert!(doc.contains("\"name\":\"escape-analysis\""));
        assert!(doc.contains("\"name\":\"deopt:type-check\""));
        assert!(doc.contains("\"bci\":7"));
        assert!(doc.contains("\"name\":\"evict\""));
        assert!(doc.contains("\"thread_name\""));
    }

    #[test]
    fn compile_end_without_start_synthesizes_its_span() {
        let doc = render_chrome_trace(&sample()[1..2]);
        validate_json(&doc).unwrap();
        // Span start backfilled from the phase total: 240 - 205 = 35.
        assert!(doc.contains("\"ts\":35"));
        assert!(doc.contains("\"dur\":205"));
    }

    #[test]
    fn overlapping_compiles_get_distinct_lanes() {
        let mk = |m: &str| TraceEvent::CompileStart {
            method: m.into(),
            level: "pea".into(),
        };
        let end = |m: &str| TraceEvent::CompileEnd {
            method: m.into(),
            code_size: 1,
            phases: PhaseMicros::default(),
        };
        let entries = vec![
            entry(0, 0, mk("a")),
            entry(1, 5, mk("b")),
            entry(2, 100, end("a")),
            entry(3, 100, end("b")),
        ];
        let doc = render_chrome_trace(&entries);
        validate_json(&doc).unwrap();
        assert!(doc.contains("\"tid\":1"));
        assert!(doc.contains("\"tid\":2"));
    }

    #[test]
    fn validator_accepts_nested_and_rejects_malformed() {
        assert!(validate_json("{\"a\":[1,2,{\"b\":null}],\"c\":-1.5e3}").is_ok());
        assert!(validate_json("").is_err());
        assert!(validate_json("{\"a\":}").is_err());
        assert!(validate_json("[1,2").is_err());
        assert!(validate_json("{} extra").is_err());
    }
}
