//! Minimal flat-JSON codec for trace events.
//!
//! The workspace builds offline (no serde), and trace events only need a
//! flat object with string / integer / bool / null / string-array values —
//! so this module implements exactly that: [`ObjectWriter`] emits one
//! compact object, [`parse_object`] reads one back. Nested objects and
//! floating-point numbers are intentionally unsupported.

use std::collections::BTreeMap;
use std::fmt;

/// Error from [`parse_object`] or a typed field accessor.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError(String);

impl JsonError {
    pub fn new(msg: impl Into<String>) -> Self {
        JsonError(msg.into())
    }
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error: {}", self.0)
    }
}

impl std::error::Error for JsonError {}

/// Writes one flat JSON object, preserving insertion order.
#[derive(Debug, Default)]
pub struct ObjectWriter {
    buf: String,
}

impl ObjectWriter {
    pub fn new() -> Self {
        ObjectWriter {
            buf: String::from("{"),
        }
    }

    fn key(&mut self, key: &str) {
        if self.buf.len() > 1 {
            self.buf.push(',');
        }
        escape_into(&mut self.buf, key);
        self.buf.push(':');
    }

    pub fn str(&mut self, key: &str, value: &str) {
        self.key(key);
        escape_into(&mut self.buf, value);
    }

    pub fn num(&mut self, key: &str, value: i64) {
        self.key(key);
        self.buf.push_str(&value.to_string());
    }

    pub fn bool(&mut self, key: &str, value: bool) {
        self.key(key);
        self.buf.push_str(if value { "true" } else { "false" });
    }

    pub fn null(&mut self, key: &str) {
        self.key(key);
        self.buf.push_str("null");
    }

    pub fn str_array(&mut self, key: &str, values: &[String]) {
        self.key(key);
        self.buf.push('[');
        for (i, v) in values.iter().enumerate() {
            if i > 0 {
                self.buf.push(',');
            }
            escape_into(&mut self.buf, v);
        }
        self.buf.push(']');
    }

    pub fn finish(mut self) -> String {
        self.buf.push('}');
        self.buf
    }
}

fn escape_into(buf: &mut String, s: &str) {
    buf.push('"');
    for c in s.chars() {
        match c {
            '"' => buf.push_str("\\\""),
            '\\' => buf.push_str("\\\\"),
            '\n' => buf.push_str("\\n"),
            '\r' => buf.push_str("\\r"),
            '\t' => buf.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                buf.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => buf.push(c),
        }
    }
    buf.push('"');
}

/// A parsed flat-JSON value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Value {
    Str(String),
    Num(i64),
    Bool(bool),
    Null,
    StrArray(Vec<String>),
}

/// A parsed flat JSON object with typed accessors.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Object {
    fields: BTreeMap<String, Value>,
}

impl Object {
    pub fn get(&self, key: &str) -> Result<&Value, JsonError> {
        self.fields
            .get(key)
            .ok_or_else(|| JsonError::new(format!("missing field {key:?}")))
    }

    pub fn get_str(&self, key: &str) -> Result<&str, JsonError> {
        match self.get(key)? {
            Value::Str(s) => Ok(s),
            other => Err(JsonError::new(format!(
                "field {key:?}: expected string, got {other:?}"
            ))),
        }
    }

    pub fn get_num(&self, key: &str) -> Result<i64, JsonError> {
        match self.get(key)? {
            Value::Num(n) => Ok(*n),
            other => Err(JsonError::new(format!(
                "field {key:?}: expected number, got {other:?}"
            ))),
        }
    }

    pub fn get_bool(&self, key: &str) -> Result<bool, JsonError> {
        match self.get(key)? {
            Value::Bool(b) => Ok(*b),
            other => Err(JsonError::new(format!(
                "field {key:?}: expected bool, got {other:?}"
            ))),
        }
    }

    pub fn get_opt_num(&self, key: &str) -> Result<Option<i64>, JsonError> {
        match self.get(key)? {
            Value::Num(n) => Ok(Some(*n)),
            Value::Null => Ok(None),
            other => Err(JsonError::new(format!(
                "field {key:?}: expected number or null, got {other:?}"
            ))),
        }
    }

    /// The string at `key`, or `None` when the field is absent or null —
    /// for fields added after traces in the wild were recorded.
    pub fn opt_str(&self, key: &str) -> Option<&str> {
        match self.fields.get(key) {
            Some(Value::Str(s)) => Some(s),
            _ => None,
        }
    }

    /// The number at `key`, or `None` when the field is absent or null.
    pub fn opt_num(&self, key: &str) -> Option<i64> {
        match self.fields.get(key) {
            Some(Value::Num(n)) => Some(*n),
            _ => None,
        }
    }

    pub fn get_str_array(&self, key: &str) -> Result<Vec<String>, JsonError> {
        match self.get(key)? {
            Value::StrArray(v) => Ok(v.clone()),
            other => Err(JsonError::new(format!(
                "field {key:?}: expected string array, got {other:?}"
            ))),
        }
    }
}

/// Parses one flat JSON object (the shape [`ObjectWriter`] produces).
pub fn parse_object(input: &str) -> Result<Object, JsonError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    p.expect(b'{')?;
    let mut fields = BTreeMap::new();
    p.skip_ws();
    if p.peek() == Some(b'}') {
        p.pos += 1;
    } else {
        loop {
            p.skip_ws();
            let key = p.string()?;
            p.skip_ws();
            p.expect(b':')?;
            p.skip_ws();
            let value = p.value()?;
            fields.insert(key, value);
            p.skip_ws();
            match p.next_byte()? {
                b',' => continue,
                b'}' => break,
                c => {
                    return Err(JsonError::new(format!(
                        "expected ',' or '}}', got {:?}",
                        c as char
                    )))
                }
            }
        }
    }
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(JsonError::new("trailing data after object"));
    }
    Ok(Object { fields })
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn next_byte(&mut self) -> Result<u8, JsonError> {
        let b = self
            .peek()
            .ok_or_else(|| JsonError::new("unexpected end of input"))?;
        self.pos += 1;
        Ok(b)
    }

    fn expect(&mut self, want: u8) -> Result<(), JsonError> {
        let got = self.next_byte()?;
        if got != want {
            return Err(JsonError::new(format!(
                "expected {:?}, got {:?}",
                want as char, got as char
            )));
        }
        Ok(())
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.next_byte()? {
                b'"' => return Ok(out),
                b'\\' => match self.next_byte()? {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'n' => out.push('\n'),
                    b'r' => out.push('\r'),
                    b't' => out.push('\t'),
                    b'b' => out.push('\u{8}'),
                    b'f' => out.push('\u{c}'),
                    b'u' => {
                        let mut code = 0u32;
                        for _ in 0..4 {
                            let d = self.next_byte()?;
                            let v = (d as char)
                                .to_digit(16)
                                .ok_or_else(|| JsonError::new("bad \\u escape"))?;
                            code = code * 16 + v;
                        }
                        // Surrogate pairs are not produced by the writer;
                        // map lone surrogates to the replacement char.
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                    }
                    c => {
                        return Err(JsonError::new(format!("bad escape \\{:?}", c as char)));
                    }
                },
                c if c < 0x80 => out.push(c as char),
                c => {
                    // Re-assemble a UTF-8 multibyte sequence.
                    let len = if c >= 0xf0 {
                        4
                    } else if c >= 0xe0 {
                        3
                    } else {
                        2
                    };
                    let start = self.pos - 1;
                    let end = start + len;
                    if end > self.bytes.len() {
                        return Err(JsonError::new("truncated UTF-8 sequence"));
                    }
                    let s = std::str::from_utf8(&self.bytes[start..end])
                        .map_err(|_| JsonError::new("invalid UTF-8 in string"))?;
                    out.push_str(s);
                    self.pos = end;
                }
            }
        }
    }

    fn value(&mut self) -> Result<Value, JsonError> {
        match self
            .peek()
            .ok_or_else(|| JsonError::new("unexpected end of input"))?
        {
            b'"' => Ok(Value::Str(self.string()?)),
            b'[' => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::StrArray(items));
                }
                loop {
                    self.skip_ws();
                    items.push(self.string()?);
                    self.skip_ws();
                    match self.next_byte()? {
                        b',' => continue,
                        b']' => break,
                        c => {
                            return Err(JsonError::new(format!(
                                "expected ',' or ']', got {:?}",
                                c as char
                            )));
                        }
                    }
                }
                Ok(Value::StrArray(items))
            }
            b't' => self.literal("true", Value::Bool(true)),
            b'f' => self.literal("false", Value::Bool(false)),
            b'n' => self.literal("null", Value::Null),
            b'-' | b'0'..=b'9' => {
                let start = self.pos;
                if self.peek() == Some(b'-') {
                    self.pos += 1;
                }
                while matches!(self.peek(), Some(b'0'..=b'9')) {
                    self.pos += 1;
                }
                let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
                text.parse::<i64>()
                    .map(Value::Num)
                    .map_err(|_| JsonError::new(format!("bad number {text:?}")))
            }
            c => Err(JsonError::new(format!(
                "unexpected character {:?}",
                c as char
            ))),
        }
    }

    fn literal(&mut self, text: &str, value: Value) -> Result<Value, JsonError> {
        let end = self.pos + text.len();
        if self.bytes.len() >= end && &self.bytes[self.pos..end] == text.as_bytes() {
            self.pos = end;
            Ok(value)
        } else {
            Err(JsonError::new(format!("expected literal {text:?}")))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writer_and_parser_agree() {
        let mut w = ObjectWriter::new();
        w.str("s", "a \"b\" \\ ✓\n");
        w.num("n", -42);
        w.bool("t", true);
        w.bool("f", false);
        w.null("z");
        w.str_array("a", &["x".into(), "y\"z".into()]);
        let line = w.finish();
        let obj = parse_object(&line).unwrap();
        assert_eq!(obj.get_str("s").unwrap(), "a \"b\" \\ ✓\n");
        assert_eq!(obj.get_num("n").unwrap(), -42);
        assert!(obj.get_bool("t").unwrap());
        assert!(!obj.get_bool("f").unwrap());
        assert_eq!(obj.get_opt_num("z").unwrap(), None);
        assert_eq!(obj.get_str_array("a").unwrap(), vec!["x", "y\"z"]);
    }

    #[test]
    fn empty_object_parses() {
        assert_eq!(parse_object("{}").unwrap(), Object::default());
        assert_eq!(parse_object("  { }  ").unwrap(), Object::default());
    }

    #[test]
    fn errors_are_reported() {
        assert!(parse_object("").is_err());
        assert!(parse_object("{").is_err());
        assert!(parse_object("{\"a\":}").is_err());
        assert!(parse_object("{\"a\":1}x").is_err());
        assert!(parse_object("{\"a\":1.5}").is_err());
        let obj = parse_object("{\"a\":1}").unwrap();
        assert!(obj.get_str("a").is_err());
        assert!(obj.get("missing").is_err());
    }
}
