//! The case-running side: configuration, RNG and the `proptest!` macro.

use std::fmt;

/// Runner configuration. Only `cases` is honoured; the other fields exist
/// so `ProptestConfig { .., ..ProptestConfig::default() }` literals from
/// real-proptest users compile unchanged.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
    /// Accepted for compatibility; this shim never shrinks.
    pub max_shrink_iters: u32,
    /// Accepted for compatibility; ignored.
    pub max_global_rejects: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 256,
            max_shrink_iters: 1024,
            max_global_rejects: 65536,
        }
    }
}

/// Why a case failed (produced by `prop_assert!`/`prop_assert_eq!`).
#[derive(Clone, Debug)]
pub struct TestCaseError(pub String);

impl TestCaseError {
    /// A failed-assertion error.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError(msg.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// Deterministic splitmix64 generator, seeded from the test name so every
/// run (locally and in CI) explores the same cases.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Generator seeded from `name` (and `PROPTEST_SEED`, if set, for
    /// exploring alternative universes).
    pub fn deterministic(name: &str) -> TestRng {
        let mut seed: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            seed ^= u64::from(b);
            seed = seed.wrapping_mul(0x0000_0100_0000_01b3);
        }
        if let Ok(extra) = std::env::var("PROPTEST_SEED") {
            if let Ok(v) = extra.parse::<u64>() {
                seed ^= v;
            }
        }
        TestRng { state: seed }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `0..n` (`n` = 0 is treated as 1).
    pub fn below(&mut self, n: u64) -> u64 {
        if n <= 1 {
            return 0;
        }
        self.next_u64() % n
    }
}

/// Defines property tests. Syntax, as in the real crate:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]
///
///     #[test]
///     fn my_property(x in 0u8..16, v in prop::collection::vec(any::<i64>(), 0..8)) {
///         prop_assert!(x < 16);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_cases! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_cases! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_cases {
    ( ($cfg:expr)
      $( $(#[$meta:meta])*
         fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                let mut rng =
                    $crate::test_runner::TestRng::deterministic(stringify!($name));
                for case in 0..config.cases {
                    $(let $arg =
                        $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                    let mut inputs = ::std::string::String::new();
                    $(inputs.push_str(&format!(
                        "  {} = {:?}\n", stringify!($arg), &$arg));)+
                    let outcome = ::std::panic::catch_unwind(
                        ::std::panic::AssertUnwindSafe(
                            || -> ::std::result::Result<
                                (),
                                $crate::test_runner::TestCaseError,
                            > {
                                $body
                                ::std::result::Result::Ok(())
                            },
                        ),
                    );
                    match outcome {
                        Ok(Ok(())) => {}
                        Ok(Err(e)) => panic!(
                            "proptest case {case} failed: {e}\ninputs:\n{inputs}"
                        ),
                        Err(payload) => {
                            eprintln!(
                                "proptest case {case} panicked; inputs:\n{inputs}"
                            );
                            ::std::panic::resume_unwind(payload);
                        }
                    }
                }
            }
        )*
    };
}

/// `assert!` that reports the generated inputs on failure.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// `assert_eq!` that reports the generated inputs on failure.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l == r,
            "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l == r,
            "{}\n  left: {:?}\n right: {:?}",
            format!($($fmt)*), l, r
        );
    }};
}

/// `assert_ne!` counterpart of [`prop_assert_eq!`].
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l != r,
            "assertion failed: {} != {}\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            l
        );
    }};
}
