//! Offline stand-in for the [proptest](https://crates.io/crates/proptest)
//! crate, implementing exactly the API surface this workspace uses:
//! strategies (ranges, tuples, `Just`, `any`, `prop_map`, `prop_oneof!`,
//! `prop_recursive`, `prop::collection::vec`), the `proptest!` test macro
//! with `#![proptest_config(..)]`, and `prop_assert!`/`prop_assert_eq!`.
//!
//! Differences from the real crate, by design:
//!
//! * **No shrinking.** A failing case reports the generated inputs
//!   verbatim (`max_shrink_iters` is accepted and ignored).
//! * **Deterministic.** The generator is seeded from the test name, so
//!   runs are reproducible across machines and CI.
//! * `proptest-regressions` files are ignored.

pub mod strategy;
pub mod test_runner;

/// Alias of the crate root, so `prop::collection::vec(..)` resolves the
/// way it does with the real crate's prelude.
pub mod prop {
    pub use crate::collection;
    pub use crate::strategy;
}

/// Collection strategies (only `vec` is provided).
pub mod collection {
    use crate::strategy::{Strategy, VecStrategy};
    use std::ops::Range;

    /// Strategy for a `Vec` whose length is drawn from `len` and whose
    /// elements are drawn from `element`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }
}

/// Everything a test file needs, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::collection;
    pub use crate::prop;
    pub use crate::strategy::{any, BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}
