//! Value-generation strategies: the composable core of the proptest API.

use crate::test_runner::TestRng;
use std::ops::Range;
use std::rc::Rc;

/// A recipe for generating values of one type.
///
/// Unlike the real crate there is no value tree and no simplification:
/// `generate` produces a finished value directly.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Recursive strategy: up to `depth` levels of `recurse` wrapped
    /// around `self` as the leaf. `_desired_size` and `_branch_size` are
    /// accepted for signature compatibility and ignored.
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _branch_size: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + Clone + 'static,
        Self::Value: 'static,
        R: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R,
    {
        let mut strat = self.clone().boxed();
        for _ in 0..depth {
            // At each level, either stop at a leaf or recurse one deeper;
            // leaves are twice as likely, bounding expected size.
            strat = Union::weighted(vec![(2, self.clone().boxed()), (1, recurse(strat).boxed())])
                .boxed();
        }
        strat
    }

    /// Type-erases the strategy (cheaply clonable).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(self))
    }
}

/// Object-safe mirror of [`Strategy`], used behind `Rc<dyn ..>`.
trait DynStrategy {
    type Value;
    fn generate_dyn(&self, rng: &mut TestRng) -> Self::Value;
}

impl<S: Strategy> DynStrategy for S {
    type Value = S::Value;
    fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

/// A type-erased, reference-counted strategy.
pub struct BoxedStrategy<V>(Rc<dyn DynStrategy<Value = V>>);

impl<V> Clone for BoxedStrategy<V> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        self.0.generate_dyn(rng)
    }
}

/// Always produces a clone of the wrapped value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// [`Strategy::prop_map`] adapter.
#[derive(Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Weighted choice between erased alternatives (`prop_oneof!`).
pub struct Union<V> {
    options: Vec<(u32, BoxedStrategy<V>)>,
    total: u32,
}

impl<V> Clone for Union<V> {
    fn clone(&self) -> Self {
        Union {
            options: self.options.clone(),
            total: self.total,
        }
    }
}

impl<V> Union<V> {
    /// Uniform choice.
    pub fn new(options: Vec<BoxedStrategy<V>>) -> Self {
        Self::weighted(options.into_iter().map(|s| (1, s)).collect())
    }

    /// Choice with per-alternative weights.
    pub fn weighted(options: Vec<(u32, BoxedStrategy<V>)>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one case");
        let total = options.iter().map(|(w, _)| *w).sum();
        Union { options, total }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        let mut pick = rng.below(u64::from(self.total)) as u32;
        for (w, s) in &self.options {
            if pick < *w {
                return s.generate(rng);
            }
            pick -= w;
        }
        unreachable!("weights sum mismatch")
    }
}

/// `prop::collection::vec` adapter.
#[derive(Clone)]
pub struct VecStrategy<S> {
    pub(crate) element: S,
    pub(crate) len: Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = self.len.end.saturating_sub(self.len.start).max(1) as u64;
        let n = self.len.start + rng.below(span) as usize;
        (0..n).map(|_| self.element.generate(rng)).collect()
    }
}

/// Types with a canonical full-range strategy (`any::<T>()`).
pub trait Arbitrary: Sized {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// The canonical strategy for `T`.
#[derive(Clone, Debug, Default)]
pub struct Any<T>(std::marker::PhantomData<T>);

/// Full-range strategy for `T` (e.g. `any::<u8>()`).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}
range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! tuple_strategy {
    ($(($($name:ident),+);)*) => {$(
        #[allow(non_snake_case)]
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )*};
}
tuple_strategy! {
    (A);
    (A, B);
    (A, B, C);
    (A, B, C, D);
    (A, B, C, D, E);
    (A, B, C, D, E, F);
}

/// Choice between strategies producing the same value type. All cases may
/// optionally carry a `weight =>` prefix in the real crate; this shim
/// supports the unweighted form used in this workspace.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}
