//! Graph invariant checking, run after every compiler phase in tests.

use crate::cfg::Cfg;
use crate::dom::DomTree;
use crate::schedule::Schedule;
use crate::{Graph, NodeId, NodeKind};
use std::collections::HashSet;
use std::error::Error;
use std::fmt;

/// A verification failure.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct IrError {
    /// Offending node.
    pub node: NodeId,
    /// Human-readable reason.
    pub reason: String,
}

impl fmt::Display for IrError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.node, self.reason)
    }
}

impl Error for IrError {}

fn err(node: NodeId, reason: impl Into<String>) -> IrError {
    IrError {
        node,
        reason: reason.into(),
    }
}

/// Checks structural and SSA invariants:
///
/// * no live node references a deleted node;
/// * fixed chains are doubly linked consistently (`control_pred` matches
///   the predecessor's successor slot);
/// * merge-like nodes list only `End`/`LoopEnd` predecessors, each claimed
///   by exactly one merge;
/// * phi input counts equal their merge's predecessor count;
/// * every side-effecting node carries a frame state;
/// * frame-state input counts match their layout descriptors;
/// * data inputs dominate their uses (checked via the early schedule;
///   virtual-object mappings and frame states are exempt as metadata).
///
/// # Errors
///
/// The first violation found.
pub fn verify(graph: &Graph) -> Result<(), IrError> {
    // Reference integrity.
    for n in graph.live_nodes() {
        let node = graph.node(n);
        for &input in node.inputs() {
            if graph.node(input).is_deleted() {
                return Err(err(n, format!("references deleted input {input}")));
            }
        }
        if let Some(state) = node.state_after {
            if graph.node(state).is_deleted() {
                return Err(err(n, format!("references deleted frame state {state}")));
            }
            if !matches!(graph.kind(state), NodeKind::FrameState(_)) {
                return Err(err(n, "state_after is not a FrameState"));
            }
        }
        for &succ in node.successors() {
            if graph.node(succ).is_deleted() {
                return Err(err(n, format!("references deleted successor {succ}")));
            }
        }
    }

    // Control-flow linkage.
    let mut end_owner: HashSet<NodeId> = HashSet::new();
    for n in graph.live_nodes() {
        let node = graph.node(n);
        for &succ in node.successors() {
            let s = graph.node(succ);
            if s.control_pred() != Some(n) {
                return Err(err(
                    succ,
                    format!(
                        "control_pred mismatch: expected {n}, found {:?}",
                        s.control_pred()
                    ),
                ));
            }
        }
        match graph.kind(n) {
            NodeKind::Merge { ends } | NodeKind::LoopBegin { ends } => {
                if ends.is_empty() {
                    return Err(err(n, "merge with no predecessors"));
                }
                for &e in ends {
                    match graph.kind(e) {
                        NodeKind::End | NodeKind::LoopEnd => {}
                        other => {
                            return Err(err(n, format!("merge end {e} is {other:?}")));
                        }
                    }
                    if !end_owner.insert(e) {
                        return Err(err(e, "end claimed by two merges"));
                    }
                }
                if let NodeKind::LoopBegin { ends } = graph.kind(n) {
                    if !matches!(graph.kind(ends[0]), NodeKind::End) {
                        return Err(err(n, "loop begin entry must be a forward End"));
                    }
                    if ends.len() < 2 {
                        return Err(err(n, "loop begin without back edges"));
                    }
                }
            }
            NodeKind::If if node.successors().len() != 2 => {
                return Err(err(n, "If without two successors"));
            }
            _ => {}
        }
        if graph.kind(n).is_side_effect() && node.state_after.is_none() {
            return Err(err(n, "side-effecting node without frame state"));
        }
    }

    // Frame-state layouts.
    for n in graph.live_nodes() {
        if let NodeKind::FrameState(data) = graph.kind(n) {
            if data.input_count() != graph.node(n).inputs().len() {
                return Err(err(
                    n,
                    format!(
                        "frame state layout mismatch: descriptor {} vs {} inputs",
                        data.input_count(),
                        graph.node(n).inputs().len()
                    ),
                ));
            }
            if data.lock_from_sync.len() != data.n_locks as usize {
                return Err(err(n, "lock_from_sync length mismatch"));
            }
            if let Some(outer_index) = data.outer_index() {
                let outer = graph.node(n).inputs()[outer_index];
                if !matches!(graph.kind(outer), NodeKind::FrameState(_)) {
                    return Err(err(n, "outer input is not a frame state"));
                }
            }
        }
    }

    // Phi arity.
    let cfg = Cfg::build(graph);
    for n in graph.live_nodes() {
        if let NodeKind::Phi { merge } = graph.kind(n) {
            let expected = graph.merge_ends(*merge).len();
            if graph.node(n).inputs().len() != expected {
                return Err(err(
                    n,
                    format!(
                        "phi arity {} does not match merge predecessors {expected}",
                        graph.node(n).inputs().len()
                    ),
                ));
            }
        }
    }

    // SSA dominance via the schedule (skips metadata).
    let dom = DomTree::build(&cfg);
    let sched = Schedule::build(graph, &cfg, &dom);
    let block_of = |n: NodeId| -> Option<crate::cfg::BlockId> {
        cfg.try_block_of(n)
            .or_else(|| sched.placement.get(&n).copied())
    };
    for n in graph.live_nodes() {
        let kind = graph.kind(n);
        if kind.is_meta() {
            continue;
        }
        let Some(user_block) = block_of(n) else {
            continue; // unreachable
        };
        if let NodeKind::Phi { merge } = kind {
            let pred_blocks = cfg.block(cfg.block_of(*merge)).preds.clone();
            for (i, &input) in graph.node(n).inputs().iter().enumerate() {
                if graph.kind(input).is_meta() {
                    return Err(err(n, "phi input is metadata"));
                }
                let Some(def_block) = block_of(input) else {
                    continue;
                };
                if !dom.dominates(def_block, pred_blocks[i]) {
                    return Err(err(
                        n,
                        format!("phi input {input} does not dominate predecessor {i}"),
                    ));
                }
            }
            continue;
        }
        for &input in graph.node(n).inputs() {
            if graph.kind(input).is_meta() {
                if !matches!(kind, NodeKind::FrameState(_)) {
                    return Err(err(n, format!("non-metadata node uses metadata {input}")));
                }
                continue;
            }
            let Some(def_block) = block_of(input) else {
                continue;
            };
            // Self-referential commits: AllocatedObject(commit) inputs.
            if let NodeKind::Commit { .. } = kind {
                if matches!(graph.kind(input), NodeKind::AllocatedObject { .. })
                    && graph.node(input).inputs()[0] == n
                {
                    continue;
                }
            }
            if !dom.dominates(def_block, user_block) {
                return Err(err(
                    n,
                    format!(
                        "input {input} (in {def_block}) does not dominate use (in {user_block})"
                    ),
                ));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ArithOp;

    fn valid_diamond() -> Graph {
        let mut g = Graph::new();
        let p = g.add(NodeKind::Param { index: 0 }, vec![]);
        let iff = g.add(NodeKind::If, vec![p]);
        g.set_next(g.start, iff);
        let t = g.add(NodeKind::Begin, vec![]);
        let f = g.add(NodeKind::Begin, vec![]);
        g.set_if_targets(iff, t, f);
        let te = g.add(NodeKind::End, vec![]);
        g.set_next(t, te);
        let fe = g.add(NodeKind::End, vec![]);
        g.set_next(f, fe);
        let merge = g.add(NodeKind::Merge { ends: vec![te, fe] }, vec![]);
        let c1 = g.const_int(1);
        let c2 = g.const_int(2);
        let phi = g.add(NodeKind::Phi { merge }, vec![c1, c2]);
        let ret = g.add(NodeKind::Return, vec![phi]);
        g.set_next(merge, ret);
        g
    }

    #[test]
    fn accepts_valid_diamond() {
        verify(&valid_diamond()).unwrap();
    }

    #[test]
    fn rejects_phi_arity_mismatch() {
        let mut g = valid_diamond();
        let phi = g
            .live_nodes()
            .find(|&n| matches!(g.kind(n), NodeKind::Phi { .. }))
            .unwrap();
        let c = g.const_int(3);
        g.push_input(phi, c);
        let e = verify(&g).unwrap_err();
        assert!(e.reason.contains("arity"), "{e}");
    }

    #[test]
    fn rejects_side_effect_without_state() {
        let mut g = Graph::new();
        let p = g.add(NodeKind::Param { index: 0 }, vec![]);
        let c = g.const_int(1);
        let store = g.add(
            NodeKind::StoreField {
                field: pea_bytecode::FieldId(0),
            },
            vec![p, c],
        );
        g.set_next(g.start, store);
        let ret = g.add(NodeKind::Return, vec![]);
        g.set_next(store, ret);
        let e = verify(&g).unwrap_err();
        assert!(e.reason.contains("frame state"), "{e}");
    }

    #[test]
    fn rejects_dominance_violation() {
        // A value defined in the true branch used after the merge without
        // a phi.
        let mut g = Graph::new();
        let p = g.add(NodeKind::Param { index: 0 }, vec![]);
        let iff = g.add(NodeKind::If, vec![p]);
        g.set_next(g.start, iff);
        let t = g.add(NodeKind::Begin, vec![]);
        let f = g.add(NodeKind::Begin, vec![]);
        g.set_if_targets(iff, t, f);
        // Fixed node in true branch producing a value.
        let load = g.add(
            NodeKind::LoadField {
                field: pea_bytecode::FieldId(0),
            },
            vec![p],
        );
        g.set_next(t, load);
        let te = g.add(NodeKind::End, vec![]);
        g.set_next(load, te);
        let fe = g.add(NodeKind::End, vec![]);
        g.set_next(f, fe);
        let merge = g.add(NodeKind::Merge { ends: vec![te, fe] }, vec![]);
        let ret = g.add(NodeKind::Return, vec![load]); // illegal use
        g.set_next(merge, ret);
        let e = verify(&g).unwrap_err();
        assert!(e.reason.contains("dominate"), "{e}");
    }

    #[test]
    fn rejects_end_claimed_twice() {
        let mut g = Graph::new();
        let p = g.add(NodeKind::Param { index: 0 }, vec![]);
        let iff = g.add(NodeKind::If, vec![p]);
        g.set_next(g.start, iff);
        let t = g.add(NodeKind::Begin, vec![]);
        let f = g.add(NodeKind::Begin, vec![]);
        g.set_if_targets(iff, t, f);
        let te = g.add(NodeKind::End, vec![]);
        g.set_next(t, te);
        let fe = g.add(NodeKind::End, vec![]);
        g.set_next(f, fe);
        let m1 = g.add(NodeKind::Merge { ends: vec![te, fe] }, vec![]);
        let r1 = g.add(NodeKind::Return, vec![]);
        g.set_next(m1, r1);
        // Claim te again.
        let _m2 = g.add(NodeKind::Merge { ends: vec![te] }, vec![]);
        let e = verify(&g).unwrap_err();
        assert!(e.reason.contains("two merges"), "{e}");
    }

    #[test]
    fn rejects_deleted_input() {
        let mut g = Graph::new();
        let a = g.const_int(1);
        let b = g.const_int(2);
        let op = g.add(NodeKind::Arith { op: ArithOp::Add }, vec![a, b]);
        let ret = g.add(NodeKind::Return, vec![op]);
        g.set_next(g.start, ret);
        g.kill_unchecked(a);
        let e = verify(&g).unwrap_err();
        assert!(e.reason.contains("deleted input"), "{e}");
    }
}
