//! The node arena with def-use tracking and control-flow wiring helpers.

use crate::{FrameStateData, Node, NodeId, NodeKind};
use pea_bytecode::MethodId;
use std::collections::HashMap;

/// An SSA graph for one compiled method (possibly with inlined callees).
///
/// Nodes live in an arena and are never moved; deletion tombstones them.
/// Data inputs are tracked with use lists so optimizations can rewrite
/// usages in O(uses).
#[derive(Clone, Debug)]
pub struct Graph {
    nodes: Vec<Node>,
    uses: Vec<Vec<NodeId>>,
    /// The [`NodeKind::Start`] node.
    pub start: NodeId,
    const_cache: HashMap<i64, NodeId>,
    null_cache: Option<NodeId>,
    /// Bytecode origin `(method, bci)` of allocation nodes
    /// (`New`/`NewArray`), recorded by the graph builder. Entries survive
    /// node deletion on purpose: trace events keep referring to
    /// virtualized allocations by their original node id.
    provenance: HashMap<NodeId, (MethodId, u32)>,
}

impl Default for Graph {
    fn default() -> Self {
        Self::new()
    }
}

impl Graph {
    /// Creates a graph containing only its start node.
    pub fn new() -> Self {
        let mut g = Graph {
            nodes: Vec::new(),
            uses: Vec::new(),
            start: NodeId(0),
            const_cache: HashMap::new(),
            null_cache: None,
            provenance: HashMap::new(),
        };
        let start = g.add(NodeKind::Start, vec![]);
        g.start = start;
        g
    }

    /// Adds a node with the given data inputs.
    pub fn add(&mut self, kind: NodeKind, inputs: Vec<NodeId>) -> NodeId {
        let id = NodeId::from_index(self.nodes.len());
        for &input in &inputs {
            self.uses[input.index()].push(id);
        }
        self.nodes.push(Node {
            kind,
            inputs,
            successors: Vec::new(),
            control_pred: None,
            state_after: None,
            deleted: false,
        });
        self.uses.push(Vec::new());
        id
    }

    /// Interned integer constant.
    pub fn const_int(&mut self, value: i64) -> NodeId {
        if let Some(&id) = self.const_cache.get(&value) {
            if !self.node(id).deleted {
                return id;
            }
        }
        let id = self.add(NodeKind::ConstInt { value }, vec![]);
        self.const_cache.insert(value, id);
        id
    }

    /// Interned null constant.
    pub fn const_null(&mut self) -> NodeId {
        if let Some(id) = self.null_cache {
            if !self.node(id).deleted {
                return id;
            }
        }
        let id = self.add(NodeKind::ConstNull, vec![]);
        self.null_cache = Some(id);
        id
    }

    /// Immutable node access.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    #[inline]
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.index()]
    }

    /// The node's kind.
    #[inline]
    pub fn kind(&self, id: NodeId) -> &NodeKind {
        &self.nodes[id.index()].kind
    }

    /// Mutable access to a node's kind (used by merge construction to push
    /// ends, and by canonicalization).
    pub fn kind_mut(&mut self, id: NodeId) -> &mut NodeKind {
        &mut self.nodes[id.index()].kind
    }

    /// Number of arena slots (including tombstones).
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the arena is empty (never true: the start node exists).
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Number of live (non-deleted) nodes.
    pub fn live_count(&self) -> usize {
        self.nodes.iter().filter(|n| !n.deleted).count()
    }

    /// Iterates over live node ids.
    pub fn live_nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| !n.deleted)
            .map(|(i, _)| NodeId::from_index(i))
    }

    /// Current users of `id` (nodes listing it among their inputs),
    /// deduplicated and with deleted users filtered out.
    pub fn uses(&self, id: NodeId) -> Vec<NodeId> {
        let mut out: Vec<NodeId> = self.uses[id.index()]
            .iter()
            .copied()
            .filter(|u| !self.node(*u).deleted)
            .collect();
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Whether `id` has any live user.
    pub fn has_uses(&self, id: NodeId) -> bool {
        self.uses[id.index()].iter().any(|u| !self.node(*u).deleted)
    }

    // ----- input editing -----

    /// Rewrites input `index` of `user` to `new_input`, updating use lists.
    pub fn set_input(&mut self, user: NodeId, index: usize, new_input: NodeId) {
        let old = self.nodes[user.index()].inputs[index];
        if old == new_input {
            return;
        }
        remove_one(&mut self.uses[old.index()], user);
        self.uses[new_input.index()].push(user);
        self.nodes[user.index()].inputs[index] = new_input;
    }

    /// Appends an input to `user` (phi growth at loop back edges).
    pub fn push_input(&mut self, user: NodeId, input: NodeId) {
        self.uses[input.index()].push(user);
        self.nodes[user.index()].inputs.push(input);
    }

    /// Replaces every occurrence of `old` in every live user's inputs with
    /// `new`. Returns the number of rewritten slots.
    pub fn replace_at_usages(&mut self, old: NodeId, new: NodeId) -> usize {
        assert_ne!(old, new, "self-replacement");
        let users = std::mem::take(&mut self.uses[old.index()]);
        let mut count = 0;
        for user in users {
            if self.node(user).deleted {
                continue;
            }
            let inputs = &mut self.nodes[user.index()].inputs;
            for slot in inputs.iter_mut() {
                if *slot == old {
                    *slot = new;
                    count += 1;
                    self.uses[new.index()].push(user);
                }
            }
        }
        count
    }

    /// Removes all input edges of `id` (releasing its uses of others).
    fn clear_inputs(&mut self, id: NodeId) {
        let inputs = std::mem::take(&mut self.nodes[id.index()].inputs);
        for input in inputs {
            remove_one(&mut self.uses[input.index()], id);
        }
    }

    /// Tombstones a node. The node must have no remaining live users.
    ///
    /// # Panics
    ///
    /// Panics if live users remain (that would leave dangling edges).
    pub fn kill(&mut self, id: NodeId) {
        assert!(
            !self.has_uses(id),
            "killing {id} which still has users: {:?}",
            self.uses(id)
        );
        self.clear_inputs(id);
        let node = &mut self.nodes[id.index()];
        node.deleted = true;
        node.successors.clear();
        node.state_after = None;
        node.control_pred = None;
    }

    /// Tombstones a node even if used (only for bulk dead-code sweeps where
    /// all members of a dead cycle go together).
    pub(crate) fn kill_unchecked(&mut self, id: NodeId) {
        self.clear_inputs(id);
        let node = &mut self.nodes[id.index()];
        node.deleted = true;
        node.successors.clear();
        node.state_after = None;
        node.control_pred = None;
    }

    // ----- control-flow wiring -----

    /// Wires `from.next = to` for straight-line fixed nodes, maintaining
    /// `to.control_pred`.
    ///
    /// # Panics
    ///
    /// Panics if `from` already has a successor or is a block end.
    pub fn set_next(&mut self, from: NodeId, to: NodeId) {
        let f = &mut self.nodes[from.index()];
        assert!(f.successors.is_empty(), "{from} already has a successor");
        f.successors.push(to);
        self.nodes[to.index()].control_pred = Some(from);
    }

    /// Rewires the single successor edge of `from` to `to`.
    pub fn replace_next(&mut self, from: NodeId, to: NodeId) {
        assert_eq!(self.nodes[from.index()].successors.len(), 1);
        self.nodes[from.index()].successors[0] = to;
        self.nodes[to.index()].control_pred = Some(from);
    }

    /// Wires an [`NodeKind::If`]'s two successors.
    pub fn set_if_targets(&mut self, iff: NodeId, true_target: NodeId, false_target: NodeId) {
        let n = &mut self.nodes[iff.index()];
        assert!(matches!(n.kind, NodeKind::If));
        assert!(n.successors.is_empty());
        n.successors.push(true_target);
        n.successors.push(false_target);
        self.nodes[true_target.index()].control_pred = Some(iff);
        self.nodes[false_target.index()].control_pred = Some(iff);
    }

    /// Single `next` successor of a straight-line fixed node.
    pub fn next(&self, id: NodeId) -> Option<NodeId> {
        let n = self.node(id);
        if n.successors.len() == 1 {
            Some(n.successors[0])
        } else {
            None
        }
    }

    /// Unlinks a straight-line fixed node from its chain, connecting its
    /// predecessor directly to its successor. The node itself is left
    /// alive (kill it separately once its value uses are gone).
    ///
    /// # Panics
    ///
    /// Panics if the node is not a straight-line fixed node with both a
    /// predecessor and a successor.
    pub fn unlink_fixed(&mut self, id: NodeId) {
        let pred = self.node(id).control_pred.expect("unlink without pred");
        let succ = self.next(id).expect("unlink without successor");
        let pred_node = &mut self.nodes[pred.index()];
        let slot = pred_node
            .successors
            .iter()
            .position(|&s| s == id)
            .expect("pred does not list node as successor");
        pred_node.successors[slot] = succ;
        self.nodes[succ.index()].control_pred = Some(pred);
        let node = &mut self.nodes[id.index()];
        node.successors.clear();
        node.control_pred = None;
    }

    /// Inserts a straight-line fixed node `new` immediately before `at`
    /// (which must have a unique control predecessor).
    pub fn insert_fixed_before(&mut self, at: NodeId, new: NodeId) {
        let pred = self
            .node(at)
            .control_pred
            .expect("insert before pred-less node");
        let pred_node = &mut self.nodes[pred.index()];
        let slot = pred_node
            .successors
            .iter()
            .position(|&s| s == at)
            .expect("pred does not list node as successor");
        pred_node.successors[slot] = new;
        let new_node = &mut self.nodes[new.index()];
        assert!(new_node.successors.is_empty());
        new_node.successors.push(at);
        new_node.control_pred = Some(pred);
        self.nodes[at.index()].control_pred = Some(new);
    }

    /// Records the bytecode origin of an allocation node. With inlining,
    /// `method` is the (possibly inlined) method whose code contains the
    /// `new`/`newarray` at `bci`.
    pub fn set_provenance(&mut self, node: NodeId, method: MethodId, bci: u32) {
        self.provenance.insert(node, (method, bci));
    }

    /// The recorded bytecode origin of an allocation node, if any. Still
    /// answers for deleted (virtualized) allocations — see the field docs.
    pub fn provenance(&self, node: NodeId) -> Option<(MethodId, u32)> {
        self.provenance.get(&node).copied()
    }

    /// All recorded allocation origins.
    pub fn provenance_entries(&self) -> impl Iterator<Item = (NodeId, MethodId, u32)> + '_ {
        self.provenance.iter().map(|(&n, &(m, b))| (n, m, b))
    }

    /// Attaches a frame state to a node.
    pub fn set_state_after(&mut self, node: NodeId, state: Option<NodeId>) {
        self.nodes[node.index()].state_after = state;
    }

    /// Registers `end` as a predecessor of `merge` (a
    /// [`NodeKind::Merge`] or [`NodeKind::LoopBegin`]); returns the new
    /// predecessor index.
    ///
    /// # Panics
    ///
    /// Panics if `merge` is not a merge-like node.
    pub fn add_merge_end(&mut self, merge: NodeId, end: NodeId) -> usize {
        match &mut self.nodes[merge.index()].kind {
            NodeKind::Merge { ends } | NodeKind::LoopBegin { ends } => {
                ends.push(end);
                ends.len() - 1
            }
            other => panic!("add_merge_end on {other:?}"),
        }
    }

    /// The predecessor ends of a merge-like node.
    ///
    /// # Panics
    ///
    /// Panics if `merge` is not a merge-like node.
    pub fn merge_ends(&self, merge: NodeId) -> &[NodeId] {
        match &self.node(merge).kind {
            NodeKind::Merge { ends } | NodeKind::LoopBegin { ends } => ends,
            other => panic!("merge_ends on {other:?}"),
        }
    }

    /// All live phis attached to a merge-like node.
    pub fn phis_of(&self, merge: NodeId) -> Vec<NodeId> {
        self.nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| {
                !n.deleted && matches!(&n.kind, NodeKind::Phi { merge: m } if *m == merge)
            })
            .map(|(i, _)| NodeId::from_index(i))
            .collect()
    }

    /// Creates a frame-state node.
    pub fn add_frame_state(&mut self, data: FrameStateData, inputs: Vec<NodeId>) -> NodeId {
        assert_eq!(data.input_count(), inputs.len(), "frame state layout");
        self.add(NodeKind::FrameState(data), inputs)
    }

    /// Frame-state layout descriptor of a frame-state node.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not a frame state.
    pub fn frame_state_data(&self, id: NodeId) -> &FrameStateData {
        match &self.node(id).kind {
            NodeKind::FrameState(d) => d,
            other => panic!("not a frame state: {other:?}"),
        }
    }

    /// Sweeps nodes unreachable from the control-flow graph: marks all
    /// fixed nodes reachable from start plus everything reachable through
    /// their inputs, merge ends, and frame states; tombstones the rest.
    /// Returns the number of collected nodes.
    pub fn prune_dead(&mut self) -> usize {
        // End/LoopEnd → owning merge (the edge is implicit: merges list
        // their ends, not vice versa).
        let mut merge_of_end: HashMap<NodeId, NodeId> = HashMap::new();
        for n in self.live_nodes() {
            if let NodeKind::Merge { ends } | NodeKind::LoopBegin { ends } = self.kind(n) {
                for &e in ends {
                    merge_of_end.insert(e, n);
                }
            }
        }
        let mut marked = vec![false; self.nodes.len()];
        let mut work = vec![self.start];
        while let Some(id) = work.pop() {
            if marked[id.index()] || self.node(id).deleted {
                continue;
            }
            marked[id.index()] = true;
            let node = self.node(id);
            work.extend(node.inputs.iter().copied());
            work.extend(node.successors.iter().copied());
            if let Some(state) = node.state_after {
                work.push(state);
            }
            match &node.kind {
                NodeKind::Merge { ends } | NodeKind::LoopBegin { ends } => {
                    work.extend(ends.iter().copied());
                }
                NodeKind::Phi { merge } => work.push(*merge),
                NodeKind::LoopExit { loop_begin } => work.push(*loop_begin),
                NodeKind::End | NodeKind::LoopEnd => {
                    if let Some(&m) = merge_of_end.get(&id) {
                        work.push(m);
                    }
                }
                _ => {}
            }
            // Phis of a live merge are only live if used; they are reached
            // via uses when something needs them, so nothing extra here.
        }
        let mut collected = 0;
        for (i, mark) in marked.iter().enumerate() {
            if !mark && !self.nodes[i].deleted {
                self.kill_unchecked(NodeId::from_index(i));
                collected += 1;
            }
        }
        // Drop cache entries pointing at dead nodes.
        self.const_cache
            .retain(|_, id| !self.nodes[id.index()].deleted);
        if let Some(id) = self.null_cache {
            if self.nodes[id.index()].deleted {
                self.null_cache = None;
            }
        }
        collected
    }
}

fn remove_one(uses: &mut Vec<NodeId>, user: NodeId) {
    if let Some(pos) = uses.iter().position(|&u| u == user) {
        uses.swap_remove(pos);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ArithOp;

    #[test]
    fn add_tracks_uses() {
        let mut g = Graph::new();
        let a = g.const_int(1);
        let b = g.const_int(2);
        let sum = g.add(NodeKind::Arith { op: ArithOp::Add }, vec![a, b]);
        assert_eq!(g.uses(a), vec![sum]);
        assert_eq!(g.uses(b), vec![sum]);
        assert!(g.uses(sum).is_empty());
    }

    #[test]
    fn consts_are_interned() {
        let mut g = Graph::new();
        assert_eq!(g.const_int(5), g.const_int(5));
        assert_ne!(g.const_int(5), g.const_int(6));
        assert_eq!(g.const_null(), g.const_null());
    }

    #[test]
    fn replace_at_usages_rewrites_all_slots() {
        let mut g = Graph::new();
        let a = g.const_int(1);
        let b = g.const_int(2);
        let twice = g.add(NodeKind::Arith { op: ArithOp::Add }, vec![a, a]);
        let n = g.replace_at_usages(a, b);
        assert_eq!(n, 2);
        assert_eq!(g.node(twice).inputs(), &[b, b]);
        assert!(!g.has_uses(a));
        assert_eq!(g.uses(b).len(), 1);
    }

    #[test]
    fn set_input_updates_use_lists() {
        let mut g = Graph::new();
        let a = g.const_int(1);
        let b = g.const_int(2);
        let op = g.add(NodeKind::Arith { op: ArithOp::Neg }, vec![a]);
        g.set_input(op, 0, b);
        assert!(!g.has_uses(a));
        assert_eq!(g.uses(b), vec![op]);
    }

    #[test]
    #[should_panic(expected = "killing")]
    fn kill_with_users_panics() {
        let mut g = Graph::new();
        let a = g.const_int(1);
        let _op = g.add(NodeKind::Arith { op: ArithOp::Neg }, vec![a]);
        g.kill(a);
    }

    #[test]
    fn kill_releases_inputs() {
        let mut g = Graph::new();
        let a = g.const_int(1);
        let op = g.add(NodeKind::Arith { op: ArithOp::Neg }, vec![a]);
        g.kill(op);
        assert!(!g.has_uses(a));
        assert!(g.node(op).is_deleted());
        assert_eq!(g.live_count(), 2); // start + a
    }

    #[test]
    fn fixed_chain_wiring_and_unlink() {
        let mut g = Graph::new();
        let n1 = g.add(NodeKind::Begin, vec![]);
        let n2 = g.add(NodeKind::Begin, vec![]);
        let n3 = g.add(NodeKind::Return, vec![]);
        g.set_next(g.start, n1);
        g.set_next(n1, n2);
        g.set_next(n2, n3);
        assert_eq!(g.next(g.start), Some(n1));
        assert_eq!(g.node(n3).control_pred(), Some(n2));
        g.unlink_fixed(n2);
        assert_eq!(g.next(n1), Some(n3));
        assert_eq!(g.node(n3).control_pred(), Some(n1));
        g.kill(n2);
    }

    #[test]
    fn insert_before_rewires() {
        let mut g = Graph::new();
        let ret = g.add(NodeKind::Return, vec![]);
        g.set_next(g.start, ret);
        let mid = g.add(NodeKind::Begin, vec![]);
        g.insert_fixed_before(ret, mid);
        assert_eq!(g.next(g.start), Some(mid));
        assert_eq!(g.next(mid), Some(ret));
        assert_eq!(g.node(ret).control_pred(), Some(mid));
    }

    #[test]
    fn merge_ends_and_phis() {
        let mut g = Graph::new();
        let e1 = g.add(NodeKind::End, vec![]);
        let e2 = g.add(NodeKind::End, vec![]);
        let merge = g.add(NodeKind::Merge { ends: vec![] }, vec![]);
        assert_eq!(g.add_merge_end(merge, e1), 0);
        assert_eq!(g.add_merge_end(merge, e2), 1);
        assert_eq!(g.merge_ends(merge), &[e1, e2]);
        let a = g.const_int(1);
        let b = g.const_int(2);
        let phi = g.add(NodeKind::Phi { merge }, vec![a, b, merge]);
        // Convention: phi lists merge as an input? No — keep it out.
        // Rebuild without the merge input:
        g.kill(phi);
        let phi = g.add(NodeKind::Phi { merge }, vec![a, b]);
        let _ = phi;
    }

    #[test]
    fn prune_dead_collects_unreachable() {
        let mut g = Graph::new();
        let ret = g.add(NodeKind::Return, vec![]);
        g.set_next(g.start, ret);
        let orphan_a = g.const_int(10);
        let _orphan_op = g.add(NodeKind::Arith { op: ArithOp::Neg }, vec![orphan_a]);
        let collected = g.prune_dead();
        assert_eq!(collected, 2);
        assert_eq!(g.live_count(), 2);
        // Interned const is resurrectable after pruning.
        let again = g.const_int(10);
        assert!(!g.node(again).is_deleted());
    }

    #[test]
    fn frame_state_layout_enforced() {
        let mut g = Graph::new();
        let p = g.add(NodeKind::Param { index: 0 }, vec![]);
        let data = FrameStateData::new(pea_bytecode::MethodId(0), 0, 1, 0, 0, false);
        let fs = g.add_frame_state(data, vec![p]);
        assert_eq!(g.frame_state_data(fs).n_locals, 1);
    }
}
