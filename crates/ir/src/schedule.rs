//! Scheduling of floating value nodes into basic blocks.
//!
//! The paper (§7) notes Graal's PEA relies on the scheduler to order
//! nodes. Our IR pins object-sensitive nodes, so the analysis itself is
//! schedule-free — but the compiled-code *evaluator* still needs every
//! floating value node placed and ordered. We schedule **early**: each
//! floating node goes to the deepest block among its inputs' blocks
//! (input-free nodes go to the entry block). Early placement is safe
//! because floating nodes are pure and non-trapping (trapping division is
//! a fixed node), and it doubles as loop-invariant code motion.
//!
//! One requirement inherited from the JVM: bytecode must be
//! *type-consistent* — integer arithmetic never consumes references. The
//! JVM verifier enforces this statically; our bytecode verifier only
//! checks stack discipline, so a type-inconsistent program could make a
//! speculatively hoisted arithmetic node observe a reference and raise
//! earlier than the interpreter would. All bundled programs (assembler
//! sources, generators, fuzzers) are type-consistent.

use crate::cfg::{BlockId, Cfg};
use crate::dom::DomTree;
use crate::{Graph, NodeId, NodeKind};
use std::collections::HashMap;

/// A complete per-block execution order.
#[derive(Clone, Debug)]
pub struct Schedule {
    /// For each block (by index): fixed and floating nodes in an order
    /// that respects data dependencies and the fixed chain.
    pub per_block: Vec<Vec<NodeId>>,
    /// Block assignment for every scheduled floating node.
    pub placement: HashMap<NodeId, BlockId>,
}

impl Schedule {
    /// Builds the schedule.
    ///
    /// # Panics
    ///
    /// Panics on SSA violations (an input that does not dominate its use),
    /// which [`crate::verify::verify`] reports more gracefully.
    pub fn build(graph: &Graph, cfg: &Cfg, dom: &DomTree) -> Schedule {
        let mut placement: HashMap<NodeId, BlockId> = HashMap::new();

        // Pinned placements first.
        for n in graph.live_nodes() {
            match graph.kind(n) {
                NodeKind::Phi { merge } => {
                    if let Some(b) = cfg.try_block_of(*merge) {
                        placement.insert(n, b);
                    }
                }
                NodeKind::AllocatedObject { .. } => {
                    let commit = graph.node(n).inputs()[0];
                    if let Some(b) = cfg.try_block_of(commit) {
                        placement.insert(n, b);
                    }
                }
                _ => {}
            }
        }

        // Early placement for the remaining floating value nodes.
        let floaters: Vec<NodeId> = graph
            .live_nodes()
            .filter(|&n| {
                graph.kind(n).is_floating()
                    && !matches!(
                        graph.kind(n),
                        NodeKind::Phi { .. } | NodeKind::AllocatedObject { .. }
                    )
            })
            .collect();
        for &n in &floaters {
            place_early(graph, cfg, dom, n, &mut placement);
        }

        // Per-block topological ordering (fixed chain + floating nodes).
        let mut per_block: Vec<Vec<NodeId>> = vec![Vec::new(); cfg.blocks.len()];
        let mut block_floaters: Vec<Vec<NodeId>> = vec![Vec::new(); cfg.blocks.len()];
        for (&n, &b) in &placement {
            if !matches!(graph.kind(n), NodeKind::Phi { .. }) {
                block_floaters[b.index()].push(n);
            }
        }
        for v in &mut block_floaters {
            v.sort_unstable();
        }

        for block in &cfg.blocks {
            let order = order_block(graph, &block.nodes, &block_floaters[block.id.index()]);
            per_block[block.id.index()] = order;
        }

        Schedule {
            per_block,
            placement,
        }
    }

    /// Total number of scheduled nodes — the "machine code size" used by
    /// the cost model's instruction-cache term.
    pub fn code_size(&self) -> u64 {
        self.per_block.iter().map(|b| b.len() as u64).sum()
    }
}

fn place_early(
    graph: &Graph,
    cfg: &Cfg,
    dom: &DomTree,
    node: NodeId,
    placement: &mut HashMap<NodeId, BlockId>,
) -> BlockId {
    if let Some(&b) = placement.get(&node) {
        return b;
    }
    if let Some(b) = cfg.try_block_of(node) {
        // Fixed node: defined by its chain position.
        return b;
    }
    let mut best = cfg.entry();
    // Temporarily claim entry to break impossible cycles defensively
    // (valid SSA has no cycles among non-phi floating nodes).
    placement.insert(node, best);
    for &input in graph.node(node).inputs() {
        let b = place_early(graph, cfg, dom, input, placement);
        if dom.depth(b) > dom.depth(best) {
            debug_assert!(
                dom.dominates(best, b),
                "inputs of {node} not on a dominance chain"
            );
            best = b;
        } else {
            debug_assert!(
                dom.dominates(b, best),
                "inputs of {node} not on a dominance chain"
            );
        }
    }
    placement.insert(node, best);
    best
}

/// Kahn's algorithm over one block: fixed nodes keep chain order; floating
/// nodes are emitted as soon as their same-block inputs are available.
fn order_block(graph: &Graph, fixed: &[NodeId], floaters: &[NodeId]) -> Vec<NodeId> {
    let in_block: std::collections::HashSet<NodeId> =
        fixed.iter().chain(floaters.iter()).copied().collect();
    // Remaining same-block dependency count per floating node.
    let mut pending: HashMap<NodeId, usize> = HashMap::new();
    // Reverse edges: node -> floating dependents in this block.
    let mut dependents: HashMap<NodeId, Vec<NodeId>> = HashMap::new();
    for &f in floaters {
        let mut count = 0;
        for &input in graph.node(f).inputs() {
            let self_commit_cycle = false;
            if in_block.contains(&input)
                && !matches!(graph.kind(input), NodeKind::Phi { .. })
                && !self_commit_cycle
            {
                count += 1;
                dependents.entry(input).or_default().push(f);
            }
        }
        pending.insert(f, count);
    }

    let mut out = Vec::with_capacity(fixed.len() + floaters.len());
    let mut ready: Vec<NodeId> = floaters
        .iter()
        .copied()
        .filter(|f| pending[f] == 0)
        .collect();
    ready.sort_unstable();

    let emit = |n: NodeId,
                out: &mut Vec<NodeId>,
                ready: &mut Vec<NodeId>,
                pending: &mut HashMap<NodeId, usize>| {
        out.push(n);
        if let Some(deps) = dependents.get(&n) {
            for &d in deps {
                let c = pending.get_mut(&d).expect("dependent not pending");
                *c -= 1;
                if *c == 0 {
                    ready.push(d);
                    ready.sort_unstable();
                }
            }
        }
    };

    for &fx in fixed {
        // A Commit's inputs may include AllocatedObjects of itself; those
        // are dependents of the commit, never prerequisites, because
        // AllocatedObject's input is the commit (acyclic in that
        // direction). Floating nodes ready before this fixed node go
        // first.
        let mut i = 0;
        while i < ready.len() {
            let f = ready[i];
            // Only emit floaters whose dependencies are met; all in
            // `ready` qualify.
            ready.remove(i);
            emit(f, &mut out, &mut ready, &mut pending);
            i = 0; // new nodes may have become ready at the front
        }
        emit(fx, &mut out, &mut ready, &mut pending);
    }
    // Trailing floaters (depend on the block terminator's value — rare,
    // e.g. nothing in practice, but drain for completeness).
    while let Some(f) = ready.pop() {
        emit(f, &mut out, &mut ready, &mut pending);
    }
    debug_assert_eq!(
        out.len(),
        fixed.len() + floaters.len(),
        "schedule lost nodes"
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ArithOp;

    #[test]
    fn consts_and_params_go_to_entry() {
        let mut g = Graph::new();
        let p = g.add(NodeKind::Param { index: 0 }, vec![]);
        let iff = g.add(NodeKind::If, vec![p]);
        g.set_next(g.start, iff);
        let t = g.add(NodeKind::Begin, vec![]);
        let f = g.add(NodeKind::Begin, vec![]);
        g.set_if_targets(iff, t, f);
        let r1 = g.add(NodeKind::Return, vec![p]);
        g.set_next(t, r1);
        let c = g.const_int(7);
        let sum = g.add(NodeKind::Arith { op: ArithOp::Add }, vec![p, c]);
        let r2 = g.add(NodeKind::Return, vec![sum]);
        g.set_next(f, r2);
        let cfg = Cfg::build(&g);
        let dom = DomTree::build(&cfg);
        let sched = Schedule::build(&g, &cfg, &dom);
        // p, c, sum all have entry-block inputs → scheduled in entry.
        assert_eq!(sched.placement[&p], cfg.entry());
        assert_eq!(sched.placement[&c], cfg.entry());
        assert_eq!(sched.placement[&sum], cfg.entry());
        // entry order: floating nodes before the If, inputs before uses.
        let entry_order = &sched.per_block[cfg.entry().index()];
        let pos = |n: NodeId| entry_order.iter().position(|&x| x == n).unwrap();
        assert!(pos(p) < pos(sum));
        assert!(pos(c) < pos(sum));
        assert!(pos(sum) < pos(iff));
    }

    #[test]
    fn load_dependent_float_ordered_after_load() {
        use pea_bytecode::FieldId;
        let mut g = Graph::new();
        let p = g.add(NodeKind::Param { index: 0 }, vec![]);
        let load = g.add(NodeKind::LoadField { field: FieldId(0) }, vec![p]);
        g.set_next(g.start, load);
        let c = g.const_int(1);
        let sum = g.add(NodeKind::Arith { op: ArithOp::Add }, vec![load, c]);
        let ret = g.add(NodeKind::Return, vec![sum]);
        g.set_next(load, ret);
        let cfg = Cfg::build(&g);
        let dom = DomTree::build(&cfg);
        let sched = Schedule::build(&g, &cfg, &dom);
        let order = &sched.per_block[0];
        let pos = |n: NodeId| order.iter().position(|&x| x == n).unwrap();
        assert!(pos(load) < pos(sum));
        assert!(pos(sum) < pos(ret));
        assert_eq!(sched.code_size(), order.len() as u64);
    }

    #[test]
    fn phi_users_schedule_into_merge_block() {
        let mut g = Graph::new();
        let p = g.add(NodeKind::Param { index: 0 }, vec![]);
        let iff = g.add(NodeKind::If, vec![p]);
        g.set_next(g.start, iff);
        let t = g.add(NodeKind::Begin, vec![]);
        let f = g.add(NodeKind::Begin, vec![]);
        g.set_if_targets(iff, t, f);
        let te = g.add(NodeKind::End, vec![]);
        g.set_next(t, te);
        let fe = g.add(NodeKind::End, vec![]);
        g.set_next(f, fe);
        let merge = g.add(NodeKind::Merge { ends: vec![te, fe] }, vec![]);
        let c1 = g.const_int(1);
        let c2 = g.const_int(2);
        let phi = g.add(NodeKind::Phi { merge }, vec![c1, c2]);
        let dbl = g.add(NodeKind::Arith { op: ArithOp::Add }, vec![phi, phi]);
        let ret = g.add(NodeKind::Return, vec![dbl]);
        g.set_next(merge, ret);
        let cfg = Cfg::build(&g);
        let dom = DomTree::build(&cfg);
        let sched = Schedule::build(&g, &cfg, &dom);
        let mb = cfg.block_of(merge);
        assert_eq!(sched.placement[&phi], mb);
        assert_eq!(sched.placement[&dbl], mb);
        // phis are not in the ordered list (handled at edges)
        assert!(!sched.per_block[mb.index()].contains(&phi));
        assert!(sched.per_block[mb.index()].contains(&dbl));
    }
}
