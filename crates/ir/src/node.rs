//! Node identity and node kinds.

use crate::framestate::FrameStateData;
use pea_bytecode::{ClassId, CmpOp, FieldId, MethodId, StaticId, ValueKind};
use std::fmt;

/// Index of a node in a [`crate::Graph`] arena.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u32);

impl NodeId {
    /// Raw arena index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Builds an id from a raw arena index.
    #[inline]
    pub fn from_index(index: usize) -> Self {
        NodeId(u32::try_from(index).expect("node index exceeds u32"))
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// Binary/unary integer arithmetic operators (pure; division and remainder
/// are the exception — they can trap and are therefore fixed in control
/// flow, see [`NodeKind::is_floating`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ArithOp {
    /// Wrapping addition.
    Add,
    /// Wrapping subtraction.
    Sub,
    /// Wrapping multiplication.
    Mul,
    /// Trapping division.
    Div,
    /// Trapping remainder.
    Rem,
    /// Bitwise and.
    And,
    /// Bitwise or.
    Or,
    /// Bitwise xor.
    Xor,
    /// Shift left (count masked to 6 bits).
    Shl,
    /// Arithmetic shift right (count masked to 6 bits).
    Shr,
    /// Unary negation (single input).
    Neg,
}

impl ArithOp {
    /// Whether the operator can raise a runtime error.
    pub fn can_trap(self) -> bool {
        matches!(self, ArithOp::Div | ArithOp::Rem)
    }

    /// Number of inputs.
    pub fn arity(self) -> usize {
        if self == ArithOp::Neg {
            1
        } else {
            2
        }
    }
}

impl fmt::Display for ArithOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ArithOp::Add => "+",
            ArithOp::Sub => "-",
            ArithOp::Mul => "*",
            ArithOp::Div => "/",
            ArithOp::Rem => "%",
            ArithOp::And => "&",
            ArithOp::Or => "|",
            ArithOp::Xor => "^",
            ArithOp::Shl => "<<",
            ArithOp::Shr => ">>",
            ArithOp::Neg => "neg",
        };
        f.write_str(s)
    }
}

/// Why a deoptimization was emitted (recorded for diagnostics and for the
/// VM's recompilation policy).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum DeoptReason {
    /// A branch the profile said was never taken was entered.
    UntakenBranch,
    /// A speculative receiver-type check failed (guarded inlining).
    TypeCheck,
    /// A speculated-unreachable code path was entered.
    Unreached,
    /// Null check speculation failed.
    NullCheck,
}

impl fmt::Display for DeoptReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DeoptReason::UntakenBranch => "untaken-branch",
            DeoptReason::TypeCheck => "type-check",
            DeoptReason::Unreached => "unreached",
            DeoptReason::NullCheck => "null-check",
        };
        f.write_str(s)
    }
}

/// The shape of a (virtualizable) allocation: a class instance or a
/// fixed-length array. "Fields" of an array are its elements.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum AllocShape {
    /// A class instance; its field count comes from the program metadata.
    Instance {
        /// Allocated class.
        class: ClassId,
    },
    /// An array with a compile-time-known length.
    Array {
        /// Element kind.
        kind: ValueKind,
        /// Number of elements.
        length: u32,
    },
}

impl fmt::Display for AllocShape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AllocShape::Instance { class } => write!(f, "{class}"),
            AllocShape::Array { kind, length } => write!(f, "{kind}[{length}]"),
        }
    }
}

/// One object within a [`NodeKind::Commit`] group materialization: its
/// shape and the monitor depth it must be re-locked to (paper §4: "the
/// object's state is augmented with a locked flag").
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct CommitObject {
    /// What to allocate.
    pub shape: AllocShape,
    /// How many times the materialized object's monitor is entered.
    pub lock_count: u32,
}

/// The operation a node performs.
///
/// Control nodes and effectful object operations are *fixed* (threaded in
/// control flow); pure value nodes *float* and are placed by the
/// scheduler.
#[derive(Clone, Debug, PartialEq)]
pub enum NodeKind {
    // ------- control -------
    /// Method entry; the unique root of the control-flow graph.
    Start,
    /// Single-predecessor block entry (branch target).
    Begin,
    /// Block entry on a loop-exit edge; `loop_begin` names the loop.
    LoopExit {
        /// The loop being exited.
        loop_begin: NodeId,
    },
    /// Two-way branch; input 0 is the condition (int 0/1), successors are
    /// `[true_target, false_target]`.
    If,
    /// Control-flow join; `ends` are the predecessor [`NodeKind::End`]
    /// nodes in phi-input order.
    Merge {
        /// Predecessor end nodes.
        ends: Vec<NodeId>,
    },
    /// Loop header. `ends[0]` is the forward entry end; `ends[1..]` are
    /// [`NodeKind::LoopEnd`] back edges. Phi inputs align with this order.
    LoopBegin {
        /// Entry end followed by back-edge ends.
        ends: Vec<NodeId>,
    },
    /// Jump into a [`NodeKind::Merge`].
    End,
    /// Back edge into a [`NodeKind::LoopBegin`].
    LoopEnd,
    /// Method return; input 0 is the value for value-returning methods.
    Return,
    /// Control sink: user exception. Input 0 is the error code.
    Throw,
    /// Control sink: an `athrow`n exception leaves the compiled frame
    /// without a matching local handler (an escaping throw is a hard
    /// materialization point, see `pea-core`). Input 0 is the exception
    /// object. Monitors held by the frame are released by explicit
    /// `MonitorExit` nodes emitted before the sink.
    Unwind,
    /// Unconditional transfer to the interpreter (with the attached frame
    /// state).
    Deopt {
        /// Why this path bails out.
        reason: DeoptReason,
    },

    // ------- fixed effectful / object operations -------
    /// Allocate an instance (all fields default-initialized).
    New {
        /// Allocated class.
        class: ClassId,
    },
    /// Allocate an array; input 0 is the length.
    NewArray {
        /// Element kind.
        kind: ValueKind,
    },
    /// Read an instance field; input 0 is the object.
    LoadField {
        /// Accessed field.
        field: FieldId,
    },
    /// Write an instance field; inputs are `[object, value]`.
    StoreField {
        /// Accessed field.
        field: FieldId,
    },
    /// Read an array element; inputs are `[array, index]`.
    LoadIndexed,
    /// Write an array element; inputs are `[array, index, value]`.
    StoreIndexed,
    /// Array length; input 0 is the array.
    ArrayLen,
    /// Acquire a monitor; input 0 is the object.
    MonitorEnter,
    /// Release a monitor; input 0 is the object.
    MonitorExit,
    /// Call; inputs are the arguments (receiver first for virtual calls).
    Invoke {
        /// Statically named target (dispatch re-resolves for virtual
        /// calls).
        target: MethodId,
        /// Whether dispatch is on the receiver's dynamic type.
        virtual_call: bool,
    },
    /// Reference identity test producing int 0/1; inputs `[a, b]`.
    RefEq,
    /// Null test producing int 0/1; input 0 is the reference.
    IsNull,
    /// Type test producing int 0/1.
    InstanceOf {
        /// Tested class.
        class: ClassId,
        /// If true, tests for exactly this class (used by guarded
        /// devirtualization); otherwise subclasses pass too.
        exact: bool,
    },
    /// Checked cast; passes through input 0 or raises.
    CheckCast {
        /// Target class.
        class: ClassId,
    },
    /// Speculation guard: deoptimizes (with the attached state) when the
    /// condition (input 0) evaluates to `negated`.
    Guard {
        /// Why the speculation exists.
        reason: DeoptReason,
        /// Deopt when the condition is **this** value.
        negated: bool,
    },
    /// Read a static variable (fixed memory read; no side effect).
    GetStatic {
        /// Accessed static.
        id: StaticId,
    },
    /// Write a static variable; input 0 is the value. Side effect.
    PutStatic {
        /// Accessed static.
        id: StaticId,
    },
    /// Trapping integer division/remainder or any arithmetic pinned for
    /// trap semantics — see [`ArithOp::can_trap`].
    FixedArith {
        /// Operator.
        op: ArithOp,
    },
    /// Materialize a group of formerly virtual objects (the analogue of
    /// Graal's `CommitAllocationNode`, paper §4 "materialization").
    /// Inputs are the concatenated field values of each object in
    /// `objects` order; field values may be [`NodeKind::AllocatedObject`]
    /// references into this same commit (cyclic structures).
    Commit {
        /// The objects to allocate, in input-layout order.
        objects: Vec<CommitObject>,
    },

    // ------- floating value nodes -------
    /// Value of a formerly virtual object materialized by a commit; input
    /// 0 is the [`NodeKind::Commit`], `index` selects the object.
    AllocatedObject {
        /// Position within the commit's object list.
        index: usize,
    },
    /// Method parameter `index`.
    Param {
        /// Parameter position.
        index: u16,
    },
    /// Integer constant.
    ConstInt {
        /// The value.
        value: i64,
    },
    /// The null constant.
    ConstNull,
    /// Pure integer arithmetic (trapping operators use
    /// [`NodeKind::FixedArith`]).
    Arith {
        /// Operator.
        op: ArithOp,
    },
    /// Integer comparison producing 0/1; inputs `[a, b]`.
    Compare {
        /// Operator.
        op: CmpOp,
    },
    /// SSA phi; pinned to `merge`, inputs align with the merge's `ends`.
    Phi {
        /// Owning merge or loop begin.
        merge: NodeId,
    },

    // ------- metadata -------
    /// Bytecode-level VM state for deoptimization (paper §2, §5.5).
    /// Inputs are `locals ++ stack ++ lock objects ++ [outer?]` as
    /// described by the [`FrameStateData`].
    FrameState(FrameStateData),
    /// Snapshot of a virtual object inside a frame state: deoptimization
    /// rematerializes it (paper §5.5 / Figure 8). Inputs are the field (or
    /// element) values; they may reference other mappings, including
    /// cyclically.
    VirtualObjectMapping {
        /// What to rematerialize.
        shape: AllocShape,
        /// Monitor depth to restore.
        lock_count: u32,
    },
}

impl NodeKind {
    /// Whether nodes of this kind are fixed in control flow.
    pub fn is_fixed(&self) -> bool {
        !self.is_floating() && !self.is_meta()
    }

    /// Whether nodes of this kind float (are placed by the scheduler).
    pub fn is_floating(&self) -> bool {
        matches!(
            self,
            NodeKind::AllocatedObject { .. }
                | NodeKind::Param { .. }
                | NodeKind::ConstInt { .. }
                | NodeKind::ConstNull
                | NodeKind::Arith { .. }
                | NodeKind::Compare { .. }
                | NodeKind::Phi { .. }
        )
    }

    /// Whether nodes of this kind are metadata (never executed).
    pub fn is_meta(&self) -> bool {
        matches!(
            self,
            NodeKind::FrameState(_) | NodeKind::VirtualObjectMapping { .. }
        )
    }

    /// Whether this kind starts a basic block.
    pub fn is_block_start(&self) -> bool {
        matches!(
            self,
            NodeKind::Start
                | NodeKind::Begin
                | NodeKind::LoopExit { .. }
                | NodeKind::Merge { .. }
                | NodeKind::LoopBegin { .. }
        )
    }

    /// Whether this kind ends a basic block (no single `next` successor).
    pub fn is_block_end(&self) -> bool {
        matches!(
            self,
            NodeKind::If
                | NodeKind::End
                | NodeKind::LoopEnd
                | NodeKind::Return
                | NodeKind::Throw
                | NodeKind::Unwind
                | NodeKind::Deopt { .. }
        )
    }

    /// Whether this node is a side effect for frame-state purposes: it
    /// cannot be re-executed, so the builder captures a fresh
    /// [`NodeKind::FrameState`] after it (paper §2).
    pub fn is_side_effect(&self) -> bool {
        matches!(
            self,
            NodeKind::StoreField { .. }
                | NodeKind::StoreIndexed
                | NodeKind::PutStatic { .. }
                | NodeKind::MonitorEnter
                | NodeKind::MonitorExit
                | NodeKind::Invoke { .. }
        )
    }

    /// Short mnemonic for dumps.
    pub fn mnemonic(&self) -> String {
        match self {
            NodeKind::Start => "Start".into(),
            NodeKind::Begin => "Begin".into(),
            NodeKind::LoopExit { loop_begin } => format!("LoopExit({loop_begin})"),
            NodeKind::If => "If".into(),
            NodeKind::Merge { .. } => "Merge".into(),
            NodeKind::LoopBegin { .. } => "LoopBegin".into(),
            NodeKind::End => "End".into(),
            NodeKind::LoopEnd => "LoopEnd".into(),
            NodeKind::Return => "Return".into(),
            NodeKind::Throw => "Throw".into(),
            NodeKind::Unwind => "Unwind".into(),
            NodeKind::Deopt { reason } => format!("Deopt[{reason}]"),
            NodeKind::New { class } => format!("New {class}"),
            NodeKind::NewArray { kind } => format!("NewArray {kind}"),
            NodeKind::LoadField { field } => format!("LoadField {field}"),
            NodeKind::StoreField { field } => format!("StoreField {field}"),
            NodeKind::LoadIndexed => "LoadIndexed".into(),
            NodeKind::StoreIndexed => "StoreIndexed".into(),
            NodeKind::ArrayLen => "ArrayLen".into(),
            NodeKind::MonitorEnter => "MonitorEnter".into(),
            NodeKind::MonitorExit => "MonitorExit".into(),
            NodeKind::Invoke {
                target,
                virtual_call,
            } => format!(
                "Invoke{} {target}",
                if *virtual_call { "Virtual" } else { "Static" }
            ),
            NodeKind::RefEq => "RefEq".into(),
            NodeKind::IsNull => "IsNull".into(),
            NodeKind::InstanceOf { class, exact } => {
                format!("InstanceOf{} {class}", if *exact { "Exact" } else { "" })
            }
            NodeKind::CheckCast { class } => format!("CheckCast {class}"),
            NodeKind::Guard { reason, negated } => {
                format!("Guard[{reason}{}]", if *negated { ", !cond" } else { "" })
            }
            NodeKind::GetStatic { id } => format!("GetStatic {id}"),
            NodeKind::PutStatic { id } => format!("PutStatic {id}"),
            NodeKind::FixedArith { op } => format!("FixedArith {op}"),
            NodeKind::Commit { objects } => format!("Commit x{}", objects.len()),
            NodeKind::AllocatedObject { index } => format!("AllocatedObject #{index}"),
            NodeKind::Param { index } => format!("Param({index})"),
            NodeKind::ConstInt { value } => format!("Const {value}"),
            NodeKind::ConstNull => "ConstNull".into(),
            NodeKind::Arith { op } => format!("Arith {op}"),
            NodeKind::Compare { op } => format!("Compare {op}"),
            NodeKind::Phi { merge } => format!("Phi @{merge}"),
            NodeKind::FrameState(d) => format!("FrameState {}:{}", d.method, d.bci),
            NodeKind::VirtualObjectMapping { shape, lock_count } => {
                format!("VirtualObjectMapping {shape} locks={lock_count}")
            }
        }
    }
}

/// A node: kind, data inputs, control successors, optional frame state.
#[derive(Clone, Debug)]
pub struct Node {
    /// What the node does.
    pub kind: NodeKind,
    /// Data inputs (order is kind-specific).
    pub(crate) inputs: Vec<NodeId>,
    /// Control successors: `[next]` for straight-line fixed nodes,
    /// `[true, false]` for [`NodeKind::If`], empty otherwise.
    pub(crate) successors: Vec<NodeId>,
    /// Control predecessor for fixed nodes with a unique predecessor.
    /// Merges/loop begins use their `ends` lists instead.
    pub(crate) control_pred: Option<NodeId>,
    /// The frame state describing VM state for deoptimization at/after
    /// this node (side effects carry their after-state; guards and deopts
    /// carry the state they resume with).
    pub state_after: Option<NodeId>,
    /// Tombstone flag; deleted nodes stay in the arena but are ignored.
    pub(crate) deleted: bool,
}

impl Node {
    /// Data inputs in kind order.
    pub fn inputs(&self) -> &[NodeId] {
        &self.inputs
    }

    /// Control successors.
    pub fn successors(&self) -> &[NodeId] {
        &self.successors
    }

    /// Whether the node has been deleted.
    pub fn is_deleted(&self) -> bool {
        self.deleted
    }

    /// Unique control predecessor (fixed non-merge nodes).
    pub fn control_pred(&self) -> Option<NodeId> {
        self.control_pred
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixedness_partition_is_total() {
        let kinds: Vec<NodeKind> = vec![
            NodeKind::Start,
            NodeKind::If,
            NodeKind::New { class: ClassId(0) },
            NodeKind::Phi { merge: NodeId(0) },
            NodeKind::ConstInt { value: 1 },
            NodeKind::FrameState(FrameStateData::new(MethodId(0), 0, 0, 0, 0, false)),
            NodeKind::VirtualObjectMapping {
                shape: AllocShape::Instance { class: ClassId(0) },
                lock_count: 0,
            },
        ];
        for k in kinds {
            let sum =
                usize::from(k.is_fixed()) + usize::from(k.is_floating()) + usize::from(k.is_meta());
            assert_eq!(sum, 1, "kind {k:?} must be in exactly one class");
        }
    }

    #[test]
    fn div_is_trapping_and_binary() {
        assert!(ArithOp::Div.can_trap());
        assert!(!ArithOp::Add.can_trap());
        assert_eq!(ArithOp::Neg.arity(), 1);
        assert_eq!(ArithOp::Add.arity(), 2);
    }

    #[test]
    fn side_effects_are_the_frame_state_carriers() {
        assert!(NodeKind::StoreField { field: FieldId(0) }.is_side_effect());
        assert!(NodeKind::MonitorEnter.is_side_effect());
        assert!(!NodeKind::New { class: ClassId(0) }.is_side_effect());
        assert!(!NodeKind::LoadField { field: FieldId(0) }.is_side_effect());
    }

    #[test]
    fn block_boundaries() {
        assert!(NodeKind::Merge { ends: vec![] }.is_block_start());
        assert!(NodeKind::If.is_block_end());
        assert!(!NodeKind::New { class: ClassId(0) }.is_block_end());
    }

    #[test]
    fn mnemonics_are_nonempty() {
        assert!(!NodeKind::Start.mnemonic().is_empty());
        assert!(NodeKind::New { class: ClassId(3) }
            .mnemonic()
            .contains("C3"));
    }
}
