//! Basic-block discovery over the fixed-node chains, with reverse
//! postorder and loop metadata.

use crate::{Graph, NodeId, NodeKind};
use std::collections::HashMap;

/// Index of a block within a [`Cfg`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BlockId(pub u32);

impl BlockId {
    /// Raw index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// From raw index.
    #[inline]
    pub fn from_index(i: usize) -> Self {
        BlockId(u32::try_from(i).expect("block index exceeds u32"))
    }
}

impl std::fmt::Debug for BlockId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "B{}", self.0)
    }
}

impl std::fmt::Display for BlockId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "B{}", self.0)
    }
}

/// One basic block: a maximal chain of fixed nodes.
#[derive(Clone, Debug)]
pub struct Block {
    /// Block id (position in [`Cfg::blocks`]).
    pub id: BlockId,
    /// The fixed nodes, first (block start) to last (block end).
    pub nodes: Vec<NodeId>,
    /// Successor blocks in branch order (If: `[true, false]`).
    pub succs: Vec<BlockId>,
    /// Predecessor blocks. For merge blocks the order matches the merge's
    /// `ends` list (and therefore phi-input order).
    pub preds: Vec<BlockId>,
    /// Nesting depth (0 = not in any loop).
    pub loop_depth: u32,
    /// Innermost loop header block containing this block, if any.
    pub loop_header: Option<BlockId>,
}

impl Block {
    /// First node (the block start).
    pub fn first(&self) -> NodeId {
        self.nodes[0]
    }

    /// Last node (the block end / terminator).
    pub fn last(&self) -> NodeId {
        *self.nodes.last().expect("empty block")
    }
}

/// The control-flow graph: blocks, reverse postorder, loop forest.
#[derive(Clone, Debug)]
pub struct Cfg {
    /// All blocks; `blocks[0]` is the entry.
    pub blocks: Vec<Block>,
    /// Blocks in reverse postorder (loop headers precede their bodies).
    pub rpo: Vec<BlockId>,
    block_of_node: HashMap<NodeId, BlockId>,
}

impl Cfg {
    /// Builds the CFG of `graph`.
    ///
    /// # Panics
    ///
    /// Panics on malformed control flow (dangling chains, a non-start node
    /// without a block-start kind at a chain head). Run
    /// [`crate::verify::verify`] for a diagnosable error instead.
    pub fn build(graph: &Graph) -> Cfg {
        // 1. Find block-start nodes reachable from start and collect their
        //    chains.
        let mut starts: Vec<NodeId> = Vec::new();
        let mut seen: HashMap<NodeId, usize> = HashMap::new();
        let mut work = vec![graph.start];
        let mut chains: Vec<Vec<NodeId>> = Vec::new();
        while let Some(head) = work.pop() {
            if seen.contains_key(&head) {
                continue;
            }
            debug_assert!(
                graph.kind(head).is_block_start(),
                "chain head {head} is not a block start: {:?}",
                graph.kind(head)
            );
            let idx = starts.len();
            seen.insert(head, idx);
            starts.push(head);
            let mut chain = vec![head];
            let mut cur = head;
            while let Some(next) = graph.next(cur) {
                if graph.kind(next).is_block_start() {
                    // Fall-through into a merge-like block is impossible:
                    // merges are only entered through End nodes. A direct
                    // next to a Begin is block-internal only if Begin is
                    // not a target; our builder always makes Begins branch
                    // targets, so treat as chain member.
                    chain.push(next);
                    cur = next;
                } else {
                    chain.push(next);
                    cur = next;
                }
                if graph.node(cur).successors().len() != 1 {
                    break;
                }
                if matches!(graph.kind(cur), NodeKind::End | NodeKind::LoopEnd) {
                    break;
                }
            }
            chains.push(chain);
            // Discover successor heads from the chain terminator.
            let last = *chains[idx].last().unwrap();
            match graph.kind(last) {
                NodeKind::If => {
                    for &succ in graph.node(last).successors() {
                        work.push(succ);
                    }
                }
                NodeKind::End | NodeKind::LoopEnd => {
                    if let Some(merge) = find_merge_of_end(graph, last) {
                        work.push(merge);
                    }
                }
                NodeKind::Return | NodeKind::Throw | NodeKind::Unwind | NodeKind::Deopt { .. } => {}
                _ => {
                    // Straight-line chain ended because the next node is a
                    // block start (cannot happen with Begin policy above) —
                    // or the chain is dangling.
                    panic!(
                        "block chain at {last} ends in non-terminator {:?}",
                        graph.kind(last)
                    );
                }
            }
        }

        // Re-walk chains: a chain may contain embedded Begins (treated as
        // ordinary members above). That is fine — Begins only matter as
        // branch targets, and branch targets were pushed separately with
        // their own chains. But a Begin reached by fall-through AND by
        // branch would be duplicated; our construction never produces
        // that (every Begin has exactly one control predecessor).

        let mut blocks: Vec<Block> = chains
            .iter()
            .enumerate()
            .map(|(i, chain)| Block {
                id: BlockId::from_index(i),
                nodes: chain.clone(),
                succs: Vec::new(),
                preds: Vec::new(),
                loop_depth: 0,
                loop_header: None,
            })
            .collect();

        let block_of = |n: NodeId| -> BlockId { BlockId::from_index(seen[&n]) };

        // 2. Wire successor/predecessor edges.
        // Merge preds must follow ends order; collect them separately.
        for block in &mut blocks {
            let last = block.last();
            let succs: Vec<BlockId> = match graph.kind(last) {
                NodeKind::If => graph
                    .node(last)
                    .successors()
                    .iter()
                    .map(|&s| block_of(s))
                    .collect(),
                NodeKind::End | NodeKind::LoopEnd => match find_merge_of_end(graph, last) {
                    Some(merge) => vec![block_of(merge)],
                    None => vec![],
                },
                _ => vec![],
            };
            block.succs = succs;
        }
        for block in &mut blocks {
            let head = block.first();
            let preds: Vec<BlockId> = match graph.kind(head) {
                NodeKind::Merge { ends } | NodeKind::LoopBegin { ends } => ends
                    .iter()
                    .map(|&e| block_of(chain_head_of(graph, e, &seen)))
                    .collect(),
                _ => match graph.node(head).control_pred() {
                    Some(p) => vec![block_of(chain_head_of(graph, p, &seen))],
                    None => vec![],
                },
            };
            block.preds = preds;
        }

        // 3. Reverse postorder ignoring back edges (edges into LoopBegin
        //    blocks from LoopEnd terminators).
        let n = blocks.len();
        let mut rpo_rev: Vec<BlockId> = Vec::with_capacity(n);
        let mut state = vec![0u8; n]; // 0 unvisited, 1 in stack, 2 done
        let mut stack: Vec<(usize, usize)> = vec![(0, 0)];
        state[0] = 1;
        while let Some((b, child)) = stack.last_mut() {
            let bi = *b;
            let succs = &blocks[bi].succs;
            // Skip back edges: an edge is a back edge iff the source block
            // terminator is a LoopEnd.
            let is_back_src = matches!(graph.kind(blocks[bi].last()), NodeKind::LoopEnd);
            if *child < succs.len() && !is_back_src {
                let s = succs[*child].index();
                *child += 1;
                if state[s] == 0 {
                    state[s] = 1;
                    stack.push((s, 0));
                }
            } else {
                state[bi] = 2;
                rpo_rev.push(BlockId::from_index(bi));
                stack.pop();
            }
        }
        rpo_rev.reverse();
        let rpo = rpo_rev;

        // 4. Loop membership: for each LoopBegin block, walk predecessors
        //    backwards from its back-edge sources until the header.
        let mut loops: Vec<(BlockId, Vec<BlockId>)> = Vec::new();
        for b in 0..n {
            if matches!(graph.kind(blocks[b].first()), NodeKind::LoopBegin { .. }) {
                let header = BlockId::from_index(b);
                let mut members = vec![header];
                let mut wl: Vec<BlockId> = blocks[b]
                    .preds
                    .iter()
                    .copied()
                    .filter(|p| matches!(graph.kind(blocks[p.index()].last()), NodeKind::LoopEnd))
                    .collect();
                while let Some(m) = wl.pop() {
                    if members.contains(&m) {
                        continue;
                    }
                    members.push(m);
                    wl.extend(blocks[m.index()].preds.iter().copied());
                }
                loops.push((header, members));
            }
        }
        // Assign depth/innermost header: process loops outermost-first
        // (headers earlier in RPO are outer).
        let rpo_pos: HashMap<BlockId, usize> =
            rpo.iter().enumerate().map(|(i, &b)| (b, i)).collect();
        loops.sort_by_key(|(h, _)| rpo_pos.get(h).copied().unwrap_or(usize::MAX));
        for (header, members) in &loops {
            for &m in members {
                blocks[m.index()].loop_depth += 1;
                blocks[m.index()].loop_header = Some(*header);
            }
        }

        let block_of_node: HashMap<NodeId, BlockId> = blocks
            .iter()
            .flat_map(|b| b.nodes.iter().map(move |&n| (n, b.id)))
            .collect();

        Cfg {
            blocks,
            rpo,
            block_of_node,
        }
    }

    /// The entry block.
    pub fn entry(&self) -> BlockId {
        BlockId(0)
    }

    /// Block containing a fixed node.
    ///
    /// # Panics
    ///
    /// Panics if the node is not a fixed node of this CFG.
    pub fn block_of(&self, node: NodeId) -> BlockId {
        self.block_of_node[&node]
    }

    /// Block containing a fixed node, if it belongs to this CFG.
    pub fn try_block_of(&self, node: NodeId) -> Option<BlockId> {
        self.block_of_node.get(&node).copied()
    }

    /// Block accessor.
    pub fn block(&self, id: BlockId) -> &Block {
        &self.blocks[id.index()]
    }

    /// All blocks belonging to the loop headed by `header` (which must be
    /// a `LoopBegin` block), including nested loops.
    pub fn loop_members(&self, header: BlockId) -> Vec<BlockId> {
        let mut members = vec![header];
        let mut wl: Vec<BlockId> = self.blocks[header.index()]
            .preds
            .iter()
            .copied()
            .filter(|p| {
                // back edges come from blocks ending in LoopEnd whose succ is header
                self.blocks[p.index()].succs.contains(&header)
                    && self.rpo_position(*p) >= self.rpo_position(header)
            })
            .collect();
        while let Some(m) = wl.pop() {
            if members.contains(&m) {
                continue;
            }
            members.push(m);
            wl.extend(self.blocks[m.index()].preds.iter().copied());
        }
        members
    }

    /// Position of a block in RPO.
    ///
    /// # Panics
    ///
    /// Panics if the block is unreachable (not in RPO).
    pub fn rpo_position(&self, b: BlockId) -> usize {
        self.rpo
            .iter()
            .position(|&x| x == b)
            .expect("block not in RPO")
    }
}

/// An `End`/`LoopEnd` belongs to the unique merge-like node listing it.
pub fn find_merge_of_end(graph: &Graph, end: NodeId) -> Option<NodeId> {
    graph.live_nodes().find(|&n| match graph.kind(n) {
        NodeKind::Merge { ends } | NodeKind::LoopBegin { ends } => ends.contains(&end),
        _ => false,
    })
}

fn chain_head_of(graph: &Graph, mut node: NodeId, heads: &HashMap<NodeId, usize>) -> NodeId {
    loop {
        if heads.contains_key(&node) {
            return node;
        }
        node = graph
            .node(node)
            .control_pred()
            .expect("fixed node without predecessor outside any chain");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ArithOp, NodeKind};

    /// Builds: start -> if (p0) { a } else { b } -> merge -> return phi
    fn diamond() -> (Graph, NodeId, NodeId) {
        let mut g = Graph::new();
        let p = g.add(NodeKind::Param { index: 0 }, vec![]);
        let iff = g.add(NodeKind::If, vec![p]);
        g.set_next(g.start, iff);
        let t = g.add(NodeKind::Begin, vec![]);
        let f = g.add(NodeKind::Begin, vec![]);
        g.set_if_targets(iff, t, f);
        let te = g.add(NodeKind::End, vec![]);
        g.set_next(t, te);
        let fe = g.add(NodeKind::End, vec![]);
        g.set_next(f, fe);
        let merge = g.add(NodeKind::Merge { ends: vec![te, fe] }, vec![]);
        let c1 = g.const_int(1);
        let c2 = g.const_int(2);
        let phi = g.add(NodeKind::Phi { merge }, vec![c1, c2]);
        let ret = g.add(NodeKind::Return, vec![phi]);
        g.set_next(merge, ret);
        (g, merge, phi)
    }

    /// start -> loopbegin -> if (phi < p0) { body: phi' = phi+1; loopend }
    /// else { exit -> return phi }
    fn simple_loop() -> (Graph, NodeId) {
        let mut g = Graph::new();
        let p = g.add(NodeKind::Param { index: 0 }, vec![]);
        let entry_end = g.add(NodeKind::End, vec![]);
        g.set_next(g.start, entry_end);
        let lb = g.add(
            NodeKind::LoopBegin {
                ends: vec![entry_end],
            },
            vec![],
        );
        let zero = g.const_int(0);
        let phi = g.add(NodeKind::Phi { merge: lb }, vec![zero]);
        let cmp = g.add(
            NodeKind::Compare {
                op: pea_bytecode::CmpOp::Lt,
            },
            vec![phi, p],
        );
        let iff = g.add(NodeKind::If, vec![cmp]);
        g.set_next(lb, iff);
        let body = g.add(NodeKind::Begin, vec![]);
        let exit = g.add(NodeKind::LoopExit { loop_begin: lb }, vec![]);
        g.set_if_targets(iff, body, exit);
        let one = g.const_int(1);
        let inc = g.add(NodeKind::Arith { op: ArithOp::Add }, vec![phi, one]);
        let le = g.add(NodeKind::LoopEnd, vec![]);
        g.set_next(body, le);
        g.add_merge_end(lb, le);
        g.push_input(phi, inc);
        let ret = g.add(NodeKind::Return, vec![phi]);
        g.set_next(exit, ret);
        (g, lb)
    }

    #[test]
    fn unwind_terminates_a_block() {
        // start -> if (p0) { unwind p1 } else { return p0 }: the Unwind
        // sink must close its block exactly like Return/Throw — an
        // escaping athrow is an ordinary control exit of the method.
        let mut g = Graph::new();
        let p0 = g.add(NodeKind::Param { index: 0 }, vec![]);
        let p1 = g.add(NodeKind::Param { index: 1 }, vec![]);
        let iff = g.add(NodeKind::If, vec![p0]);
        g.set_next(g.start, iff);
        let t = g.add(NodeKind::Begin, vec![]);
        let f = g.add(NodeKind::Begin, vec![]);
        g.set_if_targets(iff, t, f);
        let unwind = g.add(NodeKind::Unwind, vec![p1]);
        g.set_next(t, unwind);
        let ret = g.add(NodeKind::Return, vec![p0]);
        g.set_next(f, ret);
        let cfg = Cfg::build(&g);
        assert_eq!(cfg.blocks.len(), 3);
        let ub = cfg.block_of(unwind);
        assert_eq!(cfg.block(ub).last(), unwind);
        assert!(cfg.block(ub).succs.is_empty());
    }

    #[test]
    fn diamond_has_four_blocks() {
        let (g, merge, _) = diamond();
        let cfg = Cfg::build(&g);
        assert_eq!(cfg.blocks.len(), 4);
        let entry = cfg.block(cfg.entry());
        assert_eq!(entry.succs.len(), 2);
        let mb = cfg.block_of(merge);
        assert_eq!(cfg.block(mb).preds.len(), 2);
        // rpo: entry first, merge last
        assert_eq!(cfg.rpo[0], cfg.entry());
        assert_eq!(*cfg.rpo.last().unwrap(), mb);
    }

    #[test]
    fn merge_preds_follow_ends_order() {
        let (g, merge, _) = diamond();
        let cfg = Cfg::build(&g);
        let mb = cfg.block_of(merge);
        let ends = g.merge_ends(merge).to_vec();
        let pred_blocks: Vec<BlockId> = ends.iter().map(|&e| cfg.block_of(e)).collect();
        assert_eq!(cfg.block(mb).preds, pred_blocks);
    }

    #[test]
    fn loop_blocks_get_depth() {
        let (g, lb) = simple_loop();
        let cfg = Cfg::build(&g);
        let header = cfg.block_of(lb);
        assert_eq!(cfg.block(header).loop_depth, 1);
        // body block has depth 1; exit block depth 0
        let body_depth: Vec<u32> = cfg.blocks.iter().map(|b| b.loop_depth).collect();
        assert!(body_depth.contains(&1));
        assert!(body_depth.contains(&0));
        let members = cfg.loop_members(header);
        assert!(members.len() >= 2);
    }

    #[test]
    fn rpo_visits_header_before_body() {
        let (g, lb) = simple_loop();
        let cfg = Cfg::build(&g);
        let header = cfg.block_of(lb);
        let header_pos = cfg.rpo_position(header);
        for m in cfg.loop_members(header) {
            if m != header {
                assert!(cfg.rpo_position(m) > header_pos);
            }
        }
    }
}
