//! Textual and GraphViz dumps of IR graphs, used by the figure
//! regeneration harness (Figures 2 and 8 of the paper) and for debugging.

use crate::cfg::Cfg;
use crate::{Graph, NodeId, NodeKind};
use std::fmt::Write as _;

/// Renders the graph as readable text, one block per paragraph:
///
/// ```text
/// B0:
///   v0 Start
///   v3 New C0
///   v4 StoreField F0 (v3, v1)
///   v5 If (v2) ? B1 : B2
/// ```
pub fn dump(graph: &Graph) -> String {
    let cfg = Cfg::build(graph);
    let mut out = String::new();
    for &bid in &cfg.rpo {
        let block = cfg.block(bid);
        let _ = writeln!(
            out,
            "{bid}: preds={:?} succs={:?}",
            block.preds, block.succs
        );
        // Phis of merge-like block heads first.
        let head = block.first();
        if matches!(
            graph.kind(head),
            NodeKind::Merge { .. } | NodeKind::LoopBegin { .. }
        ) {
            for phi in graph.phis_of(head) {
                let _ = writeln!(out, "  {}", describe(graph, phi));
            }
        }
        for &n in &block.nodes {
            let _ = writeln!(out, "  {}", describe(graph, n));
        }
        out.push('\n');
    }
    out
}

/// One-line description of a node: id, mnemonic, inputs, frame state.
pub fn describe(graph: &Graph, id: NodeId) -> String {
    let node = graph.node(id);
    let mut s = format!("{id} {}", node.kind.mnemonic());
    if !node.inputs().is_empty() {
        let args: Vec<String> = node.inputs().iter().map(|i| i.to_string()).collect();
        let _ = write!(s, " ({})", args.join(", "));
    }
    if let NodeKind::If = node.kind {
        let succ = node.successors();
        if succ.len() == 2 {
            let _ = write!(s, " ? {} : {}", succ[0], succ[1]);
        }
    }
    if let Some(state) = node.state_after {
        let _ = write!(s, "  @{}", frame_state_brief(graph, state));
    }
    s
}

/// Renders a frame state (and its outer chain) compactly, in the style of
/// the paper's Figure 8: `@M0:5 locals=[v1] stack=[] locks=[]`.
pub fn frame_state_brief(graph: &Graph, state: NodeId) -> String {
    let data = graph.frame_state_data(state);
    let inputs = graph.node(state).inputs();
    let fmt_range = |r: std::ops::Range<usize>| -> String {
        let parts: Vec<String> = inputs[r].iter().map(|v| v.to_string()).collect();
        parts.join(",")
    };
    let mut s = format!(
        "{}:{} locals=[{}] stack=[{}] locks=[{}]",
        data.method,
        data.bci,
        fmt_range(data.locals_range()),
        fmt_range(data.stack_range()),
        fmt_range(data.locks_range()),
    );
    if let Some(outer) = data.outer_index() {
        let _ = write!(s, " outer=({})", frame_state_brief(graph, inputs[outer]));
    }
    s
}

/// Emits a GraphViz `dot` rendering: control edges bold, data edges thin
/// (matching the visual convention of Figure 2 in the paper).
pub fn dump_dot(graph: &Graph, title: &str) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "digraph \"{title}\" {{");
    let _ = writeln!(out, "  node [shape=box, fontname=\"monospace\"];");
    for n in graph.live_nodes() {
        let kind = graph.kind(n);
        if matches!(kind, NodeKind::FrameState(_)) {
            let _ = writeln!(
                out,
                "  {} [label=\"{} {}\", style=dashed];",
                n.index(),
                n,
                kind.mnemonic()
            );
        } else {
            let _ = writeln!(
                out,
                "  {} [label=\"{} {}\"];",
                n.index(),
                n,
                kind.mnemonic()
            );
        }
    }
    for n in graph.live_nodes() {
        let node = graph.node(n);
        for &succ in node.successors() {
            let _ = writeln!(out, "  {} -> {} [style=bold];", n.index(), succ.index());
        }
        for &input in node.inputs() {
            let _ = writeln!(
                out,
                "  {} -> {} [dir=back, color=gray];",
                input.index(),
                n.index()
            );
        }
        if let Some(state) = node.state_after {
            let _ = writeln!(out, "  {} -> {} [style=dashed];", n.index(), state.index());
        }
    }
    let _ = writeln!(out, "}}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FrameStateData;
    use pea_bytecode::MethodId;

    fn tiny_graph() -> Graph {
        let mut g = Graph::new();
        let p = g.add(NodeKind::Param { index: 0 }, vec![]);
        let ret = g.add(NodeKind::Return, vec![p]);
        g.set_next(g.start, ret);
        g
    }

    #[test]
    fn dump_contains_blocks_and_nodes() {
        let g = tiny_graph();
        let text = dump(&g);
        assert!(text.contains("B0"));
        assert!(text.contains("Start"));
        assert!(text.contains("Return"));
    }

    #[test]
    fn describe_shows_inputs() {
        let g = tiny_graph();
        let ret = g
            .live_nodes()
            .find(|&n| matches!(g.kind(n), NodeKind::Return))
            .unwrap();
        let d = describe(&g, ret);
        assert!(d.contains("Return"));
        assert!(d.contains("(v1)"));
    }

    #[test]
    fn frame_state_brief_shows_chain() {
        let mut g = Graph::new();
        let p = g.add(NodeKind::Param { index: 0 }, vec![]);
        let outer = g.add_frame_state(FrameStateData::new(MethodId(0), 5, 1, 0, 0, false), vec![p]);
        let inner = g.add_frame_state(
            FrameStateData::new(MethodId(1), 9, 2, 0, 0, true),
            vec![p, p, outer],
        );
        let s = frame_state_brief(&g, inner);
        assert!(s.contains("M1:9"));
        assert!(s.contains("outer=(M0:5"));
    }

    #[test]
    fn dot_output_is_well_formed() {
        let g = tiny_graph();
        let dot = dump_dot(&g, "test");
        assert!(dot.starts_with("digraph"));
        assert!(dot.trim_end().ends_with('}'));
        assert!(dot.contains("style=bold"));
    }
}
