//! Frame-state metadata: the mapping from optimized code back to
//! bytecode-level VM state (paper §2 and §5.5).

use pea_bytecode::MethodId;

/// Layout descriptor for a [`crate::NodeKind::FrameState`] node.
///
/// The node's inputs are, in order:
///
/// ```text
/// locals[0..n_locals] ++ stack[0..n_stack] ++ locks[0..n_locks] ++ [outer]
/// ```
///
/// where `outer` (present iff [`FrameStateData::has_outer`]) is the
/// caller's `FrameState` node — the chain the paper describes for inlined
/// methods. Deoptimization resumes the interpreter at `bci`
/// (the state captured *after* the most recent side effect; everything in
/// between is re-executed).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FrameStateData {
    /// Method this state belongs to.
    pub method: MethodId,
    /// Bytecode index to resume at.
    pub bci: u32,
    /// Number of local-variable slots.
    pub n_locals: u32,
    /// Number of expression-stack slots.
    pub n_stack: u32,
    /// Number of locked objects.
    pub n_locks: u32,
    /// Whether the last input is the caller's frame state.
    pub has_outer: bool,
    /// Per-lock flag: `true` when the lock stems from a `synchronized`
    /// method (released automatically when the rebuilt interpreter frame
    /// returns); `false` for explicit `monitorenter` locks (released by
    /// the re-executed bytecode itself).
    pub lock_from_sync: Vec<bool>,
}

impl FrameStateData {
    /// Creates a descriptor with no sync-method locks.
    pub fn new(
        method: MethodId,
        bci: u32,
        n_locals: u32,
        n_stack: u32,
        n_locks: u32,
        has_outer: bool,
    ) -> Self {
        FrameStateData {
            method,
            bci,
            n_locals,
            n_stack,
            n_locks,
            has_outer,
            lock_from_sync: vec![false; n_locks as usize],
        }
    }

    /// Total number of node inputs this descriptor implies.
    pub fn input_count(&self) -> usize {
        (self.n_locals + self.n_stack + self.n_locks) as usize + usize::from(self.has_outer)
    }

    /// Input index range of the locals.
    pub fn locals_range(&self) -> std::ops::Range<usize> {
        0..self.n_locals as usize
    }

    /// Input index range of the expression stack.
    pub fn stack_range(&self) -> std::ops::Range<usize> {
        let s = self.n_locals as usize;
        s..s + self.n_stack as usize
    }

    /// Input index range of the locked objects.
    pub fn locks_range(&self) -> std::ops::Range<usize> {
        let s = (self.n_locals + self.n_stack) as usize;
        s..s + self.n_locks as usize
    }

    /// Input index of the outer frame state, if present.
    pub fn outer_index(&self) -> Option<usize> {
        self.has_outer.then(|| self.input_count() - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_partition_inputs() {
        let d = FrameStateData::new(MethodId(0), 7, 3, 2, 1, true);
        assert_eq!(d.input_count(), 7);
        assert_eq!(d.locals_range(), 0..3);
        assert_eq!(d.stack_range(), 3..5);
        assert_eq!(d.locks_range(), 5..6);
        assert_eq!(d.outer_index(), Some(6));
        assert_eq!(d.lock_from_sync.len(), 1);
    }

    #[test]
    fn no_outer_when_root() {
        let d = FrameStateData::new(MethodId(0), 0, 1, 0, 0, false);
        assert_eq!(d.outer_index(), None);
        assert_eq!(d.input_count(), 1);
    }
}
