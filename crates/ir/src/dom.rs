//! Dominator tree construction (Cooper–Harvey–Kennedy iterative
//! algorithm over reverse postorder).

use crate::cfg::{BlockId, Cfg};

/// Immediate-dominator tree over a [`Cfg`].
#[derive(Clone, Debug)]
pub struct DomTree {
    idom: Vec<Option<BlockId>>,
    depth: Vec<u32>,
}

impl DomTree {
    /// Computes dominators for all blocks reachable in `cfg`.
    pub fn build(cfg: &Cfg) -> DomTree {
        let n = cfg.blocks.len();
        let rpo = &cfg.rpo;
        let mut rpo_pos = vec![usize::MAX; n];
        for (i, &b) in rpo.iter().enumerate() {
            rpo_pos[b.index()] = i;
        }
        let mut idom: Vec<Option<BlockId>> = vec![None; n];
        let entry = cfg.entry();
        idom[entry.index()] = Some(entry);
        let mut changed = true;
        while changed {
            changed = false;
            for &b in rpo.iter().skip(1) {
                let preds = &cfg.block(b).preds;
                let mut new_idom: Option<BlockId> = None;
                for &p in preds {
                    if idom[p.index()].is_none() {
                        continue; // unreachable or not yet processed
                    }
                    new_idom = Some(match new_idom {
                        None => p,
                        Some(cur) => intersect(&idom, &rpo_pos, cur, p),
                    });
                }
                if let Some(ni) = new_idom {
                    if idom[b.index()] != Some(ni) {
                        idom[b.index()] = Some(ni);
                        changed = true;
                    }
                }
            }
        }
        // Depths.
        let mut depth = vec![0u32; n];
        for &b in rpo.iter().skip(1) {
            let i = idom[b.index()].expect("reachable block without idom");
            depth[b.index()] = depth[i.index()] + 1;
        }
        DomTree { idom, depth }
    }

    /// Immediate dominator of `b` (the entry dominates itself).
    pub fn idom(&self, b: BlockId) -> Option<BlockId> {
        self.idom[b.index()]
    }

    /// Depth of `b` in the dominator tree (entry = 0).
    pub fn depth(&self, b: BlockId) -> u32 {
        self.depth[b.index()]
    }

    /// Whether `a` dominates `b` (reflexive).
    pub fn dominates(&self, a: BlockId, b: BlockId) -> bool {
        let mut cur = b;
        loop {
            if cur == a {
                return true;
            }
            match self.idom[cur.index()] {
                Some(i) if i != cur => cur = i,
                _ => return false,
            }
        }
    }

    /// Deepest common dominator of two blocks.
    pub fn common_dominator(&self, mut a: BlockId, mut b: BlockId) -> BlockId {
        while a != b {
            while self.depth(a) > self.depth(b) {
                a = self.idom(a).expect("no idom");
            }
            while self.depth(b) > self.depth(a) {
                b = self.idom(b).expect("no idom");
            }
            if a != b {
                a = self.idom(a).expect("no idom");
                b = self.idom(b).expect("no idom");
            }
        }
        a
    }
}

fn intersect(
    idom: &[Option<BlockId>],
    rpo_pos: &[usize],
    mut a: BlockId,
    mut b: BlockId,
) -> BlockId {
    while a != b {
        while rpo_pos[a.index()] > rpo_pos[b.index()] {
            a = idom[a.index()].expect("intersect: missing idom");
        }
        while rpo_pos[b.index()] > rpo_pos[a.index()] {
            b = idom[b.index()].expect("intersect: missing idom");
        }
    }
    a
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Graph, NodeKind};

    fn diamond_cfg() -> (Cfg, BlockId, BlockId, BlockId, BlockId) {
        let mut g = Graph::new();
        let p = g.add(NodeKind::Param { index: 0 }, vec![]);
        let iff = g.add(NodeKind::If, vec![p]);
        g.set_next(g.start, iff);
        let t = g.add(NodeKind::Begin, vec![]);
        let f = g.add(NodeKind::Begin, vec![]);
        g.set_if_targets(iff, t, f);
        let te = g.add(NodeKind::End, vec![]);
        g.set_next(t, te);
        let fe = g.add(NodeKind::End, vec![]);
        g.set_next(f, fe);
        let merge = g.add(NodeKind::Merge { ends: vec![te, fe] }, vec![]);
        let ret = g.add(NodeKind::Return, vec![]);
        g.set_next(merge, ret);
        let cfg = Cfg::build(&g);
        let entry = cfg.entry();
        let tb = cfg.block_of(t);
        let fb = cfg.block_of(f);
        let mb = cfg.block_of(merge);
        (cfg, entry, tb, fb, mb)
    }

    #[test]
    fn diamond_dominators() {
        let (cfg, entry, tb, fb, mb) = diamond_cfg();
        let dom = DomTree::build(&cfg);
        assert_eq!(dom.idom(tb), Some(entry));
        assert_eq!(dom.idom(fb), Some(entry));
        assert_eq!(dom.idom(mb), Some(entry));
        assert!(dom.dominates(entry, mb));
        assert!(!dom.dominates(tb, mb));
        assert!(dom.dominates(mb, mb));
    }

    #[test]
    fn common_dominator_of_branches_is_entry() {
        let (cfg, entry, tb, fb, _) = diamond_cfg();
        let dom = DomTree::build(&cfg);
        assert_eq!(dom.common_dominator(tb, fb), entry);
        assert_eq!(dom.common_dominator(tb, tb), tb);
    }

    #[test]
    fn depths_increase_from_entry() {
        let (cfg, entry, tb, ..) = diamond_cfg();
        let dom = DomTree::build(&cfg);
        assert_eq!(dom.depth(entry), 0);
        assert_eq!(dom.depth(tb), 1);
    }
}
