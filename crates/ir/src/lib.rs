//! A Graal-IR-style SSA intermediate representation, the substrate the
//! paper's Partial Escape Analysis runs on.
//!
//! Design, mirroring "Graal IR: An extensible declarative intermediate
//! representation" (Duboscq et al.) as described in §2/§5 of the paper:
//!
//! * the graph models **control flow** (fixed nodes threaded through
//!   `next`/successor edges: [`NodeKind::Start`], [`NodeKind::If`],
//!   [`NodeKind::Merge`], [`NodeKind::LoopBegin`], effectful object
//!   operations, …) and **data flow** (floating pure nodes: constants,
//!   parameters, arithmetic, [`NodeKind::Phi`]) in one node arena;
//! * **FrameState** nodes map optimized code back to bytecode-level VM
//!   state (method, bci, locals, expression stack, locked objects) and
//!   chain to their caller's state after inlining, enabling
//!   deoptimization (§2, §5.5);
//! * after Partial Escape Analysis, frame states may reference
//!   [`NodeKind::VirtualObjectMapping`] snapshots, and escaping paths gain
//!   [`NodeKind::Commit`]/[`NodeKind::AllocatedObject`] materialization
//!   nodes (the analogue of Graal's `CommitAllocationNode` /
//!   `AllocatedObjectNode`).
//!
//! One deliberate deviation, anticipated by the paper's §7 (future work):
//! object-sensitive operations (field accesses, monitors, reference
//! equality, type checks) are *pinned* in control flow instead of floating,
//! which makes the analysis independent of the scheduler. The [`schedule`]
//! module still implements a scheduler for the floating value nodes, used
//! by the compiled-code evaluator.

pub mod cfg;
pub mod dom;
pub mod dump;
mod framestate;
mod graph;
mod node;
pub mod schedule;
pub mod verify;

pub use framestate::FrameStateData;
pub use graph::Graph;
pub use node::{AllocShape, ArithOp, CommitObject, DeoptReason, Node, NodeId, NodeKind};
