//! Property tests over the IR: randomly grown graphs must keep verifier,
//! CFG, dominator and scheduler invariants.

use pea_ir::cfg::Cfg;
use pea_ir::dom::DomTree;
use pea_ir::schedule::Schedule;
use pea_ir::{ArithOp, Graph, NodeId, NodeKind};
use proptest::prelude::*;

/// Grows a random structured CFG (nested if/loop regions with a random
/// expression DAG threaded through) and returns the graph.
#[derive(Clone, Debug)]
enum Region {
    Straight(u8),
    IfElse(Box<Region>, Box<Region>),
    Loop(Box<Region>),
    Seq(Box<Region>, Box<Region>),
}

fn region_strategy() -> impl Strategy<Value = Region> {
    let leaf = (0u8..4).prop_map(Region::Straight);
    leaf.prop_recursive(4, 12, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Region::IfElse(a.into(), b.into())),
            inner.clone().prop_map(|r| Region::Loop(r.into())),
            (inner.clone(), inner).prop_map(|(a, b)| Region::Seq(a.into(), b.into())),
        ]
    })
}

struct Builder {
    g: Graph,
    values: Vec<NodeId>,
}

impl Builder {
    /// Emits a region; `tail` is the open chain end; returns the new tail.
    fn emit(&mut self, region: &Region, tail: NodeId) -> NodeId {
        match region {
            Region::Straight(n) => {
                // Grow the value pool with pure arithmetic.
                for k in 0..*n {
                    let a = self.values[k as usize % self.values.len()];
                    let b = self.values[(k as usize * 7 + 1) % self.values.len()];
                    let v = self.g.add(NodeKind::Arith { op: ArithOp::Add }, vec![a, b]);
                    self.values.push(v);
                }
                tail
            }
            Region::Seq(a, b) => {
                let t = self.emit(a, tail);
                self.emit(b, t)
            }
            Region::IfElse(a, b) => {
                let cond = self.values[self.values.len() / 2];
                let iff = self.g.add(NodeKind::If, vec![cond]);
                self.g.set_next(tail, iff);
                let bt = self.g.add(NodeKind::Begin, vec![]);
                let bf = self.g.add(NodeKind::Begin, vec![]);
                self.g.set_if_targets(iff, bt, bf);
                // Values created in one branch do not dominate the other
                // branch or the merge: scope the pool per branch and join
                // the branch results through a phi.
                let snap = self.values.len();
                let ta = self.emit(a, bt);
                let va = *self.values.last().unwrap();
                self.values.truncate(snap);
                let tb = self.emit(b, bf);
                let vb = *self.values.last().unwrap();
                self.values.truncate(snap);
                let ea = self.g.add(NodeKind::End, vec![]);
                self.g.set_next(ta, ea);
                let eb = self.g.add(NodeKind::End, vec![]);
                self.g.set_next(tb, eb);
                let merge = self.g.add(NodeKind::Merge { ends: vec![ea, eb] }, vec![]);
                let phi = self.g.add(NodeKind::Phi { merge }, vec![va, vb]);
                self.values.push(phi);
                merge
            }
            Region::Loop(body) => {
                let end = self.g.add(NodeKind::End, vec![]);
                self.g.set_next(tail, end);
                let lb = self.g.add(NodeKind::LoopBegin { ends: vec![end] }, vec![]);
                let seed = self.values[0];
                let phi = self.g.add(NodeKind::Phi { merge: lb }, vec![seed]);
                self.values.push(phi);
                let snap = self.values.len();
                let t = self.emit(body, lb);
                let cond = *self.values.last().unwrap();
                self.values.truncate(snap);
                let iff = self.g.add(NodeKind::If, vec![cond]);
                self.g.set_next(t, iff);
                let cont = self.g.add(NodeKind::Begin, vec![]);
                let exit = self.g.add(NodeKind::Begin, vec![]);
                self.g.set_if_targets(iff, cont, exit);
                let le = self.g.add(NodeKind::LoopEnd, vec![]);
                self.g.set_next(cont, le);
                self.g.add_merge_end(lb, le);
                let back = self
                    .g
                    .add(NodeKind::Arith { op: ArithOp::Add }, vec![phi, seed]);
                self.g.push_input(phi, back);
                exit
            }
        }
    }
}

fn build(region: &Region) -> Graph {
    let mut b = Builder {
        g: Graph::new(),
        values: Vec::new(),
    };
    let p = b.g.add(NodeKind::Param { index: 0 }, vec![]);
    b.values.push(p);
    let c = b.g.const_int(1);
    b.values.push(c);
    let start = b.g.start;
    let tail = b.emit(region, start);
    let ret_val = *b.values.last().unwrap();
    let ret = b.g.add(NodeKind::Return, vec![ret_val]);
    b.g.set_next(tail, ret);
    b.g
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    #[test]
    fn random_structured_graphs_verify(region in region_strategy()) {
        let g = build(&region);
        pea_ir::verify::verify(&g).map_err(|e| {
            TestCaseError::fail(format!("{e}\n{}", pea_ir::dump::dump(&g)))
        })?;
    }

    #[test]
    fn rpo_visits_preds_before_blocks(region in region_strategy()) {
        let g = build(&region);
        let cfg = Cfg::build(&g);
        for &b in &cfg.rpo {
            let pos = cfg.rpo_position(b);
            for &p in &cfg.block(b).preds {
                let is_back_edge = matches!(
                    g.kind(cfg.block(p).last()),
                    NodeKind::LoopEnd
                );
                if !is_back_edge {
                    prop_assert!(
                        cfg.rpo_position(p) < pos,
                        "forward pred {p:?} after {b:?} in RPO"
                    );
                }
            }
        }
    }

    #[test]
    fn idom_dominates_and_precedes(region in region_strategy()) {
        let g = build(&region);
        let cfg = Cfg::build(&g);
        let dom = DomTree::build(&cfg);
        for &b in &cfg.rpo {
            if b == cfg.entry() {
                continue;
            }
            let idom = dom.idom(b).expect("reachable blocks have idoms");
            prop_assert!(dom.dominates(idom, b));
            prop_assert!(cfg.rpo_position(idom) < cfg.rpo_position(b));
            // The idom dominates every predecessor's dominator chain.
            for &p in &cfg.block(b).preds {
                prop_assert!(
                    dom.dominates(idom, p) || p == b,
                    "idom({b:?}) = {idom:?} does not dominate pred {p:?}"
                );
            }
        }
    }

    #[test]
    fn schedule_orders_inputs_before_uses(region in region_strategy()) {
        let g = build(&region);
        let cfg = Cfg::build(&g);
        let dom = DomTree::build(&cfg);
        let sched = Schedule::build(&g, &cfg, &dom);
        // Every scheduled node's same-block inputs appear earlier.
        for (bi, order) in sched.per_block.iter().enumerate() {
            let pos: std::collections::HashMap<NodeId, usize> =
                order.iter().enumerate().map(|(i, &n)| (n, i)).collect();
            for &n in order {
                if matches!(g.kind(n), NodeKind::Phi { .. }) {
                    continue;
                }
                for &input in g.node(n).inputs() {
                    if matches!(g.kind(input), NodeKind::Phi { .. }) {
                        continue;
                    }
                    if let Some(&pi) = pos.get(&input) {
                        prop_assert!(
                            pi < pos[&n],
                            "block {bi}: input {input} at {pi} not before {n} at {}",
                            pos[&n]
                        );
                    }
                }
            }
        }
        // Schedule covers every live non-meta, non-phi node exactly once.
        let mut seen = std::collections::HashSet::new();
        for order in &sched.per_block {
            for &n in order {
                prop_assert!(seen.insert(n), "{n} scheduled twice");
            }
        }
    }

    #[test]
    fn prune_dead_is_idempotent_and_preserves_verification(region in region_strategy()) {
        let mut g = build(&region);
        // Add some garbage that pruning must collect.
        let orphan = g.add(NodeKind::Param { index: 7 }, vec![]);
        let _orphan_use = g.add(NodeKind::Arith { op: ArithOp::Neg }, vec![orphan]);
        let first = g.prune_dead();
        prop_assert!(first >= 2);
        let second = g.prune_dead();
        prop_assert_eq!(second, 0, "second sweep finds nothing");
        pea_ir::verify::verify(&g).map_err(|e| TestCaseError::fail(e.to_string()))?;
    }
}
