//! Property tests for the managed heap: random operation sequences keep
//! the statistics and monitor invariants.

use pea_bytecode::{ProgramBuilder, ValueKind};
use pea_runtime::{Heap, Value};
use proptest::prelude::*;

#[derive(Clone, Debug)]
enum Op {
    AllocInstance,
    AllocArray(u8),
    PutField(u8, i64),
    GetField(u8),
    ArraySet(u8, u8, i64),
    ArrayGet(u8, u8),
    Enter(u8),
    Exit(u8),
}

fn op() -> impl Strategy<Value = Op> {
    prop_oneof![
        Just(Op::AllocInstance),
        (0u8..16).prop_map(Op::AllocArray),
        (any::<u8>(), any::<i64>()).prop_map(|(o, v)| Op::PutField(o, v)),
        any::<u8>().prop_map(Op::GetField),
        (any::<u8>(), 0u8..16, any::<i64>()).prop_map(|(o, i, v)| Op::ArraySet(o, i, v)),
        (any::<u8>(), 0u8..16).prop_map(|(o, i)| Op::ArrayGet(o, i)),
        any::<u8>().prop_map(Op::Enter),
        any::<u8>().prop_map(Op::Exit),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 96, ..ProptestConfig::default() })]

    #[test]
    fn heap_invariants_hold(ops in prop::collection::vec(op(), 0..64)) {
        let mut pb = ProgramBuilder::new();
        let class = pb.add_class("C", None);
        let field = pb.add_field(class, "x", ValueKind::Int);
        let program = pb.build().unwrap();

        let mut heap = Heap::new();
        let mut instances = Vec::new();
        let mut arrays: Vec<(pea_runtime::ObjRef, u8)> = Vec::new();
        let mut model_locks: std::collections::HashMap<pea_runtime::ObjRef, u32> =
            std::collections::HashMap::new();
        let mut model_fields: std::collections::HashMap<pea_runtime::ObjRef, i64> =
            std::collections::HashMap::new();
        let mut expected_allocs = 0u64;
        let mut expected_bytes = 0u64;
        let mut enters = 0u64;
        let mut exits = 0u64;

        for o in &ops {
            match o {
                Op::AllocInstance => {
                    let r = heap.alloc_instance(&program, class);
                    instances.push(r);
                    model_fields.insert(r, 0);
                    expected_allocs += 1;
                    expected_bytes += 16 + 8;
                }
                Op::AllocArray(len) => {
                    let r = heap.alloc_array(ValueKind::Int, i64::from(*len)).unwrap();
                    arrays.push((r, *len));
                    expected_allocs += 1;
                    expected_bytes += 16 + 8 * u64::from(*len);
                }
                Op::PutField(o, v) if !instances.is_empty() => {
                    let r = instances[*o as usize % instances.len()];
                    heap.put_field(&program, r, field, Value::Int(*v)).unwrap();
                    model_fields.insert(r, *v);
                }
                Op::GetField(o) if !instances.is_empty() => {
                    let r = instances[*o as usize % instances.len()];
                    let v = heap.get_field(&program, r, field).unwrap();
                    prop_assert_eq!(v, Value::Int(model_fields[&r]));
                }
                Op::ArraySet(o, i, v) if !arrays.is_empty() => {
                    let (r, len) = arrays[*o as usize % arrays.len()];
                    let res = heap.array_set(r, i64::from(*i), Value::Int(*v));
                    prop_assert_eq!(res.is_ok(), u64::from(*i) < u64::from(len));
                }
                Op::ArrayGet(o, i) if !arrays.is_empty() => {
                    let (r, len) = arrays[*o as usize % arrays.len()];
                    let res = heap.array_get(r, i64::from(*i));
                    prop_assert_eq!(res.is_ok(), u64::from(*i) < u64::from(len));
                }
                Op::Enter(o) if !instances.is_empty() => {
                    let r = instances[*o as usize % instances.len()];
                    heap.monitor_enter(r);
                    *model_locks.entry(r).or_insert(0) += 1;
                    enters += 1;
                }
                Op::Exit(o) if !instances.is_empty() => {
                    let r = instances[*o as usize % instances.len()];
                    let held = model_locks.get(&r).copied().unwrap_or(0);
                    let res = heap.monitor_exit(r);
                    if held > 0 {
                        prop_assert!(res.is_ok());
                        model_locks.insert(r, held - 1);
                        exits += 1;
                    } else {
                        prop_assert!(res.is_err());
                    }
                }
                _ => {}
            }
        }
        prop_assert_eq!(heap.stats.alloc_count, expected_allocs);
        prop_assert_eq!(heap.stats.alloc_bytes, expected_bytes);
        prop_assert_eq!(heap.stats.monitor_enters, enters);
        prop_assert_eq!(heap.stats.monitor_exits, exits);
        let model_total: u64 = model_locks.values().map(|&c| u64::from(c)).sum();
        prop_assert_eq!(heap.total_lock_holds(), model_total);
        // Lock counts match the per-object model.
        for (r, c) in &model_locks {
            prop_assert_eq!(heap.lock_count(*r), *c);
        }
    }
}
