//! The shared chunk allocator behind per-mutator TLABs.
//!
//! Every mutator thread owns a private [`Heap`](crate::Heap) — a bump
//! arena, exactly like a HotSpot thread-local allocation buffer. Bump
//! allocation itself is therefore free of synchronization; what the
//! threads share is the *capacity handout*: when a mutator heap exhausts
//! its reserved cells it requests one more chunk from the VM-wide
//! [`ChunkAllocator`], which accounts chunks and cells globally (one
//! relaxed atomic add per grant, no lock). This keeps the allocation fast
//! path thread-local while the VM retains a single view of how much heap
//! space has been handed out — the seam the generational-GC roadmap item
//! grows from.

use std::sync::atomic::{AtomicU64, Ordering};

/// Cells per TLAB chunk. Small enough that an idle mutator wastes little,
/// large enough that grants are rare on allocation-heavy workloads.
pub const TLAB_CELLS: usize = 256;

/// VM-wide TLAB capacity handout. Cheap to share (`Arc`), lock-free.
#[derive(Debug, Default)]
pub struct ChunkAllocator {
    chunks: AtomicU64,
    cells: AtomicU64,
}

impl ChunkAllocator {
    /// A fresh allocator with nothing granted.
    pub fn new() -> ChunkAllocator {
        ChunkAllocator::default()
    }

    /// Hands one chunk of capacity ([`TLAB_CELLS`] cells) to a requesting
    /// mutator heap, returning the cell count granted.
    pub fn grant(&self) -> usize {
        self.grant_many(1)
    }

    /// Hands `chunks` chunks of capacity at once, returning the total cell
    /// count granted. Heaps request geometrically growing grants (one
    /// chunk, then enough to double) so large arenas stay O(n) in copying
    /// while accounting remains chunk-granular.
    pub fn grant_many(&self, chunks: usize) -> usize {
        let cells = chunks * TLAB_CELLS;
        self.chunks.fetch_add(chunks as u64, Ordering::Relaxed);
        self.cells.fetch_add(cells as u64, Ordering::Relaxed);
        cells
    }

    /// Chunks granted so far, across every mutator.
    pub fn chunks_granted(&self) -> u64 {
        self.chunks.load(Ordering::Relaxed)
    }

    /// Cells granted so far, across every mutator.
    pub fn cells_granted(&self) -> u64 {
        self.cells.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn grants_accumulate_across_threads() {
        let alloc = Arc::new(ChunkAllocator::new());
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let alloc = Arc::clone(&alloc);
                scope.spawn(move || {
                    for _ in 0..10 {
                        assert_eq!(alloc.grant(), TLAB_CELLS);
                    }
                });
            }
        });
        assert_eq!(alloc.chunks_granted(), 40);
        assert_eq!(alloc.cells_granted(), 40 * TLAB_CELLS as u64);
    }
}
