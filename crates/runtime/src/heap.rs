//! The managed heap: objects, arrays, monitors and statics.

use crate::tlab::{ChunkAllocator, TLAB_CELLS};
use crate::{Stats, Value, VmError};
use pea_bytecode::{ClassId, FieldId, Program, StaticDecl, ValueKind};
use pea_metrics::HeapRecorder;
use std::fmt;
use std::sync::Arc;

/// A non-null reference into the [`Heap`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ObjRef(u32);

impl ObjRef {
    /// Raw heap index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Builds a reference from a raw heap index.
    #[inline]
    pub fn from_index(index: usize) -> Self {
        ObjRef(u32::try_from(index).expect("heap index exceeds u32"))
    }
}

impl fmt::Debug for ObjRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "@{}", self.0)
    }
}

impl fmt::Display for ObjRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "@{}", self.0)
    }
}

/// Payload of a heap cell: a class instance or an array.
#[derive(Clone, Debug)]
pub enum HeapObject {
    /// An instance with fields laid out per
    /// [`Program::instance_fields`].
    Instance {
        /// Dynamic class.
        class: ClassId,
        /// Field values in layout order.
        fields: Vec<Value>,
    },
    /// An array of a single element kind.
    Array {
        /// Element kind.
        kind: ValueKind,
        /// Element values.
        elems: Vec<Value>,
    },
}

/// One heap cell: payload plus its (single-threaded) monitor.
#[derive(Clone, Debug)]
pub struct HeapCell {
    /// Object payload.
    pub object: HeapObject,
    /// Recursive monitor hold count.
    pub lock_count: u32,
}

/// Static (global) variable storage.
#[derive(Clone, Debug, Default)]
pub struct Statics {
    values: Vec<Value>,
}

impl Statics {
    /// Creates storage with default values for each declaration.
    pub fn new(decls: &[StaticDecl]) -> Self {
        Statics {
            values: decls.iter().map(|d| Value::default_for(d.kind)).collect(),
        }
    }

    /// Reads a static variable.
    #[inline]
    pub fn get(&self, id: pea_bytecode::StaticId) -> Value {
        self.values[id.index()]
    }

    /// Writes a static variable.
    #[inline]
    pub fn set(&mut self, id: pea_bytecode::StaticId, value: Value) {
        self.values[id.index()] = value;
    }

    /// Resets all statics to their default values.
    pub fn reset(&mut self, decls: &[StaticDecl]) {
        self.values = decls.iter().map(|d| Value::default_for(d.kind)).collect();
    }
}

/// The managed heap. Allocation is a bump into a vector; every allocation
/// and monitor operation updates [`Stats`], which is what the paper's
/// Table 1 measures.
#[derive(Clone, Debug, Default)]
pub struct Heap {
    cells: Vec<HeapCell>,
    /// Execution statistics, updated by allocation and monitor operations.
    pub stats: Stats,
    recorder: HeapRecorder,
    /// Shared TLAB capacity source; when set, cell storage grows in
    /// chunk-granted increments instead of `Vec`'s doubling.
    tlab: Option<Arc<ChunkAllocator>>,
}

impl Heap {
    /// Creates an empty heap.
    pub fn new() -> Self {
        Self::default()
    }

    /// Attaches a metrics recorder; every subsequent allocation also feeds
    /// the per-class counters of the recorder's hub.
    pub fn set_metrics(&mut self, recorder: HeapRecorder) {
        self.recorder = recorder;
    }

    /// Attaches the VM-wide chunk allocator this heap draws TLAB capacity
    /// from. Bump allocation stays thread-local; only capacity grants touch
    /// the (lock-free) shared allocator.
    pub fn set_chunk_source(&mut self, source: Arc<ChunkAllocator>) {
        self.tlab = Some(source);
    }

    /// Folds any buffered per-thread allocation counts into the shared
    /// metrics registry. Called at quiescent points (outermost call exit,
    /// metrics snapshot, mutator teardown); a no-op for direct recorders.
    pub fn flush_metrics(&mut self) {
        self.recorder.flush();
    }

    /// Number of live cells (allocations since creation; nothing is freed).
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// Whether the heap has no allocations.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Allocates a class instance with default-valued fields.
    pub fn alloc_instance(&mut self, program: &Program, class: ClassId) -> ObjRef {
        let fields = program
            .instance_fields(class)
            .iter()
            .map(|&f| Value::default_for(program.field(f).kind))
            .collect();
        let bytes = program.object_size(class);
        self.stats.record_alloc(bytes);
        self.recorder.record_instance(class.index(), bytes);
        self.push(HeapObject::Instance { class, fields })
    }

    /// Allocates an array of `len` default-valued elements.
    ///
    /// # Errors
    ///
    /// [`VmError::NegativeArrayLength`] if `len < 0`.
    pub fn alloc_array(&mut self, kind: ValueKind, len: i64) -> Result<ObjRef, VmError> {
        if len < 0 {
            return Err(VmError::NegativeArrayLength(len));
        }
        let bytes = Program::array_size(len as u64);
        self.stats.record_alloc(bytes);
        self.recorder.record_array(bytes);
        Ok(self.push(HeapObject::Array {
            kind,
            elems: vec![Value::default_for(kind); len as usize],
        }))
    }

    fn push(&mut self, object: HeapObject) -> ObjRef {
        if let Some(tlab) = &self.tlab {
            if self.cells.len() == self.cells.capacity() {
                // Geometric: request enough chunks to double the arena
                // (minimum one), so repeated growth copies O(n) cells
                // total while the allocator's accounting stays
                // chunk-granular.
                let chunks = self.cells.capacity().max(1).div_ceil(TLAB_CELLS);
                let cells = tlab.grant_many(chunks);
                self.cells.reserve_exact(cells);
                self.recorder.record_tlab_grant(chunks as u64, cells as u64);
            }
        }
        self.cells.push(HeapCell {
            object,
            lock_count: 0,
        });
        ObjRef::from_index(self.cells.len() - 1)
    }

    /// Immutable access to a cell.
    #[inline]
    pub fn cell(&self, r: ObjRef) -> &HeapCell {
        &self.cells[r.index()]
    }

    /// Dynamic class of an instance.
    ///
    /// # Errors
    ///
    /// [`VmError::TypeMismatch`] if `r` is an array.
    pub fn class_of(&self, r: ObjRef) -> Result<ClassId, VmError> {
        match &self.cell(r).object {
            HeapObject::Instance { class, .. } => Ok(*class),
            HeapObject::Array { .. } => Err(VmError::TypeMismatch {
                expected: "instance",
                found: "array",
            }),
        }
    }

    /// Field slot index of `field` within the layout of `r`'s class.
    fn field_slot(&self, program: &Program, r: ObjRef, field: FieldId) -> Result<usize, VmError> {
        let class = self.class_of(r)?;
        program
            .instance_fields(class)
            .iter()
            .position(|&f| f == field)
            .ok_or_else(|| {
                VmError::NoSuchField(format!(
                    "{}.{}",
                    program.class(program.field(field).class).name,
                    program.field(field).name
                ))
            })
    }

    /// Reads an instance field.
    ///
    /// # Errors
    ///
    /// Field-resolution and kind errors as in [`VmError`].
    pub fn get_field(
        &self,
        program: &Program,
        r: ObjRef,
        field: FieldId,
    ) -> Result<Value, VmError> {
        let slot = self.field_slot(program, r, field)?;
        match &self.cell(r).object {
            HeapObject::Instance { fields, .. } => Ok(fields[slot]),
            HeapObject::Array { .. } => unreachable!("field_slot checked instance"),
        }
    }

    /// Writes an instance field.
    ///
    /// # Errors
    ///
    /// Field-resolution errors as in [`VmError`].
    pub fn put_field(
        &mut self,
        program: &Program,
        r: ObjRef,
        field: FieldId,
        value: Value,
    ) -> Result<(), VmError> {
        let slot = self.field_slot(program, r, field)?;
        match &mut self.cells[r.index()].object {
            HeapObject::Instance { fields, .. } => {
                fields[slot] = value;
                Ok(())
            }
            HeapObject::Array { .. } => unreachable!("field_slot checked instance"),
        }
    }

    /// Reads an instance field at a pre-resolved `(declaring class, slot)`
    /// offset — the linear tier's fast path. Object layouts are
    /// prefix-stable (superclass fields first), so one subclass check
    /// validates the slot; anything else falls back to [`Self::get_field`]
    /// for byte-identical error reporting.
    ///
    /// # Errors
    ///
    /// Exactly as [`Self::get_field`].
    pub fn get_field_at(
        &self,
        program: &Program,
        r: ObjRef,
        declaring: ClassId,
        slot: usize,
        field: FieldId,
    ) -> Result<Value, VmError> {
        if let HeapObject::Instance { class, fields } = &self.cell(r).object {
            if program.is_subclass_of(*class, declaring) {
                return Ok(fields[slot]);
            }
        }
        self.get_field(program, r, field)
    }

    /// Writes an instance field at a pre-resolved offset; see
    /// [`Self::get_field_at`].
    ///
    /// # Errors
    ///
    /// Exactly as [`Self::put_field`].
    pub fn put_field_at(
        &mut self,
        program: &Program,
        r: ObjRef,
        declaring: ClassId,
        slot: usize,
        field: FieldId,
        value: Value,
    ) -> Result<(), VmError> {
        if let HeapObject::Instance { class, fields } = &mut self.cells[r.index()].object {
            if program.is_subclass_of(*class, declaring) {
                fields[slot] = value;
                return Ok(());
            }
        }
        self.put_field(program, r, field, value)
    }

    /// Reads an array element.
    ///
    /// # Errors
    ///
    /// [`VmError::IndexOutOfBounds`] or [`VmError::TypeMismatch`].
    pub fn array_get(&self, r: ObjRef, index: i64) -> Result<Value, VmError> {
        match &self.cell(r).object {
            HeapObject::Array { elems, .. } => {
                if index < 0 || index as usize >= elems.len() {
                    return Err(VmError::IndexOutOfBounds {
                        index,
                        length: elems.len(),
                    });
                }
                Ok(elems[index as usize])
            }
            HeapObject::Instance { .. } => Err(VmError::TypeMismatch {
                expected: "array",
                found: "instance",
            }),
        }
    }

    /// Writes an array element.
    ///
    /// # Errors
    ///
    /// [`VmError::IndexOutOfBounds`] or [`VmError::TypeMismatch`].
    pub fn array_set(&mut self, r: ObjRef, index: i64, value: Value) -> Result<(), VmError> {
        match &mut self.cells[r.index()].object {
            HeapObject::Array { elems, .. } => {
                if index < 0 || index as usize >= elems.len() {
                    return Err(VmError::IndexOutOfBounds {
                        index,
                        length: elems.len(),
                    });
                }
                elems[index as usize] = value;
                Ok(())
            }
            HeapObject::Instance { .. } => Err(VmError::TypeMismatch {
                expected: "array",
                found: "instance",
            }),
        }
    }

    /// Array length.
    ///
    /// # Errors
    ///
    /// [`VmError::TypeMismatch`] on instances.
    pub fn array_length(&self, r: ObjRef) -> Result<i64, VmError> {
        match &self.cell(r).object {
            HeapObject::Array { elems, .. } => Ok(elems.len() as i64),
            HeapObject::Instance { .. } => Err(VmError::TypeMismatch {
                expected: "array",
                found: "instance",
            }),
        }
    }

    /// Acquires the monitor of `r` (recursively) and counts the operation.
    pub fn monitor_enter(&mut self, r: ObjRef) {
        self.cells[r.index()].lock_count += 1;
        self.stats.monitor_enters += 1;
    }

    /// Releases the monitor of `r` and counts the operation.
    ///
    /// # Errors
    ///
    /// [`VmError::IllegalMonitorState`] if the monitor is not held.
    pub fn monitor_exit(&mut self, r: ObjRef) -> Result<(), VmError> {
        let cell = &mut self.cells[r.index()];
        if cell.lock_count == 0 {
            return Err(VmError::IllegalMonitorState);
        }
        cell.lock_count -= 1;
        self.stats.monitor_exits += 1;
        Ok(())
    }

    /// Current recursive hold count of `r`'s monitor.
    pub fn lock_count(&self, r: ObjRef) -> u32 {
        self.cell(r).lock_count
    }

    /// Total monitor holds across the heap (0 when all lock/unlock pairs
    /// are balanced; asserted by tests at quiescent points).
    pub fn total_lock_holds(&self) -> u64 {
        self.cells.iter().map(|c| u64::from(c.lock_count)).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pea_bytecode::{ProgramBuilder, StaticId};

    fn program() -> (Program, ClassId, FieldId, FieldId) {
        let mut pb = ProgramBuilder::new();
        let key = pb.add_class("Key", None);
        let idx = pb.add_field(key, "idx", ValueKind::Int);
        let rf = pb.add_field(key, "ref", ValueKind::Ref);
        pb.add_static("g", ValueKind::Ref);
        (pb.build().unwrap(), key, idx, rf)
    }

    #[test]
    fn alloc_initializes_defaults_and_counts() {
        let (p, key, idx, rf) = program();
        let mut heap = Heap::new();
        let r = heap.alloc_instance(&p, key);
        assert_eq!(heap.get_field(&p, r, idx).unwrap(), Value::Int(0));
        assert_eq!(heap.get_field(&p, r, rf).unwrap(), Value::Null);
        assert_eq!(heap.stats.alloc_count, 1);
        assert_eq!(heap.stats.alloc_bytes, 16 + 16);
    }

    #[test]
    fn field_round_trip() {
        let (p, key, idx, _) = program();
        let mut heap = Heap::new();
        let r = heap.alloc_instance(&p, key);
        heap.put_field(&p, r, idx, Value::Int(42)).unwrap();
        assert_eq!(heap.get_field(&p, r, idx).unwrap(), Value::Int(42));
    }

    #[test]
    fn arrays_round_trip_and_bound_check() {
        let mut heap = Heap::new();
        let r = heap.alloc_array(ValueKind::Int, 3).unwrap();
        heap.array_set(r, 2, Value::Int(9)).unwrap();
        assert_eq!(heap.array_get(r, 2).unwrap(), Value::Int(9));
        assert_eq!(heap.array_length(r).unwrap(), 3);
        assert!(matches!(
            heap.array_get(r, 3),
            Err(VmError::IndexOutOfBounds { .. })
        ));
        assert!(matches!(
            heap.array_get(r, -1),
            Err(VmError::IndexOutOfBounds { .. })
        ));
    }

    #[test]
    fn negative_array_length_rejected() {
        let mut heap = Heap::new();
        assert_eq!(
            heap.alloc_array(ValueKind::Ref, -1).unwrap_err(),
            VmError::NegativeArrayLength(-1)
        );
    }

    #[test]
    fn monitors_count_and_balance() {
        let (p, key, ..) = program();
        let mut heap = Heap::new();
        let r = heap.alloc_instance(&p, key);
        heap.monitor_enter(r);
        heap.monitor_enter(r);
        assert_eq!(heap.lock_count(r), 2);
        heap.monitor_exit(r).unwrap();
        heap.monitor_exit(r).unwrap();
        assert_eq!(
            heap.monitor_exit(r).unwrap_err(),
            VmError::IllegalMonitorState
        );
        assert_eq!(heap.stats.monitor_enters, 2);
        assert_eq!(heap.stats.monitor_exits, 2);
        assert_eq!(heap.total_lock_holds(), 0);
    }

    #[test]
    fn statics_default_and_set() {
        let (p, ..) = program();
        let mut statics = Statics::new(&p.statics);
        let g = StaticId(0);
        assert_eq!(statics.get(g), Value::Null);
        statics.set(g, Value::Int(5));
        assert_eq!(statics.get(g), Value::Int(5));
        statics.reset(&p.statics);
        assert_eq!(statics.get(g), Value::Null);
    }

    #[test]
    fn array_bytes_accounted() {
        let mut heap = Heap::new();
        heap.alloc_array(ValueKind::Int, 10).unwrap();
        assert_eq!(heap.stats.alloc_bytes, 16 + 80);
    }

    #[test]
    fn attached_recorder_sees_instances_and_arrays() {
        let (p, key, ..) = program();
        let hub = pea_metrics::MetricsHub::enabled();
        let names: Vec<&str> = p.classes.iter().map(|c| c.name.as_str()).collect();
        let mut heap = Heap::new();
        heap.set_metrics(HeapRecorder::new(&hub, names));
        heap.alloc_instance(&p, key);
        heap.alloc_array(ValueKind::Int, 10).unwrap();
        let snap = hub.snapshot().unwrap();
        assert_eq!(snap.counter("heap.allocs"), 2);
        assert_eq!(snap.counter("heap.bytes"), heap.stats.alloc_bytes);
        assert_eq!(snap.counter("heap.class.Key.allocs"), 1);
        assert_eq!(snap.counter("heap.class.array.allocs"), 1);
    }

    #[test]
    fn tlab_capacity_granted_in_chunks_and_counted() {
        let (p, key, ..) = program();
        let hub = pea_metrics::MetricsHub::enabled();
        let names: Vec<&str> = p.classes.iter().map(|c| c.name.as_str()).collect();
        let source = Arc::new(ChunkAllocator::new());
        let mut heap = Heap::new();
        heap.set_metrics(HeapRecorder::buffered(&hub, names));
        heap.set_chunk_source(Arc::clone(&source));
        for _ in 0..TLAB_CELLS + 1 {
            heap.alloc_instance(&p, key);
        }
        assert_eq!(source.chunks_granted(), 2);
        assert_eq!(source.cells_granted(), 2 * TLAB_CELLS as u64);
        // Buffered counts are invisible until the quiescent-point flush.
        assert_eq!(hub.snapshot().unwrap().counter("heap.allocs"), 0);
        heap.flush_metrics();
        let snap = hub.snapshot().unwrap();
        assert_eq!(snap.counter("heap.allocs"), TLAB_CELLS as u64 + 1);
        assert_eq!(snap.counter("heap.class.Key.allocs"), TLAB_CELLS as u64 + 1);
        assert_eq!(snap.counter("heap.tlab_chunks"), 2);
        assert_eq!(snap.counter("heap.tlab_cells"), 2 * TLAB_CELLS as u64);
    }

    #[test]
    fn class_of_rejects_arrays() {
        let mut heap = Heap::new();
        let r = heap.alloc_array(ValueKind::Int, 1).unwrap();
        assert!(heap.class_of(r).is_err());
    }
}
