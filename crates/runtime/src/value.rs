//! Dynamically typed runtime values.

use crate::{ObjRef, VmError};
use pea_bytecode::ValueKind;
use std::fmt;

/// A runtime value: a 64-bit integer, an object reference, or null.
///
/// Booleans are integers `0`/`1`, matching the bytecode's view.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Value {
    /// 64-bit signed integer.
    Int(i64),
    /// Non-null object (or array) reference.
    Ref(ObjRef),
    /// The null reference.
    Null,
}

impl Value {
    /// Default value for a storage kind: `0` for ints, `null` for refs.
    pub fn default_for(kind: ValueKind) -> Value {
        match kind {
            ValueKind::Int => Value::Int(0),
            ValueKind::Ref => Value::Null,
        }
    }

    /// Boolean as value: `1` or `0`.
    pub fn from_bool(b: bool) -> Value {
        Value::Int(i64::from(b))
    }

    /// Extracts an integer.
    ///
    /// # Errors
    ///
    /// [`VmError::TypeMismatch`] if the value is a reference or null.
    pub fn as_int(self) -> Result<i64, VmError> {
        match self {
            Value::Int(v) => Ok(v),
            other => Err(VmError::TypeMismatch {
                expected: "int",
                found: other.kind_name(),
            }),
        }
    }

    /// Extracts an object reference, treating null as an error.
    ///
    /// # Errors
    ///
    /// [`VmError::NullPointer`] on null, [`VmError::TypeMismatch`] on ints.
    pub fn as_ref(self) -> Result<ObjRef, VmError> {
        match self {
            Value::Ref(r) => Ok(r),
            Value::Null => Err(VmError::NullPointer),
            other => Err(VmError::TypeMismatch {
                expected: "ref",
                found: other.kind_name(),
            }),
        }
    }

    /// Extracts a reference-kind value (null allowed).
    ///
    /// # Errors
    ///
    /// [`VmError::TypeMismatch`] on ints.
    pub fn as_ref_or_null(self) -> Result<Option<ObjRef>, VmError> {
        match self {
            Value::Ref(r) => Ok(Some(r)),
            Value::Null => Ok(None),
            other => Err(VmError::TypeMismatch {
                expected: "ref",
                found: other.kind_name(),
            }),
        }
    }

    /// Whether this is the null reference.
    pub fn is_null(self) -> bool {
        matches!(self, Value::Null)
    }

    /// Truthiness for branch conditions: non-zero integers are true.
    ///
    /// # Errors
    ///
    /// [`VmError::TypeMismatch`] on references.
    pub fn as_bool(self) -> Result<bool, VmError> {
        Ok(self.as_int()? != 0)
    }

    fn kind_name(self) -> &'static str {
        match self {
            Value::Int(_) => "int",
            Value::Ref(_) => "ref",
            Value::Null => "null",
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(v) => write!(f, "{v}"),
            Value::Ref(r) => write!(f, "{r}"),
            Value::Null => f.write_str("null"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<ObjRef> for Value {
    fn from(r: ObjRef) -> Self {
        Value::Ref(r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_kinds() {
        assert_eq!(Value::default_for(ValueKind::Int), Value::Int(0));
        assert_eq!(Value::default_for(ValueKind::Ref), Value::Null);
    }

    #[test]
    fn int_extraction() {
        assert_eq!(Value::Int(5).as_int().unwrap(), 5);
        assert!(Value::Null.as_int().is_err());
    }

    #[test]
    fn ref_extraction() {
        let r = ObjRef::from_index(3);
        assert_eq!(Value::Ref(r).as_ref().unwrap(), r);
        assert_eq!(Value::Null.as_ref().unwrap_err(), VmError::NullPointer);
        assert!(Value::Int(1).as_ref().is_err());
        assert_eq!(Value::Null.as_ref_or_null().unwrap(), None);
    }

    #[test]
    fn bools_are_ints() {
        assert_eq!(Value::from_bool(true), Value::Int(1));
        assert!(Value::Int(2).as_bool().unwrap());
        assert!(!Value::Int(0).as_bool().unwrap());
    }

    #[test]
    fn display_forms() {
        assert_eq!(Value::Int(-3).to_string(), "-3");
        assert_eq!(Value::Null.to_string(), "null");
    }
}
