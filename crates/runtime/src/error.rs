//! Runtime errors shared by the interpreter, the compiled-code evaluator
//! and the VM.

use crate::ObjRef;
use std::error::Error;
use std::fmt;

/// An execution error. Both execution tiers raise identical errors for
/// identical programs, which the differential test suite relies on.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum VmError {
    /// Dereference of the null reference.
    NullPointer,
    /// An int was used as a reference or vice versa.
    TypeMismatch {
        /// What the operation required.
        expected: &'static str,
        /// What it received.
        found: &'static str,
    },
    /// Integer division or remainder by zero.
    DivisionByZero,
    /// Array access out of bounds.
    IndexOutOfBounds {
        /// The offending index.
        index: i64,
        /// The array length.
        length: usize,
    },
    /// Negative array length at allocation.
    NegativeArrayLength(i64),
    /// `checkcast` failure.
    ClassCast {
        /// Name of the expected class.
        expected: String,
        /// Name of the actual class.
        found: String,
    },
    /// Field access on an object whose class does not declare the field.
    NoSuchField(String),
    /// Virtual dispatch found no implementation.
    NoSuchMethod(String),
    /// `monitorexit` on a monitor the current activation does not hold.
    IllegalMonitorState,
    /// `throw` was executed; carries the user error code.
    UserException(i64),
    /// An `athrow`n exception is propagating and has not yet been caught.
    /// Internal to the execution tiers: [`VmError::Thrown`] unwinds through
    /// `invoke` results and is either dispatched to a handler by the caller
    /// or converted to [`VmError::UncaughtException`] at the VM entry point.
    /// The payload is the heap reference of the exception object.
    Thrown(ObjRef),
    /// An exception escaped the entry-point call without a matching
    /// handler. Identity is reported structurally — class name plus the
    /// exception's int fields in declaration order — because raw heap ids
    /// differ between tiers when scalar replacement elides allocations.
    UncaughtException {
        /// Dynamic class name of the thrown object.
        class: String,
        /// Values of the object's int fields, in field-declaration order.
        fields: Vec<i64>,
    },
    /// Interpreter/evaluator ran past its fuel budget (guards runaway
    /// loops in tests and benchmarks).
    OutOfFuel,
    /// Internal invariant violation; indicates a compiler bug.
    Internal(String),
}

impl fmt::Display for VmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VmError::NullPointer => f.write_str("null pointer dereference"),
            VmError::TypeMismatch { expected, found } => {
                write!(f, "type mismatch: expected {expected}, found {found}")
            }
            VmError::DivisionByZero => f.write_str("division by zero"),
            VmError::IndexOutOfBounds { index, length } => {
                write!(f, "index {index} out of bounds for length {length}")
            }
            VmError::NegativeArrayLength(n) => write!(f, "negative array length {n}"),
            VmError::ClassCast { expected, found } => {
                write!(f, "class cast: `{found}` is not a `{expected}`")
            }
            VmError::NoSuchField(n) => write!(f, "no such field `{n}`"),
            VmError::NoSuchMethod(n) => write!(f, "no such method `{n}`"),
            VmError::IllegalMonitorState => f.write_str("illegal monitor state"),
            VmError::UserException(code) => write!(f, "user exception ({code})"),
            VmError::Thrown(obj) => write!(f, "exception in flight (object {obj})"),
            VmError::UncaughtException { class, fields } => {
                write!(f, "uncaught exception: {class}{fields:?}")
            }
            VmError::OutOfFuel => f.write_str("execution fuel exhausted"),
            VmError::Internal(msg) => write!(f, "internal error: {msg}"),
        }
    }
}

impl Error for VmError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_concise() {
        assert_eq!(VmError::NullPointer.to_string(), "null pointer dereference");
        assert_eq!(VmError::UserException(7).to_string(), "user exception (7)");
    }

    #[test]
    fn errors_are_comparable() {
        assert_eq!(VmError::DivisionByZero, VmError::DivisionByZero);
        assert_ne!(VmError::NullPointer, VmError::DivisionByZero);
    }
}
