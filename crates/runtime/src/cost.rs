//! The virtual cycle cost model shared by the interpreter and compiled
//! code.
//!
//! The paper reports "iterations per minute" on real hardware; our
//! substitute is a deterministic cycle counter. Costs are chosen so the
//! *relative* effects the paper measures are reproduced:
//!
//! * allocation is expensive (zeroing + allocation-path work), so removing
//!   allocations speeds execution;
//! * monitor operations cost more than plain ALU work, so lock elision is
//!   visible;
//! * interpreted code pays a per-instruction dispatch penalty, so JIT
//!   compilation matters;
//! * compiled activations pay a small cost proportional to machine-code
//!   size (instruction-cache pressure), so the code-size growth PEA can
//!   cause (paper §6.1, the jython regression) can show up as a slowdown.

/// Dispatch overhead per interpreted instruction.
pub const INTERP_DISPATCH: u64 = 14;

/// Base cost of a heap allocation (header setup, allocation-path work).
pub const ALLOC_BASE: u64 = 40;

/// Additional allocation cost per 8-byte slot (zeroing).
pub const ALLOC_PER_SLOT: u64 = 2;

/// Cost of a monitor enter or exit (CAS-like).
pub const MONITOR_OP: u64 = 18;

/// Cost of a field or array access.
pub const MEMORY_OP: u64 = 4;

/// Cost of an ALU operation, comparison, or move.
pub const ALU_OP: u64 = 1;

/// Cost of taking a branch.
pub const BRANCH_OP: u64 = 2;

/// Call/return linkage overhead (per invocation, either tier).
pub const CALL_OVERHEAD: u64 = 22;

/// Cost of a taken deoptimization: frame reconstruction and interpreter
/// re-entry.
pub const DEOPT_PENALTY: u64 = 2_500;

/// Per-activation instruction-cache pressure: every compiled activation
/// pays `code_size_nodes / ICACHE_NODES_PER_UNIT * ICACHE_UNIT_COST`.
pub const ICACHE_NODES_PER_UNIT: u64 = 16;

/// See [`ICACHE_NODES_PER_UNIT`].
pub const ICACHE_UNIT_COST: u64 = 5;

/// Virtual cycles per simulated minute, used to convert measured cycles
/// into the paper's "iterations per minute" metric.
pub const CYCLES_PER_MINUTE: u64 = 60 * 1_000_000_000;

/// Allocation cost of an object or array spanning `bytes` heap bytes.
pub fn alloc_cost(bytes: u64) -> u64 {
    ALLOC_BASE + ALLOC_PER_SLOT * bytes.div_ceil(8)
}

/// Instruction-cache penalty for one activation of compiled code with
/// `code_size` scheduled nodes. Quadratic in the number of cache units:
/// small methods are effectively free, while code-size growth in already
/// large methods — exactly what PEA's per-branch materialization can
/// cause (paper §6.1, the jython regression) — costs superlinearly.
pub fn icache_cost(code_size: u64) -> u64 {
    let units = code_size / ICACHE_NODES_PER_UNIT;
    units * units * ICACHE_UNIT_COST
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_cost_scales_with_size() {
        assert!(alloc_cost(16) < alloc_cost(160));
        assert_eq!(alloc_cost(16), ALLOC_BASE + 2 * ALLOC_PER_SLOT);
    }

    #[test]
    fn icache_cost_scales_with_code_size() {
        assert_eq!(icache_cost(0), 0);
        assert!(icache_cost(320) > icache_cost(32));
    }

    #[test]
    #[allow(clippy::assertions_on_constants)]
    fn deopt_dwarfs_single_ops() {
        assert!(DEOPT_PENALTY > 100 * ALU_OP);
        assert!(DEOPT_PENALTY > alloc_cost(64));
    }
}
