//! Profiling data gathered by the interpreter and consumed by the
//! speculative compiler.
//!
//! Three feedback channels, mirroring what Graal gets from HotSpot:
//!
//! * **invocation counts** drive compilation thresholds;
//! * **branch profiles** (taken/not-taken per branch bci) drive
//!   speculative branch pruning — a branch that was never taken is compiled
//!   as a guard that deoptimizes, which is what lets Partial Escape
//!   Analysis remove allocations whose only escape is on a cold path;
//! * **receiver-type profiles** per call site drive guarded
//!   devirtualization and inlining.

use pea_bytecode::{ClassId, MethodId};
use std::collections::HashMap;

/// Taken/not-taken counters for one branch instruction.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BranchProfile {
    /// Times the branch was taken.
    pub taken: u64,
    /// Times it fell through.
    pub not_taken: u64,
}

impl BranchProfile {
    /// Total executions of the branch.
    pub fn total(&self) -> u64 {
        self.taken + self.not_taken
    }

    /// Probability of the branch being taken, if it ever executed.
    pub fn taken_probability(&self) -> Option<f64> {
        let total = self.total();
        (total > 0).then(|| self.taken as f64 / total as f64)
    }
}

/// Observed receiver classes at one virtual call site.
#[derive(Clone, Debug, Default)]
pub struct ReceiverProfile {
    counts: Vec<(ClassId, u64)>,
}

impl ReceiverProfile {
    /// Records one dispatch on `class`.
    pub fn record(&mut self, class: ClassId) {
        if let Some(entry) = self.counts.iter_mut().find(|(c, _)| *c == class) {
            entry.1 += 1;
        } else {
            self.counts.push((class, 1));
        }
    }

    /// Total observed dispatches.
    pub fn total(&self) -> u64 {
        self.counts.iter().map(|(_, n)| n).sum()
    }

    /// The single observed receiver class, if the site is monomorphic.
    pub fn monomorphic_class(&self) -> Option<ClassId> {
        match self.counts.as_slice() {
            [(class, _)] => Some(*class),
            _ => None,
        }
    }

    /// All observed (class, count) pairs.
    pub fn classes(&self) -> &[(ClassId, u64)] {
        &self.counts
    }
}

/// All profiling state, keyed by method and bytecode index.
#[derive(Clone, Debug, Default)]
pub struct ProfileStore {
    invocations: HashMap<MethodId, u64>,
    branches: HashMap<(MethodId, u32), BranchProfile>,
    receivers: HashMap<(MethodId, u32), ReceiverProfile>,
}

impl ProfileStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Counts one invocation of `method`; returns the new count.
    pub fn record_invocation(&mut self, method: MethodId) -> u64 {
        let n = self.invocations.entry(method).or_insert(0);
        *n += 1;
        *n
    }

    /// Invocation count of `method`.
    pub fn invocation_count(&self, method: MethodId) -> u64 {
        self.invocations.get(&method).copied().unwrap_or(0)
    }

    /// Records one branch outcome at `(method, bci)`.
    pub fn record_branch(&mut self, method: MethodId, bci: u32, taken: bool) {
        let p = self.branches.entry((method, bci)).or_default();
        if taken {
            p.taken += 1;
        } else {
            p.not_taken += 1;
        }
    }

    /// Branch profile at `(method, bci)`, if any executions were seen.
    pub fn branch(&self, method: MethodId, bci: u32) -> Option<BranchProfile> {
        self.branches.get(&(method, bci)).copied()
    }

    /// Records a receiver class at a virtual call site.
    pub fn record_receiver(&mut self, method: MethodId, bci: u32, class: ClassId) {
        self.receivers
            .entry((method, bci))
            .or_default()
            .record(class);
    }

    /// Receiver profile at `(method, bci)`.
    pub fn receiver(&self, method: MethodId, bci: u32) -> Option<&ReceiverProfile> {
        self.receivers.get(&(method, bci))
    }

    /// Drops all gathered data (used when a method is re-profiled after
    /// repeated deoptimization).
    pub fn clear_method(&mut self, method: MethodId) {
        self.invocations.remove(&method);
        self.branches.retain(|(m, _), _| *m != method);
        self.receivers.retain(|(m, _), _| *m != method);
    }

    /// Serializes the store as deterministic JSON lines (one flat object
    /// per record, sorted by kind then key), so a warmed-up profile can be
    /// saved with `--profile-out` and replayed with `--profile-in`.
    pub fn export_json(&self) -> String {
        use pea_trace::json::ObjectWriter;
        let mut out = String::new();
        let mut invocations: Vec<_> = self.invocations.iter().collect();
        invocations.sort();
        for (method, count) in invocations {
            let mut o = ObjectWriter::new();
            o.str("record", "invocation");
            o.num("method", method.index() as i64);
            o.num("count", *count as i64);
            out.push_str(&o.finish());
            out.push('\n');
        }
        let mut branches: Vec<_> = self.branches.iter().collect();
        branches.sort_by_key(|(k, _)| *k);
        for ((method, bci), p) in branches {
            let mut o = ObjectWriter::new();
            o.str("record", "branch");
            o.num("method", method.index() as i64);
            o.num("bci", *bci as i64);
            o.num("taken", p.taken as i64);
            o.num("not_taken", p.not_taken as i64);
            out.push_str(&o.finish());
            out.push('\n');
        }
        let mut receivers: Vec<_> = self.receivers.iter().collect();
        receivers.sort_by_key(|(k, _)| *k);
        for ((method, bci), p) in receivers {
            for (class, count) in p.classes() {
                let mut o = ObjectWriter::new();
                o.str("record", "receiver");
                o.num("method", method.index() as i64);
                o.num("bci", *bci as i64);
                o.num("class", class.index() as i64);
                o.num("count", *count as i64);
                out.push_str(&o.finish());
                out.push('\n');
            }
        }
        out
    }

    /// Parses a store back from [`export_json`] output. Blank lines are
    /// skipped; repeated records for the same key accumulate.
    ///
    /// # Errors
    ///
    /// A message naming the offending line on malformed input, an unknown
    /// record kind, or a negative count.
    pub fn import_json(text: &str) -> Result<ProfileStore, String> {
        fn field(obj: &pea_trace::json::Object, key: &str, line_no: usize) -> Result<u64, String> {
            let n = obj
                .get_num(key)
                .map_err(|e| format!("profile line {line_no}: {e}"))?;
            u64::try_from(n).map_err(|_| format!("profile line {line_no}: negative {key:?}"))
        }
        let mut store = ProfileStore::new();
        for (i, line) in text.lines().enumerate() {
            let line_no = i + 1;
            if line.trim().is_empty() {
                continue;
            }
            let obj = pea_trace::json::parse_object(line)
                .map_err(|e| format!("profile line {line_no}: {e}"))?;
            let record = obj
                .get_str("record")
                .map_err(|e| format!("profile line {line_no}: {e}"))?
                .to_string();
            let method = MethodId::from_index(field(&obj, "method", line_no)? as usize);
            match record.as_str() {
                "invocation" => {
                    *store.invocations.entry(method).or_insert(0) += field(&obj, "count", line_no)?;
                }
                "branch" => {
                    let bci = field(&obj, "bci", line_no)? as u32;
                    let p = store.branches.entry((method, bci)).or_default();
                    p.taken += field(&obj, "taken", line_no)?;
                    p.not_taken += field(&obj, "not_taken", line_no)?;
                }
                "receiver" => {
                    let bci = field(&obj, "bci", line_no)? as u32;
                    let class = ClassId::from_index(field(&obj, "class", line_no)? as usize);
                    let count = field(&obj, "count", line_no)?;
                    let p = store.receivers.entry((method, bci)).or_default();
                    if let Some(entry) = p.counts.iter_mut().find(|(c, _)| *c == class) {
                        entry.1 += count;
                    } else {
                        p.counts.push((class, count));
                    }
                }
                other => {
                    return Err(format!(
                        "profile line {line_no}: unknown record kind {other:?}"
                    ));
                }
            }
        }
        Ok(store)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn invocation_counts_increment() {
        let mut p = ProfileStore::new();
        let m = MethodId(0);
        assert_eq!(p.record_invocation(m), 1);
        assert_eq!(p.record_invocation(m), 2);
        assert_eq!(p.invocation_count(m), 2);
        assert_eq!(p.invocation_count(MethodId(1)), 0);
    }

    #[test]
    fn branch_profile_probability() {
        let mut p = ProfileStore::new();
        let m = MethodId(0);
        p.record_branch(m, 3, true);
        p.record_branch(m, 3, true);
        p.record_branch(m, 3, false);
        let b = p.branch(m, 3).unwrap();
        assert_eq!(b.total(), 3);
        let prob = b.taken_probability().unwrap();
        assert!((prob - 2.0 / 3.0).abs() < 1e-9);
        assert_eq!(BranchProfile::default().taken_probability(), None);
    }

    #[test]
    fn receiver_profile_monomorphism() {
        let mut r = ReceiverProfile::default();
        r.record(ClassId(0));
        r.record(ClassId(0));
        assert_eq!(r.monomorphic_class(), Some(ClassId(0)));
        r.record(ClassId(1));
        assert_eq!(r.monomorphic_class(), None);
        assert_eq!(r.total(), 3);
    }

    fn populated_store() -> ProfileStore {
        let mut p = ProfileStore::new();
        for _ in 0..120 {
            p.record_invocation(MethodId(0));
        }
        p.record_invocation(MethodId(2));
        p.record_branch(MethodId(0), 3, true);
        p.record_branch(MethodId(0), 3, true);
        p.record_branch(MethodId(0), 3, false);
        p.record_branch(MethodId(2), 7, false);
        p.record_receiver(MethodId(0), 5, ClassId(1));
        p.record_receiver(MethodId(0), 5, ClassId(1));
        p.record_receiver(MethodId(0), 5, ClassId(4));
        p
    }

    #[test]
    fn export_import_round_trips_every_channel() {
        let p = populated_store();
        let text = p.export_json();
        let q = ProfileStore::import_json(&text).unwrap();
        assert_eq!(q.invocation_count(MethodId(0)), 120);
        assert_eq!(q.invocation_count(MethodId(2)), 1);
        assert_eq!(q.branch(MethodId(0), 3), p.branch(MethodId(0), 3));
        assert_eq!(q.branch(MethodId(2), 7), p.branch(MethodId(2), 7));
        let r = q.receiver(MethodId(0), 5).unwrap();
        assert_eq!(r.classes(), p.receiver(MethodId(0), 5).unwrap().classes());
        // The round trip is a fixpoint: re-exporting yields identical text.
        assert_eq!(q.export_json(), text);
    }

    #[test]
    fn export_is_deterministic_and_sorted() {
        let text = populated_store().export_json();
        assert_eq!(text, populated_store().export_json());
        let kinds: Vec<&str> = text
            .lines()
            .map(|l| {
                if l.contains("\"record\":\"invocation\"") {
                    "invocation"
                } else if l.contains("\"record\":\"branch\"") {
                    "branch"
                } else {
                    "receiver"
                }
            })
            .collect();
        let mut sorted = kinds.clone();
        sorted.sort_by_key(|k| match *k {
            "invocation" => 0,
            "branch" => 1,
            _ => 2,
        });
        assert_eq!(kinds, sorted, "records grouped by kind");
    }

    #[test]
    fn import_rejects_malformed_lines() {
        assert!(ProfileStore::import_json("not json").is_err());
        assert!(ProfileStore::import_json("{\"record\":\"nope\",\"method\":0}").is_err());
        assert!(ProfileStore::import_json("{\"record\":\"invocation\",\"method\":0}").is_err());
        assert!(
            ProfileStore::import_json("{\"record\":\"invocation\",\"method\":0,\"count\":-1}")
                .is_err()
        );
        let empty = ProfileStore::import_json("\n\n").unwrap();
        assert_eq!(empty.invocation_count(MethodId(0)), 0);
    }

    #[test]
    fn clear_method_drops_all_channels() {
        let mut p = ProfileStore::new();
        let m = MethodId(0);
        p.record_invocation(m);
        p.record_branch(m, 0, true);
        p.record_receiver(m, 1, ClassId(0));
        p.clear_method(m);
        assert_eq!(p.invocation_count(m), 0);
        assert!(p.branch(m, 0).is_none());
        assert!(p.receiver(m, 1).is_none());
    }
}
