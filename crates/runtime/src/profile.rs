//! Profiling data gathered by the interpreter and consumed by the
//! speculative compiler.
//!
//! Three feedback channels, mirroring what Graal gets from HotSpot:
//!
//! * **invocation counts** drive compilation thresholds;
//! * **branch profiles** (taken/not-taken per branch bci) drive
//!   speculative branch pruning — a branch that was never taken is compiled
//!   as a guard that deoptimizes, which is what lets Partial Escape
//!   Analysis remove allocations whose only escape is on a cold path;
//! * **receiver-type profiles** per call site drive guarded
//!   devirtualization and inlining.

use pea_bytecode::{ClassId, MethodId};
use std::collections::HashMap;

/// Taken/not-taken counters for one branch instruction.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BranchProfile {
    /// Times the branch was taken.
    pub taken: u64,
    /// Times it fell through.
    pub not_taken: u64,
}

impl BranchProfile {
    /// Total executions of the branch.
    pub fn total(&self) -> u64 {
        self.taken + self.not_taken
    }

    /// Probability of the branch being taken, if it ever executed.
    pub fn taken_probability(&self) -> Option<f64> {
        let total = self.total();
        (total > 0).then(|| self.taken as f64 / total as f64)
    }
}

/// Observed receiver classes at one virtual call site.
#[derive(Clone, Debug, Default)]
pub struct ReceiverProfile {
    counts: Vec<(ClassId, u64)>,
}

impl ReceiverProfile {
    /// Records one dispatch on `class`.
    pub fn record(&mut self, class: ClassId) {
        if let Some(entry) = self.counts.iter_mut().find(|(c, _)| *c == class) {
            entry.1 += 1;
        } else {
            self.counts.push((class, 1));
        }
    }

    /// Total observed dispatches.
    pub fn total(&self) -> u64 {
        self.counts.iter().map(|(_, n)| n).sum()
    }

    /// The single observed receiver class, if the site is monomorphic.
    pub fn monomorphic_class(&self) -> Option<ClassId> {
        match self.counts.as_slice() {
            [(class, _)] => Some(*class),
            _ => None,
        }
    }

    /// All observed (class, count) pairs.
    pub fn classes(&self) -> &[(ClassId, u64)] {
        &self.counts
    }
}

/// All profiling state, keyed by method and bytecode index.
#[derive(Clone, Debug, Default)]
pub struct ProfileStore {
    invocations: HashMap<MethodId, u64>,
    branches: HashMap<(MethodId, u32), BranchProfile>,
    receivers: HashMap<(MethodId, u32), ReceiverProfile>,
}

impl ProfileStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Counts one invocation of `method`; returns the new count.
    pub fn record_invocation(&mut self, method: MethodId) -> u64 {
        let n = self.invocations.entry(method).or_insert(0);
        *n += 1;
        *n
    }

    /// Invocation count of `method`.
    pub fn invocation_count(&self, method: MethodId) -> u64 {
        self.invocations.get(&method).copied().unwrap_or(0)
    }

    /// Records one branch outcome at `(method, bci)`.
    pub fn record_branch(&mut self, method: MethodId, bci: u32, taken: bool) {
        let p = self.branches.entry((method, bci)).or_default();
        if taken {
            p.taken += 1;
        } else {
            p.not_taken += 1;
        }
    }

    /// Branch profile at `(method, bci)`, if any executions were seen.
    pub fn branch(&self, method: MethodId, bci: u32) -> Option<BranchProfile> {
        self.branches.get(&(method, bci)).copied()
    }

    /// Records a receiver class at a virtual call site.
    pub fn record_receiver(&mut self, method: MethodId, bci: u32, class: ClassId) {
        self.receivers
            .entry((method, bci))
            .or_default()
            .record(class);
    }

    /// Receiver profile at `(method, bci)`.
    pub fn receiver(&self, method: MethodId, bci: u32) -> Option<&ReceiverProfile> {
        self.receivers.get(&(method, bci))
    }

    /// Drops all gathered data (used when a method is re-profiled after
    /// repeated deoptimization).
    pub fn clear_method(&mut self, method: MethodId) {
        self.invocations.remove(&method);
        self.branches.retain(|(m, _), _| *m != method);
        self.receivers.retain(|(m, _), _| *m != method);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn invocation_counts_increment() {
        let mut p = ProfileStore::new();
        let m = MethodId(0);
        assert_eq!(p.record_invocation(m), 1);
        assert_eq!(p.record_invocation(m), 2);
        assert_eq!(p.invocation_count(m), 2);
        assert_eq!(p.invocation_count(MethodId(1)), 0);
    }

    #[test]
    fn branch_profile_probability() {
        let mut p = ProfileStore::new();
        let m = MethodId(0);
        p.record_branch(m, 3, true);
        p.record_branch(m, 3, true);
        p.record_branch(m, 3, false);
        let b = p.branch(m, 3).unwrap();
        assert_eq!(b.total(), 3);
        let prob = b.taken_probability().unwrap();
        assert!((prob - 2.0 / 3.0).abs() < 1e-9);
        assert_eq!(BranchProfile::default().taken_probability(), None);
    }

    #[test]
    fn receiver_profile_monomorphism() {
        let mut r = ReceiverProfile::default();
        r.record(ClassId(0));
        r.record(ClassId(0));
        assert_eq!(r.monomorphic_class(), Some(ClassId(0)));
        r.record(ClassId(1));
        assert_eq!(r.monomorphic_class(), None);
        assert_eq!(r.total(), 3);
    }

    #[test]
    fn clear_method_drops_all_channels() {
        let mut p = ProfileStore::new();
        let m = MethodId(0);
        p.record_invocation(m);
        p.record_branch(m, 0, true);
        p.record_receiver(m, 1, ClassId(0));
        p.clear_method(m);
        assert_eq!(p.invocation_count(m), 0);
        assert!(p.branch(m, 0).is_none());
        assert!(p.receiver(m, 1).is_none());
    }
}
