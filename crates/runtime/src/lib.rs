//! Shared runtime support for the PEA reproduction: dynamically typed
//! [`Value`]s, a managed [`Heap`] with the allocation/monitor statistics
//! the paper's evaluation reports, static (global) variable storage,
//! execution [`Stats`], branch/call [`profile`] data, and [`VmError`].
//!
//! The heap is a bump arena without reclamation: the paper's metrics are
//! *allocated bytes*, *allocation counts* and *monitor operations* per
//! benchmark iteration, none of which require a collector. Monitors are
//! modelled single-threaded but fully counted and balance-checked, which is
//! what Lock Elision changes.

pub mod cost;
mod error;
mod heap;
pub mod profile;
mod stats;
mod tlab;
mod value;

pub use error::VmError;
pub use heap::{Heap, HeapObject, ObjRef, Statics};
pub use stats::Stats;
pub use tlab::{ChunkAllocator, TLAB_CELLS};
pub use value::Value;
