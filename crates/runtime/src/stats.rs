//! Execution statistics: exactly the quantities the paper's Table 1
//! reports, plus a virtual cycle counter that stands in for wall-clock
//! time ("iterations per minute").

use std::fmt;
use std::ops::Sub;

/// Counters accumulated during execution.
///
/// `Stats` forms a monoid under per-field addition; [`Stats::delta`]
/// subtracts a snapshot, which is how the harness computes per-iteration
/// numbers.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Stats {
    /// Number of heap allocations (objects + arrays + rematerializations).
    pub alloc_count: u64,
    /// Total allocated bytes.
    pub alloc_bytes: u64,
    /// Monitor acquisitions.
    pub monitor_enters: u64,
    /// Monitor releases.
    pub monitor_exits: u64,
    /// Virtual cycles spent executing (interpreter + compiled code).
    pub cycles: u64,
    /// Deoptimizations taken (compiled → interpreter transfers).
    pub deopts: u64,
    /// Methods JIT-compiled.
    pub compiles: u64,
    /// Objects rematerialized during deoptimization (paper §5.5).
    pub rematerialized: u64,
}

impl Stats {
    /// Fresh, all-zero statistics.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one allocation of `bytes` bytes.
    #[inline]
    pub fn record_alloc(&mut self, bytes: u64) {
        self.alloc_count += 1;
        self.alloc_bytes += bytes;
    }

    /// Total monitor operations (enters + exits), the paper's
    /// "lock operations" metric.
    pub fn monitor_ops(&self) -> u64 {
        self.monitor_enters + self.monitor_exits
    }

    /// Per-field difference against an earlier snapshot.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `earlier` is not componentwise ≤ `self`.
    pub fn delta(&self, earlier: &Stats) -> Stats {
        *self - *earlier
    }
}

impl Sub for Stats {
    type Output = Stats;

    fn sub(self, rhs: Stats) -> Stats {
        Stats {
            alloc_count: self.alloc_count - rhs.alloc_count,
            alloc_bytes: self.alloc_bytes - rhs.alloc_bytes,
            monitor_enters: self.monitor_enters - rhs.monitor_enters,
            monitor_exits: self.monitor_exits - rhs.monitor_exits,
            cycles: self.cycles - rhs.cycles,
            deopts: self.deopts - rhs.deopts,
            compiles: self.compiles - rhs.compiles,
            rematerialized: self.rematerialized - rhs.rematerialized,
        }
    }
}

impl fmt::Display for Stats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "allocs={} bytes={} monitors={}/{} cycles={} deopts={} compiles={} remat={}",
            self.alloc_count,
            self.alloc_bytes,
            self.monitor_enters,
            self.monitor_exits,
            self.cycles,
            self.deopts,
            self.compiles,
            self.rematerialized
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_alloc_updates_both_counters() {
        let mut s = Stats::new();
        s.record_alloc(24);
        s.record_alloc(16);
        assert_eq!(s.alloc_count, 2);
        assert_eq!(s.alloc_bytes, 40);
    }

    #[test]
    fn delta_subtracts_componentwise() {
        let mut a = Stats::new();
        a.record_alloc(10);
        a.cycles = 100;
        let snapshot = a;
        a.record_alloc(5);
        a.cycles = 130;
        let d = a.delta(&snapshot);
        assert_eq!(d.alloc_count, 1);
        assert_eq!(d.alloc_bytes, 5);
        assert_eq!(d.cycles, 30);
    }

    #[test]
    fn monitor_ops_sums_both_directions() {
        let s = Stats {
            monitor_enters: 3,
            monitor_exits: 2,
            ..Stats::new()
        };
        assert_eq!(s.monitor_ops(), 5);
    }

    #[test]
    fn display_is_nonempty() {
        assert!(!Stats::new().to_string().is_empty());
    }
}
