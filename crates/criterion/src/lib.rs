//! Offline stand-in for the [criterion](https://crates.io/crates/criterion)
//! benchmark harness, implementing the subset of its API this workspace
//! uses: `Criterion`, `benchmark_group`, `sample_size`, `bench_function`,
//! `Bencher::iter`/`iter_with_setup`, `black_box`, and the
//! `criterion_group!`/`criterion_main!` macros.
//!
//! Measurement model: each `bench_function` runs a short warmup, then
//! `sample_size` timed samples (each sample auto-scales its iteration
//! count toward ~5 ms), and prints min/median/mean per-iteration times.
//! There is no statistical analysis, plotting, or baseline storage.

use std::hint;
use std::time::{Duration, Instant};

/// Opaque-to-the-optimizer identity function.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// The harness entry point handed to `criterion_group!` targets.
pub struct Criterion {
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        // cargo bench forwards CLI args; a bare non-flag arg is a name
        // filter (the only criterion CLI feature this shim supports).
        let filter = std::env::args()
            .skip(1)
            .find(|a| !a.starts_with('-') && a != "benches");
        Criterion { filter }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: 100,
        }
    }

    /// Ungrouped single benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<String>,
        f: F,
    ) -> &mut Self {
        let id = id.into();
        run_one(self, &id, 20, f);
        self
    }
}

/// A named collection of benchmarks sharing settings.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<String>,
        f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.into());
        let samples = self.sample_size;
        run_one(self.criterion, &full, samples, f);
        self
    }

    /// Ends the group (printing is incremental; nothing extra to do).
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(c: &Criterion, id: &str, samples: usize, mut f: F) {
    if let Some(filter) = &c.filter {
        if !id.contains(filter.as_str()) {
            return;
        }
    }
    let mut all = Vec::with_capacity(samples.max(1));
    // Warmup + calibration sample, then the measured samples.
    for _ in 0..=samples.max(1) {
        let mut b = Bencher {
            elapsed: Duration::ZERO,
            iters: 0,
        };
        f(&mut b);
        if b.iters > 0 {
            all.push(b.elapsed.as_nanos() as f64 / b.iters as f64);
        }
    }
    if all.len() > 1 {
        all.remove(0); // discard the warmup sample
    }
    all.sort_by(|a, b| a.total_cmp(b));
    if all.is_empty() {
        println!("{id:<48} (no iterations)");
        return;
    }
    let min = all[0];
    let median = all[all.len() / 2];
    let mean = all.iter().sum::<f64>() / all.len() as f64;
    println!(
        "{id:<48} min {:>12} median {:>12} mean {:>12}  ({} samples)",
        fmt_ns(min),
        fmt_ns(median),
        fmt_ns(mean),
        all.len()
    );
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

/// Passed to benchmark closures; accumulates timed iterations.
pub struct Bencher {
    elapsed: Duration,
    iters: u64,
}

impl Bencher {
    /// Scale iteration counts so one sample takes roughly this long.
    const TARGET_SAMPLE: Duration = Duration::from_millis(5);

    /// Times `routine` repeatedly.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Calibrate: run once, then choose a batch size.
        let start = Instant::now();
        black_box(routine());
        let once = start.elapsed();
        let batch = batch_size(once);
        let start = Instant::now();
        for _ in 0..batch {
            black_box(routine());
        }
        self.elapsed = start.elapsed() + once;
        self.iters = batch + 1;
    }

    /// Times `routine` on fresh inputs from `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_with_setup<S, O, SF: FnMut() -> S, R: FnMut(S) -> O>(
        &mut self,
        mut setup: SF,
        mut routine: R,
    ) {
        let input = setup();
        let start = Instant::now();
        black_box(routine(input));
        let once = start.elapsed();
        let batch = batch_size(once);
        let mut elapsed = once;
        for _ in 0..batch {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            elapsed += start.elapsed();
        }
        self.elapsed = elapsed;
        self.iters = batch + 1;
    }
}

fn batch_size(once: Duration) -> u64 {
    if once.is_zero() {
        1000
    } else {
        (Bencher::TARGET_SAMPLE.as_nanos() / once.as_nanos().max(1)).clamp(1, 100_000) as u64
    }
}

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo test` may execute bench binaries with --test to check
            // they run; keep that path instant.
            if std::env::args().any(|a| a == "--test") {
                return;
            }
            $($group();)+
        }
    };
}
