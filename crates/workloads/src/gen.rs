//! Seeded random program generator for differential fuzzing.
//!
//! [`generate`] turns a 64-bit seed into a self-contained assembly
//! program exercising the exception and guarded-dispatch machinery:
//! conditional throwers, try/catch callers, properly nested try
//! regions, finally-style catch-all handlers that rethrow, and virtual
//! call sites with 1–4 receiver classes. The generator is a pure
//! function of the seed (an xorshift64* stream — no global RNG, no
//! clock), and the generated program's `iterate(i)` result is a pure
//! function of `i`: randomness shapes the program's *structure*, never
//! its runtime behaviour. That makes every seed usable as a
//! differential test case — interpreter vs JIT, sync vs background,
//! `--checked` on or off — where any divergence is a VM bug.
//!
//! Structural guarantees relied on by the fuzz harnesses:
//!
//! - helpers form an acyclic call graph (`h{i}` calls only `h{j}` with
//!   `j < i`), so every program terminates;
//! - every thrown object is a `GErr` carrying an `int` code, and
//!   `iterate` catches `GErr` around each helper call, folding the code
//!   into the accumulator — uncaught exceptions never surface;
//! - all try ranges are disjoint or properly nested with the inner
//!   range listed first, matching the verifier's exception-table rules.

use std::fmt::Write as _;

/// Minimal xorshift64* PRNG — deterministic, dependency-free, and
/// explicitly seeded (the workload crates must not read the clock).
pub struct Rng(u64);

impl Rng {
    /// Creates a generator; a zero seed is remapped (xorshift has a
    /// fixed point at zero).
    pub fn new(seed: u64) -> Rng {
        Rng(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).max(1))
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform value in `0..n` (n > 0).
    pub fn below(&mut self, n: u64) -> u64 {
        self.next_u64() % n
    }

    /// Uniform value in `lo..hi` (lo < hi).
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        lo + self.below(hi - lo)
    }
}

/// Helper-method body shapes the generator draws from.
enum Template {
    /// Leaf arithmetic, never throws.
    Arith,
    /// Throws a fresh `GErr` when `arg % k == 0`, else returns
    /// arithmetic on the argument.
    ConditionalThrower,
    /// Calls an earlier helper inside `try/catch GErr`, recovering
    /// with the error code.
    TryCatchCaller,
    /// Two properly nested try regions: inner catches `GErr`, outer is
    /// a finally-style catch-all that rethrows after recording.
    NestedTry,
    /// Guarded virtual dispatch over 1–4 fresh receiver classes chosen
    /// by `arg % classes`; receivers never escape.
    VirtualDispatch,
}

/// Generates a complete assembly program from `seed`. The program
/// defines `method iterate 1 returns` whose result is a deterministic
/// function of its argument for any seed.
pub fn generate(seed: u64) -> String {
    let mut rng = Rng::new(seed);
    let n_helpers = rng.range(3, 7) as usize;
    let mut out = String::from(
        "
class GErr { field code int }
",
    );

    for i in 0..n_helpers {
        // Helper 0 has no earlier helper to call, so it must be a leaf
        // template; later helpers draw from the full set.
        let template = if i == 0 {
            match rng.below(3) {
                0 => Template::Arith,
                1 => Template::ConditionalThrower,
                _ => Template::VirtualDispatch,
            }
        } else {
            match rng.below(5) {
                0 => Template::Arith,
                1 => Template::ConditionalThrower,
                2 => Template::TryCatchCaller,
                3 => Template::NestedTry,
                _ => Template::VirtualDispatch,
            }
        };
        emit_helper(&mut out, &mut rng, i, template);
    }

    // iterate: call every helper on a perturbed argument, each inside
    // its own try/catch so thrown GErrs fold into the accumulator.
    out.push_str("method iterate 1 returns {\n");
    for i in 0..n_helpers {
        let _ = writeln!(out, "    try Ls{i} Le{i} Lh{i} GErr");
    }
    out.push_str("    const 0 store 1\n");
    for i in 0..n_helpers {
        let delta = rng.below(5);
        let _ = write!(
            out,
            "Ls{i}:
    load 0 const {delta} add invokestatic h{i}
Le{i}:
    load 1 add store 1
    goto Ln{i}
Lh{i}:
    checkcast GErr getfield GErr.code load 1 add store 1
Ln{i}:
"
        );
    }
    out.push_str("    load 1 retv\n}\n");
    out
}

fn emit_helper(out: &mut String, rng: &mut Rng, i: usize, template: Template) {
    match template {
        Template::Arith => {
            let m = rng.range(2, 9);
            let a = rng.below(50);
            let _ = write!(
                out,
                "method h{i} 1 returns {{
    load 0 const {m} mul const {a} add retv
}}
"
            );
        }
        Template::ConditionalThrower => {
            let k = rng.range(2, 7);
            let m = rng.range(2, 9);
            let _ = write!(
                out,
                "method h{i} 1 returns {{
    load 0 const {k} rem const 0 ifcmp ne Lok{i}
    new GErr store 1
    load 1 load 0 const 1 add putfield GErr.code
    load 1 athrow
Lok{i}:
    load 0 const {m} mul retv
}}
"
            );
        }
        Template::TryCatchCaller => {
            let j = rng.below(i as u64);
            let b = rng.below(20);
            let _ = write!(
                out,
                "method h{i} 1 returns {{
    try Ls{i} Le{i} Lh{i} GErr
Ls{i}:
    load 0 invokestatic h{j}
Le{i}:
    retv
Lh{i}:
    checkcast GErr getfield GErr.code const {b} add retv
}}
"
            );
        }
        Template::NestedTry => {
            let j = rng.below(i as u64);
            let b = rng.below(20);
            let c = rng.below(20);
            // Inner range [Lis, Lie) sits strictly inside the outer
            // [Los, Loe); the inner entry is listed first so it matches
            // first. The outer handler plays "finally": it recovers
            // from anything the inner GErr handler rethrows.
            let _ = write!(
                out,
                "method h{i} 1 returns {{
    try Lis{i} Lie{i} Lih{i} GErr
    try Los{i} Loe{i} Loh{i} *
Los{i}:
    load 0 const 1 add store 1
Lis{i}:
    load 1 invokestatic h{j}
Lie{i}:
    store 1
Loe{i}:
    load 1 retv
Lih{i}:
    store 2
    load 2 getfield GErr.code const {b} add store 1
    load 2 athrow
Loh{i}:
    pop
    load 1 const {c} add retv
}}
"
            );
        }
        Template::VirtualDispatch => {
            let classes = rng.range(1, 5);
            let muls = [2u64, 3, 5, 7];
            for v in 1..classes {
                let _ = writeln!(out, "class V{i}x{v} extends V{i} {{ }}");
            }
            let _ = writeln!(out, "class V{i} {{ field a int }}");
            let _ = writeln!(
                out,
                "method virtual V{i}.go 1 returns {{ load 0 getfield V{i}.a const 2 mul retv }}"
            );
            for v in 1..classes {
                let _ = writeln!(
                    out,
                    "method virtual V{i}x{v}.go 1 returns {{ \
                     load 0 getfield V{i}.a const {} mul retv }}",
                    muls[v as usize]
                );
            }
            let mut dispatch = String::new();
            for v in 1..classes {
                let _ = write!(
                    dispatch,
                    "
    load 1 const {v} ifcmp ne Ln{i}x{v}
    new V{i}x{v} goto Lset{i}
Ln{i}x{v}:"
                );
            }
            let _ = write!(
                out,
                "method h{i} 1 returns {{
    load 0 const {classes} rem store 1
{dispatch}
    new V{i}
Lset{i}:
    store 2
    load 2 load 0 putfield V{i}.a
    load 2 invokevirtual V{i}.go retv
}}
"
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pea_bytecode::asm::parse_program;
    use pea_vm::{OptLevel, Vm, VmOptions};

    #[test]
    fn rng_is_deterministic_and_nonconstant() {
        let mut a = Rng::new(42);
        let mut b = Rng::new(42);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_eq!(xs, ys);
        assert!(xs.windows(2).any(|w| w[0] != w[1]));
        assert_ne!(
            xs,
            (0..8).map(|_| Rng::new(43).next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn generated_programs_parse_and_verify() {
        for seed in 0..64u64 {
            let src = generate(seed);
            let program = parse_program(&src).unwrap_or_else(|e| panic!("seed {seed}: {e}\n{src}"));
            pea_bytecode::verify_program(&program)
                .unwrap_or_else(|e| panic!("seed {seed}: {e}\n{src}"));
        }
    }

    #[test]
    fn generated_programs_agree_across_opt_levels() {
        for seed in 0..24u64 {
            let src = generate(seed);
            let program = parse_program(&src).unwrap();
            pea_bytecode::verify_program(&program).unwrap();
            let mut results = Vec::new();
            for level in [OptLevel::None, OptLevel::Pea] {
                let mut vm = Vm::new(program.clone(), VmOptions::with_opt_level(level));
                let acc: Vec<_> = (0..12)
                    .map(|i| {
                        vm.call_entry("iterate", &[pea_runtime::Value::Int(i)])
                            .unwrap_or_else(|e| panic!("seed {seed} at {level}: {e}"))
                    })
                    .collect();
                results.push(acc);
            }
            assert_eq!(results[0], results[1], "seed {seed}: levels disagree");
        }
    }
}
