//! Allocation-pattern generators: parameterized bytecode snippets that
//! compose into benchmark kernels.
//!
//! Each pattern models one allocation behaviour from the paper's
//! discussion of where (Partial) Escape Analysis does and does not help:
//!
//! | pattern | models | PEA effect |
//! |---|---|---|
//! | [`Pattern::BoxingArith`] | Scala autoboxing churn (factorie, specs) | all boxes scalar-replaced |
//! | [`Pattern::TupleReturn`] | multi-value returns via objects | tuples scalar-replaced |
//! | [`Pattern::CacheLookup`] | the paper's Listing 4 key cache | key virtual on hits, materialized on misses |
//! | [`Pattern::IteratorSum`] | iterator objects over arrays | iterator scalar-replaced, array survives |
//! | [`Pattern::SyncCounter`] | synchronized accumulators (tomcat, jbb) | allocation + **lock elision** |
//! | [`Pattern::EscapeHeavy`] | objects published to shared structures | no win (true escapes) |
//! | [`Pattern::PublishViaHelper`] | registration/listener helpers publishing their argument | no win; only `pea-pre-ipa` pre-filters the sites |
//! | [`Pattern::MixedEscape`] | occasional publication on a return path | partial escape: materialize 1/N |
//! | [`Pattern::ScratchVector`] | vector-math temporaries (sunflow) | temporaries scalar-replaced |
//! | [`Pattern::ArrayFill`] | buffer/array churn (xalan, tmt) | arrays survive (bytes dominated) |
//! | [`Pattern::BranchyEscape`] | allocation escaping on many paths (jython) | no allocation win, **code-size growth** |
//! | [`Pattern::PolyDispatch`] | megamorphic call sites (jython) | blocks inlining, objects escape as arguments |
//! | [`Pattern::ExceptionParse`] | parser error paths (xalan, batik) | results scalar-replaced; errors **materialize at the throw** |
//! | [`Pattern::MegamorphicDispatch`] | hot virtual sites over 1–4 receiver classes | guarded devirtualization (mono guard / PIC), receivers scalar-replaced |
//! | [`Pattern::TryFinallyLock`] | try-finally monitor regions (tomcat, jbb) | locally-caught error object scalar-replaced; lock released on both paths |
//! | [`Pattern::ColdThrowPublish`] | range/state-check helpers throwing on a never-taken guard | `summary` inline policy + throw summary inline the may-throw helper; the error allocation is guarded away |
//! | [`Pattern::GuardedPublish`] | periodic publication through a local behind a two-sided branch | no allocation win; only `pea-pre-flow` pre-filters the certain-escape site |
//! | [`Pattern::Ballast`] | the non-allocating bulk of real applications | none (dilutes speedups to realistic magnitudes) |

use std::fmt::Write as _;

/// A parameterized pattern.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Pattern {
    /// `n` boxed additions per iteration; boxes die immediately.
    BoxingArith {
        /// Inner repetitions.
        n: i64,
    },
    /// `n` divmod calls returning a fresh pair object.
    TupleReturn {
        /// Inner repetitions.
        n: i64,
    },
    /// `n` cache probes; the key changes every `miss_every` probes.
    CacheLookup {
        /// Inner repetitions.
        n: i64,
        /// Probe count between key changes (miss rate = 1/this).
        miss_every: i64,
    },
    /// Fill an array of `len` ints, then sum it through an iterator
    /// object.
    IteratorSum {
        /// Array length (kept above the virtualization limit so the
        /// array itself survives).
        len: i64,
    },
    /// `n` synchronized increments on a local counter object.
    SyncCounter {
        /// Inner repetitions.
        n: i64,
    },
    /// `n` nodes published into a global pool of `pool` slots.
    EscapeHeavy {
        /// Inner repetitions.
        n: i64,
        /// Pool size.
        pool: i64,
    },
    /// `n` fresh events handed straight to a registration helper that
    /// publishes its argument to a static on every path (one directly,
    /// one through a relay). True escapes like [`Pattern::EscapeHeavy`],
    /// but the publication happens in the *callee*: only the
    /// interprocedural summaries (`pea-pre-ipa`) can pre-filter these
    /// sites; the intraprocedural `pea-pre` filter cannot see past the
    /// call.
    PublishViaHelper {
        /// Inner repetitions.
        n: i64,
    },
    /// `n` records; every `escape_every`-th is published on a separate
    /// return path (the Listing 4 shape).
    MixedEscape {
        /// Inner repetitions.
        n: i64,
        /// Publication period.
        escape_every: i64,
    },
    /// `n` dot products over two fresh 3-component vectors.
    ScratchVector {
        /// Inner repetitions.
        n: i64,
    },
    /// `n` array allocations of `len` elements, lightly touched.
    ArrayFill {
        /// Inner repetitions.
        n: i64,
        /// Element count per array (dynamic, never virtualized).
        len: i64,
    },
    /// One object per inner step, escaping on one of `branches` paths
    /// selected by `k % branches` — PEA sinks the allocation into every
    /// branch, growing code without reducing allocations.
    BranchyEscape {
        /// Inner repetitions.
        n: i64,
        /// Number of escape paths (4, 6 or 8).
        branches: u32,
    },
    /// `n` virtual calls over a 3-class hierarchy, receivers cycling so
    /// the site stays megamorphic; receiver objects escape as arguments.
    PolyDispatch {
        /// Inner repetitions.
        n: i64,
    },
    /// `n` parse calls; every `fail_every`-th input is malformed and the
    /// parser throws a fresh error object the caller catches and recovers
    /// from. Result objects are fully scalar-replaced; error objects
    /// virtualize until the `athrow` and materialize exactly there
    /// (`thrown-escape`).
    ExceptionParse {
        /// Inner repetitions.
        n: i64,
        /// Throw period (error rate = 1/this).
        fail_every: i64,
    },
    /// `n` virtual calls on fresh receivers drawn from `classes` concrete
    /// types (1–4). Receivers never escape: with receiver-type speculation
    /// the call devirtualizes behind a guard (monomorphic) or a
    /// polymorphic inline cache, the callee inlines, and the receiver is
    /// scalar-replaced; a guard failure deoptimizes and rematerializes it.
    MegamorphicDispatch {
        /// Inner repetitions.
        n: i64,
        /// Receiver classes cycling through the site (1..=4).
        classes: u32,
    },
    /// `n` locked increments in a try-finally region: the monitor is
    /// released on the normal path and in the catch-all handler, and every
    /// `throw_every`-th step throws an error that the handler absorbs
    /// locally — the error object never leaves the compiled unit and is
    /// fully scalar-replaced.
    TryFinallyLock {
        /// Inner repetitions.
        n: i64,
        /// Throw period.
        throw_every: i64,
    },
    /// `n` additions through a checking helper whose only `athrow` sits
    /// behind a guard that never fires for in-range inputs (the
    /// range/state-check shape). The helper is `may_throw`, so the size
    /// policy never inlines it; the summary policy reads its
    /// path-qualified throw summary (`ThrowPath::Guarded`), sees from the
    /// branch profile that the throw side was never taken, and inlines it
    /// with the throw block speculated away — the fresh error object
    /// disappears from compiled code entirely.
    ColdThrowPublish {
        /// Inner repetitions (must stay below 65535 so the guard is
        /// genuinely never taken).
        n: i64,
    },
    /// One object published to a static through a *local* every 8th
    /// iteration, behind a genuinely two-sided branch. Flow-insensitively
    /// `GlobalEscape` but invisible to the `pea-pre`/`pea-pre-ipa`
    /// pre-filters (no immediate `putstatic`, no publishing call): only
    /// the branch-aware certain-escape proof of `pea-pre-flow` excludes
    /// the site up front, with identical results and allocation counts.
    GuardedPublish {
        /// Inner repetitions.
        n: i64,
    },
    /// `n` iterations of pure, allocation-free arithmetic — the
    /// non-allocating bulk of a real application, diluting PEA's effect
    /// on run time to realistic magnitudes.
    Ballast {
        /// Inner repetitions.
        n: i64,
    },
}

/// A pattern instantiated at a position within a workload (the index
/// makes generated names unique).
#[derive(Clone, Copy, Debug)]
pub struct PatternInstance {
    /// The pattern and its parameters.
    pub pattern: Pattern,
    /// Unique index within the workload.
    pub index: usize,
}

impl PatternInstance {
    /// The entry method name (`p<index>`), taking the iteration number
    /// and returning an int.
    pub fn entry_name(&self) -> String {
        format!("p{}", self.index)
    }

    /// Emits the classes, statics and methods of this instance.
    pub fn to_asm(&self) -> String {
        let s = self.index;
        let mut out = String::new();
        match self.pattern {
            Pattern::BoxingArith { n } => {
                let _ = write!(
                    out,
                    "
class Box{s} {{ field v int }}
method boxof{s} 1 returns {{
    new Box{s} store 1
    load 1 load 0 putfield Box{s}.v
    load 1 retv
}}
method p{s} 1 returns {{
    const 0 store 1
    const 0 store 2
Lh{s}:
    load 2 const {n} ifcmp ge Ld{s}
    load 0 load 2 add invokestatic boxof{s}
    load 2 const 3 mul invokestatic boxof{s}
    getfield Box{s}.v
    swap
    getfield Box{s}.v
    add
    load 1 add store 1
    load 2 const 1 add store 2
    goto Lh{s}
Ld{s}:
    load 1 retv
}}
"
                );
            }
            Pattern::TupleReturn { n } => {
                let _ = write!(
                    out,
                    "
class Pair{s} {{ field a int field b int }}
method divmod{s} 2 returns {{
    new Pair{s} store 2
    load 2 load 0 load 1 div putfield Pair{s}.a
    load 2 load 0 load 1 rem putfield Pair{s}.b
    load 2 retv
}}
method p{s} 1 returns {{
    const 0 store 1
    const 0 store 2
Lh{s}:
    load 2 const {n} ifcmp ge Ld{s}
    load 0 load 2 add const 7 invokestatic divmod{s} store 3
    load 3 getfield Pair{s}.a load 3 getfield Pair{s}.b add
    load 1 add store 1
    load 2 const 1 add store 2
    goto Lh{s}
Ld{s}:
    load 1 retv
}}
"
                );
            }
            Pattern::CacheLookup { n, miss_every } => {
                let _ = write!(
                    out,
                    "
class Key{s} {{ field idx int field ref ref }}
static cacheKey{s} ref
static cacheVal{s} int
method virtual Key{s}.eq 2 returns synchronized {{
    load 1 ifnull Lf{s}
    load 0 getfield Key{s}.idx
    load 1 checkcast Key{s} getfield Key{s}.idx
    ifcmp ne Lf{s}
    const 1 retv
Lf{s}:
    const 0 retv
}}
method get{s} 1 returns {{
    new Key{s} store 1
    load 1 load 0 putfield Key{s}.idx
    load 1 getstatic cacheKey{s} invokevirtual Key{s}.eq
    const 0 ifcmp eq Lmiss{s}
    getstatic cacheVal{s} retv
Lmiss{s}:
    load 1 putstatic cacheKey{s}
    load 0 const 13 mul putstatic cacheVal{s}
    getstatic cacheVal{s} retv
}}
method p{s} 1 returns {{
    const 0 store 1
    const 0 store 2
Lh{s}:
    load 2 const {n} ifcmp ge Ld{s}
    load 0 const {n} mul load 2 add const {miss_every} div invokestatic get{s}
    load 1 add store 1
    load 2 const 1 add store 2
    goto Lh{s}
Ld{s}:
    load 1 retv
}}
"
                );
            }
            Pattern::IteratorSum { len } => {
                let _ = write!(
                    out,
                    "
class Iter{s} {{ field pos int field arr ref }}
method virtual Iter{s}.hasnext 1 returns {{
    load 0 getfield Iter{s}.pos
    load 0 getfield Iter{s}.arr arraylen
    ifcmp lt Lt{s}
    const 0 retv
Lt{s}:
    const 1 retv
}}
method virtual Iter{s}.next 1 returns {{
    load 0 getfield Iter{s}.arr load 0 getfield Iter{s}.pos aload
    load 0 load 0 getfield Iter{s}.pos const 1 add putfield Iter{s}.pos
    retv
}}
method p{s} 1 returns {{
    const {len} newarray int store 1
    const 0 store 2
Lf{s}:
    load 2 const {len} ifcmp ge Lfd{s}
    load 1 load 2 load 0 load 2 add astore
    load 2 const 1 add store 2
    goto Lf{s}
Lfd{s}:
    new Iter{s} store 3
    load 3 load 1 putfield Iter{s}.arr
    const 0 store 4
Lh{s}:
    load 3 invokevirtual Iter{s}.hasnext const 0 ifcmp eq Ld{s}
    load 4 load 3 invokevirtual Iter{s}.next add store 4
    goto Lh{s}
Ld{s}:
    load 4 retv
}}
"
                );
            }
            Pattern::SyncCounter { n } => {
                let _ = write!(
                    out,
                    "
class Ctr{s} {{ field v int }}
method virtual Ctr{s}.inc 2 synchronized {{
    load 0 load 0 getfield Ctr{s}.v load 1 add putfield Ctr{s}.v
    ret
}}
method p{s} 1 returns {{
    new Ctr{s} store 1
    const 0 store 2
Lh{s}:
    load 2 const {n} ifcmp ge Ld{s}
    load 1 load 2 invokevirtual Ctr{s}.inc
    load 2 const 1 add store 2
    goto Lh{s}
Ld{s}:
    load 1 getfield Ctr{s}.v retv
}}
"
                );
            }
            Pattern::EscapeHeavy { n, pool } => {
                let _ = write!(
                    out,
                    "
class Node{s} {{ field v int field next ref }}
static pool{s} ref
method p{s} 1 returns {{
    getstatic pool{s} ifnonnull Lok{s}
    const {pool} newarray ref putstatic pool{s}
Lok{s}:
    getstatic pool{s} store 1
    const 0 store 2
Lh{s}:
    load 2 const {n} ifcmp ge Ld{s}
    new Node{s} store 3
    load 3 load 2 putfield Node{s}.v
    load 1 load 2 const {pool} rem load 3 astore
    load 2 const 1 add store 2
    goto Lh{s}
Ld{s}:
    load 1 const 0 aload ifnull Lz{s}
    load 1 const 0 aload checkcast Node{s} getfield Node{s}.v retv
Lz{s}:
    const 0 retv
}}
"
                );
            }
            Pattern::PublishViaHelper { n } => {
                // `new Ev; invokestatic pub` / `new Ev; invokestatic
                // relay`: the fresh object is the call's only argument and
                // the callee's first action is `putstatic` (directly, or
                // through one relay hop) — the must-publish shape the
                // summary analysis proves and `excluded_sites` keys on.
                let _ = write!(
                    out,
                    "
class Ev{s} {{ field v int }}
static reg{s} ref
method pub{s} 1 {{
    load 0 putstatic reg{s}
    ret
}}
method relay{s} 1 {{
    load 0 invokestatic pub{s}
    ret
}}
method p{s} 1 returns {{
    const 0 store 1
    const 0 store 2
Lh{s}:
    load 2 const {n} ifcmp ge Ld{s}
    new Ev{s} invokestatic pub{s}
    new Ev{s} invokestatic relay{s}
    getstatic reg{s} checkcast Ev{s} getfield Ev{s}.v
    load 1 add load 2 add store 1
    load 2 const 1 add store 2
    goto Lh{s}
Ld{s}:
    load 1 retv
}}
"
                );
            }
            Pattern::MixedEscape { n, escape_every } => {
                let _ = write!(
                    out,
                    "
class Rec{s} {{ field a int field b int }}
static last{s} ref
method work{s} 2 returns {{
    new Rec{s} store 2
    load 2 load 1 putfield Rec{s}.a
    load 2 load 0 putfield Rec{s}.b
    load 2 getfield Rec{s}.a load 2 getfield Rec{s}.b add store 3
    load 1 const {escape_every} rem const 0 ifcmp ne Lno{s}
    load 2 putstatic last{s}
    load 3 retv
Lno{s}:
    load 3 retv
}}
method p{s} 1 returns {{
    const 0 store 1
    const 0 store 2
Lh{s}:
    load 2 const {n} ifcmp ge Ld{s}
    load 0 load 2 invokestatic work{s}
    load 1 add store 1
    load 2 const 1 add store 2
    goto Lh{s}
Ld{s}:
    load 1 retv
}}
"
                );
            }
            Pattern::ScratchVector { n } => {
                let _ = write!(
                    out,
                    "
class V3x{s} {{ field x int field y int field z int }}
method vec{s} 1 returns {{
    new V3x{s} store 1
    load 1 load 0 putfield V3x{s}.x
    load 1 load 0 const 1 add putfield V3x{s}.y
    load 1 load 0 const 2 add putfield V3x{s}.z
    load 1 retv
}}
method dot{s} 2 returns {{
    load 0 getfield V3x{s}.x load 1 getfield V3x{s}.x mul
    load 0 getfield V3x{s}.y load 1 getfield V3x{s}.y mul add
    load 0 getfield V3x{s}.z load 1 getfield V3x{s}.z mul add
    retv
}}
method p{s} 1 returns {{
    const 0 store 1
    const 0 store 2
Lh{s}:
    load 2 const {n} ifcmp ge Ld{s}
    load 0 load 2 add invokestatic vec{s}
    load 2 invokestatic vec{s}
    invokestatic dot{s}
    load 1 add store 1
    load 2 const 1 add store 2
    goto Lh{s}
Ld{s}:
    load 1 retv
}}
"
                );
            }
            Pattern::ArrayFill { n, len } => {
                let _ = write!(
                    out,
                    "
method p{s} 1 returns {{
    const 0 store 1
    const 0 store 2
Lh{s}:
    load 2 const {n} ifcmp ge Ld{s}
    # dynamic length defeats virtualization, as intended
    const {len} load 0 const 0 mul add newarray int store 3
    load 3 const 0 load 2 astore
    load 3 const 0 aload load 1 add store 1
    load 2 const 1 add store 2
    goto Lh{s}
Ld{s}:
    load 1 retv
}}
"
                );
            }
            Pattern::BranchyEscape { n, branches } => {
                // One static sink per branch; the object escapes on every
                // path, so PEA only *moves* the allocation into each
                // branch (code growth, no allocation reduction). The body
                // lives in its own hot `step` method, deliberately above
                // the inlining limit, so the grown code pays its
                // instruction-cache penalty on every inner call — the
                // jython mechanism of §6.1.
                let mut statics = String::new();
                for b in 0..branches {
                    let _ = writeln!(statics, "static sink{s}x{b} ref");
                }
                let mut dispatch = String::new();
                for b in 0..branches {
                    let _ = write!(
                        dispatch,
                        "
    load 2 const {b} ifcmp ne Ln{s}x{b}
    load 1 putstatic sink{s}x{b}
    goto Lcont{s}
Ln{s}x{b}:"
                    );
                }
                let last = branches; // fallthrough sink
                let _ = write!(
                    out,
                    "
class Obj{s} {{ field v int }}
{statics}
static sink{s}x{last} ref
method step{s} 1 returns {{
    new Obj{s} store 1
    load 1 load 0 putfield Obj{s}.v
    load 0 const {branches} rem store 2
{dispatch}
    load 1 putstatic sink{s}x{last}
Lcont{s}:
    load 1 getfield Obj{s}.v retv
}}
method p{s} 1 returns {{
    const 0 store 1
    const 0 store 2
Lh{s}:
    load 2 const {n} ifcmp ge Ld{s}
    load 2 invokestatic step{s}
    load 1 add store 1
    load 2 const 1 add store 2
    goto Lh{s}
Ld{s}:
    load 1 retv
}}
"
                );
            }
            Pattern::ExceptionParse { n, fail_every } => {
                let _ = write!(
                    out,
                    "
class Res{s} {{ field v int }}
class PErr{s} {{ field code int }}
method parse{s} 1 returns {{
    load 0 const {fail_every} rem const 0 ifcmp eq Lbad{s}
    new Res{s} store 1
    load 1 load 0 putfield Res{s}.v
    load 1 getfield Res{s}.v retv
Lbad{s}:
    new PErr{s} store 1
    load 1 load 0 putfield PErr{s}.code
    load 1 athrow
}}
method p{s} 1 returns {{
    try Ls{s} Le{s} Lc{s} PErr{s}
    const 0 store 1
    const 0 store 2
Lh{s}:
    load 2 const {n} ifcmp ge Ld{s}
Ls{s}:
    load 0 load 2 add invokestatic parse{s}
    load 1 add store 1
Le{s}:
    goto Ln{s}
Lc{s}:
    checkcast PErr{s} getfield PErr{s}.code load 1 add store 1
Ln{s}:
    load 2 const 1 add store 2
    goto Lh{s}
Ld{s}:
    load 1 retv
}}
"
                );
            }
            Pattern::MegamorphicDispatch { n, classes } => {
                let classes = classes.clamp(1, 4);
                let mut decls = String::new();
                let mut impls = String::new();
                // Distinct per-class multipliers keep results class-sensitive.
                let muls = [2, 3, 5, 7];
                for j in 1..classes {
                    let _ = writeln!(decls, "class MB{s}x{j} extends MB{s} {{ }}");
                    let _ = writeln!(
                        impls,
                        "method virtual MB{s}x{j}.go 1 returns {{ \
                         load 0 getfield MB{s}.a const {} mul retv }}",
                        muls[j as usize]
                    );
                }
                let mut dispatch = String::new();
                for j in 1..classes {
                    let _ = write!(
                        dispatch,
                        "
    load 1 const {j} ifcmp ne Ln{s}x{j}
    new MB{s}x{j} goto Lset{s}
Ln{s}x{j}:"
                    );
                }
                let _ = write!(
                    out,
                    "
class MB{s} {{ field a int }}
{decls}
method virtual MB{s}.go 1 returns {{ load 0 getfield MB{s}.a const 2 mul retv }}
{impls}
method step{s} 1 returns {{
    load 0 const {classes} rem store 1
{dispatch}
    new MB{s}
Lset{s}:
    store 2
    load 2 load 0 putfield MB{s}.a
    load 2 invokevirtual MB{s}.go retv
}}
method p{s} 1 returns {{
    const 0 store 1
    const 0 store 2
Lh{s}:
    load 2 const {n} ifcmp ge Ld{s}
    load 0 load 2 add invokestatic step{s}
    load 1 add store 1
    load 2 const 1 add store 2
    goto Lh{s}
Ld{s}:
    load 1 retv
}}
"
                );
            }
            Pattern::TryFinallyLock { n, throw_every } => {
                let _ = write!(
                    out,
                    "
class Lk{s} {{ field v int }}
class LE{s} {{ field c int }}
method bump{s} 2 returns {{
    try Ls{s} Le{s} Lf{s} *
    load 0 monitorenter
Ls{s}:
    load 0 load 0 getfield Lk{s}.v load 1 add putfield Lk{s}.v
    load 1 const {throw_every} rem const 0 ifcmp ne Lok{s}
    new LE{s} store 2
    load 2 load 1 putfield LE{s}.c
    load 2 athrow
Lok{s}:
Le{s}:
    load 0 monitorexit
    load 0 getfield Lk{s}.v retv
Lf{s}:
    pop
    load 0 monitorexit
    load 0 getfield Lk{s}.v neg retv
}}
method p{s} 1 returns {{
    new Lk{s} store 1
    const 0 store 2
    const 0 store 3
Lh{s}:
    load 3 const {n} ifcmp ge Ld{s}
    load 1 load 3 invokestatic bump{s}
    load 2 add store 2
    load 3 const 1 add store 3
    goto Lh{s}
Ld{s}:
    load 2 retv
}}
"
                );
            }
            Pattern::ColdThrowPublish { n } => {
                // `check` adds its input into the accumulator after a
                // range guard: `(k & 0xffff) == 0xffff` never holds for
                // loop counters below 65535, so the throw block (fresh
                // error object, field write, `athrow`) is dead in steady
                // state. The throw summary is `Guarded` with a single
                // never-taken guard — exactly what the summary inline
                // policy needs to clear the may-throw gate.
                let _ = write!(
                    out,
                    "
class CErr{s} {{ field code int }}
method check{s} 2 returns {{
    load 0 const 65535 and const 65535 ifcmp eq Lbad{s}
    load 1 load 0 add retv
Lbad{s}:
    new CErr{s} store 2
    load 2 load 0 putfield CErr{s}.code
    load 2 athrow
}}
method p{s} 1 returns {{
    const 0 store 1
    const 0 store 2
Lh{s}:
    load 2 const {n} ifcmp ge Ld{s}
    load 2 load 1 invokestatic check{s} store 1
    load 2 const 1 add store 2
    goto Lh{s}
Ld{s}:
    load 1 retv
}}
"
                );
            }
            Pattern::GuardedPublish { n } => {
                // Every 8th iteration replaces the published object: the
                // fresh allocation reaches the static through a local, so
                // neither the immediate-`putstatic` filter nor the
                // publishing-call summaries see it, yet every path from
                // the `new` publishes with nothing observable in between
                // (the field write lands *after* publication) — the
                // certain-escape shape `pea-pre-flow` excludes. The
                // `& 7` branch is genuinely two-sided, so profile
                // speculation never removes it.
                let _ = write!(
                    out,
                    "
class GPub{s} {{ field v int }}
static gpub{s} ref
method p{s} 1 returns {{
    const 0 store 1
    const 0 store 2
    new GPub{s} putstatic gpub{s}
Lh{s}:
    load 2 const {n} ifcmp ge Ld{s}
    load 2 const 7 and const 7 ifcmp ne Lsk{s}
    new GPub{s} store 3
    load 3 putstatic gpub{s}
    load 3 load 2 putfield GPub{s}.v
Lsk{s}:
    getstatic gpub{s} checkcast GPub{s} getfield GPub{s}.v
    load 1 add load 2 add store 1
    load 2 const 1 add store 2
    goto Lh{s}
Ld{s}:
    load 1 retv
}}
"
                );
            }
            Pattern::Ballast { n } => {
                let _ = write!(
                    out,
                    "
method p{s} 1 returns {{
    load 0 store 1
    const 0 store 2
Lh{s}:
    load 2 const {n} ifcmp ge Ld{s}
    load 1 load 2 xor load 2 add store 1
    load 1 const 13 mul load 1 add store 1
    load 2 const 1 add store 2
    goto Lh{s}
Ld{s}:
    load 1 retv
}}
"
                );
            }
            Pattern::PolyDispatch { n } => {
                let _ = write!(
                    out,
                    "
class Sh{s} {{ field a int }}
class ShB{s} extends Sh{s} {{ }}
class ShC{s} extends Sh{s} {{ }}
static spill{s} ref
method virtual Sh{s}.area 1 returns {{ load 0 getfield Sh{s}.a const 2 mul retv }}
method virtual ShB{s}.area 1 returns {{ load 0 getfield Sh{s}.a const 3 mul retv }}
method virtual ShC{s}.area 1 returns {{ load 0 getfield Sh{s}.a const 5 mul retv }}
method mk{s} 1 returns {{
    load 0 const 3 rem store 1
    load 1 const 0 ifcmp eq La{s}
    load 1 const 1 ifcmp eq Lb{s}
    new ShC{s} goto Lset{s}
Lb{s}:
    new ShB{s} goto Lset{s}
La{s}:
    new Sh{s}
Lset{s}:
    store 2
    load 2 load 0 putfield Sh{s}.a
    load 2 putstatic spill{s}
    load 2 retv
}}
method p{s} 1 returns {{
    const 0 store 1
    const 0 store 2
Lh{s}:
    load 2 const {n} ifcmp ge Ld{s}
    load 2 invokestatic mk{s} invokevirtual Sh{s}.area
    load 1 add store 1
    load 2 const 1 add store 2
    goto Lh{s}
Ld{s}:
    load 1 retv
}}
"
                );
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pea_bytecode::asm::parse_program;

    fn check(pattern: Pattern) {
        let inst = PatternInstance { pattern, index: 0 };
        let mut src = inst.to_asm();
        src.push_str(&format!(
            "method iterate 1 returns {{ load 0 invokestatic {} retv }}",
            inst.entry_name()
        ));
        let program = parse_program(&src).unwrap_or_else(|e| panic!("{pattern:?}: {e}\n{src}"));
        pea_bytecode::verify_program(&program)
            .unwrap_or_else(|e| panic!("{pattern:?}: {e}\n{src}"));
    }

    #[test]
    fn all_patterns_assemble_and_verify() {
        for p in [
            Pattern::BoxingArith { n: 10 },
            Pattern::TupleReturn { n: 10 },
            Pattern::CacheLookup {
                n: 10,
                miss_every: 4,
            },
            Pattern::IteratorSum { len: 40 },
            Pattern::SyncCounter { n: 10 },
            Pattern::EscapeHeavy { n: 10, pool: 8 },
            Pattern::PublishViaHelper { n: 10 },
            Pattern::MixedEscape {
                n: 10,
                escape_every: 4,
            },
            Pattern::ScratchVector { n: 10 },
            Pattern::ArrayFill { n: 5, len: 16 },
            Pattern::BranchyEscape { n: 10, branches: 4 },
            Pattern::PolyDispatch { n: 10 },
            Pattern::ExceptionParse {
                n: 10,
                fail_every: 3,
            },
            Pattern::MegamorphicDispatch { n: 10, classes: 4 },
            Pattern::TryFinallyLock {
                n: 10,
                throw_every: 3,
            },
            Pattern::ColdThrowPublish { n: 10 },
            Pattern::GuardedPublish { n: 10 },
            Pattern::Ballast { n: 10 },
        ] {
            check(p);
        }
    }
}
