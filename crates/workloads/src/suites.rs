//! The 14 + 12 + 1 benchmark kernels, one per row of the paper's Table 1.
//!
//! Pattern mixes are chosen so each kernel's *qualitative* behaviour under
//! PEA matches its row: large allocation reductions where the paper
//! reports them (Scala-style kernels), little or no change where the
//! paper reports none, monitor reductions for tomcat/SPECjbb, and a
//! code-size-driven slowdown for jython.

use crate::patterns::{Pattern, PatternInstance};
use crate::Suite;
use std::fmt::Write as _;

/// Declarative description of one benchmark kernel.
#[derive(Clone, Debug)]
pub struct WorkloadSpec {
    /// Table 1 row name.
    pub name: &'static str,
    /// Owning suite.
    pub suite: Suite,
    /// Whether the paper lists the row as significant.
    pub significant: bool,
    /// The pattern mix.
    pub parts: Vec<Pattern>,
}

impl WorkloadSpec {
    /// Generates the complete assembler source: all pattern instances
    /// plus the `iterate(i)` entry method summing their results.
    pub fn to_asm(&self) -> String {
        let mut out = String::new();
        let instances: Vec<PatternInstance> = self
            .parts
            .iter()
            .enumerate()
            .map(|(index, &pattern)| PatternInstance { pattern, index })
            .collect();
        for inst in &instances {
            out.push_str(&inst.to_asm());
        }
        out.push_str("method iterate 1 returns {\n    const 0 store 1\n");
        for inst in &instances {
            let _ = writeln!(
                out,
                "    load 0 invokestatic {} load 1 add store 1",
                inst.entry_name()
            );
        }
        out.push_str("    load 1 retv\n}\n");
        out
    }
}

/// The 14 DaCapo stand-ins (Table 1 upper block; rows the paper omits as
/// insignificant are marked accordingly).
pub fn dacapo() -> Vec<WorkloadSpec> {
    use Pattern::*;
    let w = |name, significant, parts| WorkloadSpec {
        name,
        suite: Suite::DaCapo,
        significant,
        parts,
    };
    vec![
        // Significant rows.
        w(
            "fop",
            true,
            vec![
                TupleReturn { n: 15 },
                MixedEscape {
                    n: 20,
                    escape_every: 8,
                },
                EscapeHeavy { n: 110, pool: 64 },
                Ballast { n: 3000 },
            ],
        ),
        w(
            "h2",
            true,
            vec![
                SyncCounter { n: 40 },
                EscapeHeavy { n: 120, pool: 64 },
                ArrayFill { n: 10, len: 24 },
                TryFinallyLock {
                    n: 25,
                    throw_every: 9,
                },
                ColdThrowPublish { n: 30 },
                Ballast { n: 5000 },
            ],
        ),
        w(
            "jython",
            true,
            vec![
                BranchyEscape {
                    n: 150,
                    branches: 12,
                },
                PolyDispatch { n: 40 },
                MegamorphicDispatch { n: 30, classes: 4 },
                MixedEscape {
                    n: 30,
                    escape_every: 3,
                },
                Ballast { n: 2600 },
            ],
        ),
        w(
            "sunflow",
            true,
            vec![
                ScratchVector { n: 60 },
                ArrayFill { n: 16, len: 48 },
                EscapeHeavy { n: 60, pool: 64 },
                Ballast { n: 6000 },
            ],
        ),
        w(
            "tomcat",
            true,
            vec![
                SyncCounter { n: 30 },
                CacheLookup {
                    n: 15,
                    miss_every: 16,
                },
                EscapeHeavy { n: 150, pool: 64 },
                TryFinallyLock {
                    n: 20,
                    throw_every: 7,
                },
                Ballast { n: 3000 },
            ],
        ),
        w(
            "tradebeans",
            true,
            vec![
                MixedEscape {
                    n: 40,
                    escape_every: 6,
                },
                EscapeHeavy { n: 130, pool: 64 },
                TupleReturn { n: 10 },
                Ballast { n: 3000 },
            ],
        ),
        w(
            "xalan",
            true,
            vec![
                EscapeHeavy { n: 100, pool: 64 },
                ArrayFill { n: 20, len: 32 },
                BoxingArith { n: 15 },
                ExceptionParse {
                    n: 12,
                    fail_every: 5,
                },
                Ballast { n: 3000 },
            ],
        ),
        // Rows without significant change: dominated by true escapes and
        // array churn.
        w(
            "avrora",
            false,
            vec![
                EscapeHeavy { n: 60, pool: 64 },
                PublishViaHelper { n: 20 },
                GuardedPublish { n: 24 },
                ArrayFill { n: 8, len: 16 },
                Ballast { n: 2000 },
            ],
        ),
        w(
            "batik",
            false,
            vec![
                ArrayFill { n: 20, len: 40 },
                EscapeHeavy { n: 30, pool: 64 },
                ExceptionParse {
                    n: 10,
                    fail_every: 4,
                },
                Ballast { n: 2000 },
            ],
        ),
        w(
            "eclipse",
            false,
            vec![
                EscapeHeavy { n: 90, pool: 64 },
                PolyDispatch { n: 30 },
                Ballast { n: 2000 },
            ],
        ),
        w(
            "luindex",
            false,
            vec![
                ArrayFill { n: 25, len: 24 },
                EscapeHeavy { n: 20, pool: 64 },
                Ballast { n: 2000 },
            ],
        ),
        w(
            "lusearch",
            false,
            vec![
                ArrayFill { n: 30, len: 32 },
                EscapeHeavy { n: 40, pool: 64 },
                Ballast { n: 2000 },
            ],
        ),
        w(
            "pmd",
            false,
            vec![
                EscapeHeavy { n: 70, pool: 64 },
                PolyDispatch { n: 40 },
                MegamorphicDispatch { n: 25, classes: 3 },
                Ballast { n: 2000 },
            ],
        ),
        w(
            "tradesoap",
            false,
            vec![
                EscapeHeavy { n: 100, pool: 64 },
                PublishViaHelper { n: 30 },
                ArrayFill { n: 10, len: 48 },
                Ballast { n: 2000 },
            ],
        ),
    ]
}

/// The 12 ScalaDaCapo stand-ins (Table 1 middle block): abstraction-heavy
/// kernels where the Scala compiler's lowering produces boxing, tuples,
/// closures and iterator objects.
pub fn scaladacapo() -> Vec<WorkloadSpec> {
    use Pattern::*;
    let w = |name, parts| WorkloadSpec {
        name,
        suite: Suite::ScalaDaCapo,
        significant: true,
        parts,
    };
    vec![
        w(
            "actors",
            vec![
                BoxingArith { n: 25 },
                SyncCounter { n: 25 },
                EscapeHeavy { n: 110, pool: 64 },
                Ballast { n: 3000 },
            ],
        ),
        w(
            "apparat",
            vec![
                ArrayFill { n: 25, len: 40 },
                TupleReturn { n: 40 },
                EscapeHeavy { n: 40, pool: 64 },
                Ballast { n: 2000 },
            ],
        ),
        w(
            "factorie",
            vec![
                BoxingArith { n: 200 },
                ScratchVector { n: 80 },
                ArrayFill { n: 6, len: 32 },
                Ballast { n: 6000 },
            ],
        ),
        w(
            "kiama",
            vec![
                TupleReturn { n: 18 },
                IteratorSum { len: 48 },
                EscapeHeavy { n: 90, pool: 64 },
                Ballast { n: 2500 },
            ],
        ),
        w(
            "scalac",
            vec![
                BoxingArith { n: 25 },
                MixedEscape {
                    n: 25,
                    escape_every: 5,
                },
                EscapeHeavy { n: 110, pool: 64 },
                Ballast { n: 3000 },
            ],
        ),
        w(
            "scaladoc",
            vec![
                TupleReturn { n: 30 },
                BoxingArith { n: 15 },
                EscapeHeavy { n: 110, pool: 64 },
                Ballast { n: 3000 },
            ],
        ),
        w(
            "scalap",
            vec![
                IteratorSum { len: 64 },
                TupleReturn { n: 12 },
                EscapeHeavy { n: 80, pool: 64 },
                ExceptionParse {
                    n: 8,
                    fail_every: 6,
                },
                ColdThrowPublish { n: 20 },
                Ballast { n: 2500 },
            ],
        ),
        w(
            "scalariform",
            vec![
                TupleReturn { n: 25 },
                MixedEscape {
                    n: 15,
                    escape_every: 6,
                },
                EscapeHeavy { n: 110, pool: 64 },
                Ballast { n: 3000 },
            ],
        ),
        w(
            "scalatest",
            vec![
                EscapeHeavy { n: 80, pool: 64 },
                ArrayFill { n: 10, len: 24 },
                TupleReturn { n: 10 },
                Ballast { n: 2500 },
            ],
        ),
        w(
            "scalaxb",
            vec![
                MixedEscape {
                    n: 25,
                    escape_every: 5,
                },
                ArrayFill { n: 10, len: 24 },
                EscapeHeavy { n: 80, pool: 64 },
                Ballast { n: 2500 },
            ],
        ),
        w(
            "specs",
            vec![
                BoxingArith { n: 160 },
                TupleReturn { n: 80 },
                ArrayFill { n: 10, len: 56 },
                Ballast { n: 5000 },
            ],
        ),
        w(
            "tmt",
            vec![
                ArrayFill { n: 30, len: 48 },
                BoxingArith { n: 30 },
                EscapeHeavy { n: 40, pool: 64 },
                Ballast { n: 2500 },
            ],
        ),
    ]
}

/// The SPECjbb2005 stand-in: a transaction mix over a warehouse-like
/// shared pool with synchronized counters and per-transaction temporaries.
pub fn specjbb() -> WorkloadSpec {
    use Pattern::*;
    WorkloadSpec {
        name: "SPECjbb2005",
        suite: Suite::SpecJbb,
        significant: true,
        parts: vec![
            CacheLookup {
                n: 30,
                miss_every: 12,
            },
            SyncCounter { n: 40 },
            TupleReturn { n: 25 },
            EscapeHeavy { n: 110, pool: 64 },
            ArrayFill { n: 12, len: 40 },
            BoxingArith { n: 25 },
            TryFinallyLock {
                n: 30,
                throw_every: 8,
            },
            GuardedPublish { n: 32 },
            Ballast { n: 8000 },
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_sizes_match_the_paper() {
        assert_eq!(dacapo().len(), 14);
        assert_eq!(scaladacapo().len(), 12);
        assert_eq!(
            dacapo().iter().filter(|w| w.significant).count(),
            7,
            "seven significant DaCapo rows as in Table 1"
        );
    }

    #[test]
    fn specs_generate_nonempty_asm() {
        for spec in dacapo().iter().chain(scaladacapo().iter()) {
            let asm = spec.to_asm();
            assert!(asm.contains("method iterate"), "{}", spec.name);
        }
        assert!(specjbb().to_asm().contains("method iterate"));
    }
}
