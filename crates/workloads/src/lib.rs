//! Synthetic benchmark kernels standing in for the paper's evaluation
//! suites (DaCapo 9.12, ScalaDaCapo 0.1.0, SPECjbb2005).
//!
//! The real suites are large Java applications we cannot run on a toy VM;
//! per the substitution policy in `DESIGN.md`, each benchmark is replaced
//! by a kernel **composed of allocation patterns** chosen to reproduce
//! that benchmark's qualitative row in Table 1: which suites win big
//! under Partial Escape Analysis (Scala-style boxing/tuple/closure
//! churn), which barely move (allocation-free or escape-heavy code),
//! where lock elision shows (tomcat, SPECjbb), and where PEA *loses*
//! (jython: code-size growth from sinking allocations into many
//! branches). Patterns are tuned by structure — escape probability and
//! allocation mix — never by pasting the paper's numbers.
//!
//! Every workload exposes one `iterate(i)` method; the harness warms it
//! up (interpreter → profile → JIT) and then measures per-iteration
//! statistics deltas.

pub mod gen;
mod patterns;
mod suites;

use pea_bytecode::asm::parse_program;
use pea_bytecode::Program;

pub use patterns::{Pattern, PatternInstance};
pub use suites::{dacapo, scaladacapo, specjbb, WorkloadSpec};

/// Which evaluation suite a workload belongs to (the three blocks of
/// Table 1).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Suite {
    /// DaCapo 9.12-bach stand-ins.
    DaCapo,
    /// ScalaDaCapo 0.1.0 stand-ins.
    ScalaDaCapo,
    /// SPECjbb2005 stand-in.
    SpecJbb,
}

impl std::fmt::Display for Suite {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Suite::DaCapo => "DaCapo",
            Suite::ScalaDaCapo => "ScalaDaCapo",
            Suite::SpecJbb => "SPECjbb2005",
        })
    }
}

/// A ready-to-run workload.
#[derive(Clone, Debug)]
pub struct Workload {
    /// Benchmark name (matching the Table 1 row it stands in for).
    pub name: String,
    /// Owning suite.
    pub suite: Suite,
    /// The generated program.
    pub program: Program,
    /// Whether the paper reports this row as significant (insignificant
    /// DaCapo rows are folded into the average only).
    pub significant: bool,
}

impl Workload {
    /// Builds the workload from its spec.
    ///
    /// # Panics
    ///
    /// Panics if the generated assembly fails to parse or verify — a bug
    /// in the generator, covered by tests.
    pub fn from_spec(spec: &WorkloadSpec) -> Workload {
        let source = spec.to_asm();
        let program = parse_program(&source)
            .unwrap_or_else(|e| panic!("workload {}: {e}\n{source}", spec.name));
        pea_bytecode::verify_program(&program)
            .unwrap_or_else(|e| panic!("workload {}: {e}", spec.name));
        Workload {
            name: spec.name.to_string(),
            suite: spec.suite,
            program,
            significant: spec.significant,
        }
    }
}

/// All workloads of all suites, in Table 1 order.
pub fn all_workloads() -> Vec<Workload> {
    dacapo()
        .iter()
        .chain(scaladacapo().iter())
        .chain(std::iter::once(&specjbb()))
        .map(Workload::from_spec)
        .collect()
}

/// Workloads of one suite.
pub fn suite_workloads(suite: Suite) -> Vec<Workload> {
    all_workloads()
        .into_iter()
        .filter(|w| w.suite == suite)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use pea_runtime::Value;
    use pea_vm::{OptLevel, Vm, VmOptions};

    #[test]
    fn all_workloads_parse_and_verify() {
        let ws = all_workloads();
        assert_eq!(ws.len(), 14 + 12 + 1);
        assert_eq!(ws.iter().filter(|w| w.suite == Suite::DaCapo).count(), 14);
        assert_eq!(
            ws.iter().filter(|w| w.suite == Suite::ScalaDaCapo).count(),
            12
        );
    }

    #[test]
    fn workloads_run_and_levels_agree() {
        for w in all_workloads() {
            let mut results = Vec::new();
            for level in [OptLevel::None, OptLevel::Pea] {
                let mut vm = Vm::new(w.program.clone(), VmOptions::with_opt_level(level));
                let mut acc = Vec::new();
                for i in 0..3 {
                    let r = vm
                        .call_entry("iterate", &[Value::Int(i)])
                        .unwrap_or_else(|e| panic!("{} at {level}: {e}", w.name));
                    acc.push(r);
                }
                results.push(acc);
            }
            assert_eq!(results[0], results[1], "{}: levels disagree", w.name);
        }
    }

    #[test]
    fn factorie_like_is_boxing_heavy() {
        let w = suite_workloads(Suite::ScalaDaCapo)
            .into_iter()
            .find(|w| w.name == "factorie")
            .unwrap();
        // Compare steady-state allocation counts with and without PEA.
        let mut counts = Vec::new();
        for level in [OptLevel::None, OptLevel::Pea] {
            let mut vm = Vm::new(w.program.clone(), VmOptions::with_opt_level(level));
            for i in 0..60 {
                vm.call_entry("iterate", &[Value::Int(i)]).unwrap();
            }
            let before = vm.stats();
            for i in 60..70 {
                vm.call_entry("iterate", &[Value::Int(i)]).unwrap();
            }
            counts.push(vm.stats().delta(&before).alloc_count);
        }
        assert!(
            (counts[1] as f64) < 0.6 * counts[0] as f64,
            "factorie-like must cut allocations by >40%: none={} pea={}",
            counts[0],
            counts[1]
        );
    }
}
