//! Edge-case coverage for the analysis: virtual arrays, type/identity
//! check folding, defensive materialization, multi-way merges, nested
//! loops, and escaped-state merging.

use pea_bytecode::{ClassId, MethodId, ProgramBuilder, StaticId, ValueKind};
use pea_core::{run_pea, PeaOptions};
use pea_ir::verify::verify;
use pea_ir::{AllocShape, FrameStateData, Graph, NodeId, NodeKind};

fn hierarchy() -> (pea_bytecode::Program, ClassId, ClassId, ClassId, StaticId) {
    let mut pb = ProgramBuilder::new();
    let base = pb.add_class("Base", None);
    pb.add_field(base, "x", ValueKind::Int);
    let derived = pb.add_class("Derived", Some(base));
    let other = pb.add_class("Other", None);
    pb.add_field(other, "y", ValueKind::Ref);
    let g = pb.add_static("g", ValueKind::Ref);
    (pb.build().unwrap(), base, derived, other, g)
}

fn count(g: &Graph, pred: impl Fn(&NodeKind) -> bool) -> usize {
    g.live_nodes().filter(|&n| pred(g.kind(n))).count()
}

fn fs(g: &mut Graph, m: MethodId, bci: u32, locals: Vec<NodeId>) -> NodeId {
    let data = FrameStateData::new(m, bci, locals.len() as u32, 0, 0, false);
    g.add_frame_state(data, locals)
}

#[test]
fn virtual_array_constant_accesses_fold() {
    let (program, ..) = hierarchy();
    let mut g = Graph::new();
    let p = g.add(NodeKind::Param { index: 0 }, vec![]);
    let len = g.const_int(3);
    let arr = g.add(
        NodeKind::NewArray {
            kind: ValueKind::Int,
        },
        vec![len],
    );
    g.set_next(g.start, arr);
    let idx1 = g.const_int(1);
    let store = g.add(NodeKind::StoreIndexed, vec![arr, idx1, p]);
    g.set_next(arr, store);
    let st = fs(&mut g, MethodId(0), 1, vec![p]);
    g.set_state_after(store, Some(st));
    let load = g.add(NodeKind::LoadIndexed, vec![arr, idx1]);
    g.set_next(store, load);
    let alen = g.add(NodeKind::ArrayLen, vec![arr]);
    g.set_next(load, alen);
    let sum = g.add(
        NodeKind::Arith {
            op: pea_ir::ArithOp::Add,
        },
        vec![load, alen],
    );
    let ret = g.add(NodeKind::Return, vec![sum]);
    g.set_next(alen, ret);
    verify(&g).unwrap();

    let r = run_pea(&mut g, &program, &PeaOptions::default());
    verify(&g).unwrap();
    assert_eq!(r.virtualized_allocs, 1);
    assert_eq!(count(&g, |k| matches!(k, NodeKind::NewArray { .. })), 0);
    assert_eq!(count(&g, |k| matches!(k, NodeKind::ArrayLen)), 0);
    // sum = p + 3, with the length folded to a constant.
    let inputs = g.node(sum).inputs();
    assert_eq!(inputs[0], p);
    assert!(matches!(g.kind(inputs[1]), NodeKind::ConstInt { value: 3 }));
}

#[test]
fn dynamic_index_materializes_the_array() {
    let (program, ..) = hierarchy();
    let mut g = Graph::new();
    let p = g.add(NodeKind::Param { index: 0 }, vec![]);
    let len = g.const_int(4);
    let arr = g.add(
        NodeKind::NewArray {
            kind: ValueKind::Int,
        },
        vec![len],
    );
    g.set_next(g.start, arr);
    // Store at a non-constant index: the array must exist.
    let store = g.add(NodeKind::StoreIndexed, vec![arr, p, p]);
    g.set_next(arr, store);
    let st = fs(&mut g, MethodId(0), 1, vec![p]);
    g.set_state_after(store, Some(st));
    let ret = g.add(NodeKind::Return, vec![]);
    g.set_next(store, ret);
    verify(&g).unwrap();

    let r = run_pea(&mut g, &program, &PeaOptions::default());
    verify(&g).unwrap();
    assert_eq!(r.materializations, 1);
    let commit = g
        .live_nodes()
        .find(|&n| matches!(g.kind(n), NodeKind::Commit { .. }))
        .unwrap();
    let NodeKind::Commit { objects } = g.kind(commit) else {
        unreachable!()
    };
    assert!(matches!(
        objects[0].shape,
        AllocShape::Array {
            kind: ValueKind::Int,
            length: 4
        }
    ));
    // The store survives and now targets the allocated object.
    assert_eq!(count(&g, |k| matches!(k, NodeKind::StoreIndexed)), 1);
}

#[test]
fn oversized_array_is_not_virtualized() {
    let (program, ..) = hierarchy();
    let mut g = Graph::new();
    let len = g.const_int(1000);
    let arr = g.add(
        NodeKind::NewArray {
            kind: ValueKind::Int,
        },
        vec![len],
    );
    g.set_next(g.start, arr);
    let ret = g.add(NodeKind::Return, vec![]);
    g.set_next(arr, ret);
    let r = run_pea(&mut g, &program, &PeaOptions::default());
    // Above max_virtual_array_length: the allocation stays (dead-code
    // pruning is not PEA's job for unused real allocations).
    assert_eq!(r.virtualized_allocs, 0);
    assert_eq!(count(&g, |k| matches!(k, NodeKind::NewArray { .. })), 1);
}

#[test]
fn instanceof_folds_with_hierarchy() {
    let (program, base, derived, other, _) = hierarchy();
    let mut g = Graph::new();
    let obj = g.add(NodeKind::New { class: derived }, vec![]);
    g.set_next(g.start, obj);
    let io_base = g.add(
        NodeKind::InstanceOf {
            class: base,
            exact: false,
        },
        vec![obj],
    );
    g.set_next(obj, io_base);
    let io_base_exact = g.add(
        NodeKind::InstanceOf {
            class: base,
            exact: true,
        },
        vec![obj],
    );
    g.set_next(io_base, io_base_exact);
    let io_other = g.add(
        NodeKind::InstanceOf {
            class: other,
            exact: false,
        },
        vec![obj],
    );
    g.set_next(io_base_exact, io_other);
    let isnull = g.add(NodeKind::IsNull, vec![obj]);
    g.set_next(io_other, isnull);
    let s1 = g.add(
        NodeKind::Arith {
            op: pea_ir::ArithOp::Add,
        },
        vec![io_base, io_base_exact],
    );
    let s2 = g.add(
        NodeKind::Arith {
            op: pea_ir::ArithOp::Add,
        },
        vec![io_other, isnull],
    );
    let s3 = g.add(
        NodeKind::Arith {
            op: pea_ir::ArithOp::Add,
        },
        vec![s1, s2],
    );
    let ret = g.add(NodeKind::Return, vec![s3]);
    g.set_next(isnull, ret);
    verify(&g).unwrap();

    let r = run_pea(&mut g, &program, &PeaOptions::default());
    verify(&g).unwrap();
    assert_eq!(r.folded_checks, 4);
    // derived instanceof base = 1; exact-base = 0; other = 0; isnull = 0.
    assert!(matches!(
        g.kind(g.node(s1).inputs()[0]),
        NodeKind::ConstInt { value: 1 }
    ));
    assert!(matches!(
        g.kind(g.node(s1).inputs()[1]),
        NodeKind::ConstInt { value: 0 }
    ));
    assert_eq!(count(&g, |k| matches!(k, NodeKind::New { .. })), 0);
}

#[test]
fn failing_checkcast_materializes_and_survives() {
    let (program, _, derived, other, _) = hierarchy();
    let mut g = Graph::new();
    let obj = g.add(NodeKind::New { class: derived }, vec![]);
    g.set_next(g.start, obj);
    let cast = g.add(NodeKind::CheckCast { class: other }, vec![obj]);
    g.set_next(obj, cast);
    let ret = g.add(NodeKind::Return, vec![]);
    g.set_next(cast, ret);
    let r = run_pea(&mut g, &program, &PeaOptions::default());
    verify(&g).unwrap();
    // The cast will raise at runtime: it must stay, with a real object.
    assert_eq!(count(&g, |k| matches!(k, NodeKind::CheckCast { .. })), 1);
    assert_eq!(r.materializations, 1);
}

#[test]
fn monitor_exit_without_enter_materializes_defensively() {
    let (program, base, ..) = hierarchy();
    let mut g = Graph::new();
    let obj = g.add(NodeKind::New { class: base }, vec![]);
    g.set_next(g.start, obj);
    let mx = g.add(NodeKind::MonitorExit, vec![obj]);
    g.set_next(obj, mx);
    let p = g.add(NodeKind::Param { index: 0 }, vec![]);
    let st = fs(&mut g, MethodId(0), 1, vec![p]);
    g.set_state_after(mx, Some(st));
    let ret = g.add(NodeKind::Return, vec![]);
    g.set_next(mx, ret);
    let r = run_pea(&mut g, &program, &PeaOptions::default());
    verify(&g).unwrap();
    // Unbalanced exit: keep it (it raises IllegalMonitorState at runtime,
    // exactly like the interpreter).
    assert_eq!(count(&g, |k| matches!(k, NodeKind::MonitorExit)), 1);
    assert_eq!(r.materializations, 1);
    assert_eq!(r.elided_monitors, 0);
}

#[test]
fn three_way_merge_builds_field_phi() {
    let (program, base, ..) = hierarchy();
    let field = program.class(base).declared_fields[0];
    let mut g = Graph::new();
    let sel = g.add(NodeKind::Param { index: 0 }, vec![]);
    let obj = g.add(NodeKind::New { class: base }, vec![]);
    g.set_next(g.start, obj);
    // if (sel) {x=1} else { if (sel2) {x=2} else {x=3} } — three paths
    // into a second merge via nesting.
    let iff = g.add(NodeKind::If, vec![sel]);
    g.set_next(obj, iff);
    let b1 = g.add(NodeKind::Begin, vec![]);
    let belse = g.add(NodeKind::Begin, vec![]);
    g.set_if_targets(iff, b1, belse);
    let mut ends = Vec::new();
    let c1 = g.const_int(1);
    let s1 = g.add(NodeKind::StoreField { field }, vec![obj, c1]);
    g.set_next(b1, s1);
    let st1 = fs(&mut g, MethodId(0), 1, vec![sel]);
    g.set_state_after(s1, Some(st1));
    let e1 = g.add(NodeKind::End, vec![]);
    g.set_next(s1, e1);
    ends.push(e1);
    // nested if
    let sel2 = g.add(NodeKind::Param { index: 1 }, vec![]);
    let iff2 = g.add(NodeKind::If, vec![sel2]);
    g.set_next(belse, iff2);
    let b2 = g.add(NodeKind::Begin, vec![]);
    let b3 = g.add(NodeKind::Begin, vec![]);
    g.set_if_targets(iff2, b2, b3);
    for (bb, v) in [(b2, 2i64), (b3, 3i64)] {
        let c = g.const_int(v);
        let s = g.add(NodeKind::StoreField { field }, vec![obj, c]);
        g.set_next(bb, s);
        let st = fs(&mut g, MethodId(0), 2, vec![sel]);
        g.set_state_after(s, Some(st));
        let e = g.add(NodeKind::End, vec![]);
        g.set_next(s, e);
        ends.push(e);
    }
    // inner merge of the two else-paths, then outer merge with path 1.
    let inner = g.add(
        NodeKind::Merge {
            ends: vec![ends[1], ends[2]],
        },
        vec![],
    );
    let e_inner = g.add(NodeKind::End, vec![]);
    g.set_next(inner, e_inner);
    let outer = g.add(
        NodeKind::Merge {
            ends: vec![ends[0], e_inner],
        },
        vec![],
    );
    let load = g.add(NodeKind::LoadField { field }, vec![obj]);
    g.set_next(outer, load);
    let ret = g.add(NodeKind::Return, vec![load]);
    g.set_next(load, ret);
    verify(&g).unwrap();

    let r = run_pea(&mut g, &program, &PeaOptions::default());
    verify(&g).unwrap();
    assert_eq!(count(&g, |k| matches!(k, NodeKind::New { .. })), 0);
    assert_eq!(r.materializations, 0, "stays virtual across both merges");
    // Return value is a phi over (1, phi(2, 3)).
    let ret_in = g.node(ret).inputs()[0];
    assert!(matches!(g.kind(ret_in), NodeKind::Phi { .. }));
}

#[test]
fn nested_loops_keep_object_virtual() {
    let (program, base, ..) = hierarchy();
    let field = program.class(base).declared_fields[0];
    let mut g = Graph::new();
    let p = g.add(NodeKind::Param { index: 0 }, vec![]);
    let obj = g.add(NodeKind::New { class: base }, vec![]);
    g.set_next(g.start, obj);

    // outer loop
    let e0 = g.add(NodeKind::End, vec![]);
    g.set_next(obj, e0);
    let outer = g.add(NodeKind::LoopBegin { ends: vec![e0] }, vec![]);
    let cmp_o = g.add(
        NodeKind::Compare {
            op: pea_bytecode::CmpOp::Lt,
        },
        vec![p, p],
    );
    let if_o = g.add(NodeKind::If, vec![cmp_o]);
    g.set_next(outer, if_o);
    let body_o = g.add(NodeKind::Begin, vec![]);
    let exit_o = g.add(NodeKind::Begin, vec![]);
    g.set_if_targets(if_o, body_o, exit_o);

    // inner loop, updating the object's field
    let e1 = g.add(NodeKind::End, vec![]);
    g.set_next(body_o, e1);
    let inner = g.add(NodeKind::LoopBegin { ends: vec![e1] }, vec![]);
    let load_i = g.add(NodeKind::LoadField { field }, vec![obj]);
    g.set_next(inner, load_i);
    let one = g.const_int(1);
    let inc = g.add(
        NodeKind::Arith {
            op: pea_ir::ArithOp::Add,
        },
        vec![load_i, one],
    );
    let store_i = g.add(NodeKind::StoreField { field }, vec![obj, inc]);
    g.set_next(load_i, store_i);
    let st = fs(&mut g, MethodId(0), 3, vec![p]);
    g.set_state_after(store_i, Some(st));
    let cmp_i = g.add(
        NodeKind::Compare {
            op: pea_bytecode::CmpOp::Lt,
        },
        vec![inc, p],
    );
    let if_i = g.add(NodeKind::If, vec![cmp_i]);
    g.set_next(store_i, if_i);
    let cont_i = g.add(NodeKind::Begin, vec![]);
    let exit_i = g.add(NodeKind::Begin, vec![]);
    g.set_if_targets(if_i, cont_i, exit_i);
    let le_i = g.add(NodeKind::LoopEnd, vec![]);
    g.set_next(cont_i, le_i);
    g.add_merge_end(inner, le_i);
    // inner exit → outer back edge
    let le_o = g.add(NodeKind::LoopEnd, vec![]);
    g.set_next(exit_i, le_o);
    g.add_merge_end(outer, le_o);

    // outer exit: return obj.x
    let load_x = g.add(NodeKind::LoadField { field }, vec![obj]);
    g.set_next(exit_o, load_x);
    let ret = g.add(NodeKind::Return, vec![load_x]);
    g.set_next(load_x, ret);
    verify(&g).unwrap();

    let r = run_pea(&mut g, &program, &PeaOptions::default());
    verify(&g).unwrap();
    assert_eq!(count(&g, |k| matches!(k, NodeKind::New { .. })), 0);
    assert_eq!(count(&g, |k| matches!(k, NodeKind::Commit { .. })), 0);
    assert_eq!(count(&g, |k| matches!(k, NodeKind::LoadField { .. })), 0);
    assert!(r.loop_rounds >= 3, "both loops iterate: {}", r.loop_rounds);
}

#[test]
fn escaped_on_both_paths_merges_with_phi_of_materialized_values() {
    let (program, base, _, _, g_static) = hierarchy();
    let mut g = Graph::new();
    let sel = g.add(NodeKind::Param { index: 0 }, vec![]);
    let obj = g.add(NodeKind::New { class: base }, vec![]);
    g.set_next(g.start, obj);
    let iff = g.add(NodeKind::If, vec![sel]);
    g.set_next(obj, iff);
    let bt = g.add(NodeKind::Begin, vec![]);
    let bf = g.add(NodeKind::Begin, vec![]);
    g.set_if_targets(iff, bt, bf);
    let mut ends = Vec::new();
    for bb in [bt, bf] {
        // Escape on both paths (different commits).
        let put = g.add(NodeKind::PutStatic { id: g_static }, vec![obj]);
        g.set_next(bb, put);
        let st = fs(&mut g, MethodId(0), 1, vec![sel]);
        g.set_state_after(put, Some(st));
        let e = g.add(NodeKind::End, vec![]);
        g.set_next(put, e);
        ends.push(e);
    }
    let merge = g.add(NodeKind::Merge { ends }, vec![]);
    // Use the object after the merge so its state must survive.
    let put2 = g.add(NodeKind::PutStatic { id: g_static }, vec![obj]);
    g.set_next(merge, put2);
    let st = fs(&mut g, MethodId(0), 2, vec![sel]);
    g.set_state_after(put2, Some(st));
    let ret = g.add(NodeKind::Return, vec![]);
    g.set_next(put2, ret);
    verify(&g).unwrap();

    let r = run_pea(&mut g, &program, &PeaOptions::default());
    verify(&g).unwrap();
    assert_eq!(r.materializations, 2, "one commit per branch");
    // The post-merge use sees a phi of the two allocated objects.
    let v = g.node(put2).inputs()[0];
    assert!(
        matches!(g.kind(v), NodeKind::Phi { .. }),
        "merged materialized value is a phi, got {:?}",
        g.kind(v)
    );
}
