//! Frame-state rewriting details (§5.5): mapping structure, outer-chain
//! handling, lock recording, and snapshot semantics.

use pea_bytecode::MethodId;
use pea_core::fixtures::key_program;
use pea_core::{run_pea, PeaOptions};
use pea_ir::verify::verify;
use pea_ir::{FrameStateData, Graph, NodeId, NodeKind};

fn vom_nodes(g: &Graph) -> Vec<NodeId> {
    g.live_nodes()
        .filter(|&n| matches!(g.kind(n), NodeKind::VirtualObjectMapping { .. }))
        .collect()
}

/// A virtual object referenced from an *outer* (caller) frame state gets a
/// mapping there too.
#[test]
fn outer_frame_state_slots_are_rewritten() {
    let (program, p) = key_program();
    let mut g = Graph::new();
    let x = g.add(NodeKind::Param { index: 0 }, vec![]);
    let obj = g.add(NodeKind::New { class: p.key_class }, vec![]);
    g.set_next(g.start, obj);
    // Outer state (caller) holds the object in a local.
    let outer = g.add_frame_state(
        FrameStateData::new(p.m_get_value, 4, 2, 0, 0, false),
        vec![x, obj],
    );
    // Inner state chains to it.
    let inner = g.add_frame_state(
        FrameStateData::new(p.m_create_value, 2, 1, 0, 0, true),
        vec![x, outer],
    );
    let put = g.add(NodeKind::PutStatic { id: p.s_cache_key }, vec![x]);
    // PutStatic of an int would be odd but is legal here; it simply keeps
    // the frame state alive.
    g.set_next(obj, put);
    g.set_state_after(put, Some(inner));
    let load = g.add(NodeKind::LoadField { field: p.f_idx }, vec![obj]);
    g.set_next(put, load);
    let ret = g.add(NodeKind::Return, vec![load]);
    g.set_next(load, ret);
    verify(&g).unwrap();

    run_pea(&mut g, &program, &PeaOptions::default());
    verify(&g).unwrap();
    let voms = vom_nodes(&g);
    assert_eq!(voms.len(), 1, "one mapping for the object");
    // The outer state's local slot now references the mapping.
    let outer_inputs = g.node(outer).inputs();
    assert_eq!(outer_inputs[1], voms[0]);
}

/// Lock counts are captured in the mapping: a virtual object locked twice
/// at the frame state point records `lock_count = 2`.
#[test]
fn mapping_records_lock_depth() {
    let (program, p) = key_program();
    let mut g = Graph::new();
    let x = g.add(NodeKind::Param { index: 0 }, vec![]);
    let obj = g.add(NodeKind::New { class: p.key_class }, vec![]);
    g.set_next(g.start, obj);
    let me1 = g.add(NodeKind::MonitorEnter, vec![obj]);
    g.set_next(obj, me1);
    let st1 = {
        let mut d = FrameStateData::new(p.m_get_value, 1, 1, 0, 1, false);
        d.lock_from_sync = vec![false];
        g.add_frame_state(d, vec![x, obj])
    };
    g.set_state_after(me1, Some(st1));
    let me2 = g.add(NodeKind::MonitorEnter, vec![obj]);
    g.set_next(me1, me2);
    let st2 = {
        let mut d = FrameStateData::new(p.m_get_value, 2, 1, 0, 2, false);
        d.lock_from_sync = vec![false, false];
        g.add_frame_state(d, vec![x, obj, obj])
    };
    g.set_state_after(me2, Some(st2));
    // A side effect while doubly locked keeps st2 live.
    let put = g.add(
        NodeKind::PutStatic {
            id: p.s_cache_value,
        },
        vec![x],
    );
    g.set_next(me2, put);
    let st3 = {
        let mut d = FrameStateData::new(p.m_get_value, 3, 1, 0, 2, false);
        d.lock_from_sync = vec![false, false];
        g.add_frame_state(d, vec![x, obj, obj])
    };
    g.set_state_after(put, Some(st3));
    let mx1 = g.add(NodeKind::MonitorExit, vec![obj]);
    g.set_next(put, mx1);
    let st4 = {
        let mut d = FrameStateData::new(p.m_get_value, 4, 1, 0, 1, false);
        d.lock_from_sync = vec![false];
        g.add_frame_state(d, vec![x, obj])
    };
    g.set_state_after(mx1, Some(st4));
    let mx2 = g.add(NodeKind::MonitorExit, vec![obj]);
    g.set_next(mx1, mx2);
    let st5 = g.add_frame_state(
        FrameStateData::new(p.m_get_value, 5, 1, 0, 0, false),
        vec![x],
    );
    g.set_state_after(mx2, Some(st5));
    let ret = g.add(NodeKind::Return, vec![]);
    g.set_next(mx2, ret);
    verify(&g).unwrap();

    let r = run_pea(&mut g, &program, &PeaOptions::default());
    verify(&g).unwrap();
    assert_eq!(r.elided_monitors, 4, "both pairs elided");
    // The put's frame state saw the object at depth 2.
    let mapping_depths: Vec<u32> = vom_nodes(&g)
        .into_iter()
        .map(|n| match g.kind(n) {
            NodeKind::VirtualObjectMapping { lock_count, .. } => *lock_count,
            _ => unreachable!(),
        })
        .collect();
    assert!(
        mapping_depths.contains(&2),
        "a mapping must record depth 2, got {mapping_depths:?}"
    );
}

/// Two frame-state slots holding the same virtual object share one
/// mapping node (and cyclic structures terminate).
#[test]
fn shared_slots_share_one_mapping() {
    let (program, p) = key_program();
    let mut g = Graph::new();
    let x = g.add(NodeKind::Param { index: 0 }, vec![]);
    let a = g.add(NodeKind::New { class: p.key_class }, vec![]);
    g.set_next(g.start, a);
    // a.ref = a (self-cycle) so the mapping references itself.
    let store = g.add(NodeKind::StoreField { field: p.f_ref }, vec![a, a]);
    g.set_next(a, store);
    let st0 = g.add_frame_state(
        FrameStateData::new(p.m_get_value, 1, 1, 0, 0, false),
        vec![x],
    );
    g.set_state_after(store, Some(st0));
    // Both locals hold the same object.
    let put = g.add(
        NodeKind::PutStatic {
            id: p.s_cache_value,
        },
        vec![x],
    );
    g.set_next(store, put);
    let st = g.add_frame_state(
        FrameStateData::new(p.m_get_value, 2, 3, 0, 0, false),
        vec![x, a, a],
    );
    g.set_state_after(put, Some(st));
    let ret = g.add(NodeKind::Return, vec![]);
    g.set_next(put, ret);
    verify(&g).unwrap();

    run_pea(&mut g, &program, &PeaOptions::default());
    verify(&g).unwrap();
    let voms = vom_nodes(&g);
    assert_eq!(voms.len(), 1, "single shared mapping");
    let vom = voms[0];
    let inputs = g.node(st).inputs();
    assert_eq!(inputs[1], vom);
    assert_eq!(inputs[2], vom);
    // The self-referential field points back at the mapping itself.
    assert_eq!(
        g.node(vom).inputs()[1],
        vom,
        "cyclic mapping closes on itself"
    );
}

/// A frame state is rewritten exactly once, at its earliest flow position:
/// a later materialization does not retroactively change the snapshot.
#[test]
fn snapshot_taken_at_earliest_position() {
    let (program, p) = key_program();
    let mut g = Graph::new();
    let x = g.add(NodeKind::Param { index: 0 }, vec![]);
    let obj = g.add(NodeKind::New { class: p.key_class }, vec![]);
    g.set_next(g.start, obj);
    let store = g.add(NodeKind::StoreField { field: p.f_idx }, vec![obj, x]);
    g.set_next(obj, store);
    let shared = g.add_frame_state(
        FrameStateData::new(p.m_get_value, 1, 2, 0, 0, false),
        vec![x, obj],
    );
    g.set_state_after(store, Some(shared));
    // Escape afterwards.
    let put = g.add(NodeKind::PutStatic { id: p.s_cache_key }, vec![obj]);
    g.set_next(store, put);
    let st2 = g.add_frame_state(
        FrameStateData::new(p.m_get_value, 2, 2, 0, 0, false),
        vec![x, obj],
    );
    g.set_state_after(put, Some(st2));
    // A guard BEFORE the escape and one AFTER it both share the store's
    // frame state. The rewrite happens at the earliest *live carrier* —
    // the first guard, where the object is still virtual — so the shared
    // state snapshots a mapping; the post-escape state (attached to the
    // putstatic itself) uses the materialized value.
    let cond = g.const_int(1);
    let guard_before = g.add(
        NodeKind::Guard {
            reason: pea_ir::DeoptReason::UntakenBranch,
            negated: false,
        },
        vec![cond],
    );
    g.insert_fixed_before(put, guard_before);
    g.set_state_after(guard_before, Some(shared));
    let guard_after = g.add(
        NodeKind::Guard {
            reason: pea_ir::DeoptReason::UntakenBranch,
            negated: false,
        },
        vec![cond],
    );
    g.set_next(put, guard_after);
    g.set_state_after(guard_after, Some(shared));
    let ret = g.add(NodeKind::Return, vec![]);
    g.set_next(guard_after, ret);
    verify(&g).unwrap();

    run_pea(&mut g, &program, &PeaOptions::default());
    verify(&g).unwrap();
    let shared_slot = g.node(shared).inputs()[1];
    assert!(
        matches!(g.kind(shared_slot), NodeKind::VirtualObjectMapping { .. }),
        "pre-escape snapshot stays virtual, got {:?}",
        g.kind(shared_slot)
    );
    let later_slot = g.node(st2).inputs()[1];
    assert!(
        matches!(g.kind(later_slot), NodeKind::AllocatedObject { .. }),
        "post-escape state uses the materialized value, got {:?}",
        g.kind(later_slot)
    );
}

/// `lock_from_sync` flags survive frame-state construction (checked by
/// the verifier) and drive the interpreter's auto-release on return —
/// covered end-to-end in `tests/end_to_end.rs`; here we check the data
/// plumbing.
#[test]
fn lock_from_sync_length_is_verified() {
    let (_, p) = key_program();
    let mut g = Graph::new();
    let x = g.add(NodeKind::Param { index: 0 }, vec![]);
    let mut d = FrameStateData::new(MethodId(0), 0, 1, 0, 1, false);
    d.lock_from_sync = vec![true, false]; // wrong length
    let _fs = g.add_frame_state(
        FrameStateData {
            lock_from_sync: d.lock_from_sync.clone(),
            ..d
        },
        vec![x, x],
    );
    let ret = g.add(NodeKind::Return, vec![]);
    g.set_next(g.start, ret);
    let err = verify(&g).unwrap_err();
    assert!(err.reason.contains("lock_from_sync"), "{err}");
    let _ = p;
}
