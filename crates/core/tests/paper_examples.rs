//! End-to-end tests of Partial Escape Analysis on the paper's own
//! examples (Listings 4–6, Figures 2–8).

use pea_core::fixtures::{fig7_loop_graph, key_program, listing5_graph, listing8_graph};
use pea_core::{run_ees, run_pea, PeaOptions};
use pea_ir::verify::verify;
use pea_ir::{Graph, NodeKind};

fn count_kind(g: &Graph, pred: impl Fn(&NodeKind) -> bool) -> usize {
    g.live_nodes().filter(|&n| pred(g.kind(n))).count()
}

fn count_news(g: &Graph) -> usize {
    count_kind(g, |k| {
        matches!(k, NodeKind::New { .. } | NodeKind::NewArray { .. })
    })
}

fn count_commits(g: &Graph) -> usize {
    count_kind(g, |k| matches!(k, NodeKind::Commit { .. }))
}

fn count_monitors(g: &Graph) -> usize {
    count_kind(g, |k| {
        matches!(k, NodeKind::MonitorEnter | NodeKind::MonitorExit)
    })
}

fn count_voms(g: &Graph) -> usize {
    count_kind(g, |k| matches!(k, NodeKind::VirtualObjectMapping { .. }))
}

/// The transition from Listing 5 to Listing 6: the allocation moves into
/// the miss branch, the monitor operations disappear, the loads fold.
#[test]
fn listing5_to_listing6() {
    let (program, p) = key_program();
    let (mut g, nodes) = listing5_graph(&p);
    verify(&g).expect("fixture verifies");
    let before_news = count_news(&g);
    assert_eq!(before_news, 1);
    assert_eq!(count_monitors(&g), 2);

    let result = run_pea(&mut g, &program, &PeaOptions::default());
    verify(&g).expect("graph verifies after PEA");

    // Paper §4: "the allocation was moved into one branch of the if".
    assert_eq!(count_news(&g), 0, "the New node is gone");
    assert_eq!(count_commits(&g), 1, "one materialization on the miss path");
    assert_eq!(count_monitors(&g), 0, "lock elision removed the monitors");
    assert_eq!(
        count_kind(&g, |k| matches!(k, NodeKind::LoadField { .. })),
        2,
        "only the two loads of cacheKey's fields remain"
    );
    assert_eq!(result.virtualized_allocs, 1);
    assert_eq!(result.elided_monitors, 2);
    assert_eq!(result.materializations, 1);
    assert!(result.deleted_loads >= 2);
    assert!(result.deleted_stores >= 2);

    // The commit must sit on the miss path: walking forward from it must
    // reach the PutStatic before any control merge.
    let commit = g
        .live_nodes()
        .find(|&n| matches!(g.kind(n), NodeKind::Commit { .. }))
        .unwrap();
    let mut cur = commit;
    let mut found_put = false;
    for _ in 0..10 {
        match g.next(cur) {
            Some(next) => {
                if next == nodes.put_cache_key {
                    found_put = true;
                    break;
                }
                cur = next;
            }
            None => break,
        }
    }
    assert!(
        found_put,
        "commit is anchored immediately before the escape"
    );

    // The hit-path return is untouched; the miss-path putstatic now sees
    // the materialized object.
    assert!(matches!(
        g.kind(g.node(nodes.put_cache_key).inputs()[0]),
        NodeKind::AllocatedObject { .. }
    ));
}

/// Baseline comparison (§3, §6.2): the flow-insensitive analysis sees the
/// escape into `cacheKey` and gives up entirely — allocation, monitors and
/// loads all stay.
#[test]
fn listing5_under_ees_baseline_keeps_everything() {
    let (program, p) = key_program();
    let (mut g, _) = listing5_graph(&p);
    let result = run_ees(&mut g, &program, &PeaOptions::default());
    verify(&g).expect("graph verifies after EES");
    assert_eq!(count_news(&g), 1, "allocation survives");
    assert_eq!(count_monitors(&g), 2, "monitors survive");
    assert_eq!(result.virtualized_allocs, 0);
    assert_eq!(result.materializations, 0);
}

/// A fully non-escaping variant (Listing 1→3): drop the miss-branch
/// escape and even the EES baseline removes the allocation.
#[test]
fn non_escaping_variant_optimized_by_both() {
    let (program, p) = key_program();
    for use_ees in [false, true] {
        let (mut g, nodes) = listing5_graph(&p);
        // Cut the escape: putstatic stores null instead of the key.
        let null = g.const_null();
        g.set_input(nodes.put_cache_key, 0, null);
        // Frame states still reference the allocation — that is fine for
        // PEA (virtual object mappings), but the EES baseline does not
        // consider frame states escapes either.
        let result = if use_ees {
            run_ees(&mut g, &program, &PeaOptions::default())
        } else {
            run_pea(&mut g, &program, &PeaOptions::default())
        };
        verify(&g).expect("verifies");
        assert_eq!(count_news(&g), 0, "ees={use_ees}: allocation removed");
        assert_eq!(count_commits(&g), 0, "ees={use_ees}: nothing materialized");
        assert_eq!(count_monitors(&g), 0, "ees={use_ees}: lock elided");
        assert_eq!(result.virtualized_allocs, 1);
    }
}

/// §5.5 / Figure 8: frame states referencing a virtual object are
/// rewritten to virtual-object mappings; the store disappears together
/// with its frame state.
#[test]
fn listing8_frame_states_get_mappings() {
    let (program, p) = key_program();
    let (mut g, _new_int, put) = listing8_graph(&p);
    verify(&g).expect("fixture verifies");
    let result = run_pea(&mut g, &program, &PeaOptions::default());
    verify(&g).expect("verifies after PEA");

    assert_eq!(count_news(&g), 0);
    assert_eq!(count_commits(&g), 0, "the object never escapes");
    assert!(result.deleted_stores >= 1);
    // The putstatic survives; its frame state now references a mapping.
    let fs = g.node(put).state_after.expect("state kept");
    let has_mapping = g
        .node(fs)
        .inputs()
        .iter()
        .any(|&i| matches!(g.kind(i), NodeKind::VirtualObjectMapping { .. }));
    assert!(has_mapping, "frame state references the virtual object");
    assert_eq!(count_voms(&g), 1);
    // The mapping's field value is the parameter x.
    let vom = g
        .live_nodes()
        .find(|&n| matches!(g.kind(n), NodeKind::VirtualObjectMapping { .. }))
        .unwrap();
    assert!(matches!(
        g.kind(g.node(vom).inputs()[0]),
        NodeKind::Param { index: 0 }
    ));
}

/// §5.4 / Figure 7: the loop is processed iteratively; the object stays
/// virtual through two back edges, its field becoming a loop phi, and the
/// allocation disappears entirely.
#[test]
fn fig7_loop_keeps_object_virtual() {
    let (program, p) = key_program();
    let (mut g, _new_key) = fig7_loop_graph(&p);
    verify(&g).expect("fixture verifies");
    let result = run_pea(&mut g, &program, &PeaOptions::default());
    verify(&g).expect("verifies after PEA");

    assert_eq!(count_news(&g), 0, "allocation eliminated");
    assert_eq!(count_commits(&g), 0, "never materialized");
    assert_eq!(
        count_kind(&g, |k| matches!(k, NodeKind::LoadField { .. })),
        0,
        "all loads folded"
    );
    assert!(
        result.loop_rounds >= 2,
        "fixpoint needed at least two rounds"
    );
    // The field became a loop phi with three inputs (entry + 2 back edges).
    let lb = g
        .live_nodes()
        .find(|&n| matches!(g.kind(n), NodeKind::LoopBegin { .. }))
        .unwrap();
    let phis = g.phis_of(lb);
    assert!(
        phis.iter().any(|&phi| g.node(phi).inputs().len() == 3),
        "loop phi over the virtual field"
    );
}

/// Loop-processing ablation: with loop support off, the object
/// materializes at the loop entry instead.
#[test]
fn fig7_loop_ablation_materializes_at_entry() {
    let (program, p) = key_program();
    let (mut g, _) = fig7_loop_graph(&p);
    let options = PeaOptions {
        loop_processing: false,
        ..PeaOptions::default()
    };
    let result = run_pea(&mut g, &program, &options);
    verify(&g).expect("verifies");
    assert_eq!(count_news(&g), 0, "New replaced by commit");
    assert_eq!(count_commits(&g), 1, "materialized once at entry");
    assert_eq!(result.materializations, 1);
    assert!(
        count_kind(&g, |k| matches!(k, NodeKind::LoadField { .. })) >= 3,
        "loads inside the loop stay"
    );
}

/// Running the analysis twice must be idempotent: the second run finds
/// nothing left to do on the fully virtualized graph.
#[test]
fn pea_is_idempotent_on_listing8() {
    let (program, p) = key_program();
    let (mut g, ..) = listing8_graph(&p);
    let first = run_pea(&mut g, &program, &PeaOptions::default());
    assert!(first.changed());
    let second = run_pea(&mut g, &program, &PeaOptions::default());
    verify(&g).expect("verifies");
    assert!(!second.changed(), "second run is a no-op: {second:?}");
}

/// Lock-elision ablation: with it disabled, entering the monitor
/// materializes the object and the monitors stay.
#[test]
fn lock_elision_ablation() {
    let (program, p) = key_program();
    let (mut g, _) = listing5_graph(&p);
    let options = PeaOptions {
        lock_elision: false,
        ..PeaOptions::default()
    };
    let result = run_pea(&mut g, &program, &options);
    verify(&g).expect("verifies");
    assert_eq!(count_monitors(&g), 2, "monitors survive");
    assert_eq!(result.elided_monitors, 0);
    assert_eq!(count_commits(&g), 1, "materialized at the monitor");
    assert_eq!(count_news(&g), 0);
}

/// RefEq folding (§5.2): comparing two distinct virtual objects folds to
/// false, comparing an object with itself folds to true.
#[test]
fn refeq_folding_on_virtual_objects() {
    let (program, p) = key_program();
    let mut g = Graph::new();
    let a = g.add(NodeKind::New { class: p.key_class }, vec![]);
    g.set_next(g.start, a);
    let b = g.add(NodeKind::New { class: p.key_class }, vec![]);
    g.set_next(a, b);
    let eq_ab = g.add(NodeKind::RefEq, vec![a, b]);
    g.set_next(b, eq_ab);
    let eq_aa = g.add(NodeKind::RefEq, vec![a, a]);
    g.set_next(eq_ab, eq_aa);
    let sum = g.add(
        NodeKind::Arith {
            op: pea_ir::ArithOp::Add,
        },
        vec![eq_ab, eq_aa],
    );
    let ret = g.add(NodeKind::Return, vec![sum]);
    g.set_next(eq_aa, ret);
    verify(&g).expect("fixture verifies");

    let result = run_pea(&mut g, &program, &PeaOptions::default());
    verify(&g).expect("verifies");
    assert_eq!(count_news(&g), 0);
    assert_eq!(result.folded_checks, 2);
    // sum = 0 + 1; both inputs are now constants.
    let inputs = g.node(sum).inputs();
    assert!(matches!(g.kind(inputs[0]), NodeKind::ConstInt { value: 0 }));
    assert!(matches!(g.kind(inputs[1]), NodeKind::ConstInt { value: 1 }));
}

/// Virtual objects referencing each other (Fig. 4e/4f) escape as one
/// commit group, including cyclic structures.
#[test]
fn cyclic_virtual_objects_commit_together() {
    let (program, p) = key_program();
    let mut g = Graph::new();
    let a = g.add(NodeKind::New { class: p.key_class }, vec![]);
    g.set_next(g.start, a);
    let b = g.add(NodeKind::New { class: p.key_class }, vec![]);
    g.set_next(a, b);
    // a.ref = b; b.ref = a;
    let s1 = g.add(NodeKind::StoreField { field: p.f_ref }, vec![a, b]);
    g.set_next(b, s1);
    let x = g.add(NodeKind::Param { index: 0 }, vec![]);
    let fs1 = g.add_frame_state(
        pea_ir::FrameStateData::new(p.m_get_value, 1, 1, 0, 0, false),
        vec![x],
    );
    g.set_state_after(s1, Some(fs1));
    let s2 = g.add(NodeKind::StoreField { field: p.f_ref }, vec![b, a]);
    g.set_next(s1, s2);
    let fs2 = g.add_frame_state(
        pea_ir::FrameStateData::new(p.m_get_value, 2, 1, 0, 0, false),
        vec![x],
    );
    g.set_state_after(s2, Some(fs2));
    // escape a
    let put = g.add(NodeKind::PutStatic { id: p.s_cache_key }, vec![a]);
    g.set_next(s2, put);
    let fs3 = g.add_frame_state(
        pea_ir::FrameStateData::new(p.m_get_value, 3, 1, 0, 0, false),
        vec![x],
    );
    g.set_state_after(put, Some(fs3));
    let ret = g.add(NodeKind::Return, vec![]);
    g.set_next(put, ret);
    verify(&g).expect("fixture verifies");

    let result = run_pea(&mut g, &program, &PeaOptions::default());
    verify(&g).expect("verifies");
    assert_eq!(count_news(&g), 0);
    assert_eq!(result.materializations, 1, "one commit for the group");
    let commit = g
        .live_nodes()
        .find(|&n| matches!(g.kind(n), NodeKind::Commit { .. }))
        .unwrap();
    let NodeKind::Commit { objects } = g.kind(commit) else {
        unreachable!()
    };
    assert_eq!(objects.len(), 2, "both objects in the group");
    // The commit's inputs include AllocatedObjects of itself (the cycle).
    let self_refs = g
        .node(commit)
        .inputs()
        .iter()
        .filter(|&&i| {
            matches!(g.kind(i), NodeKind::AllocatedObject { .. }) && g.node(i).inputs()[0] == commit
        })
        .count();
    assert_eq!(self_refs, 2, "cyclic fields reference the commit itself");
}

/// Field-phi merging (§5.3, Fig. 6): an object whose field differs across
/// the branches of an if stays virtual, the field becoming a phi.
#[test]
fn merge_creates_field_phi() {
    let (program, p) = key_program();
    let mut g = Graph::new();
    let cond = g.add(NodeKind::Param { index: 0 }, vec![]);
    let a = g.add(NodeKind::New { class: p.key_class }, vec![]);
    g.set_next(g.start, a);
    let iff = g.add(NodeKind::If, vec![cond]);
    g.set_next(a, iff);
    let t = g.add(NodeKind::Begin, vec![]);
    let f = g.add(NodeKind::Begin, vec![]);
    g.set_if_targets(iff, t, f);
    let c1 = g.const_int(1);
    let s1 = g.add(NodeKind::StoreField { field: p.f_idx }, vec![a, c1]);
    g.set_next(t, s1);
    let fs1 = g.add_frame_state(
        pea_ir::FrameStateData::new(p.m_get_value, 1, 1, 0, 0, false),
        vec![cond],
    );
    g.set_state_after(s1, Some(fs1));
    let te = g.add(NodeKind::End, vec![]);
    g.set_next(s1, te);
    let c2 = g.const_int(2);
    let s2 = g.add(NodeKind::StoreField { field: p.f_idx }, vec![a, c2]);
    g.set_next(f, s2);
    let fs2 = g.add_frame_state(
        pea_ir::FrameStateData::new(p.m_get_value, 2, 1, 0, 0, false),
        vec![cond],
    );
    g.set_state_after(s2, Some(fs2));
    let fe = g.add(NodeKind::End, vec![]);
    g.set_next(s2, fe);
    let merge = g.add(NodeKind::Merge { ends: vec![te, fe] }, vec![]);
    let load = g.add(NodeKind::LoadField { field: p.f_idx }, vec![a]);
    g.set_next(merge, load);
    let ret = g.add(NodeKind::Return, vec![load]);
    g.set_next(load, ret);
    verify(&g).expect("fixture verifies");

    let result = run_pea(&mut g, &program, &PeaOptions::default());
    verify(&g).expect("verifies");
    assert_eq!(count_news(&g), 0, "object never materializes");
    assert_eq!(count_commits(&g), 0);
    assert_eq!(result.virtualized_allocs, 1);
    // Return now returns a phi of the two constants.
    let ret_input = g.node(ret).inputs()[0];
    assert!(matches!(g.kind(ret_input), NodeKind::Phi { .. }));

    // Ablation: with field phis off, the same graph materializes instead.
    let (mut g2, _) = {
        let mut g2 = Graph::new();
        let cond = g2.add(NodeKind::Param { index: 0 }, vec![]);
        let a = g2.add(NodeKind::New { class: p.key_class }, vec![]);
        g2.set_next(g2.start, a);
        let iff = g2.add(NodeKind::If, vec![cond]);
        g2.set_next(a, iff);
        let t = g2.add(NodeKind::Begin, vec![]);
        let f = g2.add(NodeKind::Begin, vec![]);
        g2.set_if_targets(iff, t, f);
        let c1 = g2.const_int(1);
        let s1 = g2.add(NodeKind::StoreField { field: p.f_idx }, vec![a, c1]);
        g2.set_next(t, s1);
        let fs1 = g2.add_frame_state(
            pea_ir::FrameStateData::new(p.m_get_value, 1, 1, 0, 0, false),
            vec![cond],
        );
        g2.set_state_after(s1, Some(fs1));
        let te = g2.add(NodeKind::End, vec![]);
        g2.set_next(s1, te);
        let c2 = g2.const_int(2);
        let s2 = g2.add(NodeKind::StoreField { field: p.f_idx }, vec![a, c2]);
        g2.set_next(f, s2);
        let fs2 = g2.add_frame_state(
            pea_ir::FrameStateData::new(p.m_get_value, 2, 1, 0, 0, false),
            vec![cond],
        );
        g2.set_state_after(s2, Some(fs2));
        let fe = g2.add(NodeKind::End, vec![]);
        g2.set_next(s2, fe);
        let merge = g2.add(NodeKind::Merge { ends: vec![te, fe] }, vec![]);
        let load = g2.add(NodeKind::LoadField { field: p.f_idx }, vec![a]);
        g2.set_next(merge, load);
        let ret = g2.add(NodeKind::Return, vec![load]);
        g2.set_next(load, ret);
        (g2, ())
    };
    let options = PeaOptions {
        field_phis: false,
        ..PeaOptions::default()
    };
    let r2 = run_pea(&mut g2, &program, &options);
    verify(&g2).expect("verifies");
    assert_eq!(r2.materializations, 2, "materialized in both branches");
}
