//! Golden decision traces for the paper's worked examples: beyond the
//! structural assertions in `paper_examples.rs`, these tests pin the
//! *exact sequence of decisions* the analysis reports while transforming
//! each fixture. A change in the trace means the algorithm walked the
//! example differently than the paper describes — deliberate changes must
//! update the goldens alongside an explanation.

use pea_core::fixtures::{fig7_loop_graph, key_program, listing5_graph, listing8_graph};
use pea_core::{run_pea_traced, PeaOptions};
use pea_trace::{MemorySink, TraceEvent};

/// Renders an event as one compact golden line (stable across cosmetic
/// changes to the pretty printer).
fn golden_line(e: &TraceEvent) -> String {
    match e {
        TraceEvent::Virtualized { site, shape } => format!("virtualized n{site} {shape}"),
        TraceEvent::Materialized {
            site,
            anchor,
            block,
            reason,
        } => format!("materialized n{site} at n{anchor} b{block} {reason}"),
        TraceEvent::LockElided { site, node, exit } => {
            format!(
                "lock-elided n{site} {} n{node}",
                if *exit { "exit" } else { "enter" }
            )
        }
        TraceEvent::LoadElided { site, node } => format!("load-elided n{site} n{node}"),
        TraceEvent::StoreElided { site, node } => format!("store-elided n{site} n{node}"),
        TraceEvent::CheckFolded { node, value } => format!("check-folded n{node} -> {value}"),
        TraceEvent::PhiCreated { merge, site, field } => match field {
            Some(f) => format!("phi n{merge} n{site} field {f}"),
            None => format!("phi n{merge} n{site} materialized-value"),
        },
        TraceEvent::LoopRound { loop_begin, round } => {
            format!("loop n{loop_begin} round {round}")
        }
        other => format!("unexpected: {other:?}"),
    }
}

fn traced(
    graph: &mut pea_ir::Graph,
    program: &pea_bytecode::Program,
    options: &PeaOptions,
) -> Vec<String> {
    let mut sink = MemorySink::new();
    run_pea_traced(graph, program, options, &mut sink);
    sink.events.iter().map(golden_line).collect()
}

/// Listing 5 → Listing 6 (§4): virtualize the Key, absorb its stores and
/// loads, elide both monitor pairs of the inlined synchronized `equals`,
/// fold the null check, and materialize exactly once — on the miss path,
/// forced by the `putstatic cacheKey` escape.
#[test]
fn listing5_golden_trace() {
    let (program, p) = key_program();
    let (mut g, nodes) = listing5_graph(&p);
    let lines = traced(&mut g, &program, &PeaOptions::default());
    let anchor = nodes.put_cache_key.index();
    assert_eq!(
        lines,
        vec![
            "virtualized n3 Key".to_string(),
            "store-elided n3 n5".to_string(),
            "store-elided n3 n7".to_string(),
            "lock-elided n3 enter n10".to_string(),
            "load-elided n3 n12".to_string(),
            "load-elided n3 n15".to_string(),
            "lock-elided n3 exit n19".to_string(),
            format!("materialized n3 at n{anchor} b1 escape-to-store"),
        ],
        "Listing 5 decision sequence diverged from the paper's walkthrough"
    );
}

/// The same fixture with lock elision disabled (§6.1 ablation): the first
/// monitor-enter now forces the materialization, so every later operation
/// happens on the real object and no elision events appear at all.
#[test]
fn listing5_no_lock_elision_golden_trace() {
    let (program, p) = key_program();
    let (mut g, _) = listing5_graph(&p);
    let options = PeaOptions {
        lock_elision: false,
        ..PeaOptions::default()
    };
    let lines = traced(&mut g, &program, &options);
    assert_eq!(lines[0], "virtualized n3 Key");
    let mat: Vec<&String> = lines
        .iter()
        .filter(|l| l.starts_with("materialized"))
        .collect();
    assert_eq!(
        mat.len(),
        1,
        "one materialization, at the monitor: {lines:?}"
    );
    assert!(
        mat[0].ends_with("monitor-operation"),
        "reason must be the retained monitor, got {}",
        mat[0]
    );
    assert!(
        !lines.iter().any(|l| l.starts_with("lock-elided")),
        "no lock can be elided when elision is off: {lines:?}"
    );
}

/// Figure 7 (§5.4): the loop is processed iteratively. Round 1 discovers
/// the field assignment inside the body, round 2 confirms the fixpoint;
/// the object stays virtual throughout and the field becomes a loop phi.
#[test]
fn fig7_loop_golden_trace() {
    let (program, p) = key_program();
    let (mut g, _) = fig7_loop_graph(&p);
    let lines = traced(&mut g, &program, &PeaOptions::default());
    assert!(
        !lines.iter().any(|l| l.starts_with("materialized")),
        "the loop object must stay virtual: {lines:?}"
    );
    let rounds: Vec<&String> = lines.iter().filter(|l| l.starts_with("loop")).collect();
    assert!(
        rounds.len() >= 2,
        "iterative processing needs at least two rounds: {lines:?}"
    );
    assert!(
        lines
            .iter()
            .any(|l| l.starts_with("phi") && l.contains("field")),
        "the loop-carried field must surface as a phi: {lines:?}"
    );
    assert_eq!(
        lines
            .iter()
            .filter(|l| l.starts_with("virtualized"))
            .count(),
        1,
        "exactly one allocation participates: {lines:?}"
    );
}

/// Listing 8 (§5.5): the object never escapes; the trace shows only the
/// virtualization and the absorbed store — materialization-free, because
/// the frame state is rewritten to a virtual-object mapping instead.
#[test]
fn listing8_golden_trace() {
    let (program, p) = key_program();
    let (mut g, ..) = listing8_graph(&p);
    let lines = traced(&mut g, &program, &PeaOptions::default());
    assert!(
        lines.iter().any(|l| l.starts_with("virtualized")),
        "{lines:?}"
    );
    assert!(
        lines.iter().any(|l| l.starts_with("store-elided")),
        "{lines:?}"
    );
    assert!(
        !lines
            .iter()
            .any(|l| l.starts_with("materialized") || l.starts_with("lock-elided")),
        "nothing escapes and nothing is locked in Listing 8: {lines:?}"
    );
}

/// §5.3 / Figure 6 ablation pair: with field phis on, the merge keeps the
/// object virtual and the trace records the phi; with them off, both
/// branch states materialize at the merge with the merge-specific reason.
#[test]
fn merge_golden_traces() {
    use pea_ir::{FrameStateData, Graph, NodeKind};

    let (program, p) = key_program();
    let build = |g: &mut Graph| {
        // if (cond) { key.idx = 1 } else { key.idx = 2 }; return key.idx
        let cond = g.add(NodeKind::Param { index: 0 }, vec![]);
        let a = g.add(NodeKind::New { class: p.key_class }, vec![]);
        g.set_next(g.start, a);
        let iff = g.add(NodeKind::If, vec![cond]);
        g.set_next(a, iff);
        let t = g.add(NodeKind::Begin, vec![]);
        let f = g.add(NodeKind::Begin, vec![]);
        g.set_if_targets(iff, t, f);
        let c1 = g.const_int(1);
        let s1 = g.add(NodeKind::StoreField { field: p.f_idx }, vec![a, c1]);
        g.set_next(t, s1);
        let fs1 = g.add_frame_state(
            FrameStateData::new(p.m_get_value, 1, 1, 0, 0, false),
            vec![cond],
        );
        g.set_state_after(s1, Some(fs1));
        let te = g.add(NodeKind::End, vec![]);
        g.set_next(s1, te);
        let c2 = g.const_int(2);
        let s2 = g.add(NodeKind::StoreField { field: p.f_idx }, vec![a, c2]);
        g.set_next(f, s2);
        let fs2 = g.add_frame_state(
            FrameStateData::new(p.m_get_value, 2, 1, 0, 0, false),
            vec![cond],
        );
        g.set_state_after(s2, Some(fs2));
        let fe = g.add(NodeKind::End, vec![]);
        g.set_next(s2, fe);
        let merge = g.add(NodeKind::Merge { ends: vec![te, fe] }, vec![]);
        let load = g.add(NodeKind::LoadField { field: p.f_idx }, vec![a]);
        g.set_next(merge, load);
        let ret = g.add(NodeKind::Return, vec![load]);
        g.set_next(load, ret);
    };

    let mut g = Graph::new();
    build(&mut g);
    let lines = traced(&mut g, &program, &PeaOptions::default());
    assert!(
        !lines.iter().any(|l| l.starts_with("materialized")),
        "with field phis the object stays virtual: {lines:?}"
    );
    assert!(
        lines
            .iter()
            .any(|l| l.starts_with("phi") && l.contains("field")),
        "the conflicting field must surface as a phi event: {lines:?}"
    );

    let mut g2 = Graph::new();
    build(&mut g2);
    let options = PeaOptions {
        field_phis: false,
        ..PeaOptions::default()
    };
    let lines2 = traced(&mut g2, &program, &options);
    let mats: Vec<&String> = lines2
        .iter()
        .filter(|l| l.starts_with("materialized"))
        .collect();
    assert_eq!(mats.len(), 2, "both branch states materialize: {lines2:?}");
    assert!(
        mats.iter().all(|l| l.contains("merge-")),
        "materializations must carry a merge-specific reason: {mats:?}"
    );
    assert!(
        !lines2
            .iter()
            .any(|l| l.starts_with("phi") && l.contains("field")),
        "no field phi without §5.3 support: {lines2:?}"
    );
}

/// Exception edge as materialization point: a virtual object reaching a
/// [`pea_ir::NodeKind::Unwind`] sink (an escaping `athrow`) must
/// materialize exactly there, with the dedicated `thrown-escape` reason —
/// while the non-throwing branch of the same method keeps the object
/// virtual and its loads elided.
#[test]
fn thrown_escape_golden_trace() {
    use pea_ir::{FrameStateData, Graph, NodeKind};

    let (program, p) = key_program();
    let mut g = Graph::new();
    // if (cond) { throw key } else { return key.idx } with key.idx = 7
    // stored up front.
    let cond = g.add(NodeKind::Param { index: 0 }, vec![]);
    let a = g.add(NodeKind::New { class: p.key_class }, vec![]);
    g.set_next(g.start, a);
    let c7 = g.const_int(7);
    let store = g.add(NodeKind::StoreField { field: p.f_idx }, vec![a, c7]);
    g.set_next(a, store);
    let fs = g.add_frame_state(
        FrameStateData::new(p.m_get_value, 1, 1, 0, 0, false),
        vec![cond],
    );
    g.set_state_after(store, Some(fs));
    let iff = g.add(NodeKind::If, vec![cond]);
    g.set_next(store, iff);
    let t = g.add(NodeKind::Begin, vec![]);
    let f = g.add(NodeKind::Begin, vec![]);
    g.set_if_targets(iff, t, f);
    let unwind = g.add(NodeKind::Unwind, vec![a]);
    g.set_next(t, unwind);
    let load = g.add(NodeKind::LoadField { field: p.f_idx }, vec![a]);
    g.set_next(f, load);
    let ret = g.add(NodeKind::Return, vec![load]);
    g.set_next(load, ret);

    let lines = traced(&mut g, &program, &PeaOptions::default());
    let site = a.index();
    let anchor = unwind.index();
    let mats: Vec<&String> = lines
        .iter()
        .filter(|l| l.starts_with("materialized"))
        .collect();
    assert_eq!(
        mats.len(),
        1,
        "exactly one materialization, on the throw path: {lines:?}"
    );
    assert!(
        mats[0].starts_with(&format!("materialized n{site} at n{anchor} ")),
        "must materialize at the Unwind sink: {lines:?}"
    );
    assert!(
        mats[0].ends_with("thrown-escape"),
        "the reason must be the dedicated thrown-escape: {}",
        mats[0]
    );
    assert!(
        lines.contains(&format!("virtualized n{site} Key"))
            && lines.contains(&format!("store-elided n{site} n{}", store.index()))
            && lines.contains(&format!("load-elided n{site} n{}", load.index())),
        "the non-throwing branch must stay fully scalar-replaced: {lines:?}"
    );
}

/// The trace stream must agree with the [`pea_core::PeaResult`] counters:
/// every counter is exactly the number of corresponding events (with
/// materializations counted per commit *group*, so events ≥ counter).
#[test]
fn trace_agrees_with_result_counters() {
    let (program, p) = key_program();
    for fixture in 0..3usize {
        let mut g = match fixture {
            0 => listing5_graph(&p).0,
            1 => fig7_loop_graph(&p).0,
            _ => listing8_graph(&p).0,
        };
        let mut sink = MemorySink::new();
        let result = run_pea_traced(&mut g, &program, &PeaOptions::default(), &mut sink);
        let count = |kind: &str| sink.of_kind(kind).len();
        assert_eq!(
            count("virtualized"),
            result.virtualized_allocs,
            "fixture {fixture}"
        );
        assert!(
            count("materialized") >= result.materializations,
            "fixture {fixture}: group members ≥ commits"
        );
        assert_eq!(
            count("lock-elided"),
            result.elided_monitors,
            "fixture {fixture}"
        );
        assert_eq!(
            count("load-elided"),
            result.deleted_loads,
            "fixture {fixture}"
        );
        assert_eq!(
            count("store-elided"),
            result.deleted_stores,
            "fixture {fixture}"
        );
        assert_eq!(
            count("check-folded"),
            result.folded_checks,
            "fixture {fixture}"
        );
        assert_eq!(
            sink.of_kind("loop-round")
                .iter()
                .map(|e| match e {
                    TraceEvent::LoopRound { round, .. } => *round,
                    _ => 0,
                })
                .max()
                .unwrap_or(0) as usize,
            result.loop_rounds,
            "fixture {fixture}"
        );
    }
}
