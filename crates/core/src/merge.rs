//! The MergeProcessor (paper §5.3, Figure 6): combines the states arriving
//! over multiple control-flow predecessors into one consistent state,
//! materializing exactly where necessary and iterating until stable.

use crate::analysis::PeaContext;
use crate::effects::Effect;
use crate::process::materialize;
use crate::state::{AllocId, ObjectState, PeaState};
use pea_ir::cfg::BlockId;
use pea_ir::{NodeId, NodeKind};
use pea_trace::MaterializeReason;

/// Cache key tag for the materialized-value phi of an escaped merge.
pub(crate) const MAT_PHI_KEY: usize = usize::MAX;

/// Merges `pred_states` (aligned with `anchors`, the predecessor `End`
/// nodes and their blocks) at `merge_node` (a `Merge` or `LoopBegin`).
/// Predecessor states are mutated in place when objects must materialize
/// at a predecessor (Fig. 6b middle case); the caller writes them back.
pub(crate) fn merge_states(
    ctx: &mut PeaContext<'_>,
    merge_node: NodeId,
    pred_states: &mut [PeaState],
    anchors: &[(NodeId, BlockId)],
) -> PeaState {
    assert_eq!(pred_states.len(), anchors.len());
    assert!(!pred_states.is_empty());
    // "The whole process is iterated until no additional materializations
    // happen during merging" (§5.3).
    loop {
        let ticks_at_start = ctx.materialize_ticks;
        let mut merged = PeaState::new();

        // (a) Intersection: ids present in every predecessor state...
        let candidates: Vec<AllocId> = pred_states[0]
            .states
            .keys()
            .copied()
            .filter(|id| pred_states.iter().all(|s| s.states.contains_key(id)))
            .collect();
        // ...that are still observable at or after the merge: some alias
        // must be live (see `crate::liveness`), transitively through the
        // fields of surviving objects. Dead object states are dropped
        // instead of being needlessly materialized.
        let surviving: Vec<AllocId> = {
            let live = ctx
                .cfg
                .try_block_of(merge_node)
                .map(|b| &ctx.live_in[b.index()]);
            // Phi inputs are uses at the predecessor ends — objects
            // flowing through this merge's phis are observable too.
            let phi_inputs: std::collections::HashSet<NodeId> = ctx
                .graph
                .phis_of(merge_node)
                .into_iter()
                .flat_map(|phi| ctx.graph.node(phi).inputs().to_vec())
                .collect();
            let directly_live = |id: AllocId| -> bool {
                let Some(live) = live else { return true };
                pred_states.iter().any(|s| {
                    s.aliases.iter().any(|(&node, &aid)| {
                        aid == id && (live.contains(node) || phi_inputs.contains(&node))
                    })
                })
            };
            let mut keep: Vec<AllocId> = candidates
                .iter()
                .copied()
                .filter(|&id| directly_live(id))
                .collect();
            // Transitive closure: fields of live objects keep their
            // referents alive.
            let mut i = 0;
            while i < keep.len() {
                let id = keep[i];
                i += 1;
                for s in pred_states.iter() {
                    if let ObjectState::Virtual { fields, .. } = s.object(id) {
                        for &v in fields {
                            if let Some(child) = s.alias_of(v) {
                                if candidates.contains(&child) && !keep.contains(&child) {
                                    keep.push(child);
                                }
                            }
                        }
                    }
                }
            }
            keep.sort_unstable();
            keep
        };
        // Aliases common to all predecessors (same node → same id).
        for (&node, &id) in &pred_states[0].aliases {
            if surviving.contains(&id) && pred_states.iter().all(|s| s.alias_of(node) == Some(id)) {
                merged.aliases.insert(node, id);
            }
        }

        for &id in &surviving {
            let obj_states: Vec<&ObjectState> = pred_states.iter().map(|s| s.object(id)).collect();
            let all_virtual = obj_states.iter().all(|s| s.is_virtual());
            let all_escaped = obj_states.iter().all(|s| !s.is_virtual());

            if all_virtual {
                // Lock counts must agree; balanced programs guarantee it,
                // and mismatches force materialization (defensive).
                let lock_counts: Vec<u32> = obj_states
                    .iter()
                    .map(|s| match s {
                        ObjectState::Virtual { lock_count, .. } => *lock_count,
                        ObjectState::Escaped { .. } => unreachable!(),
                    })
                    .collect();
                let locks_agree = lock_counts.windows(2).all(|w| w[0] == w[1]);
                if locks_agree
                    && merge_virtual(ctx, merge_node, pred_states, anchors, id, &mut merged)
                {
                    if ctx.materialize_ticks != ticks_at_start {
                        break; // a field merge materialized something: restart
                    }
                    continue;
                }
                // Field merge required materialization (or was disabled,
                // or locks disagree): materialize everywhere and retry.
                for (k, (anchor, block)) in anchors.iter().enumerate() {
                    if pred_states[k].object(id).is_virtual() {
                        materialize(
                            ctx,
                            &mut pred_states[k],
                            id,
                            *anchor,
                            *block,
                            MaterializeReason::MergeFieldConflict,
                        );
                    }
                }
                break; // restart the whole merge
            }

            if !all_escaped {
                // Mixed: materialize the virtual ones at their
                // predecessors, then fall through to the escaped case on
                // the next round (§5.3, second bullet).
                for (k, (anchor, block)) in anchors.iter().enumerate() {
                    if pred_states[k].object(id).is_virtual() {
                        materialize(
                            ctx,
                            &mut pred_states[k],
                            id,
                            *anchor,
                            *block,
                            MaterializeReason::MergeOfMixedStates,
                        );
                    }
                }
                break;
            }

            // All escaped (Fig. 6b): merge materialized values.
            let values: Vec<NodeId> = pred_states
                .iter()
                .map(|s| s.object(id).materialized_value().expect("escaped"))
                .collect();
            let value = if values.windows(2).all(|w| w[0] == w[1]) {
                values[0]
            } else {
                cached_phi(ctx, merge_node, id, MAT_PHI_KEY, &values)
            };
            merged.states.insert(
                id,
                ObjectState::Escaped {
                    materialized: value,
                },
            );
        }

        if ctx.materialize_ticks != ticks_at_start {
            continue;
        }

        // Existing phis attached to the merge (Fig. 6c and the bullet
        // list that follows it).
        let phis = ctx.graph.phis_of(merge_node);
        for phi in phis {
            let inputs = ctx.graph.node(phi).inputs().to_vec();
            // Loop begins are merged mid-construction in rounds where the
            // phi may not have grown its back-edge inputs yet; only
            // process when arities match.
            if inputs.len() != pred_states.len() {
                continue;
            }
            let ids: Vec<Option<AllocId>> = inputs
                .iter()
                .zip(pred_states.iter())
                .map(|(&v, s)| s.virtual_alias(v))
                .collect();
            if let Some(first) = ids[0] {
                if ids.iter().all(|&i| i == Some(first))
                    && merged
                        .states
                        .get(&first)
                        .is_some_and(ObjectState::is_virtual)
                {
                    // All inputs refer to the same (still virtual) object:
                    // the phi becomes an alias (Fig. 6c).
                    merged.add_alias(phi, first);
                    continue;
                }
            }
            // Otherwise: any virtual input must be materialized at its
            // predecessor; escaped inputs are replaced by their
            // materialized values.
            for (k, &v) in inputs.iter().enumerate() {
                if let Some(aid) = pred_states[k].alias_of(v) {
                    let real = match pred_states[k].object(aid) {
                        ObjectState::Virtual { .. } => {
                            let (anchor, block) = anchors[k];
                            materialize(
                                ctx,
                                &mut pred_states[k],
                                aid,
                                anchor,
                                block,
                                MaterializeReason::MergePhiInput,
                            )
                        }
                        ObjectState::Escaped { materialized } => *materialized,
                    };
                    if real != v {
                        let (_, block) = anchors[k];
                        ctx.record(
                            block,
                            Effect::SetInput {
                                node: phi,
                                index: k,
                                value: real,
                            },
                        );
                    }
                }
            }
        }

        if ctx.materialize_ticks == ticks_at_start {
            return merged;
        }
        // Materializations during phi processing invalidate earlier merge
        // decisions — run the whole merge again (§5.3 last paragraph).
    }
}

/// Merges the per-field values of a virtual object (the all-virtual case
/// of §5.3). Returns `false` when the merge needs the object materialized
/// instead (field-phi creation disabled, or a field's values cannot be
/// combined).
fn merge_virtual(
    ctx: &mut PeaContext<'_>,
    merge_node: NodeId,
    pred_states: &mut [PeaState],
    anchors: &[(NodeId, BlockId)],
    id: AllocId,
    merged: &mut PeaState,
) -> bool {
    let field_count = ctx.infos[id.index()].field_count;
    let lock_count = match pred_states[0].object(id) {
        ObjectState::Virtual { lock_count, .. } => *lock_count,
        ObjectState::Escaped { .. } => unreachable!(),
    };
    let mut new_fields: Vec<NodeId> = Vec::with_capacity(field_count);
    // First pass: decide per field without mutating anything, so a
    // disabled-phi bailout has no side effects.
    #[derive(Clone, Copy)]
    enum Plan {
        Keep(NodeId),
        SameAlias(AllocId),
        NeedPhi,
    }
    let mut plans: Vec<Plan> = Vec::with_capacity(field_count);
    for f in 0..field_count {
        let values: Vec<NodeId> = pred_states
            .iter()
            .map(|s| match s.object(id) {
                ObjectState::Virtual { fields, .. } => fields[f],
                ObjectState::Escaped { .. } => unreachable!(),
            })
            .collect();
        if values.windows(2).all(|w| w[0] == w[1]) {
            plans.push(Plan::Keep(values[0]));
            continue;
        }
        // "If all predecessor VirtualStates reference the same Id, then so
        // does the new one."
        let aliased: Vec<Option<AllocId>> = values
            .iter()
            .zip(pred_states.iter())
            .map(|(&v, s)| s.virtual_alias(v))
            .collect();
        if aliased[0].is_some() && aliased.iter().all(|&a| a == aliased[0]) {
            plans.push(Plan::SameAlias(aliased[0].unwrap()));
            continue;
        }
        if !ctx.options.field_phis {
            return false;
        }
        plans.push(Plan::NeedPhi);
    }

    for (f, plan) in plans.into_iter().enumerate() {
        match plan {
            Plan::Keep(v) => new_fields.push(v),
            Plan::SameAlias(a) => {
                // Canonical alias node: the allocation's origin, which is
                // an alias in every predecessor.
                new_fields.push(ctx.infos[a.index()].origin);
            }
            Plan::NeedPhi => {
                // Each input must be an actual runtime value: materialize
                // virtual references at their predecessors (§5.3).
                let mut phi_inputs: Vec<NodeId> = Vec::with_capacity(pred_states.len());
                for k in 0..pred_states.len() {
                    let v = match pred_states[k].object(id) {
                        ObjectState::Virtual { fields, .. } => fields[f],
                        // A previous field's materialization can never
                        // escape `id` itself (it is not in its own field
                        // closure unless cyclic — and then we bail).
                        ObjectState::Escaped { .. } => return false,
                    };
                    let real = match pred_states[k].alias_of(v) {
                        Some(aid) => match pred_states[k].object(aid) {
                            ObjectState::Virtual { .. } => {
                                let (anchor, block) = anchors[k];
                                materialize(
                                    ctx,
                                    &mut pred_states[k],
                                    aid,
                                    anchor,
                                    block,
                                    MaterializeReason::MergePhiInput,
                                )
                            }
                            ObjectState::Escaped { materialized } => *materialized,
                        },
                        None => v,
                    };
                    phi_inputs.push(real);
                }
                let phi = cached_phi(ctx, merge_node, id, f, &phi_inputs);
                new_fields.push(phi);
            }
        }
    }
    merged.states.insert(
        id,
        ObjectState::Virtual {
            fields: new_fields,
            lock_count,
        },
    );
    true
}

/// Returns the cached phi for `(merge, id, key)`, creating it on first
/// use; inputs are (re)assigned directly — these phis belong to the
/// analysis and are pruned if an abandoned round leaves them unused.
fn cached_phi(
    ctx: &mut PeaContext<'_>,
    merge_node: NodeId,
    id: AllocId,
    key: usize,
    inputs: &[NodeId],
) -> NodeId {
    if let Some(&phi) = ctx.phi_cache.get(&(merge_node, id, key)) {
        let current = ctx.graph.node(phi).inputs().len();
        for (i, &v) in inputs.iter().enumerate() {
            if i < current {
                ctx.graph.set_input(phi, i, v);
            } else {
                ctx.graph.push_input(phi, v);
            }
        }
        return phi;
    }
    let phi = ctx
        .graph
        .add(NodeKind::Phi { merge: merge_node }, inputs.to_vec());
    ctx.phi_cache.insert((merge_node, id, key), phi);
    phi
}
