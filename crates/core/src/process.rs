//! The per-node transfer function (paper §5.2, Figures 4 and 5) and the
//! materialization routine (§4).

use crate::analysis::PeaContext;
use crate::effects::Effect;
use crate::state::{AllocId, AllocInfo, ObjectState, PeaState};
use pea_ir::cfg::BlockId;
use pea_ir::{AllocShape, CommitObject, NodeId, NodeKind};
use pea_trace::{MaterializeReason, TraceEvent};

/// Field-slot index of `field` within instances of `class`.
fn field_slot(
    ctx: &PeaContext<'_>,
    class: pea_bytecode::ClassId,
    field: pea_bytecode::FieldId,
) -> Option<usize> {
    ctx.program
        .instance_fields(class)
        .iter()
        .position(|&f| f == field)
}

/// Materializes `id` (and every virtual object reachable from its fields —
/// cyclic structures commit as one group, like Graal's
/// `CommitAllocationNode`). Inserts the commit before `anchor`, updates
/// `state`, and returns the node producing `id`'s heap reference.
pub(crate) fn materialize(
    ctx: &mut PeaContext<'_>,
    state: &mut PeaState,
    id: AllocId,
    anchor: NodeId,
    block: BlockId,
    reason: MaterializeReason,
) -> NodeId {
    // Transitive closure over virtual field references.
    let mut group: Vec<AllocId> = vec![id];
    let mut i = 0;
    while i < group.len() {
        let member = group[i];
        i += 1;
        let ObjectState::Virtual { fields, .. } = state.object(member) else {
            unreachable!("materializing a non-virtual object");
        };
        for &v in fields {
            if let Some(child) = state.virtual_alias(v) {
                if !group.contains(&child) {
                    group.push(child);
                }
            }
        }
    }

    // Create the commit and its allocated-object handles.
    let objects: Vec<CommitObject> = group
        .iter()
        .map(|&m| {
            let ObjectState::Virtual { lock_count, .. } = state.object(m) else {
                unreachable!()
            };
            CommitObject {
                shape: ctx.infos[m.index()].shape,
                lock_count: *lock_count,
            }
        })
        .collect();
    let commit = ctx.graph.add(NodeKind::Commit { objects }, vec![]);
    let allocated: Vec<NodeId> = (0..group.len())
        .map(|index| {
            ctx.graph
                .add(NodeKind::AllocatedObject { index }, vec![commit])
        })
        .collect();

    // Snapshot field values, then mark the group escaped.
    let snapshots: Vec<Vec<NodeId>> = group
        .iter()
        .map(|&m| {
            let ObjectState::Virtual { fields, .. } = state.object(m) else {
                unreachable!()
            };
            fields.clone()
        })
        .collect();
    for (gi, &m) in group.iter().enumerate() {
        *state.object_mut(m) = ObjectState::Escaped {
            materialized: allocated[gi],
        };
    }
    // Commit inputs: field values with intra-group references resolved to
    // the fresh allocated objects and escaped references resolved to their
    // materialized values.
    for fields in &snapshots {
        for &v in fields {
            let resolved = match state.alias_of(v) {
                Some(a) => match group.iter().position(|&m| m == a) {
                    Some(gi) => allocated[gi],
                    None => state
                        .object(a)
                        .materialized_value()
                        .expect("non-group alias must be escaped"),
                },
                None => v,
            };
            ctx.graph.push_input(commit, resolved);
        }
    }

    ctx.record(
        block,
        Effect::InsertFixedBefore {
            anchor,
            node: commit,
        },
    );
    if ctx.tracing() {
        // One event per group member: each allocation site materializes,
        // even though the group shares a single commit node.
        for &m in &group {
            let event = TraceEvent::Materialized {
                site: ctx.site_of(m),
                anchor: anchor.index() as u32,
                block: block.index() as u32,
                reason,
            };
            ctx.trace(block, event);
        }
    }
    ctx.materialize_ticks += 1;
    allocated[0]
}

/// Ensures `value` is usable as a real runtime value at `anchor`:
/// materializes virtual aliases, resolves escaped aliases. Returns the
/// replacement (or `value` unchanged).
pub(crate) fn resolve_to_real(
    ctx: &mut PeaContext<'_>,
    state: &mut PeaState,
    value: NodeId,
    anchor: NodeId,
    block: BlockId,
    reason: MaterializeReason,
) -> NodeId {
    match state.alias_of(value) {
        Some(id) => match state.object(id) {
            ObjectState::Virtual { .. } => materialize(ctx, state, id, anchor, block, reason),
            ObjectState::Escaped { materialized } => *materialized,
        },
        None => value,
    }
}

/// The trace reason for an object forced into existence by `kind` (§5.2's
/// generic escape rule, specialized for reporting).
fn escape_reason(kind: &NodeKind) -> MaterializeReason {
    match kind {
        NodeKind::StoreField { .. } | NodeKind::StoreIndexed | NodeKind::PutStatic { .. } => {
            MaterializeReason::EscapeToStore
        }
        NodeKind::Invoke { .. } => MaterializeReason::CallArgument,
        NodeKind::Return => MaterializeReason::ReturnValue,
        NodeKind::Throw => MaterializeReason::ThrowValue,
        NodeKind::Unwind => MaterializeReason::ThrownEscape,
        NodeKind::MonitorEnter | NodeKind::MonitorExit => MaterializeReason::MonitorOperation,
        _ => MaterializeReason::Other,
    }
}

/// Applies the generic rule of §5.2: "any operation that is not explicitly
/// handled is assumed to require an actual object reference" — alias
/// inputs are materialized/resolved and the input slots rewritten.
fn escape_all_alias_inputs(
    ctx: &mut PeaContext<'_>,
    state: &mut PeaState,
    node: NodeId,
    block: BlockId,
) {
    let reason = escape_reason(ctx.graph.kind(node));
    let inputs = ctx.graph.node(node).inputs().to_vec();
    for (i, v) in inputs.into_iter().enumerate() {
        if state.alias_of(v).is_some() {
            let real = resolve_to_real(ctx, state, v, node, block, reason);
            ctx.record(
                block,
                Effect::SetInput {
                    node,
                    index: i,
                    value: real,
                },
            );
        }
    }
}

/// Default field values for a fresh allocation.
fn default_fields(ctx: &mut PeaContext<'_>, shape: AllocShape) -> Vec<NodeId> {
    match shape {
        AllocShape::Instance { class } => ctx
            .program
            .instance_fields(class)
            .iter()
            .map(|&f| match ctx.program.field(f).kind {
                pea_bytecode::ValueKind::Int => ctx.graph.const_int(0),
                pea_bytecode::ValueKind::Ref => ctx.graph.const_null(),
            })
            .collect(),
        AllocShape::Array { kind, length } => {
            let d = match kind {
                pea_bytecode::ValueKind::Int => ctx.graph.const_int(0),
                pea_bytecode::ValueKind::Ref => ctx.graph.const_null(),
            };
            vec![d; length as usize]
        }
    }
}

/// Processes one fixed node, updating `state` and recording effects.
pub(crate) fn process_node(
    ctx: &mut PeaContext<'_>,
    state: &mut PeaState,
    node: NodeId,
    block: BlockId,
) {
    let kind = ctx.graph.kind(node).clone();
    let mut deleted = false;
    match kind {
        // ---- allocations (Fig. 4a) ----
        NodeKind::New { class } => {
            if ctx
                .options
                .allowed
                .as_ref()
                .is_none_or(|set| set.contains(&node))
            {
                let shape = AllocShape::Instance { class };
                let fields = default_fields(ctx, shape);
                let id = ctx.new_alloc(AllocInfo {
                    shape,
                    origin: node,
                    field_count: fields.len(),
                });
                state.add_virtual(id, node, fields);
                ctx.record(block, Effect::DeleteFixed { node });
                if ctx.tracing() {
                    let event = TraceEvent::Virtualized {
                        site: node.index() as u32,
                        shape: ctx.shape_str(shape),
                    };
                    ctx.trace(block, event);
                }
                deleted = true;
            }
        }
        NodeKind::NewArray { kind } => {
            let len_node = ctx.graph.node(node).inputs()[0];
            let const_len = match ctx.graph.kind(len_node) {
                NodeKind::ConstInt { value } => Some(*value),
                _ => None,
            };
            let allowed = ctx
                .options
                .allowed
                .as_ref()
                .is_none_or(|set| set.contains(&node));
            match const_len {
                Some(len)
                    if allowed
                        && len >= 0
                        && len <= i64::from(ctx.options.max_virtual_array_length) =>
                {
                    let shape = AllocShape::Array {
                        kind,
                        length: len as u32,
                    };
                    let fields = default_fields(ctx, shape);
                    let id = ctx.new_alloc(AllocInfo {
                        shape,
                        origin: node,
                        field_count: fields.len(),
                    });
                    state.add_virtual(id, node, fields);
                    ctx.record(block, Effect::DeleteFixed { node });
                    if ctx.tracing() {
                        let event = TraceEvent::Virtualized {
                            site: node.index() as u32,
                            shape: ctx.shape_str(shape),
                        };
                        ctx.trace(block, event);
                    }
                    deleted = true;
                }
                _ => escape_all_alias_inputs(ctx, state, node, block),
            }
        }

        // ---- field accesses (Fig. 4b/4e/4f, Fig. 5) ----
        NodeKind::StoreField { field } => {
            let obj = ctx.graph.node(node).inputs()[0];
            let value = ctx.graph.node(node).inputs()[1];
            match state.virtual_alias(obj) {
                Some(id) => {
                    let AllocShape::Instance { class } = ctx.infos[id.index()].shape else {
                        unreachable!("field store on array shape")
                    };
                    match field_slot(ctx, class, field) {
                        Some(slot) => {
                            if let ObjectState::Virtual { fields, .. } = state.object_mut(id) {
                                fields[slot] = value;
                            }
                            ctx.record(block, Effect::DeleteFixed { node });
                            if ctx.tracing() {
                                let event = TraceEvent::StoreElided {
                                    site: ctx.site_of(id),
                                    node: node.index() as u32,
                                };
                                ctx.trace(block, event);
                            }
                            deleted = true;
                        }
                        None => {
                            // Field of the wrong class: runtime error path;
                            // keep the node (it will raise).
                            escape_all_alias_inputs(ctx, state, node, block);
                        }
                    }
                }
                None => escape_all_alias_inputs(ctx, state, node, block),
            }
        }
        NodeKind::LoadField { field } => {
            let obj = ctx.graph.node(node).inputs()[0];
            match state.virtual_alias(obj) {
                Some(id) => {
                    let AllocShape::Instance { class } = ctx.infos[id.index()].shape else {
                        unreachable!("field load on array shape")
                    };
                    match field_slot(ctx, class, field) {
                        Some(slot) => {
                            let ObjectState::Virtual { fields, .. } = state.object(id) else {
                                unreachable!()
                            };
                            let value = fields[slot];
                            // The load becomes an alias if the value is one
                            // (Fig. 4f).
                            if let Some(vid) = state.alias_of(value) {
                                state.add_alias(node, vid);
                            }
                            ctx.record(
                                block,
                                Effect::ReplaceAndDeleteFixed {
                                    node,
                                    replacement: value,
                                },
                            );
                            if ctx.tracing() {
                                let event = TraceEvent::LoadElided {
                                    site: ctx.site_of(id),
                                    node: node.index() as u32,
                                };
                                ctx.trace(block, event);
                            }
                            deleted = true;
                        }
                        None => escape_all_alias_inputs(ctx, state, node, block),
                    }
                }
                None => escape_all_alias_inputs(ctx, state, node, block),
            }
        }
        NodeKind::StoreIndexed => {
            let [arr, idx, value] = ctx.graph.node(node).inputs() else {
                unreachable!()
            };
            let (arr, idx, value) = (*arr, *idx, *value);
            let const_idx = match ctx.graph.kind(idx) {
                NodeKind::ConstInt { value } => Some(*value),
                _ => None,
            };
            match (state.virtual_alias(arr), const_idx) {
                (Some(id), Some(i))
                    if i >= 0 && (i as usize) < ctx.infos[id.index()].field_count =>
                {
                    if let ObjectState::Virtual { fields, .. } = state.object_mut(id) {
                        fields[i as usize] = value;
                    }
                    ctx.record(block, Effect::DeleteFixed { node });
                    if ctx.tracing() {
                        let event = TraceEvent::StoreElided {
                            site: ctx.site_of(id),
                            node: node.index() as u32,
                        };
                        ctx.trace(block, event);
                    }
                    deleted = true;
                }
                _ => escape_all_alias_inputs(ctx, state, node, block),
            }
        }
        NodeKind::LoadIndexed => {
            let [arr, idx] = ctx.graph.node(node).inputs() else {
                unreachable!()
            };
            let (arr, idx) = (*arr, *idx);
            let const_idx = match ctx.graph.kind(idx) {
                NodeKind::ConstInt { value } => Some(*value),
                _ => None,
            };
            match (state.virtual_alias(arr), const_idx) {
                (Some(id), Some(i))
                    if i >= 0 && (i as usize) < ctx.infos[id.index()].field_count =>
                {
                    let ObjectState::Virtual { fields, .. } = state.object(id) else {
                        unreachable!()
                    };
                    let value = fields[i as usize];
                    if let Some(vid) = state.alias_of(value) {
                        state.add_alias(node, vid);
                    }
                    ctx.record(
                        block,
                        Effect::ReplaceAndDeleteFixed {
                            node,
                            replacement: value,
                        },
                    );
                    if ctx.tracing() {
                        let event = TraceEvent::LoadElided {
                            site: ctx.site_of(id),
                            node: node.index() as u32,
                        };
                        ctx.trace(block, event);
                    }
                    deleted = true;
                }
                _ => escape_all_alias_inputs(ctx, state, node, block),
            }
        }
        NodeKind::ArrayLen => {
            let arr = ctx.graph.node(node).inputs()[0];
            match state.virtual_alias(arr) {
                Some(id) => {
                    let AllocShape::Array { length, .. } = ctx.infos[id.index()].shape else {
                        unreachable!("array length of instance shape")
                    };
                    let c = ctx.graph.const_int(i64::from(length));
                    ctx.record(
                        block,
                        Effect::ReplaceAndDeleteFixed {
                            node,
                            replacement: c,
                        },
                    );
                    if ctx.tracing() {
                        let event = TraceEvent::CheckFolded {
                            node: node.index() as u32,
                            value: i64::from(length),
                        };
                        ctx.trace(block, event);
                    }
                    deleted = true;
                }
                None => escape_all_alias_inputs(ctx, state, node, block),
            }
        }

        // ---- monitors (Fig. 4c/4d) ----
        NodeKind::MonitorEnter => {
            let obj = ctx.graph.node(node).inputs()[0];
            match state.virtual_alias(obj) {
                Some(id) if ctx.options.lock_elision => {
                    if let ObjectState::Virtual { lock_count, .. } = state.object_mut(id) {
                        *lock_count += 1;
                    }
                    ctx.record(block, Effect::DeleteFixed { node });
                    if ctx.tracing() {
                        let event = TraceEvent::LockElided {
                            site: ctx.site_of(id),
                            node: node.index() as u32,
                            exit: false,
                        };
                        ctx.trace(block, event);
                    }
                    deleted = true;
                }
                _ => escape_all_alias_inputs(ctx, state, node, block),
            }
        }
        NodeKind::MonitorExit => {
            let obj = ctx.graph.node(node).inputs()[0];
            match state.virtual_alias(obj) {
                Some(id)
                    if ctx.options.lock_elision
                        && matches!(
                            state.object(id),
                            ObjectState::Virtual { lock_count, .. } if *lock_count > 0
                        ) =>
                {
                    if let ObjectState::Virtual { lock_count, .. } = state.object_mut(id) {
                        *lock_count -= 1;
                    }
                    ctx.record(block, Effect::DeleteFixed { node });
                    if ctx.tracing() {
                        let event = TraceEvent::LockElided {
                            site: ctx.site_of(id),
                            node: node.index() as u32,
                            exit: true,
                        };
                        ctx.trace(block, event);
                    }
                    deleted = true;
                }
                _ => escape_all_alias_inputs(ctx, state, node, block),
            }
        }

        // ---- folded checks (§5.2) ----
        NodeKind::RefEq => {
            let [a, b] = ctx.graph.node(node).inputs() else {
                unreachable!()
            };
            let (a, b) = (*a, *b);
            let va = state.virtual_alias(a);
            let vb = state.virtual_alias(b);
            if va.is_some() || vb.is_some() {
                // "Always false when exactly one input is virtual; if both
                // are virtual, true iff same Id."
                let value = i64::from(va.is_some() && va == vb);
                let c = ctx.graph.const_int(value);
                ctx.record(
                    block,
                    Effect::ReplaceAndDeleteFixed {
                        node,
                        replacement: c,
                    },
                );
                if ctx.tracing() {
                    let event = TraceEvent::CheckFolded {
                        node: node.index() as u32,
                        value,
                    };
                    ctx.trace(block, event);
                }
                deleted = true;
            } else {
                escape_all_alias_inputs(ctx, state, node, block);
            }
        }
        NodeKind::IsNull => {
            let a = ctx.graph.node(node).inputs()[0];
            if state.virtual_alias(a).is_some() {
                let c = ctx.graph.const_int(0);
                ctx.record(
                    block,
                    Effect::ReplaceAndDeleteFixed {
                        node,
                        replacement: c,
                    },
                );
                if ctx.tracing() {
                    let event = TraceEvent::CheckFolded {
                        node: node.index() as u32,
                        value: 0,
                    };
                    ctx.trace(block, event);
                }
                deleted = true;
            } else {
                escape_all_alias_inputs(ctx, state, node, block);
            }
        }
        NodeKind::InstanceOf { class, exact } => {
            let a = ctx.graph.node(node).inputs()[0];
            match state.virtual_alias(a) {
                Some(id) => {
                    let passes = match ctx.infos[id.index()].shape {
                        AllocShape::Instance { class: c } => {
                            if exact {
                                c == class
                            } else {
                                ctx.program.is_subclass_of(c, class)
                            }
                        }
                        AllocShape::Array { .. } => false,
                    };
                    let c = ctx.graph.const_int(i64::from(passes));
                    ctx.record(
                        block,
                        Effect::ReplaceAndDeleteFixed {
                            node,
                            replacement: c,
                        },
                    );
                    if ctx.tracing() {
                        let event = TraceEvent::CheckFolded {
                            node: node.index() as u32,
                            value: i64::from(passes),
                        };
                        ctx.trace(block, event);
                    }
                    deleted = true;
                }
                None => escape_all_alias_inputs(ctx, state, node, block),
            }
        }
        NodeKind::CheckCast { class } => {
            let a = ctx.graph.node(node).inputs()[0];
            match state.virtual_alias(a) {
                Some(id) => {
                    let passes = match ctx.infos[id.index()].shape {
                        AllocShape::Instance { class: c } => ctx.program.is_subclass_of(c, class),
                        AllocShape::Array { .. } => false,
                    };
                    if passes {
                        state.add_alias(node, id);
                        ctx.record(
                            block,
                            Effect::ReplaceAndDeleteFixed {
                                node,
                                replacement: a,
                            },
                        );
                        if ctx.tracing() {
                            let event = TraceEvent::CheckFolded {
                                node: node.index() as u32,
                                value: 1,
                            };
                            ctx.trace(block, event);
                        }
                        deleted = true;
                    } else {
                        // Will raise at runtime; the object must exist.
                        escape_all_alias_inputs(ctx, state, node, block);
                    }
                }
                None => escape_all_alias_inputs(ctx, state, node, block),
            }
        }

        // ---- everything else: the generic escape rule ----
        NodeKind::Invoke { .. }
        | NodeKind::PutStatic { .. }
        | NodeKind::Return
        | NodeKind::Throw
        | NodeKind::Unwind
        | NodeKind::Commit { .. } => {
            escape_all_alias_inputs(ctx, state, node, block);
        }

        // Pure control / int-only nodes: nothing to do.
        NodeKind::Start
        | NodeKind::Begin
        | NodeKind::LoopExit { .. }
        | NodeKind::If
        | NodeKind::Merge { .. }
        | NodeKind::LoopBegin { .. }
        | NodeKind::End
        | NodeKind::LoopEnd
        | NodeKind::Deopt { .. }
        | NodeKind::Guard { .. }
        | NodeKind::GetStatic { .. }
        | NodeKind::FixedArith { .. } => {}

        NodeKind::AllocatedObject { .. }
        | NodeKind::Param { .. }
        | NodeKind::ConstInt { .. }
        | NodeKind::ConstNull
        | NodeKind::Arith { .. }
        | NodeKind::Compare { .. }
        | NodeKind::Phi { .. }
        | NodeKind::FrameState(_)
        | NodeKind::VirtualObjectMapping { .. } => {
            unreachable!("floating/meta node in fixed chain: {kind:?}")
        }
    }

    // Frame-state handling (§5.5): surviving nodes keep a state that must
    // be able to rematerialize virtual objects on deoptimization.
    if !deleted {
        if let Some(fs) = ctx.graph.node(node).state_after {
            crate::framestate::rewrite_frame_state(ctx, state, fs, block);
        }
    }
}
