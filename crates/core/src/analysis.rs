//! The control-flow iteration driving Partial Escape Analysis (paper §5),
//! including the loop fixpoint of §5.4 (Figure 7).

use crate::effects::{Effect, EffectApplier};
use crate::state::{AllocId, AllocInfo, PeaState};
use pea_bytecode::Program;
use pea_ir::cfg::{BlockId, Cfg};
use pea_ir::{Graph, NodeId, NodeKind};
use pea_trace::{MaterializeReason, TraceEvent, TraceSink, Tracer};
use std::collections::{HashMap, HashSet};

/// Tuning knobs, including the ablation switches exercised by the
/// benchmark harness.
#[derive(Clone, Debug)]
pub struct PeaOptions {
    /// When set, only these allocation nodes may be virtualized (the EES
    /// baseline restricts to provably never-escaping sites).
    pub allowed: Option<HashSet<NodeId>>,
    /// Track monitors on virtual objects (Lock Elision, §4). When off,
    /// any monitor operation materializes its object.
    pub lock_elision: bool,
    /// Create per-field phis at merges (§5.3). When off, a field-value
    /// mismatch at a merge materializes the object instead (ablation).
    pub field_phis: bool,
    /// Process loops iteratively to a fixpoint (§5.4). When off, every
    /// virtual object live at a loop entry is materialized there
    /// (ablation).
    pub loop_processing: bool,
    /// Safety cap on loop fixpoint rounds; exceeded ⇒ materialize all
    /// loop-entry objects and continue.
    pub max_loop_rounds: usize,
    /// Arrays longer than this are never virtualized.
    pub max_virtual_array_length: u32,
}

impl Default for PeaOptions {
    fn default() -> Self {
        PeaOptions {
            allowed: None,
            lock_elision: true,
            field_phis: true,
            loop_processing: true,
            max_loop_rounds: 16,
            max_virtual_array_length: 32,
        }
    }
}

/// What the analysis did, for reporting and tests.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PeaResult {
    /// Allocation sites removed from the fast path (their `New` nodes were
    /// deleted; some may rematerialize on escape paths).
    pub virtualized_allocs: usize,
    /// Field/array loads replaced by tracked values.
    pub deleted_loads: usize,
    /// Field/array stores absorbed into the tracked state.
    pub deleted_stores: usize,
    /// Monitor enter/exit nodes removed (Lock Elision).
    pub elided_monitors: usize,
    /// Identity/type/null checks folded to constants.
    pub folded_checks: usize,
    /// Commit (materialization) nodes inserted.
    pub materializations: usize,
    /// Total loop fixpoint rounds executed.
    pub loop_rounds: usize,
    /// Allocation sites excluded from virtualization up front because the
    /// static pre-analysis proved they escape globally in any context
    /// (compiler pre-filter opt level); 0 unless the pre-filter ran.
    pub prefiltered_allocs: usize,
}

impl PeaResult {
    /// Accumulates the counters of another analysis round. The pipeline
    /// may run the escape-analysis phase several times (the compiler's
    /// `ea_iterations` knob); the reported result is the sum over every
    /// round, since each round's counters describe real, distinct graph
    /// changes.
    pub fn absorb(&mut self, other: &PeaResult) {
        self.virtualized_allocs += other.virtualized_allocs;
        self.deleted_loads += other.deleted_loads;
        self.deleted_stores += other.deleted_stores;
        self.elided_monitors += other.elided_monitors;
        self.folded_checks += other.folded_checks;
        self.materializations += other.materializations;
        self.loop_rounds += other.loop_rounds;
        // The pre-filter exclusion set is fixed per compilation, so every
        // round reports the same sites; summing would double-count them.
        self.prefiltered_allocs = self.prefiltered_allocs.max(other.prefiltered_allocs);
    }

    /// Whether the graph was changed at all.
    pub fn changed(&self) -> bool {
        self.virtualized_allocs
            + self.deleted_loads
            + self.deleted_stores
            + self.elided_monitors
            + self.folded_checks
            + self.materializations
            > 0
    }
}

/// Shared mutable context for one analysis run.
pub(crate) struct PeaContext<'a> {
    pub graph: &'a mut Graph,
    pub program: &'a Program,
    pub options: &'a PeaOptions,
    pub cfg: Cfg,
    /// Metadata per discovered allocation id.
    pub infos: Vec<AllocInfo>,
    /// Deferred mutations, grouped by the block that generated them so
    /// abandoned loop rounds can be discarded (§5.4).
    pub effects: HashMap<BlockId, Vec<Effect>>,
    /// Frame states already rewritten, with the block that did it.
    pub rewritten_states: HashMap<NodeId, BlockId>,
    /// Phis created by the merge processor, cached per
    /// `(merge, id, field)` so loop rounds converge; `usize::MAX` keys the
    /// materialized-value phi.
    pub phi_cache: HashMap<(NodeId, AllocId, usize), NodeId>,
    /// Block out-states.
    pub states: HashMap<BlockId, PeaState>,
    /// Per-block entry liveness (see [`crate::liveness`]); merges drop
    /// object states none of whose aliases are live.
    pub live_in: Vec<crate::liveness::NodeSet>,
    /// Bumped on every materialization; the merge processor restarts when
    /// it observes a change (§5.3's "iterated until no additional
    /// materializations happen").
    pub materialize_ticks: usize,
    pub result: PeaResult,
    /// Where decision events go when tracing is enabled.
    pub tracer: Tracer<'a>,
    /// Trace events buffered per generating block, mirroring `effects`, so
    /// abandoned loop rounds discard their events too and the final trace
    /// reports only decisions that stuck.
    pub trace_buf: HashMap<BlockId, Vec<TraceEvent>>,
    /// Loop fixpoint rounds; every executed round is real analysis work,
    /// so these are never discarded.
    pub loop_trace: Vec<TraceEvent>,
}

impl<'a> PeaContext<'a> {
    pub(crate) fn record(&mut self, block: BlockId, effect: Effect) {
        self.effects.entry(block).or_default().push(effect);
    }

    /// Whether decision events should be constructed at all.
    #[inline]
    pub(crate) fn tracing(&self) -> bool {
        self.tracer.enabled()
    }

    /// Buffers `event` against the block whose processing produced it.
    pub(crate) fn trace(&mut self, block: BlockId, event: TraceEvent) {
        self.trace_buf.entry(block).or_default().push(event);
    }

    /// The allocation site (origin `New`/`NewArray` node) of `id`, as the
    /// stable key used in trace events.
    pub(crate) fn site_of(&self, id: AllocId) -> u32 {
        self.infos[id.index()].origin.index() as u32
    }

    /// Human-readable shape for trace events: class *name* rather than the
    /// bare `ClassId` the [`pea_ir::AllocShape`] display would give.
    pub(crate) fn shape_str(&self, shape: pea_ir::AllocShape) -> String {
        match shape {
            pea_ir::AllocShape::Instance { class } => self.program.class(class).name.clone(),
            pea_ir::AllocShape::Array { kind, length } => format!("{kind}[{length}]"),
        }
    }

    fn clear_block_effects(&mut self, block: BlockId) {
        self.effects.remove(&block);
        self.trace_buf.remove(&block);
        self.rewritten_states.retain(|_, b| *b != block);
    }

    /// Fresh allocation id.
    pub(crate) fn new_alloc(&mut self, info: AllocInfo) -> AllocId {
        self.infos.push(info);
        AllocId((self.infos.len() - 1) as u32)
    }

    /// Processes a list of sibling blocks (RPO order); loop headers pull
    /// in their whole body recursively.
    fn process_blocks(&mut self, list: &[BlockId]) {
        let mut skip: HashSet<BlockId> = HashSet::new();
        for &b in list {
            if skip.contains(&b) {
                continue;
            }
            let first = self.cfg.block(b).first();
            if matches!(self.graph.kind(first), NodeKind::LoopBegin { .. }) {
                let members = self.cfg.loop_members(b);
                for &m in &members {
                    if m != b {
                        skip.insert(m);
                    }
                }
                self.process_loop(b, &members);
            } else {
                let entry = self.entry_state_for(b);
                self.process_block_nodes(b, entry);
            }
        }
    }

    /// Computes the state on entry to a (non-loop-header) block.
    fn entry_state_for(&mut self, b: BlockId) -> PeaState {
        let first = self.cfg.block(b).first();
        match self.graph.kind(first).clone() {
            NodeKind::Start => PeaState::new(),
            NodeKind::Merge { ends } => {
                let anchors: Vec<(NodeId, BlockId)> =
                    ends.iter().map(|&e| (e, self.cfg.block_of(e))).collect();
                let mut pred_states: Vec<PeaState> = anchors
                    .iter()
                    .map(|(_, pb)| self.states.get(pb).cloned().unwrap_or_default())
                    .collect();
                let merged = crate::merge::merge_states(self, first, &mut pred_states, &anchors);
                // Write back pred mutations (merge materializations).
                for ((_, pb), st) in anchors.iter().zip(pred_states) {
                    self.states.insert(*pb, st);
                }
                merged
            }
            NodeKind::Begin | NodeKind::LoopExit { .. } => {
                let pred = self
                    .graph
                    .node(first)
                    .control_pred()
                    .expect("begin without predecessor");
                let pb = self.cfg.block_of(pred);
                self.states.get(&pb).cloned().unwrap_or_default()
            }
            other => panic!("unexpected block head {other:?}"),
        }
    }

    /// Processes the fixed nodes of one block, storing its out-state.
    fn process_block_nodes(&mut self, b: BlockId, mut state: PeaState) {
        self.clear_block_effects(b);
        // Indexed iteration instead of cloning the node list: graph
        // mutations are deferred as `Effect`s, so the CFG's block
        // membership is stable during analysis, but `process_node` needs
        // `&mut self` and would otherwise force a per-block Vec clone on
        // the analysis hot path.
        let mut i = 0;
        while let Some(&n) = self.cfg.block(b).nodes.get(i) {
            crate::process::process_node(self, &mut state, n, b);
            i += 1;
        }
        self.states.insert(b, state);
    }

    /// The loop fixpoint of §5.4: speculate the entry state, process the
    /// body, merge entry + back edges, compare, repeat until stable.
    fn process_loop(&mut self, header: BlockId, members: &[BlockId]) {
        let loop_begin = self.cfg.block(header).first();
        let ends = self.graph.merge_ends(loop_begin).to_vec();
        let entry_end = ends[0];
        let entry_block = self.cfg.block_of(entry_end);
        let mut speculative = self.states.get(&entry_block).cloned().unwrap_or_default();

        if !self.options.loop_processing {
            // Ablation: no loop support — everything live at entry exists.
            let ids = speculative.virtual_ids();
            for id in ids {
                crate::process::materialize(
                    self,
                    &mut speculative,
                    id,
                    entry_end,
                    entry_block,
                    MaterializeReason::LoopStateMismatch,
                );
            }
            self.states.insert(entry_block, speculative.clone());
        }

        // Member lists in RPO, header excluded (processed separately).
        let mut body: Vec<BlockId> = members.to_vec();
        body.sort_by_key(|&m| self.cfg.rpo_position(m));
        let body: Vec<BlockId> = body.into_iter().filter(|&m| m != header).collect();

        let phis = self.graph.phis_of(loop_begin);
        let mut rounds = 0usize;
        loop {
            rounds += 1;
            self.result.loop_rounds += 1;
            if self.tracing() {
                self.loop_trace.push(TraceEvent::LoopRound {
                    loop_begin: loop_begin.index() as u32,
                    round: rounds as u32,
                });
            }
            // Speculative header state: loop phis alias whatever their
            // entry input aliases (checked against back edges below).
            let mut header_state = speculative.clone();
            for &phi in &phis {
                let entry_input = self.graph.node(phi).inputs()[0];
                // Only virtual objects may flow through a phi untouched;
                // escaped ones are ordinary values (§5.3).
                if let Some(id) = header_state.virtual_alias(entry_input) {
                    header_state.add_alias(phi, id);
                }
            }
            let header_entry = header_state.clone();
            self.process_block_nodes(header, header_state);
            self.process_blocks(&body);

            // Merge entry + back-edge states.
            let anchors: Vec<(NodeId, BlockId)> =
                ends.iter().map(|&e| (e, self.cfg.block_of(e))).collect();
            let mut pred_states: Vec<PeaState> = anchors
                .iter()
                .map(|(_, pb)| self.states.get(pb).cloned().unwrap_or_default())
                .collect();
            let merged = crate::merge::merge_states(self, loop_begin, &mut pred_states, &anchors);
            // Write back (entry materializations must persist).
            for ((_, pb), st) in anchors.iter().zip(pred_states) {
                self.states.insert(*pb, st);
            }

            if merged == header_entry {
                break;
            }
            if rounds >= self.options.max_loop_rounds {
                // Safety net: force everything at the entry into the heap
                // and re-run once; with no virtual state left the merge is
                // trivially stable.
                let mut entry_state = self.states.get(&entry_block).cloned().unwrap_or_default();
                let ids = entry_state.virtual_ids();
                for id in ids {
                    crate::process::materialize(
                        self,
                        &mut entry_state,
                        id,
                        entry_end,
                        entry_block,
                        MaterializeReason::LoopStateMismatch,
                    );
                }
                self.states.insert(entry_block, entry_state.clone());
                speculative = entry_state;
            } else {
                speculative = merged;
            }
        }
    }
}

/// Runs Partial Escape Analysis over `graph`, applying Scalar Replacement
/// and Lock Elision as it goes (paper §4/§5).
///
/// The graph must verify ([`pea_ir::verify::verify`]) beforehand; it will
/// verify afterwards as well, which the test suite asserts.
pub fn run_pea(graph: &mut Graph, program: &Program, options: &PeaOptions) -> PeaResult {
    run_pea_impl(graph, program, options, Tracer::off())
}

/// Like [`run_pea`], but emits a [`TraceEvent`] for every decision that
/// survives into the final graph: allocations virtualized/materialized
/// (with forcing node, block, and reason), locks elided, loads/stores
/// absorbed, checks folded, phis created at merges, and loop fixpoint
/// rounds.
///
/// Events are buffered per block alongside the [`Effect`] lists and
/// flushed in reverse-postorder once the analysis commits, so decisions
/// from abandoned loop rounds never reach the sink (the exception being
/// [`TraceEvent::LoopRound`], which reports real analysis work per round).
pub fn run_pea_traced(
    graph: &mut Graph,
    program: &Program,
    options: &PeaOptions,
    sink: &mut dyn TraceSink,
) -> PeaResult {
    run_pea_impl(graph, program, options, Tracer::new(sink))
}

fn run_pea_impl<'a>(
    graph: &'a mut Graph,
    program: &'a Program,
    options: &'a PeaOptions,
    tracer: Tracer<'a>,
) -> PeaResult {
    let cfg = Cfg::build(graph);
    let rpo = cfg.rpo.clone();
    let live_in = crate::liveness::live_at_entry(graph, &cfg);
    let mut ctx = PeaContext {
        graph,
        program,
        options,
        cfg,
        infos: Vec::new(),
        effects: HashMap::new(),
        rewritten_states: HashMap::new(),
        phi_cache: HashMap::new(),
        states: HashMap::new(),
        live_in,
        materialize_ticks: 0,
        result: PeaResult::default(),
        tracer,
        trace_buf: HashMap::new(),
        loop_trace: Vec::new(),
    };
    ctx.process_blocks(&rpo);

    // Apply effects in RPO order; count what actually happened. Trace
    // events flush in the same order, so the emitted trace reads as the
    // final per-block decision sequence.
    let mut applier = EffectApplier::new();
    let mut result = ctx.result;
    let effects = std::mem::take(&mut ctx.effects);
    let mut trace_buf = std::mem::take(&mut ctx.trace_buf);
    for &b in &rpo {
        if let Some(events) = trace_buf.remove(&b) {
            for e in &events {
                ctx.tracer.emit(e);
            }
        }
        let Some(list) = effects.get(&b) else {
            continue;
        };
        for e in list {
            match e {
                Effect::DeleteFixed { node } | Effect::ReplaceAndDeleteFixed { node, .. } => {
                    match ctx.graph.kind(*node) {
                        NodeKind::New { .. } | NodeKind::NewArray { .. } => {
                            result.virtualized_allocs += 1
                        }
                        NodeKind::LoadField { .. } | NodeKind::LoadIndexed => {
                            result.deleted_loads += 1
                        }
                        NodeKind::StoreField { .. } | NodeKind::StoreIndexed => {
                            result.deleted_stores += 1
                        }
                        NodeKind::MonitorEnter | NodeKind::MonitorExit => {
                            result.elided_monitors += 1
                        }
                        NodeKind::RefEq
                        | NodeKind::IsNull
                        | NodeKind::InstanceOf { .. }
                        | NodeKind::CheckCast { .. }
                        | NodeKind::ArrayLen => result.folded_checks += 1,
                        _ => {}
                    }
                }
                Effect::InsertFixedBefore { node, .. } => {
                    if matches!(ctx.graph.kind(*node), NodeKind::Commit { .. }) {
                        result.materializations += 1;
                    }
                }
                Effect::SetInput { .. } => {}
            }
            applier.apply(ctx.graph, e);
        }
    }
    ctx.graph.prune_dead();

    if ctx.tracer.enabled() {
        // Phis are cached across merge restarts and loop rounds (and some
        // end up unused after an abandoned round), so they are reported
        // from the cache after pruning: exactly the phis that survived.
        let mut phis: Vec<(NodeId, NodeId, AllocId, usize)> = ctx
            .phi_cache
            .iter()
            .map(|(&(merge, id, key), &phi)| (phi, merge, id, key))
            .collect();
        phis.sort_unstable();
        for (phi, merge, id, key) in phis {
            if ctx.graph.node(phi).is_deleted() {
                continue;
            }
            let event = TraceEvent::PhiCreated {
                merge: merge.index() as u32,
                site: ctx.site_of(id),
                field: (key != crate::merge::MAT_PHI_KEY).then_some(key as u32),
            };
            ctx.tracer.emit(&event);
        }
        let loop_trace = std::mem::take(&mut ctx.loop_trace);
        for e in &loop_trace {
            ctx.tracer.emit(e);
        }
    }
    result
}
