//! Node liveness per basic block, used by the merge processor to drop
//! object states that can no longer be observed.
//!
//! Rationale: the paper's merge rules (§5.3) materialize an object that is
//! virtual on one predecessor and escaped on another. Applied naively to
//! *dead* objects (e.g. a callee-local temporary after the inline
//! continuation merge), this would re-introduce the very allocation PEA
//! removed. Graal avoids tracking such objects because its bytecode
//! parser prunes dead locals from frame states; our builder keeps all
//! locals, so we compensate with an explicit backward liveness analysis:
//! an allocation's state only survives a merge if one of its alias nodes
//! is still referenced at or after the merge point (including by frame
//! states), transitively through the fields of surviving objects.

use pea_ir::cfg::{BlockId, Cfg};
use pea_ir::{Graph, NodeId, NodeKind};

/// A compact node set.
#[derive(Clone, Debug, Default)]
pub struct NodeSet {
    words: Vec<u64>,
}

impl NodeSet {
    /// Empty set sized for `n` nodes.
    pub fn new(n: usize) -> NodeSet {
        NodeSet {
            words: vec![0; n.div_ceil(64)],
        }
    }

    /// Inserts a node; ids beyond the sized range are ignored (they are
    /// analysis-created nodes, never queried).
    pub fn insert(&mut self, id: NodeId) {
        let i = id.index();
        if i / 64 < self.words.len() {
            self.words[i / 64] |= 1 << (i % 64);
        }
    }

    /// Membership test; out-of-range ids report `true` (conservatively
    /// live).
    pub fn contains(&self, id: NodeId) -> bool {
        let i = id.index();
        match self.words.get(i / 64) {
            Some(w) => (w >> (i % 64)) & 1 == 1,
            None => true,
        }
    }

    /// Unions `other` into `self`; reports whether anything changed.
    pub fn union_with(&mut self, other: &NodeSet) -> bool {
        let mut changed = false;
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            let new = *a | *b;
            if new != *a {
                *a = new;
                changed = true;
            }
        }
        changed
    }
}

impl NodeSet {
    /// Removes a node.
    pub fn remove(&mut self, id: NodeId) {
        let i = id.index();
        if i / 64 < self.words.len() {
            self.words[i / 64] &= !(1 << (i % 64));
        }
    }
}

fn add_frame_state_refs(graph: &Graph, fs: NodeId, set: &mut NodeSet) {
    let data = graph.frame_state_data(fs);
    let inputs = graph.node(fs).inputs();
    for i in data
        .locals_range()
        .chain(data.stack_range())
        .chain(data.locks_range())
    {
        set.insert(inputs[i]);
    }
    if let Some(outer) = data.outer_index() {
        add_frame_state_refs(graph, inputs[outer], set);
    }
}

/// Transfer function of one block, processed in reverse: definitions kill
/// (this is what makes loop back edges precise — a fresh allocation in
/// the *next* iteration re-defines its node, so the previous iteration's
/// value is not considered live across the back edge), uses generate
/// (data inputs, frame-state slots including outer chains). Phis defined
/// at the block head are killed; their inputs are generated at the
/// predecessors instead.
fn transfer_block(
    graph: &Graph,
    block: &crate::liveness::BlockRef<'_>,
    live_out: &NodeSet,
) -> NodeSet {
    let mut live = live_out.clone();
    for &node in block.nodes.iter().rev() {
        live.remove(node);
        for &input in graph.node(node).inputs() {
            live.insert(input);
        }
        if let Some(fs) = graph.node(node).state_after {
            add_frame_state_refs(graph, fs, &mut live);
        }
    }
    let head = block.nodes[0];
    if matches!(
        graph.kind(head),
        NodeKind::Merge { .. } | NodeKind::LoopBegin { .. }
    ) {
        for phi in graph.phis_of(head) {
            live.remove(phi);
        }
    }
    live
}

/// Borrowed view of a block's fixed nodes.
struct BlockRef<'a> {
    nodes: &'a [NodeId],
}

/// Computes SSA liveness per block entry: the set of already-defined
/// nodes that may still be consumed at or after the block's entry (data
/// inputs of fixed nodes, frame-state slots including outer chains, and
/// phi inputs of successor merges).
pub fn live_at_entry(graph: &Graph, cfg: &Cfg) -> Vec<NodeSet> {
    let n = graph.len();
    let nb = cfg.blocks.len();
    let mut live_in: Vec<NodeSet> = vec![NodeSet::new(n); nb];
    // Phi inputs are uses at the corresponding predecessor's end; gather
    // them per predecessor block up front.
    let mut phi_uses_at_end: Vec<NodeSet> = vec![NodeSet::new(n); nb];
    for block in &cfg.blocks {
        let head = block.first();
        if matches!(
            graph.kind(head),
            NodeKind::Merge { .. } | NodeKind::LoopBegin { .. }
        ) {
            for phi in graph.phis_of(head) {
                let inputs = graph.node(phi).inputs();
                for (k, &pred) in block.preds.iter().enumerate() {
                    if let Some(&input) = inputs.get(k) {
                        phi_uses_at_end[pred.index()].insert(input);
                    }
                }
            }
        }
    }

    let order: Vec<BlockId> = cfg.rpo.iter().rev().copied().collect();
    loop {
        let mut changed = false;
        for &b in &order {
            let mut live_out = phi_uses_at_end[b.index()].clone();
            for &s in &cfg.block(b).succs {
                live_out.union_with(&live_in[s.index()]);
            }
            let new_in = transfer_block(
                graph,
                &BlockRef {
                    nodes: &cfg.block(b).nodes,
                },
                &live_out,
            );
            if live_in[b.index()].union_with(&new_in) {
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    live_in
}

#[cfg(test)]
mod tests {
    use super::*;
    use pea_bytecode::FieldId;
    use pea_ir::NodeKind;

    #[test]
    fn nodeset_basics() {
        let mut s = NodeSet::new(100);
        assert!(!s.contains(NodeId(3)));
        s.insert(NodeId(3));
        assert!(s.contains(NodeId(3)));
        // Out-of-range ids are conservatively live.
        assert!(s.contains(NodeId(1000)));
    }

    #[test]
    fn liveness_flows_backwards() {
        // B0: start, new, if -> B1 (uses new) | B2 (does not)
        let mut g = Graph::new();
        let p = g.add(NodeKind::Param { index: 0 }, vec![]);
        let new = g.add(
            NodeKind::New {
                class: pea_bytecode::ClassId(0),
            },
            vec![],
        );
        g.set_next(g.start, new);
        let iff = g.add(NodeKind::If, vec![p]);
        g.set_next(new, iff);
        let t = g.add(NodeKind::Begin, vec![]);
        let f = g.add(NodeKind::Begin, vec![]);
        g.set_if_targets(iff, t, f);
        let load = g.add(NodeKind::LoadField { field: FieldId(0) }, vec![new]);
        g.set_next(t, load);
        let r1 = g.add(NodeKind::Return, vec![load]);
        g.set_next(load, r1);
        let r2 = g.add(NodeKind::Return, vec![p]);
        g.set_next(f, r2);

        let cfg = pea_ir::cfg::Cfg::build(&g);
        let live = live_at_entry(&g, &cfg);
        let tb = cfg.block_of(t);
        let fb = cfg.block_of(f);
        assert!(
            live[tb.index()].contains(new),
            "true branch uses the object"
        );
        assert!(!live[fb.index()].contains(new), "false branch does not");
        // The definition kills upwards: the object is not live-in at its
        // own defining block.
        assert!(!live[cfg.entry().index()].contains(new));
        // The parameter flows into both return paths' predecessors.
        assert!(live[fb.index()].contains(p));
    }
}
