//! The flow-insensitive baseline: Equi-Escape Sets (Kotzmann &
//! Mössenböck), the style of analysis the paper compares against (§3,
//! §6.2, §8.1).
//!
//! Values are partitioned with a union–find structure; any escape point
//! (static store, call argument, return, throw) marks its whole set as
//! escaping, and — matching the all-or-nothing character the paper
//! criticizes — an allocation that flows into a phi (a control-flow merge)
//! is treated as escaping, because a flow-insensitive scalar replacement
//! cannot split it per branch.
//!
//! Scalar replacement then reuses the *same* engine as Partial Escape
//! Analysis restricted to the provably never-escaping allocation sites
//! ([`crate::PeaOptions::allowed`]), exactly like the HotSpot server
//! compiler performs a separate analysis step followed by an optimization
//! step (paper §1: "previous systems perform a control-flow-sensitive
//! analysis step followed by a control-flow-insensitive optimization
//! step").

use crate::analysis::{run_pea, PeaOptions, PeaResult};
use pea_bytecode::Program;
use pea_ir::{Graph, NodeId, NodeKind};
use std::collections::HashSet;

/// Union–find over graph nodes with escape marks.
#[derive(Clone, Debug)]
pub struct EscapeSets {
    parent: Vec<u32>,
    escaped: Vec<bool>,
}

impl EscapeSets {
    /// Builds the equi-escape sets for `graph`.
    pub fn build(graph: &Graph) -> EscapeSets {
        let n = graph.len();
        let mut sets = EscapeSets {
            parent: (0..n as u32).collect(),
            escaped: vec![false; n],
        };
        for node in graph.live_nodes() {
            match graph.kind(node) {
                NodeKind::Phi { .. } => {
                    for &input in graph.node(node).inputs() {
                        sets.union(node, input);
                    }
                    // Allocation merges defeat flow-insensitive scalar
                    // replacement.
                    sets.mark_escaped(node);
                }
                NodeKind::CheckCast { .. } => {
                    sets.union(node, graph.node(node).inputs()[0]);
                }
                NodeKind::StoreField { .. } => {
                    let [obj, value] = graph.node(node).inputs() else {
                        unreachable!()
                    };
                    sets.union(*obj, *value);
                }
                NodeKind::StoreIndexed => {
                    let [arr, _idx, value] = graph.node(node).inputs() else {
                        unreachable!()
                    };
                    sets.union(*arr, *value);
                }
                NodeKind::LoadField { .. } => {
                    sets.union(node, graph.node(node).inputs()[0]);
                }
                NodeKind::LoadIndexed => {
                    sets.union(node, graph.node(node).inputs()[0]);
                }
                NodeKind::PutStatic { .. }
                | NodeKind::Invoke { .. }
                | NodeKind::Return
                | NodeKind::Throw
                | NodeKind::Commit { .. } => {
                    for &input in graph.node(node).inputs() {
                        sets.mark_escaped(input);
                    }
                }
                _ => {}
            }
        }
        sets
    }

    fn find(&mut self, n: NodeId) -> u32 {
        let mut x = n.0;
        while self.parent[x as usize] != x {
            let gp = self.parent[self.parent[x as usize] as usize];
            self.parent[x as usize] = gp;
            x = gp;
        }
        x
    }

    fn union(&mut self, a: NodeId, b: NodeId) {
        let ra = self.find(a);
        let rb = self.find(b);
        if ra != rb {
            let escaped = self.escaped[ra as usize] || self.escaped[rb as usize];
            self.parent[rb as usize] = ra;
            self.escaped[ra as usize] = escaped;
        }
    }

    fn mark_escaped(&mut self, n: NodeId) {
        let r = self.find(n);
        self.escaped[r as usize] = true;
    }

    /// Whether `n`'s set escapes.
    pub fn escapes(&mut self, n: NodeId) -> bool {
        let r = self.find(n);
        self.escaped[r as usize]
    }

    /// All allocation sites whose sets never escape.
    pub fn non_escaping_allocations(&mut self, graph: &Graph) -> HashSet<NodeId> {
        graph
            .live_nodes()
            .filter(|&n| {
                matches!(
                    graph.kind(n),
                    NodeKind::New { .. } | NodeKind::NewArray { .. }
                )
            })
            .filter(|&n| !self.escapes(n))
            .collect()
    }
}

/// Runs the flow-insensitive baseline: Equi-Escape-Sets analysis followed
/// by all-or-nothing scalar replacement of the never-escaping allocations.
pub fn run_ees(graph: &mut Graph, program: &Program, base: &PeaOptions) -> PeaResult {
    let mut sets = EscapeSets::build(graph);
    let allowed = sets.non_escaping_allocations(graph);
    let options = PeaOptions {
        allowed: Some(allowed),
        ..base.clone()
    };
    run_pea(graph, program, &options)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pea_bytecode::{ClassId, StaticId};

    /// start -> new -> putstatic(new) -> return
    #[test]
    fn static_store_escapes() {
        let mut g = Graph::new();
        let new = g.add(NodeKind::New { class: ClassId(0) }, vec![]);
        g.set_next(g.start, new);
        let put = g.add(NodeKind::PutStatic { id: StaticId(0) }, vec![new]);
        g.set_next(new, put);
        let ret = g.add(NodeKind::Return, vec![]);
        g.set_next(put, ret);
        let mut sets = EscapeSets::build(&g);
        assert!(sets.escapes(new));
        assert!(sets.non_escaping_allocations(&g).is_empty());
    }

    #[test]
    fn local_allocation_does_not_escape() {
        let mut g = Graph::new();
        let new = g.add(NodeKind::New { class: ClassId(0) }, vec![]);
        g.set_next(g.start, new);
        let load = g.add(
            NodeKind::LoadField {
                field: pea_bytecode::FieldId(0),
            },
            vec![new],
        );
        g.set_next(new, load);
        let ret = g.add(NodeKind::Return, vec![load]);
        g.set_next(load, ret);
        let mut sets = EscapeSets::build(&g);
        // The load's value is returned — it unions with the object, and
        // Return marks it escaping. This is exactly the flow-insensitive
        // conservatism: the loaded *field value* escaping drags the object
        // along.
        assert!(sets.escapes(new));
    }

    #[test]
    fn pure_local_use_survives() {
        let mut g = Graph::new();
        let new = g.add(NodeKind::New { class: ClassId(0) }, vec![]);
        g.set_next(g.start, new);
        let me = g.add(NodeKind::MonitorEnter, vec![new]);
        g.set_next(new, me);
        let mx = g.add(NodeKind::MonitorExit, vec![new]);
        g.set_next(me, mx);
        let c = g.const_int(0);
        let ret = g.add(NodeKind::Return, vec![c]);
        g.set_next(mx, ret);
        let mut sets = EscapeSets::build(&g);
        assert!(!sets.escapes(new));
        assert_eq!(sets.non_escaping_allocations(&g).len(), 1);
    }

    #[test]
    fn phi_join_escapes() {
        let mut g = Graph::new();
        let new_a = g.add(NodeKind::New { class: ClassId(0) }, vec![]);
        let merge = g.add(NodeKind::Merge { ends: vec![] }, vec![]);
        let null = g.const_null();
        let phi = g.add(NodeKind::Phi { merge }, vec![new_a, null]);
        let _ = phi;
        let mut sets = EscapeSets::build(&g);
        assert!(sets.escapes(new_a));
    }

    #[test]
    fn store_into_escaping_object_escapes_value() {
        let mut g = Graph::new();
        let a = g.add(NodeKind::New { class: ClassId(0) }, vec![]);
        g.set_next(g.start, a);
        let b = g.add(NodeKind::New { class: ClassId(0) }, vec![]);
        g.set_next(a, b);
        let store = g.add(
            NodeKind::StoreField {
                field: pea_bytecode::FieldId(0),
            },
            vec![a, b],
        );
        g.set_next(b, store);
        let put = g.add(NodeKind::PutStatic { id: StaticId(0) }, vec![a]);
        g.set_next(store, put);
        let ret = g.add(NodeKind::Return, vec![]);
        g.set_next(put, ret);
        let mut sets = EscapeSets::build(&g);
        assert!(sets.escapes(a));
        assert!(sets.escapes(b), "b stored into escaping a must escape");
    }
}
