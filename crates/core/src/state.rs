//! The allocation state propagated through the IR (paper §5.1,
//! Listing 7, Figure 3).

use pea_ir::{AllocShape, NodeId};
use std::collections::BTreeMap;
use std::fmt;

/// Identity of one allocation *site occurrence* discovered during the
/// analysis (the paper's `Id` objects).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct AllocId(pub u32);

impl AllocId {
    /// Raw index into the analysis' [`AllocInfo`] table.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for AllocId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({})", self.0)
    }
}

impl fmt::Display for AllocId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({})", self.0)
    }
}

/// Immutable per-allocation metadata, shared by all states.
#[derive(Clone, Debug)]
pub struct AllocInfo {
    /// Shape (class or fixed-length array).
    pub shape: AllocShape,
    /// The `New`/`NewArray` node this allocation came from.
    pub origin: NodeId,
    /// Number of field (or element) slots.
    pub field_count: usize,
}

/// The paper's `ObjectState`: what the analysis currently knows about one
/// allocation on the current path.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ObjectState {
    /// No reason to allocate yet: field values and lock depth are tracked
    /// symbolically (`VirtualState` in Listing 7).
    Virtual {
        /// Current value of each field/element. Entries may be alias
        /// nodes of other (virtual or escaped) allocations.
        fields: Vec<NodeId>,
        /// Monitor depth the object would be held at (paper Fig. 4c/4d).
        lock_count: u32,
    },
    /// The object exists in the heap (`EscapedState` in Listing 7).
    Escaped {
        /// Node producing the actual object reference (an
        /// `AllocatedObject` of a commit, or a phi of such).
        materialized: NodeId,
    },
}

impl ObjectState {
    /// Whether the object is still virtual.
    pub fn is_virtual(&self) -> bool {
        matches!(self, ObjectState::Virtual { .. })
    }

    /// The materialized value, if escaped.
    pub fn materialized_value(&self) -> Option<NodeId> {
        match self {
            ObjectState::Escaped { materialized } => Some(*materialized),
            ObjectState::Virtual { .. } => None,
        }
    }
}

/// The flow state: object states plus the alias map (paper Listing 7's
/// `State` class).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct PeaState {
    /// Knowledge about each live allocation.
    pub states: BTreeMap<AllocId, ObjectState>,
    /// Mapping from IR nodes to the allocation they refer to. Initially
    /// the `New` node; loads, phis and casts add more aliases (§5.1).
    pub aliases: BTreeMap<NodeId, AllocId>,
}

impl PeaState {
    /// Empty state.
    pub fn new() -> Self {
        Self::default()
    }

    /// The allocation a node refers to, if tracked.
    pub fn alias_of(&self, node: NodeId) -> Option<AllocId> {
        self.aliases.get(&node).copied()
    }

    /// The object state of `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not tracked in this state.
    pub fn object(&self, id: AllocId) -> &ObjectState {
        self.states.get(&id).expect("untracked allocation")
    }

    /// Mutable object state of `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not tracked in this state.
    pub fn object_mut(&mut self, id: AllocId) -> &mut ObjectState {
        self.states.get_mut(&id).expect("untracked allocation")
    }

    /// Allocation id a node refers to *and* whose object is still virtual.
    pub fn virtual_alias(&self, node: NodeId) -> Option<AllocId> {
        self.alias_of(node)
            .filter(|id| self.states.get(id).is_some_and(ObjectState::is_virtual))
    }

    /// Registers a new virtual allocation.
    pub fn add_virtual(&mut self, id: AllocId, origin: NodeId, fields: Vec<NodeId>) {
        self.states.insert(
            id,
            ObjectState::Virtual {
                fields,
                lock_count: 0,
            },
        );
        self.aliases.insert(origin, id);
    }

    /// Registers `node` as an additional alias of `id`.
    pub fn add_alias(&mut self, node: NodeId, id: AllocId) {
        self.aliases.insert(node, id);
    }

    /// All ids currently in the virtual state.
    pub fn virtual_ids(&self) -> Vec<AllocId> {
        self.states
            .iter()
            .filter(|(_, s)| s.is_virtual())
            .map(|(&id, _)| id)
            .collect()
    }

    /// Renders the state in the visual style of the paper's Figure 3/4:
    /// one line per id (`v` = virtual with lock count and fields, `e` =
    /// escaped with materialized value), then the alias table.
    pub fn render(&self, infos: &[AllocInfo]) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for (&id, state) in &self.states {
            let shape = infos
                .get(id.index())
                .map(|i| i.shape.to_string())
                .unwrap_or_else(|| "?".into());
            match state {
                ObjectState::Virtual { fields, lock_count } => {
                    let fs: Vec<String> = fields.iter().map(|f| f.to_string()).collect();
                    let _ = writeln!(out, "  {shape} {id}  v {lock_count} [{}]", fs.join(", "));
                }
                ObjectState::Escaped { materialized } => {
                    let _ = writeln!(out, "  {shape} {id}  e -> {materialized}");
                }
            }
        }
        if !self.aliases.is_empty() {
            let aliases: Vec<String> = self
                .aliases
                .iter()
                .map(|(n, id)| format!("{n}->{id}"))
                .collect();
            let _ = writeln!(out, "  aliases: {}", aliases.join(", "));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pea_bytecode::ClassId;

    fn info() -> Vec<AllocInfo> {
        vec![AllocInfo {
            shape: AllocShape::Instance { class: ClassId(0) },
            origin: NodeId(5),
            field_count: 2,
        }]
    }

    #[test]
    fn add_virtual_registers_alias() {
        let mut s = PeaState::new();
        s.add_virtual(AllocId(0), NodeId(5), vec![NodeId(1), NodeId(2)]);
        assert_eq!(s.alias_of(NodeId(5)), Some(AllocId(0)));
        assert!(s.object(AllocId(0)).is_virtual());
        assert_eq!(s.virtual_alias(NodeId(5)), Some(AllocId(0)));
        assert_eq!(s.virtual_ids(), vec![AllocId(0)]);
    }

    #[test]
    fn escaped_objects_are_not_virtual_aliases() {
        let mut s = PeaState::new();
        s.add_virtual(AllocId(0), NodeId(5), vec![]);
        *s.object_mut(AllocId(0)) = ObjectState::Escaped {
            materialized: NodeId(9),
        };
        assert_eq!(s.virtual_alias(NodeId(5)), None);
        assert_eq!(s.alias_of(NodeId(5)), Some(AllocId(0)));
        assert_eq!(s.object(AllocId(0)).materialized_value(), Some(NodeId(9)));
    }

    #[test]
    fn states_compare_structurally() {
        let mut a = PeaState::new();
        a.add_virtual(AllocId(0), NodeId(5), vec![NodeId(1)]);
        let mut b = PeaState::new();
        b.add_virtual(AllocId(0), NodeId(5), vec![NodeId(1)]);
        assert_eq!(a, b);
        if let ObjectState::Virtual { lock_count, .. } = b.object_mut(AllocId(0)) {
            *lock_count = 1;
        }
        assert_ne!(a, b);
    }

    #[test]
    fn render_matches_figure_style() {
        let mut s = PeaState::new();
        s.add_virtual(AllocId(0), NodeId(5), vec![NodeId(1), NodeId(2)]);
        let text = s.render(&info());
        assert!(text.contains("v 0 [v1, v2]"), "{text}");
        assert!(text.contains("aliases: v5->(0)"), "{text}");
    }
}
