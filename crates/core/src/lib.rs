//! **Partial Escape Analysis and Scalar Replacement** — the primary
//! contribution of Stadler, Würthinger, Mössenböck (CGO 2014) — plus the
//! flow-insensitive Equi-Escape-Sets baseline it is evaluated against.
//!
//! The analysis iterates the IR in control-flow order, maintaining for
//! every encountered allocation an [`ObjectState`]: **virtual** (field
//! values and lock count tracked symbolically; no code emitted) or
//! **escaped** (materialized into an actual allocation on exactly the
//! paths that need it). See the paper-section mapping:
//!
//! | paper | here |
//! |---|---|
//! | §5.1 allocation state (Listing 7, Fig. 3) | [`state`] |
//! | §5.2 node effects (Fig. 4, Fig. 5) | [`process`] (via [`analysis`]) |
//! | §5.3 merge processing (Fig. 6) | [`merge`] |
//! | §5.4 loops (Fig. 7) | [`analysis`] (reentrant iteration + fixpoint) |
//! | §5.5 frame states (Fig. 8) | [`framestate`] |
//! | §3 / §6.2 baseline | [`ees`] |
//!
//! Graph mutations are collected as [`effects::Effect`]s during the
//! analysis and applied atomically afterwards (the analogue of Graal's
//! `EffectsPhase`), so abandoned loop iterations never corrupt the graph.
//!
//! Entry points: [`run_pea`] (the paper's algorithm) and [`run_ees`] (the
//! all-or-nothing baseline).

pub mod analysis;
pub mod ees;
pub mod effects;
pub mod fixtures;
pub mod framestate;
pub mod liveness;
pub mod merge;
pub mod process;
pub mod state;

pub use analysis::{run_pea, run_pea_traced, PeaOptions, PeaResult};
pub use ees::{run_ees, EscapeSets};
pub use state::{AllocId, AllocInfo, ObjectState, PeaState};
