//! Hand-built IR graphs reproducing the paper's running examples and
//! figures, shared by the unit tests and the figure-regeneration harness
//! (`cargo run --example figures`).
//!
//! * [`key_program`] — the `Key` class, `cacheKey`/`cacheValue` statics
//!   and a `createValue` method (Listing 1/4).
//! * [`listing5_graph`] — the IR of Listing 5 (= Figure 2): `getValue`
//!   after inlining the constructor and the synchronized `equals`
//!   (`examples/figures.rs` builds the smaller Figure 4/5/6 patterns
//!   inline).
//! * [`fig7_loop_graph`] — the loop of Figure 7.
//! * [`listing8_graph`] — the frame-state example of Listing 8 / Figure 8.

use pea_bytecode::{
    ClassId, CmpOp, FieldId, MethodBuilder, MethodId, Program, ProgramBuilder, StaticId, ValueKind,
};
use pea_ir::{FrameStateData, Graph, NodeId, NodeKind};

/// Handles into [`key_program`].
#[derive(Clone, Copy, Debug)]
pub struct KeyProgram {
    /// The `Key` class.
    pub key_class: ClassId,
    /// `Key.idx` (int).
    pub f_idx: FieldId,
    /// `Key.ref` (ref).
    pub f_ref: FieldId,
    /// `static cacheKey`.
    pub s_cache_key: StaticId,
    /// `static cacheValue`.
    pub s_cache_value: StaticId,
    /// `createValue()` — an opaque callee.
    pub m_create_value: MethodId,
    /// `getValue(idx, ref)` — a placeholder id for frame states.
    pub m_get_value: MethodId,
}

/// Builds the program metadata of the paper's running example
/// (Listing 1/4).
pub fn key_program() -> (Program, KeyProgram) {
    let mut pb = ProgramBuilder::new();
    let key_class = pb.add_class("Key", None);
    let f_idx = pb.add_field(key_class, "idx", ValueKind::Int);
    let f_ref = pb.add_field(key_class, "ref", ValueKind::Ref);
    let s_cache_key = pb.add_static("cacheKey", ValueKind::Ref);
    let s_cache_value = pb.add_static("cacheValue", ValueKind::Ref);
    let mut mb = MethodBuilder::new_static("createValue", 0, true);
    mb.const_null();
    mb.return_value();
    let m_create_value = pb.add_method(mb.build().expect("createValue"));
    let mut mb = MethodBuilder::new_static("getValue", 2, true);
    mb.const_null();
    mb.return_value();
    let m_get_value = pb.add_method(mb.build().expect("getValue"));
    let program = pb.build().expect("key program");
    (
        program,
        KeyProgram {
            key_class,
            f_idx,
            f_ref,
            s_cache_key,
            s_cache_value,
            m_create_value,
            m_get_value,
        },
    )
}

/// Interesting nodes of [`listing5_graph`].
#[derive(Clone, Copy, Debug)]
pub struct Listing5 {
    /// The `new Key` allocation.
    pub new_key: NodeId,
    /// The `monitorenter` of the inlined synchronized `equals`.
    pub monitor_enter: NodeId,
    /// The `monitorexit`.
    pub monitor_exit: NodeId,
    /// The `putstatic cacheKey` in the miss branch (the escape point).
    pub put_cache_key: NodeId,
    /// The hit-branch return.
    pub return_hit: NodeId,
    /// The miss-branch return.
    pub return_miss: NodeId,
}

/// Builds the Graal IR of Listing 5 (Figure 2): `getValue` with the `Key`
/// constructor and synchronized `equals` inlined, where the `Key` escapes
/// only into `cacheKey` on the miss path (Listing 4's else branch).
pub fn listing5_graph(p: &KeyProgram) -> (Graph, Listing5) {
    let mut g = Graph::new();
    let idx = g.add(NodeKind::Param { index: 0 }, vec![]);
    let rf = g.add(NodeKind::Param { index: 1 }, vec![]);

    // Key key = new Key(idx, ref);   (constructor inlined)
    let new_key = g.add(NodeKind::New { class: p.key_class }, vec![]);
    g.set_next(g.start, new_key);
    let entry_state = g.add_frame_state(
        FrameStateData::new(p.m_get_value, 0, 2, 0, 0, false),
        vec![idx, rf],
    );
    let store_idx = g.add(NodeKind::StoreField { field: p.f_idx }, vec![new_key, idx]);
    g.set_next(new_key, store_idx);
    let st1 = g.add_frame_state(
        FrameStateData::new(p.m_get_value, 1, 3, 0, 0, false),
        vec![idx, rf, new_key],
    );
    g.set_state_after(store_idx, Some(st1));
    let store_ref = g.add(NodeKind::StoreField { field: p.f_ref }, vec![new_key, rf]);
    g.set_next(store_idx, store_ref);
    let st2 = g.add_frame_state(
        FrameStateData::new(p.m_get_value, 2, 3, 0, 0, false),
        vec![idx, rf, new_key],
    );
    g.set_state_after(store_ref, Some(st2));
    let _ = entry_state;

    // Key tmp1 = cacheKey;
    let load_cache_key = g.add(NodeKind::GetStatic { id: p.s_cache_key }, vec![]);
    g.set_next(store_ref, load_cache_key);

    // synchronized (key) { tmp2 = key.idx == tmp1.idx && key.ref == tmp1.ref }
    let monitor_enter = g.add(NodeKind::MonitorEnter, vec![new_key]);
    g.set_next(load_cache_key, monitor_enter);
    let st3 = g.add_frame_state(
        {
            let mut d = FrameStateData::new(p.m_get_value, 3, 3, 0, 1, false);
            d.lock_from_sync = vec![false];
            d
        },
        vec![idx, rf, new_key, new_key],
    );
    g.set_state_after(monitor_enter, Some(st3));

    let load_key_idx = g.add(NodeKind::LoadField { field: p.f_idx }, vec![new_key]);
    g.set_next(monitor_enter, load_key_idx);
    let load_tmp_idx = g.add(NodeKind::LoadField { field: p.f_idx }, vec![load_cache_key]);
    g.set_next(load_key_idx, load_tmp_idx);
    let cmp_idx = g.add(
        NodeKind::Compare { op: CmpOp::Eq },
        vec![load_key_idx, load_tmp_idx],
    );
    let load_key_ref = g.add(NodeKind::LoadField { field: p.f_ref }, vec![new_key]);
    g.set_next(load_tmp_idx, load_key_ref);
    let load_tmp_ref = g.add(NodeKind::LoadField { field: p.f_ref }, vec![load_cache_key]);
    g.set_next(load_key_ref, load_tmp_ref);
    let cmp_ref = g.add(NodeKind::RefEq, vec![load_key_ref, load_tmp_ref]);
    g.set_next(load_tmp_ref, cmp_ref);
    // tmp2 = cmp_idx & cmp_ref  (short-circuit flattened for brevity)
    let both = g.add(
        NodeKind::Arith {
            op: pea_ir::ArithOp::And,
        },
        vec![cmp_idx, cmp_ref],
    );
    let monitor_exit = g.add(NodeKind::MonitorExit, vec![new_key]);
    g.set_next(cmp_ref, monitor_exit);
    let st4 = g.add_frame_state(
        FrameStateData::new(p.m_get_value, 4, 3, 0, 0, false),
        vec![idx, rf, new_key],
    );
    g.set_state_after(monitor_exit, Some(st4));

    // if (tmp2) { return cacheValue; } else { cacheKey = key; ... }
    let iff = g.add(NodeKind::If, vec![both]);
    g.set_next(monitor_exit, iff);
    let hit = g.add(NodeKind::Begin, vec![]);
    let miss = g.add(NodeKind::Begin, vec![]);
    g.set_if_targets(iff, hit, miss);

    // hit: return cacheValue
    let load_cache_value = g.add(
        NodeKind::GetStatic {
            id: p.s_cache_value,
        },
        vec![],
    );
    g.set_next(hit, load_cache_value);
    let return_hit = g.add(NodeKind::Return, vec![load_cache_value]);
    g.set_next(load_cache_value, return_hit);

    // miss: cacheKey = key; cacheValue = createValue(); return cacheValue
    let put_cache_key = g.add(NodeKind::PutStatic { id: p.s_cache_key }, vec![new_key]);
    g.set_next(miss, put_cache_key);
    let st5 = g.add_frame_state(
        FrameStateData::new(p.m_get_value, 5, 3, 0, 0, false),
        vec![idx, rf, new_key],
    );
    g.set_state_after(put_cache_key, Some(st5));
    let call = g.add(
        NodeKind::Invoke {
            target: p.m_create_value,
            virtual_call: false,
        },
        vec![],
    );
    g.set_next(put_cache_key, call);
    let st6 = g.add_frame_state(
        FrameStateData::new(p.m_get_value, 6, 3, 1, 0, false),
        vec![idx, rf, new_key, call],
    );
    g.set_state_after(call, Some(st6));
    let put_cache_value = g.add(
        NodeKind::PutStatic {
            id: p.s_cache_value,
        },
        vec![call],
    );
    g.set_next(call, put_cache_value);
    let st7 = g.add_frame_state(
        FrameStateData::new(p.m_get_value, 7, 3, 0, 0, false),
        vec![idx, rf, new_key],
    );
    g.set_state_after(put_cache_value, Some(st7));
    let return_miss = g.add(NodeKind::Return, vec![call]);
    g.set_next(put_cache_value, return_miss);

    (
        g,
        Listing5 {
            new_key,
            monitor_enter,
            monitor_exit,
            put_cache_key,
            return_hit,
            return_miss,
        },
    )
}

/// The loop of Figure 7: one loop with two back edges and one exit, with a
/// virtual object whose field is updated inside the loop.
///
/// ```text
/// obj = new Key; obj.idx = 0;
/// while (obj.idx < p0) {
///     if (p1 == 1) { obj.idx = obj.idx + 1; continue; }   // LoopEnd (1)
///     obj.idx = obj.idx + 2;  continue;                   // LoopEnd (2)
/// }
/// return obj.idx;
/// ```
pub fn fig7_loop_graph(p: &KeyProgram) -> (Graph, NodeId) {
    let mut g = Graph::new();
    let p0 = g.add(NodeKind::Param { index: 0 }, vec![]);
    let p1 = g.add(NodeKind::Param { index: 1 }, vec![]);
    let new_key = g.add(NodeKind::New { class: p.key_class }, vec![]);
    g.set_next(g.start, new_key);
    let zero = g.const_int(0);
    let store0 = g.add(NodeKind::StoreField { field: p.f_idx }, vec![new_key, zero]);
    g.set_next(new_key, store0);
    let st = g.add_frame_state(
        FrameStateData::new(p.m_get_value, 1, 3, 0, 0, false),
        vec![p0, p1, new_key],
    );
    g.set_state_after(store0, Some(st));

    let entry_end = g.add(NodeKind::End, vec![]);
    g.set_next(store0, entry_end);
    let lb = g.add(
        NodeKind::LoopBegin {
            ends: vec![entry_end],
        },
        vec![],
    );
    let load = g.add(NodeKind::LoadField { field: p.f_idx }, vec![new_key]);
    g.set_next(lb, load);
    let cond = g.add(NodeKind::Compare { op: CmpOp::Lt }, vec![load, p0]);
    let iff = g.add(NodeKind::If, vec![cond]);
    g.set_next(load, iff);
    let body = g.add(NodeKind::Begin, vec![]);
    let exit = g.add(NodeKind::LoopExit { loop_begin: lb }, vec![]);
    g.set_if_targets(iff, body, exit);

    // body: if (p1 == 1) +1 else +2, two separate back edges
    let one = g.const_int(1);
    let cond2 = g.add(NodeKind::Compare { op: CmpOp::Eq }, vec![p1, one]);
    let iff2 = g.add(NodeKind::If, vec![cond2]);
    g.set_next(body, iff2);
    let b1 = g.add(NodeKind::Begin, vec![]);
    let b2 = g.add(NodeKind::Begin, vec![]);
    g.set_if_targets(iff2, b1, b2);

    let load1 = g.add(NodeKind::LoadField { field: p.f_idx }, vec![new_key]);
    g.set_next(b1, load1);
    let inc1 = g.add(
        NodeKind::Arith {
            op: pea_ir::ArithOp::Add,
        },
        vec![load1, one],
    );
    let store1 = g.add(NodeKind::StoreField { field: p.f_idx }, vec![new_key, inc1]);
    g.set_next(load1, store1);
    let st1 = g.add_frame_state(
        FrameStateData::new(p.m_get_value, 2, 3, 0, 0, false),
        vec![p0, p1, new_key],
    );
    g.set_state_after(store1, Some(st1));
    let le1 = g.add(NodeKind::LoopEnd, vec![]);
    g.set_next(store1, le1);
    g.add_merge_end(lb, le1);

    let two = g.const_int(2);
    let load2 = g.add(NodeKind::LoadField { field: p.f_idx }, vec![new_key]);
    g.set_next(b2, load2);
    let inc2 = g.add(
        NodeKind::Arith {
            op: pea_ir::ArithOp::Add,
        },
        vec![load2, two],
    );
    let store2 = g.add(NodeKind::StoreField { field: p.f_idx }, vec![new_key, inc2]);
    g.set_next(load2, store2);
    let st2 = g.add_frame_state(
        FrameStateData::new(p.m_get_value, 3, 3, 0, 0, false),
        vec![p0, p1, new_key],
    );
    g.set_state_after(store2, Some(st2));
    let le2 = g.add(NodeKind::LoopEnd, vec![]);
    g.set_next(store2, le2);
    g.add_merge_end(lb, le2);

    // exit: return obj.idx
    let load_exit = g.add(NodeKind::LoadField { field: p.f_idx }, vec![new_key]);
    g.set_next(exit, load_exit);
    let ret = g.add(NodeKind::Return, vec![load_exit]);
    g.set_next(load_exit, ret);

    (g, new_key)
}

/// Listing 8 / Figure 8: `foo(x)` allocates an `Integer`-like box, stores
/// into it (with a chained inner/outer frame state), then performs an
/// unrelated static store whose frame state still references the virtual
/// object.
pub fn listing8_graph(p: &KeyProgram) -> (Graph, NodeId, NodeId) {
    let mut g = Graph::new();
    let x = g.add(NodeKind::Param { index: 0 }, vec![]);
    let new_int = g.add(NodeKind::New { class: p.key_class }, vec![]);
    g.set_next(g.start, new_int);

    // Inlined constructor store with inner state chained to the outer.
    let outer = g.add_frame_state(
        FrameStateData::new(p.m_get_value, 5, 1, 0, 0, false),
        vec![x],
    );
    let store = g.add(NodeKind::StoreField { field: p.f_idx }, vec![new_int, x]);
    g.set_next(new_int, store);
    let inner = g.add_frame_state(
        FrameStateData::new(p.m_create_value, 9, 2, 0, 0, true),
        vec![new_int, x, outer],
    );
    g.set_state_after(store, Some(inner));

    // global = null;
    let null = g.const_null();
    let put = g.add(NodeKind::PutStatic { id: p.s_cache_key }, vec![null]);
    g.set_next(store, put);
    let after = g.add_frame_state(
        FrameStateData::new(p.m_get_value, 13, 2, 0, 0, false),
        vec![x, new_int],
    );
    g.set_state_after(put, Some(after));

    let load = g.add(NodeKind::LoadField { field: p.f_idx }, vec![new_int]);
    g.set_next(put, load);
    let ret = g.add(NodeKind::Return, vec![load]);
    g.set_next(load, ret);
    (g, new_int, put)
}
