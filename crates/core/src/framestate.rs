//! Frame-state rewriting (paper §5.5, Figure 8): references to virtual
//! objects inside deoptimization metadata are replaced with
//! `VirtualObjectMapping` snapshots so the interpreter state can be
//! reconstructed — including recreating the objects and re-entering their
//! monitors — if execution ever falls back.

use crate::analysis::PeaContext;
use crate::effects::Effect;
use crate::state::{AllocId, ObjectState, PeaState};
use pea_ir::cfg::BlockId;
use pea_ir::{NodeId, NodeKind};
use std::collections::HashMap;

/// Rewrites `fs` (and its outer-state chain) against the current object
/// state. Each frame state is rewritten at most once, at its earliest
/// use in flow order — later deopt points sharing the state rematerialize
/// from the snapshot, which is sound because an object can only have
/// escaped through a side effect, and side effects carry fresh states.
pub(crate) fn rewrite_frame_state(
    ctx: &mut PeaContext<'_>,
    state: &PeaState,
    fs: NodeId,
    block: BlockId,
) {
    if ctx.rewritten_states.contains_key(&fs) {
        return;
    }
    let mut mappings: HashMap<AllocId, NodeId> = HashMap::new();
    rewrite_one(ctx, state, fs, block, &mut mappings);
}

fn rewrite_one(
    ctx: &mut PeaContext<'_>,
    state: &PeaState,
    fs: NodeId,
    block: BlockId,
    mappings: &mut HashMap<AllocId, NodeId>,
) {
    if ctx.rewritten_states.contains_key(&fs) {
        return;
    }
    ctx.rewritten_states.insert(fs, block);
    let data = ctx.graph.frame_state_data(fs).clone();
    let inputs = ctx.graph.node(fs).inputs().to_vec();
    let value_slots = data
        .locals_range()
        .chain(data.stack_range())
        .chain(data.locks_range());
    for i in value_slots {
        let v = inputs[i];
        if let Some(id) = state.alias_of(v) {
            let replacement = match state.object(id) {
                ObjectState::Virtual { .. } => mapping_for(ctx, state, id, mappings),
                ObjectState::Escaped { materialized } => *materialized,
            };
            ctx.record(
                block,
                Effect::SetInput {
                    node: fs,
                    index: i,
                    value: replacement,
                },
            );
        }
    }
    if let Some(outer_index) = data.outer_index() {
        let outer = inputs[outer_index];
        rewrite_one(ctx, state, outer, block, mappings);
    }
}

/// Builds (or reuses) the `VirtualObjectMapping` snapshot of `id`,
/// following virtual field references recursively; cyclic structures are
/// handled by registering the mapping before filling its inputs.
fn mapping_for(
    ctx: &mut PeaContext<'_>,
    state: &PeaState,
    id: AllocId,
    mappings: &mut HashMap<AllocId, NodeId>,
) -> NodeId {
    if let Some(&m) = mappings.get(&id) {
        return m;
    }
    let ObjectState::Virtual { fields, lock_count } = state.object(id) else {
        unreachable!("mapping for escaped object");
    };
    let (fields, lock_count) = (fields.clone(), *lock_count);
    let vom = ctx.graph.add(
        NodeKind::VirtualObjectMapping {
            shape: ctx.infos[id.index()].shape,
            lock_count,
        },
        vec![],
    );
    mappings.insert(id, vom);
    for v in fields {
        let resolved = match state.alias_of(v) {
            Some(child) => match state.object(child) {
                ObjectState::Virtual { .. } => mapping_for(ctx, state, child, mappings),
                ObjectState::Escaped { materialized } => *materialized,
            },
            None => v,
        };
        ctx.graph.push_input(vom, resolved);
    }
    vom
}
