//! Deferred graph mutations, applied after the analysis converges
//! (the analogue of Graal's `EffectsPhase` / `GraphEffectList`).
//!
//! During the control-flow iteration the analysis only *records* what it
//! wants to change; loop bodies may be processed several times (§5.4) and
//! the effects of abandoned iterations are discarded wholesale. New nodes
//! (phis, commits, virtual-object mappings, constants) *are* created
//! eagerly — they float freely and cost nothing until referenced; a final
//! [`pea_ir::Graph::prune_dead`] sweep collects the leftovers.

use pea_ir::{Graph, NodeId};

/// One deferred mutation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Effect {
    /// Unlink a fixed node from its control chain and tombstone it
    /// (virtualized allocation, store, monitor operation, …).
    DeleteFixed {
        /// The node to remove.
        node: NodeId,
    },
    /// Replace every use of `node` with `replacement`, then unlink and
    /// tombstone it (virtualized load, folded type/identity check, …).
    ReplaceAndDeleteFixed {
        /// The node to remove.
        node: NodeId,
        /// The value its users see instead.
        replacement: NodeId,
    },
    /// Rewrite one data input (escaped aliases become materialized
    /// values; frame-state slots become mappings).
    SetInput {
        /// The user node.
        node: NodeId,
        /// Input slot.
        index: usize,
        /// New value.
        value: NodeId,
    },
    /// Insert a materialization commit (already created, with its
    /// `AllocatedObject`s) before `anchor` in the control chain.
    InsertFixedBefore {
        /// Where to splice.
        anchor: NodeId,
        /// The fixed node to insert.
        node: NodeId,
    },
}

/// Applies effects in order, resolving replacement chains: if `a` was
/// replaced by `b` and a later effect references `a`, it is patched to
/// reference `b`'s final resolution.
#[derive(Debug, Default)]
pub struct EffectApplier {
    resolved: std::collections::HashMap<NodeId, NodeId>,
    /// Nodes deleted so far (for assertions in tests).
    pub deleted: Vec<NodeId>,
}

impl EffectApplier {
    /// Fresh applier.
    pub fn new() -> Self {
        Self::default()
    }

    fn resolve(&self, mut n: NodeId) -> NodeId {
        while let Some(&r) = self.resolved.get(&n) {
            if r == n {
                break;
            }
            n = r;
        }
        n
    }

    /// Applies one effect.
    pub fn apply(&mut self, graph: &mut Graph, effect: &Effect) {
        match effect {
            Effect::DeleteFixed { node } => {
                // Unlink only; the node becomes unreachable and the final
                // `prune_dead` sweep tombstones it (its frame state may be
                // shared and must survive until all rewrites ran).
                graph.unlink_fixed(*node);
                graph.set_state_after(*node, None);
                self.deleted.push(*node);
            }
            Effect::ReplaceAndDeleteFixed { node, replacement } => {
                let replacement = self.resolve(*replacement);
                assert_ne!(*node, replacement, "node replaced by itself");
                graph.replace_at_usages(*node, replacement);
                self.resolved.insert(*node, replacement);
                graph.unlink_fixed(*node);
                graph.set_state_after(*node, None);
                self.deleted.push(*node);
            }
            Effect::SetInput { node, index, value } => {
                let value = self.resolve(*value);
                graph.set_input(*node, *index, value);
            }
            Effect::InsertFixedBefore { anchor, node } => {
                graph.insert_fixed_before(*anchor, *node);
            }
        }
    }

    /// Applies a sequence of effects in order.
    pub fn apply_all(&mut self, graph: &mut Graph, effects: &[Effect]) {
        for e in effects {
            self.apply(graph, e);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pea_bytecode::FieldId;
    use pea_ir::NodeKind;

    /// start -> load1 -> load2 -> return(load2)
    fn chain_graph() -> (Graph, NodeId, NodeId, NodeId, NodeId) {
        let mut g = Graph::new();
        let p = g.add(NodeKind::Param { index: 0 }, vec![]);
        let load1 = g.add(NodeKind::LoadField { field: FieldId(0) }, vec![p]);
        g.set_next(g.start, load1);
        let load2 = g.add(NodeKind::LoadField { field: FieldId(1) }, vec![load1]);
        g.set_next(load1, load2);
        let ret = g.add(NodeKind::Return, vec![load2]);
        g.set_next(load2, ret);
        (g, p, load1, load2, ret)
    }

    #[test]
    fn replacement_chains_resolve() {
        let (mut g, p, load1, load2, ret) = chain_graph();
        // load1 virtualized to p; load2 virtualized to load1 (recorded
        // before load1's replacement applied — the applier must resolve
        // through the chain).
        let mut applier = EffectApplier::new();
        applier.apply_all(
            &mut g,
            &[
                Effect::ReplaceAndDeleteFixed {
                    node: load1,
                    replacement: p,
                },
                Effect::ReplaceAndDeleteFixed {
                    node: load2,
                    replacement: load1,
                },
            ],
        );
        assert_eq!(g.node(ret).inputs(), &[p]);
        assert_eq!(g.next(g.start), Some(ret));
        // Unlinked nodes are collected by the dead sweep.
        g.prune_dead();
        assert!(g.node(load1).is_deleted());
        assert!(g.node(load2).is_deleted());
    }

    #[test]
    fn set_input_resolves_replacements() {
        let (mut g, p, load1, _load2, ret) = chain_graph();
        let mut applier = EffectApplier::new();
        // Pretend ret's input should become load1, but load1 is replaced.
        applier.apply(
            &mut g,
            &Effect::ReplaceAndDeleteFixed {
                node: load1,
                replacement: p,
            },
        );
        applier.apply(
            &mut g,
            &Effect::SetInput {
                node: ret,
                index: 0,
                value: load1,
            },
        );
        assert_eq!(g.node(ret).inputs(), &[p]);
    }

    #[test]
    fn insert_before_splices_commit() {
        let (mut g, _p, load1, _load2, _ret) = chain_graph();
        let commit = g.add(NodeKind::Commit { objects: vec![] }, vec![]);
        let mut applier = EffectApplier::new();
        applier.apply(
            &mut g,
            &Effect::InsertFixedBefore {
                anchor: load1,
                node: commit,
            },
        );
        assert_eq!(g.next(g.start), Some(commit));
        assert_eq!(g.next(commit), Some(load1));
    }

    #[test]
    fn delete_fixed_drops_monitor() {
        let mut g = Graph::new();
        let p = g.add(NodeKind::Param { index: 0 }, vec![]);
        let me = g.add(NodeKind::MonitorEnter, vec![p]);
        g.set_next(g.start, me);
        let ret = g.add(NodeKind::Return, vec![]);
        g.set_next(me, ret);
        let mut applier = EffectApplier::new();
        applier.apply(&mut g, &Effect::DeleteFixed { node: me });
        assert_eq!(g.next(g.start), Some(ret));
        g.prune_dead();
        assert!(g.node(me).is_deleted());
    }
}
