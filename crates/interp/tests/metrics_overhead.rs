//! Disabled metrics must be free on the interpreter hot loop.
//!
//! The claim in DESIGN.md is that the static-handle pattern makes a
//! disabled [`pea_metrics::MetricsHub`] cost one branch per site and *zero
//! heap allocations*. This test pins the allocation half with a counting
//! global allocator: the number of allocations during a counted loop must
//! not depend on how many iterations the loop runs.

use pea_bytecode::asm::parse_program;
use pea_interp::SimpleEnv;
use pea_runtime::Value;
use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

thread_local! {
    static ALLOCS: Cell<u64> = const { Cell::new(0) };
}

struct CountingAlloc;

// SAFETY: delegates to `System` unchanged; only a thread-local counter is
// added on the allocation path.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let _ = ALLOCS.try_with(|c| c.set(c.get() + 1));
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

const COUNTED_LOOP: &str = "method f 1 returns {
  const 0
  store 1
Lhead:
  load 1
  load 0
  ifcmp ge Ldone
  load 1
  const 1
  add
  store 1
  goto Lhead
Ldone:
  load 1
  retv
}";

fn allocs_during_loop(iters: i64) -> u64 {
    let program = parse_program(COUNTED_LOOP).unwrap();
    let mut env = SimpleEnv::new(program);
    // Warm one-time lazy allocations (profile-map entries, stack growth).
    env.call("f", &[Value::Int(8)]).unwrap();
    let before = ALLOCS.with(Cell::get);
    let result = env.call("f", &[Value::Int(iters)]).unwrap();
    assert_eq!(result, Some(Value::Int(iters)));
    ALLOCS.with(Cell::get) - before
}

#[test]
fn disabled_metrics_add_zero_allocations_per_iteration() {
    let small = allocs_during_loop(1_000);
    let large = allocs_during_loop(100_000);
    assert_eq!(
        small, large,
        "allocation count must not scale with loop iterations \
         (disabled metrics and profiling must stay allocation-free)"
    );
}
