//! Property tests for the interpreter: executed semantics must match a
//! direct Rust model of the same expression.

use pea_bytecode::{MethodBuilder, ProgramBuilder};
use pea_interp::SimpleEnv;
use pea_runtime::{Value, VmError};
use proptest::prelude::*;

/// Expression trees with a direct evaluation model.
#[derive(Clone, Debug)]
enum E {
    Const(i8),
    P0,
    P1,
    Add(Box<E>, Box<E>),
    Sub(Box<E>, Box<E>),
    Mul(Box<E>, Box<E>),
    Div(Box<E>, Box<E>),
    Rem(Box<E>, Box<E>),
    Neg(Box<E>),
    Xor(Box<E>, Box<E>),
    Shl(Box<E>, Box<E>),
}

fn expr() -> impl Strategy<Value = E> {
    let leaf = prop_oneof![any::<i8>().prop_map(E::Const), Just(E::P0), Just(E::P1),];
    leaf.prop_recursive(4, 24, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| E::Add(a.into(), b.into())),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| E::Sub(a.into(), b.into())),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| E::Mul(a.into(), b.into())),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| E::Div(a.into(), b.into())),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| E::Rem(a.into(), b.into())),
            inner.clone().prop_map(|a| E::Neg(a.into())),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| E::Xor(a.into(), b.into())),
            (inner.clone(), inner).prop_map(|(a, b)| E::Shl(a.into(), b.into())),
        ]
    })
}

/// The reference model, mirroring the documented instruction semantics.
fn model(e: &E, p0: i64, p1: i64) -> Result<i64, VmError> {
    Ok(match e {
        E::Const(c) => i64::from(*c),
        E::P0 => p0,
        E::P1 => p1,
        E::Add(a, b) => model(a, p0, p1)?.wrapping_add(model(b, p0, p1)?),
        E::Sub(a, b) => model(a, p0, p1)?.wrapping_sub(model(b, p0, p1)?),
        E::Mul(a, b) => model(a, p0, p1)?.wrapping_mul(model(b, p0, p1)?),
        E::Div(a, b) => {
            let (a, b) = (model(a, p0, p1)?, model(b, p0, p1)?);
            if b == 0 {
                return Err(VmError::DivisionByZero);
            }
            a.wrapping_div(b)
        }
        E::Rem(a, b) => {
            let (a, b) = (model(a, p0, p1)?, model(b, p0, p1)?);
            if b == 0 {
                return Err(VmError::DivisionByZero);
            }
            a.wrapping_rem(b)
        }
        E::Neg(a) => model(a, p0, p1)?.wrapping_neg(),
        E::Xor(a, b) => model(a, p0, p1)? ^ model(b, p0, p1)?,
        E::Shl(a, b) => {
            let (a, b) = (model(a, p0, p1)?, model(b, p0, p1)?);
            a.wrapping_shl((b & 63) as u32)
        }
    })
}

fn emit(mb: &mut MethodBuilder, e: &E) {
    match e {
        E::Const(c) => {
            mb.const_(i64::from(*c));
        }
        E::P0 => {
            mb.load(0);
        }
        E::P1 => {
            mb.load(1);
        }
        E::Neg(a) => {
            emit(mb, a);
            mb.emit(pea_bytecode::Insn::Neg);
        }
        E::Add(a, b)
        | E::Sub(a, b)
        | E::Mul(a, b)
        | E::Div(a, b)
        | E::Rem(a, b)
        | E::Xor(a, b)
        | E::Shl(a, b) => {
            emit(mb, a);
            emit(mb, b);
            mb.emit(match e {
                E::Add(..) => pea_bytecode::Insn::Add,
                E::Sub(..) => pea_bytecode::Insn::Sub,
                E::Mul(..) => pea_bytecode::Insn::Mul,
                E::Div(..) => pea_bytecode::Insn::Div,
                E::Rem(..) => pea_bytecode::Insn::Rem,
                E::Xor(..) => pea_bytecode::Insn::Xor,
                _ => pea_bytecode::Insn::Shl,
            });
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 128, ..ProptestConfig::default() })]

    #[test]
    fn interpreter_matches_model(e in expr(), p0 in -50i64..50, p1 in -50i64..50) {
        let mut pb = ProgramBuilder::new();
        let mut mb = MethodBuilder::new_static("f", 2, true);
        emit(&mut mb, &e);
        mb.return_value();
        pb.add_method(mb.build().expect("builds"));
        let program = pb.build().expect("program");
        pea_bytecode::verify_program(&program).expect("verifies");

        let mut env = SimpleEnv::new(program);
        let actual = env.call("f", &[Value::Int(p0), Value::Int(p1)]);
        let expected = model(&e, p0, p1).map(|v| Some(Value::Int(v)));
        prop_assert_eq!(actual, expected);
    }
}
