//! The interpreter execution loop, including resume-after-deoptimization.

use crate::{Frame, InterpEnv};
use pea_bytecode::{Insn, MethodId, Program};
use pea_metrics::profile::Tier;
use pea_runtime::cost;
use pea_runtime::{ObjRef, Value, VmError};

/// Display names for the profiler's per-opcode buckets, indexed by
/// [`opcode_slot`].
pub const OPCODE_NAMES: &[&str] = &[
    "const",
    "cnull",
    "load",
    "store",
    "add",
    "sub",
    "mul",
    "div",
    "rem",
    "and",
    "or",
    "xor",
    "shl",
    "shr",
    "neg",
    "pop",
    "dup",
    "swap",
    "goto",
    "ifcmp",
    "ifnull",
    "ifnonnull",
    "ifrefeq",
    "ifrefne",
    "new",
    "getfield",
    "putfield",
    "getstatic",
    "putstatic",
    "newarray",
    "aload",
    "astore",
    "arraylen",
    "instanceof",
    "checkcast",
    "monitorenter",
    "monitorexit",
    "invokestatic",
    "invokevirtual",
    "ret",
    "retv",
    "throw",
    "athrow",
];

/// The profiler bucket slot for an instruction (dense, one per opcode
/// kind; see [`OPCODE_NAMES`]).
pub fn opcode_slot(insn: &Insn) -> usize {
    match insn {
        Insn::Const(_) => 0,
        Insn::ConstNull => 1,
        Insn::Load(_) => 2,
        Insn::Store(_) => 3,
        Insn::Add => 4,
        Insn::Sub => 5,
        Insn::Mul => 6,
        Insn::Div => 7,
        Insn::Rem => 8,
        Insn::And => 9,
        Insn::Or => 10,
        Insn::Xor => 11,
        Insn::Shl => 12,
        Insn::Shr => 13,
        Insn::Neg => 14,
        Insn::Pop => 15,
        Insn::Dup => 16,
        Insn::Swap => 17,
        Insn::Goto(_) => 18,
        Insn::IfCmp(..) => 19,
        Insn::IfNull(_) => 20,
        Insn::IfNonNull(_) => 21,
        Insn::IfRefEq(_) => 22,
        Insn::IfRefNe(_) => 23,
        Insn::New(_) => 24,
        Insn::GetField(_) => 25,
        Insn::PutField(_) => 26,
        Insn::GetStatic(_) => 27,
        Insn::PutStatic(_) => 28,
        Insn::NewArray(_) => 29,
        Insn::ArrayLoad => 30,
        Insn::ArrayStore => 31,
        Insn::ArrayLength => 32,
        Insn::InstanceOf(_) => 33,
        Insn::CheckCast(_) => 34,
        Insn::MonitorEnter => 35,
        Insn::MonitorExit => 36,
        Insn::InvokeStatic(_) => 37,
        Insn::InvokeVirtual(_) => 38,
        Insn::Return => 39,
        Insn::ReturnValue => 40,
        Insn::Throw => 41,
        Insn::Athrow => 42,
    }
}

/// The statically known cycle cost an instruction charges beyond
/// [`cost::INTERP_DISPATCH`]. Size-dependent charges (`new`, `newarray`)
/// and callee time (invokes charge inside the callee) report 0 here and
/// are attributed at their execution site instead.
fn static_op_cost(insn: &Insn) -> u64 {
    match insn {
        Insn::Goto(_)
        | Insn::IfCmp(..)
        | Insn::IfNull(_)
        | Insn::IfNonNull(_)
        | Insn::IfRefEq(_)
        | Insn::IfRefNe(_)
        | Insn::Athrow => cost::BRANCH_OP,
        Insn::GetField(_)
        | Insn::PutField(_)
        | Insn::GetStatic(_)
        | Insn::PutStatic(_)
        | Insn::ArrayLoad
        | Insn::ArrayStore
        | Insn::ArrayLength => cost::MEMORY_OP,
        Insn::MonitorEnter | Insn::MonitorExit => cost::MONITOR_OP,
        Insn::New(_)
        | Insn::NewArray(_)
        | Insn::InvokeStatic(_)
        | Insn::InvokeVirtual(_)
        | Insn::Return
        | Insn::ReturnValue
        | Insn::Throw => 0,
        _ => cost::ALU_OP,
    }
}

/// Interprets one method call to completion.
///
/// # Errors
///
/// Any [`VmError`] the method raises, including errors propagated out of
/// callees invoked through `env`.
pub fn interpret(
    program: &Program,
    env: &mut dyn InterpEnv,
    method: MethodId,
    args: Vec<Value>,
) -> Result<Option<Value>, VmError> {
    let m = program.method(method);
    debug_assert_eq!(args.len(), m.param_count as usize, "arity mismatch");
    env.charge(cost::CALL_OVERHEAD)?;
    if let Some(m) = env.metrics().on() {
        m.interp.invocations.inc();
    }
    env.profiler()
        .record_invocation(method.index(), Tier::Interp);
    if env.profiling_enabled() {
        env.profiles().record_invocation(method);
    }
    let mut frame = Frame::entry(method, m.max_locals, &args);
    if m.is_synchronized {
        let receiver = frame.locals[0].as_ref()?;
        env.heap().monitor_enter(receiver);
        env.charge(cost::MONITOR_OP)?;
        frame.locked.push(receiver);
    }
    run_frame(program, env, &mut frame)
}

/// Resumes execution from a reconstructed frame chain after
/// deoptimization. `frames` is outermost-first; the innermost frame
/// resumes at its `bci`, and when it returns, each outer frame continues
/// *after* the `invoke` instruction at its own `bci`, consuming the return
/// value if the callee returns one.
///
/// # Errors
///
/// Any [`VmError`] the resumed execution raises.
///
/// # Panics
///
/// Panics if `frames` is empty or an outer frame's `bci` does not point at
/// an invoke instruction (both indicate a frame-state construction bug).
pub fn resume(
    program: &Program,
    env: &mut dyn InterpEnv,
    mut frames: Vec<Frame>,
) -> Result<Option<Value>, VmError> {
    assert!(!frames.is_empty(), "resume with no frames");
    let mut result: Option<Value> = None;
    let mut first = true;
    while let Some(mut frame) = frames.pop() {
        if !first {
            // This frame was suspended at its invoke instruction.
            let insn = program.method(frame.method).code[frame.bci as usize];
            let callee = match insn {
                Insn::InvokeStatic(mid) | Insn::InvokeVirtual(mid) => mid,
                other => panic!("outer deopt frame not at an invoke: {other:?}"),
            };
            if program.method(callee).returns_value {
                let v = result
                    .take()
                    .ok_or_else(|| VmError::Internal("missing return value on resume".into()))?;
                frame.stack.push(v);
            }
            frame.bci += 1;
        }
        first = false;
        match run_frame(program, env, &mut frame) {
            Ok(r) => result = r,
            // An exception escaped this frame; the remaining outer frames
            // (still suspended at their invoke instructions) get to catch.
            Err(VmError::Thrown(exc)) => return unwind(program, env, frames, exc),
            Err(e) => return Err(e),
        }
    }
    Ok(result)
}

/// Dispatches an in-flight exception over a reconstructed frame chain
/// (outermost-first), innermost frame first, *without* re-executing the
/// faulting instruction: each frame's `bci` is the athrow/invoke where the
/// exception arose. The first frame with a matching handler catches it and
/// execution continues as in [`resume`]; frames unwound past release their
/// held monitors.
///
/// # Errors
///
/// [`VmError::Thrown`] if no frame catches, plus any [`VmError`] the resumed
/// execution raises.
pub fn unwind(
    program: &Program,
    env: &mut dyn InterpEnv,
    mut frames: Vec<Frame>,
    exc: ObjRef,
) -> Result<Option<Value>, VmError> {
    while let Some(mut frame) = frames.pop() {
        match enter_handler_or_unwind(program, env, &mut frame, exc) {
            Ok(handler) => {
                frame.bci = handler;
                frames.push(frame);
                return resume(program, env, frames);
            }
            Err(VmError::Thrown(_)) => continue,
            Err(e) => return Err(e),
        }
    }
    Err(VmError::Thrown(exc))
}

/// Either sets `frame` up to enter the matching exception handler for `exc`
/// thrown at `frame.bci` (operand stack cleared to just the exception,
/// handler bci returned), or — when the frame's table has no match —
/// releases the frame's monitors and returns the exception as
/// [`VmError::Thrown`] so the caller keeps unwinding.
fn enter_handler_or_unwind(
    program: &Program,
    env: &mut dyn InterpEnv,
    frame: &mut Frame,
    exc: ObjRef,
) -> Result<u32, VmError> {
    let class = env.heap().class_of(exc)?;
    let m = program.method(frame.method);
    match program.find_handler(m, frame.bci, class) {
        Some(handler) => {
            frame.stack.clear();
            frame.stack.push(Value::Ref(exc));
            Ok(handler)
        }
        None => {
            release_frame_locks(env, frame)?;
            Err(VmError::Thrown(exc))
        }
    }
}

fn pop(frame: &mut Frame) -> Result<Value, VmError> {
    frame
        .stack
        .pop()
        .ok_or_else(|| VmError::Internal("operand stack underflow".into()))
}

/// Executes `frame` until it returns, holding the cycle-attribution
/// context at `(frame.method, interp)` for the duration: every cycle this
/// frame charges — including frames entered by deopt resume and exception
/// unwinding, which never pass through the host's call path — lands in the
/// right profiler cell. Nested invokes push their own context and restore
/// this one on return.
fn run_frame(
    program: &Program,
    env: &mut dyn InterpEnv,
    frame: &mut Frame,
) -> Result<Option<Value>, VmError> {
    let prev_ctx = env.profiler().enter(frame.method.index(), Tier::Interp);
    let result = run_frame_inner(program, env, frame);
    env.profiler().restore(prev_ctx);
    result
}

/// Executes `frame` until it returns. The frame's `bci` selects the next
/// instruction throughout, so a frame reconstructed mid-method continues
/// seamlessly.
fn run_frame_inner(
    program: &Program,
    env: &mut dyn InterpEnv,
    frame: &mut Frame,
) -> Result<Option<Value>, VmError> {
    let method = frame.method;
    let code: &[Insn] = &program.method(method).code;
    // One hub clone per frame (an `Option<Arc>` bump, no allocation) so the
    // per-instruction path below is a single branch when metrics are off.
    let metrics = env.metrics().clone();
    // Likewise one per-frame profiler handle (two `Arc` bumps when enabled,
    // `None` when off) feeding per-bci and per-opcode hot-spot buckets.
    let profiler = env.profiler().frame(method.index());
    loop {
        let insn = code[frame.bci as usize];
        env.charge(cost::INTERP_DISPATCH)?;
        if let Some(m) = metrics.on() {
            m.interp.steps.inc();
        }
        if let Some(p) = &profiler {
            p.record_op(
                frame.bci,
                opcode_slot(&insn),
                cost::INTERP_DISPATCH + static_op_cost(&insn),
            );
        }
        let mut next = frame.bci + 1;
        match insn {
            Insn::Const(v) => {
                env.charge(cost::ALU_OP)?;
                frame.stack.push(Value::Int(v));
            }
            Insn::ConstNull => {
                env.charge(cost::ALU_OP)?;
                frame.stack.push(Value::Null);
            }
            Insn::Load(n) => {
                env.charge(cost::ALU_OP)?;
                frame.stack.push(frame.locals[n as usize]);
            }
            Insn::Store(n) => {
                env.charge(cost::ALU_OP)?;
                let v = pop(frame)?;
                frame.locals[n as usize] = v;
            }
            Insn::Add
            | Insn::Sub
            | Insn::Mul
            | Insn::Div
            | Insn::Rem
            | Insn::And
            | Insn::Or
            | Insn::Xor
            | Insn::Shl
            | Insn::Shr => {
                env.charge(cost::ALU_OP)?;
                let b = pop(frame)?.as_int()?;
                let a = pop(frame)?.as_int()?;
                let r = apply_binop(insn, a, b)?;
                frame.stack.push(Value::Int(r));
            }
            Insn::Neg => {
                env.charge(cost::ALU_OP)?;
                let a = pop(frame)?.as_int()?;
                frame.stack.push(Value::Int(a.wrapping_neg()));
            }
            Insn::Pop => {
                env.charge(cost::ALU_OP)?;
                pop(frame)?;
            }
            Insn::Dup => {
                env.charge(cost::ALU_OP)?;
                let v = pop(frame)?;
                frame.stack.push(v);
                frame.stack.push(v);
            }
            Insn::Swap => {
                env.charge(cost::ALU_OP)?;
                let b = pop(frame)?;
                let a = pop(frame)?;
                frame.stack.push(b);
                frame.stack.push(a);
            }
            Insn::Goto(t) => {
                env.charge(cost::BRANCH_OP)?;
                next = t;
            }
            Insn::IfCmp(op, t) => {
                env.charge(cost::BRANCH_OP)?;
                let b = pop(frame)?.as_int()?;
                let a = pop(frame)?.as_int()?;
                let taken = op.apply(a, b);
                if env.profiling_enabled() {
                    env.profiles().record_branch(method, frame.bci, taken);
                }
                if taken {
                    next = t;
                }
            }
            Insn::IfNull(t) | Insn::IfNonNull(t) => {
                env.charge(cost::BRANCH_OP)?;
                let v = pop(frame)?.as_ref_or_null()?;
                let taken = v.is_none() == matches!(insn, Insn::IfNull(_));
                if env.profiling_enabled() {
                    env.profiles().record_branch(method, frame.bci, taken);
                }
                if taken {
                    next = t;
                }
            }
            Insn::IfRefEq(t) | Insn::IfRefNe(t) => {
                env.charge(cost::BRANCH_OP)?;
                let b = pop(frame)?.as_ref_or_null()?;
                let a = pop(frame)?.as_ref_or_null()?;
                let taken = (a == b) == matches!(insn, Insn::IfRefEq(_));
                if env.profiling_enabled() {
                    env.profiles().record_branch(method, frame.bci, taken);
                }
                if taken {
                    next = t;
                }
            }
            Insn::New(class) => {
                let bytes = program.object_size(class);
                env.charge(cost::alloc_cost(bytes))?;
                if let Some(p) = &profiler {
                    p.record_op(frame.bci, opcode_slot(&insn), cost::alloc_cost(bytes));
                }
                env.profiler().record_alloc();
                let r = env.heap().alloc_instance(program, class);
                frame.stack.push(Value::Ref(r));
            }
            Insn::GetField(field) => {
                env.charge(cost::MEMORY_OP)?;
                let r = pop(frame)?.as_ref()?;
                let v = env.heap().get_field(program, r, field)?;
                frame.stack.push(v);
            }
            Insn::PutField(field) => {
                env.charge(cost::MEMORY_OP)?;
                let v = pop(frame)?;
                let r = pop(frame)?.as_ref()?;
                env.heap().put_field(program, r, field, v)?;
            }
            Insn::GetStatic(s) => {
                env.charge(cost::MEMORY_OP)?;
                let v = env.statics().get(s);
                frame.stack.push(v);
            }
            Insn::PutStatic(s) => {
                env.charge(cost::MEMORY_OP)?;
                let v = pop(frame)?;
                env.statics().set(s, v);
            }
            Insn::NewArray(kind) => {
                let len = pop(frame)?.as_int()?;
                let bytes = Program::array_size(len.max(0) as u64);
                env.charge(cost::alloc_cost(bytes))?;
                if let Some(p) = &profiler {
                    p.record_op(frame.bci, opcode_slot(&insn), cost::alloc_cost(bytes));
                }
                env.profiler().record_alloc();
                let r = env.heap().alloc_array(kind, len)?;
                frame.stack.push(Value::Ref(r));
            }
            Insn::ArrayLoad => {
                env.charge(cost::MEMORY_OP)?;
                let i = pop(frame)?.as_int()?;
                let r = pop(frame)?.as_ref()?;
                let v = env.heap().array_get(r, i)?;
                frame.stack.push(v);
            }
            Insn::ArrayStore => {
                env.charge(cost::MEMORY_OP)?;
                let v = pop(frame)?;
                let i = pop(frame)?.as_int()?;
                let r = pop(frame)?.as_ref()?;
                env.heap().array_set(r, i, v)?;
            }
            Insn::ArrayLength => {
                env.charge(cost::MEMORY_OP)?;
                let r = pop(frame)?.as_ref()?;
                let len = env.heap().array_length(r)?;
                frame.stack.push(Value::Int(len));
            }
            Insn::InstanceOf(class) => {
                env.charge(cost::ALU_OP)?;
                let v = pop(frame)?.as_ref_or_null()?;
                let is = match v {
                    Some(r) => {
                        let dynamic = env.heap().class_of(r)?;
                        program.is_subclass_of(dynamic, class)
                    }
                    None => false,
                };
                frame.stack.push(Value::from_bool(is));
            }
            Insn::CheckCast(class) => {
                env.charge(cost::ALU_OP)?;
                let v = pop(frame)?;
                if let Some(r) = v.as_ref_or_null()? {
                    let dynamic = env.heap().class_of(r)?;
                    if !program.is_subclass_of(dynamic, class) {
                        return Err(VmError::ClassCast {
                            expected: program.class(class).name.clone(),
                            found: program.class(dynamic).name.clone(),
                        });
                    }
                }
                frame.stack.push(v);
            }
            Insn::MonitorEnter => {
                env.charge(cost::MONITOR_OP)?;
                let r = pop(frame)?.as_ref()?;
                env.heap().monitor_enter(r);
            }
            Insn::MonitorExit => {
                env.charge(cost::MONITOR_OP)?;
                let r = pop(frame)?.as_ref()?;
                env.heap().monitor_exit(r)?;
            }
            Insn::InvokeStatic(target) => {
                let argc = program.method(target).param_count as usize;
                let args = split_args(frame, argc)?;
                match env.invoke(target, args) {
                    Ok(Some(v)) => frame.stack.push(v),
                    Ok(None) => {}
                    // A callee threw: this frame catches or keeps unwinding.
                    Err(VmError::Thrown(exc)) => {
                        next = enter_handler_or_unwind(program, env, frame, exc)?;
                    }
                    Err(e) => return Err(e),
                }
            }
            Insn::InvokeVirtual(target) => {
                let argc = program.method(target).param_count as usize;
                let args = split_args(frame, argc)?;
                let receiver = args[0].as_ref()?;
                let dynamic = env.heap().class_of(receiver)?;
                if env.profiling_enabled() {
                    env.profiles().record_receiver(method, frame.bci, dynamic);
                }
                let resolved = program
                    .resolve_virtual(dynamic, target)
                    .map_err(|e| VmError::NoSuchMethod(e.to_string()))?;
                match env.invoke(resolved, args) {
                    Ok(Some(v)) => frame.stack.push(v),
                    Ok(None) => {}
                    Err(VmError::Thrown(exc)) => {
                        next = enter_handler_or_unwind(program, env, frame, exc)?;
                    }
                    Err(e) => return Err(e),
                }
            }
            Insn::Return => {
                release_frame_locks(env, frame)?;
                return Ok(None);
            }
            Insn::ReturnValue => {
                let v = pop(frame)?;
                release_frame_locks(env, frame)?;
                return Ok(Some(v));
            }
            Insn::Throw => {
                let code = pop(frame)?.as_int()?;
                return Err(VmError::UserException(code));
            }
            Insn::Athrow => {
                env.charge(cost::BRANCH_OP)?;
                // Throwing null raises the plain null-pointer error
                // (uncatchable, like the other runtime errors).
                let exc = pop(frame)?.as_ref()?;
                next = enter_handler_or_unwind(program, env, frame, exc)?;
            }
        }
        // Loop back-edge safepoint: lets the host install finished
        // background compilations even while a single interpreted loop
        // keeps spinning (the other safepoint is method entry).
        if next <= frame.bci {
            if let Some(m) = metrics.on() {
                m.interp.back_edges.inc();
                m.interp.safepoint_polls.inc();
            }
            env.safepoint();
        }
        frame.bci = next;
    }
}

fn release_frame_locks(env: &mut dyn InterpEnv, frame: &mut Frame) -> Result<(), VmError> {
    while let Some(r) = frame.locked.pop() {
        env.charge(cost::MONITOR_OP)?;
        env.heap().monitor_exit(r)?;
    }
    Ok(())
}

fn split_args(frame: &mut Frame, argc: usize) -> Result<Vec<Value>, VmError> {
    if frame.stack.len() < argc {
        return Err(VmError::Internal("operand stack underflow at call".into()));
    }
    Ok(frame.stack.split_off(frame.stack.len() - argc))
}

fn apply_binop(insn: Insn, a: i64, b: i64) -> Result<i64, VmError> {
    Ok(match insn {
        Insn::Add => a.wrapping_add(b),
        Insn::Sub => a.wrapping_sub(b),
        Insn::Mul => a.wrapping_mul(b),
        Insn::Div => {
            if b == 0 {
                return Err(VmError::DivisionByZero);
            }
            a.wrapping_div(b)
        }
        Insn::Rem => {
            if b == 0 {
                return Err(VmError::DivisionByZero);
            }
            a.wrapping_rem(b)
        }
        Insn::And => a & b,
        Insn::Or => a | b,
        Insn::Xor => a ^ b,
        Insn::Shl => a.wrapping_shl((b & 63) as u32),
        Insn::Shr => a.wrapping_shr((b & 63) as u32),
        other => return Err(VmError::Internal(format!("not a binop: {other:?}"))),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SimpleEnv;
    use pea_bytecode::asm::parse_program;
    use pea_bytecode::{verify_program, CmpOp};

    fn run(source: &str, entry: &str, args: &[Value]) -> Result<Option<Value>, VmError> {
        let program = parse_program(source).expect("asm");
        verify_program(&program).expect("verify");
        let mut env = SimpleEnv::new(program);
        env.call(entry, args)
    }

    #[test]
    fn arithmetic_and_locals() {
        let r = run(
            "method f 2 returns { load 0 load 1 add const 2 mul retv }",
            "f",
            &[Value::Int(3), Value::Int(4)],
        );
        assert_eq!(r.unwrap(), Some(Value::Int(14)));
    }

    #[test]
    fn division_by_zero_raises() {
        let r = run(
            "method f 1 returns { load 0 const 0 div retv }",
            "f",
            &[Value::Int(3)],
        );
        assert_eq!(r.unwrap_err(), VmError::DivisionByZero);
    }

    #[test]
    fn branches_and_loops() {
        // sum 0..n
        let src = "method f 1 returns {
            const 0 store 1
            const 0 store 2
        Lhead:
            load 2 load 0 ifcmp ge Ldone
            load 1 load 2 add store 1
            load 2 const 1 add store 2
            goto Lhead
        Ldone:
            load 1 retv
        }";
        assert_eq!(
            run(src, "f", &[Value::Int(5)]).unwrap(),
            Some(Value::Int(10))
        );
    }

    #[test]
    fn enabled_metrics_count_steps_invocations_and_back_edges() {
        let src = "method f 1 returns {
            const 0 store 1
        Lhead:
            load 1 load 0 ifcmp ge Ldone
            load 1 const 1 add store 1
            goto Lhead
        Ldone:
            load 1 retv
        }";
        let program = parse_program(src).expect("asm");
        let mut env = SimpleEnv::new(program);
        env.metrics = pea_metrics::MetricsHub::enabled();
        env.call("f", &[Value::Int(7)]).unwrap();
        let snap = env.metrics.snapshot().unwrap();
        assert_eq!(snap.counter("interp.invocations"), 1);
        // One `goto Lhead` back-edge per completed iteration.
        assert_eq!(snap.counter("interp.back_edges"), 7);
        assert_eq!(snap.counter("interp.safepoint_polls"), 7);
        // 2 setup insns, 8 per completed iteration, 5 on the exit path
        // (final header check plus `load 1 retv`).
        assert_eq!(snap.counter("interp.steps"), 2 + 7 * 8 + 5);
    }

    #[test]
    fn objects_fields_and_identity() {
        let src = "
        class Box { field v int }
        method f 1 returns {
            new Box
            store 1
            load 1 load 0 putfield Box.v
            load 1 getfield Box.v
            retv
        }";
        assert_eq!(
            run(src, "f", &[Value::Int(9)]).unwrap(),
            Some(Value::Int(9))
        );
    }

    #[test]
    fn null_field_access_raises() {
        let src = "
        class Box { field v int }
        method f 0 returns { cnull getfield Box.v retv }";
        assert_eq!(run(src, "f", &[]).unwrap_err(), VmError::NullPointer);
    }

    #[test]
    fn statics_round_trip() {
        let src = "
        static g int
        method f 1 returns { load 0 putstatic g getstatic g retv }";
        assert_eq!(
            run(src, "f", &[Value::Int(7)]).unwrap(),
            Some(Value::Int(7))
        );
    }

    #[test]
    fn arrays_work() {
        let src = "method f 1 returns {
            const 4 newarray int store 1
            load 1 const 2 load 0 astore
            load 1 const 2 aload
            load 1 arraylen
            add retv
        }";
        assert_eq!(
            run(src, "f", &[Value::Int(5)]).unwrap(),
            Some(Value::Int(9))
        );
    }

    #[test]
    fn static_calls_pass_arguments() {
        let src = "
        method g 2 returns { load 0 load 1 sub retv }
        method f 0 returns { const 10 const 4 invokestatic g retv }";
        assert_eq!(run(src, "f", &[]).unwrap(), Some(Value::Int(6)));
    }

    #[test]
    fn virtual_dispatch_picks_override() {
        let src = "
        class A { }
        class B extends A { }
        method virtual A.tag 1 returns { const 1 retv }
        method virtual B.tag 1 returns { const 2 retv }
        method f 0 returns { new B invokevirtual A.tag retv }";
        assert_eq!(run(src, "f", &[]).unwrap(), Some(Value::Int(2)));
    }

    #[test]
    fn synchronized_methods_balance_monitors() {
        let src = "
        class C { field v int }
        method virtual C.get 1 returns synchronized { load 0 getfield C.v retv }
        method f 0 returns { new C store 0 load 0 invokevirtual C.get retv }";
        let program = parse_program(src).unwrap();
        let mut env = SimpleEnv::new(program);
        let r = env.call("f", &[]).unwrap();
        assert_eq!(r, Some(Value::Int(0)));
        assert_eq!(env.heap.stats.monitor_enters, 1);
        assert_eq!(env.heap.stats.monitor_exits, 1);
        assert_eq!(env.heap.total_lock_holds(), 0);
    }

    #[test]
    fn explicit_monitors() {
        let src = "
        class C { }
        method f 0 returns {
            new C store 0
            load 0 monitorenter
            load 0 monitorexit
            const 1 retv
        }";
        let program = parse_program(src).unwrap();
        let mut env = SimpleEnv::new(program);
        env.call("f", &[]).unwrap();
        assert_eq!(env.heap.stats.monitor_ops(), 2);
        assert_eq!(env.heap.total_lock_holds(), 0);
    }

    #[test]
    fn throw_propagates_through_calls() {
        let src = "
        method g 0 { const 42 throw }
        method f 0 returns { invokestatic g const 1 retv }";
        assert_eq!(run(src, "f", &[]).unwrap_err(), VmError::UserException(42));
    }

    #[test]
    fn athrow_caught_by_typed_handler() {
        let src = "
        class Err { field code int }
        method f 1 returns {
            try Ls Le Lh Err
        Ls:
            new Err
            dup load 0 putfield Err.code
            athrow
        Le:
        Lh:
            getfield Err.code
            retv
        }";
        assert_eq!(
            run(src, "f", &[Value::Int(41)]).unwrap(),
            Some(Value::Int(41))
        );
    }

    #[test]
    fn athrow_dispatch_matches_subclass_and_order() {
        // Inner typed handler matches a subclass throw before the outer
        // catch-all; a sibling class falls through to the catch-all.
        let src = "
        class Err { }
        class IoErr extends Err { }
        class NumErr extends Err { }
        method f 1 returns {
            try Ls Le Lio IoErr
            try Ls Le Lall *
        Ls:
            load 0 const 0 ifcmp eq Lnum
            new IoErr athrow
        Lnum:
            new NumErr athrow
        Le:
        Lio:
            pop const 1 retv
        Lall:
            pop const 2 retv
        }";
        assert_eq!(
            run(src, "f", &[Value::Int(1)]).unwrap(),
            Some(Value::Int(1))
        );
        assert_eq!(
            run(src, "f", &[Value::Int(0)]).unwrap(),
            Some(Value::Int(2))
        );
    }

    #[test]
    fn athrow_propagates_to_caller_handler() {
        let src = "
        class Err { field code int }
        method g 1 {
            new Err dup load 0 putfield Err.code athrow
        }
        method f 1 returns {
            try Ls Le Lh *
        Ls:
            load 0 invokestatic g
            const -1 retv
        Le:
        Lh:
            getfield Err.code
            const 100 add retv
        }";
        assert_eq!(
            run(src, "f", &[Value::Int(7)]).unwrap(),
            Some(Value::Int(107))
        );
    }

    #[test]
    fn uncaught_athrow_is_thrown_error() {
        let src = "
        class Err { }
        method f 0 returns { new Err athrow }";
        assert!(matches!(
            run(src, "f", &[]).unwrap_err(),
            VmError::Thrown(_)
        ));
    }

    #[test]
    fn throwing_null_is_null_pointer() {
        let src = "method f 0 returns { cnull athrow }";
        assert_eq!(run(src, "f", &[]).unwrap_err(), VmError::NullPointer);
    }

    #[test]
    fn unwinding_releases_synchronized_monitors() {
        let src = "
        class Err { }
        class C { }
        method virtual C.boom 1 synchronized { new Err athrow }
        method f 0 returns {
            try Ls Le Lh *
        Ls:
            new C invokevirtual C.boom
            const 0 retv
        Le:
        Lh:
            pop const 1 retv
        }";
        let program = parse_program(src).unwrap();
        verify_program(&program).expect("verify");
        let mut env = SimpleEnv::new(program);
        assert_eq!(env.call("f", &[]).unwrap(), Some(Value::Int(1)));
        assert_eq!(env.heap.total_lock_holds(), 0, "monitor leaked past unwind");
    }

    #[test]
    fn try_finally_lock_region_balances_on_throw() {
        // Explicit monitorenter with a catch-all region acting as finally:
        // the handler releases the lock and rethrows.
        let src = "
        class Err { }
        class L { }
        method f 1 returns {
            new L store 1
            load 1 monitorenter
            try Ls Le Lfin *
        Ls:
            load 0 const 0 ifcmp eq Lok
            new Err athrow
        Lok:
            goto Lout
        Le:
        Lfin:
            load 1 monitorexit
            athrow
        Lout:
            load 1 monitorexit
            const 9 retv
        }";
        let program = parse_program(src).unwrap();
        verify_program(&program).expect("verify");
        let mut env = SimpleEnv::new(program.clone());
        assert_eq!(
            env.call("f", &[Value::Int(0)]).unwrap(),
            Some(Value::Int(9))
        );
        assert_eq!(env.heap.total_lock_holds(), 0);
        let mut env = SimpleEnv::new(program);
        assert!(matches!(
            env.call("f", &[Value::Int(1)]).unwrap_err(),
            VmError::Thrown(_)
        ));
        assert_eq!(env.heap.total_lock_holds(), 0, "finally must release");
    }

    #[test]
    fn unwind_dispatches_over_frame_chain() {
        // Reconstructed chain: g (innermost, at its athrow) inside f
        // (suspended at the invokestatic covered by a catch-all).
        let src = "
        class Err { field code int }
        method g 1 {
            new Err dup load 0 putfield Err.code athrow
        }
        method f 1 returns {
            try Ls Le Lh *
        Ls:
            load 0 invokestatic g
            const -1 retv
        Le:
        Lh:
            getfield Err.code
            retv
        }";
        let program = parse_program(src).unwrap();
        verify_program(&program).expect("verify");
        let f = program.static_method_by_name("f").unwrap();
        let g = program.static_method_by_name("g").unwrap();
        let mut env = SimpleEnv::new(program.clone());
        let exc = env
            .heap
            .alloc_instance(&program, program.class_by_name("Err").unwrap());
        env.heap
            .put_field(
                &program,
                exc,
                program
                    .field_by_name(program.class_by_name("Err").unwrap(), "code")
                    .unwrap(),
                Value::Int(55),
            )
            .unwrap();
        let outer = Frame {
            method: f,
            bci: 1, // the invokestatic inside the protected region
            locals: vec![Value::Int(55)],
            stack: vec![],
            locked: vec![],
        };
        let inner = Frame {
            method: g,
            bci: 4, // the athrow itself; no table in g, so unwind outward
            locals: vec![Value::Int(55)],
            stack: vec![],
            locked: vec![],
        };
        let r = unwind(&program, &mut env, vec![outer, inner], exc).unwrap();
        assert_eq!(r, Some(Value::Int(55)));
    }

    #[test]
    fn instanceof_and_checkcast() {
        let src = "
        class A { }
        class B extends A { }
        method f 0 returns {
            new B
            dup
            instanceof A
            swap
            checkcast A
            pop
            retv
        }";
        assert_eq!(run(src, "f", &[]).unwrap(), Some(Value::Int(1)));
    }

    #[test]
    fn checkcast_failure() {
        let src = "
        class A { }
        class B extends A { }
        method f 0 returns { new A checkcast B pop const 0 retv }";
        assert!(matches!(
            run(src, "f", &[]).unwrap_err(),
            VmError::ClassCast { .. }
        ));
    }

    #[test]
    fn fuel_limits_runaway_loops() {
        let src = "method f 0 returns { Lx: goto Lx }";
        let program = parse_program(src).unwrap();
        let mut env = SimpleEnv::with_fuel(program, 10_000);
        assert_eq!(env.call("f", &[]).unwrap_err(), VmError::OutOfFuel);
    }

    #[test]
    fn profiles_record_branches_and_receivers() {
        let src = "
        class A { }
        method virtual A.id 1 returns { const 5 retv }
        method f 1 returns {
            load 0 const 0 ifcmp le Lneg
            new A invokevirtual A.id retv
        Lneg:
            const -1 retv
        }";
        let program = parse_program(src).unwrap();
        let f = program.static_method_by_name("f").unwrap();
        let mut env = SimpleEnv::new(program);
        env.call("f", &[Value::Int(5)]).unwrap();
        env.call("f", &[Value::Int(5)]).unwrap();
        env.call("f", &[Value::Int(-1)]).unwrap();
        let b = env.profiles.branch(f, 2).unwrap();
        assert_eq!(b.taken, 1);
        assert_eq!(b.not_taken, 2);
        assert_eq!(env.profiles.invocation_count(f), 3);
        // receiver profile exists at the invokevirtual bci (5)
        assert!(env.profiles.receiver(f, 4).is_some());
    }

    #[test]
    fn resume_continues_mid_method() {
        // f computes local1 = a*2 at bci 0..3, then returns local1 + 1.
        let src = "method f 1 returns {
            load 0 const 2 mul store 1
            load 1 const 1 add retv
        }";
        let program = parse_program(src).unwrap();
        let f = program.static_method_by_name("f").unwrap();
        let mut env = SimpleEnv::new(program.clone());
        // Resume at bci 4 (after the store) with locals [a=3, local1=99].
        let frame = Frame {
            method: f,
            bci: 4,
            locals: vec![Value::Int(3), Value::Int(99)],
            stack: vec![],
            locked: vec![],
        };
        let r = resume(&program, &mut env, vec![frame]).unwrap();
        assert_eq!(r, Some(Value::Int(100)));
    }

    #[test]
    fn resume_pops_frame_chain() {
        // caller suspended at its invokestatic; callee resumed mid-body.
        let src = "
        method g 1 returns { load 0 const 10 add retv }
        method f 0 returns { const 1 invokestatic g const 100 add retv }";
        let program = parse_program(src).unwrap();
        let f = program.static_method_by_name("f").unwrap();
        let g = program.static_method_by_name("g").unwrap();
        let mut env = SimpleEnv::new(program.clone());
        let outer = Frame {
            method: f,
            bci: 1, // at the invokestatic
            locals: vec![],
            stack: vec![],
            locked: vec![],
        };
        let inner = Frame {
            method: g,
            bci: 0,
            locals: vec![Value::Int(1)],
            stack: vec![],
            locked: vec![],
        };
        let r = resume(&program, &mut env, vec![outer, inner]).unwrap();
        assert_eq!(r, Some(Value::Int(111)));
    }

    #[test]
    fn comparison_ops_in_branches() {
        for (op, a, b, expect) in [
            (CmpOp::Lt, 1, 2, 1),
            (CmpOp::Ge, 1, 2, 0),
            (CmpOp::Ne, 3, 3, 0),
        ] {
            let src = format!(
                "method f 2 returns {{ load 0 load 1 ifcmp {op} Lt const 0 retv Lt: const 1 retv }}"
            );
            assert_eq!(
                run(&src, "f", &[Value::Int(a), Value::Int(b)]).unwrap(),
                Some(Value::Int(expect))
            );
        }
    }
}
