//! The execution environment the interpreter runs against.

use pea_bytecode::{MethodId, Program};
use pea_metrics::profile::ProfileRecorder;
use pea_metrics::MetricsHub;
use pea_runtime::profile::ProfileStore;
use pea_runtime::{Heap, Statics, Value, VmError};
use std::sync::Arc;

/// Services the interpreter needs from its host.
///
/// The tiered VM implements this to route [`InterpEnv::invoke`] through
/// its compilation policy; tests use [`SimpleEnv`], which always
/// interprets.
pub trait InterpEnv {
    /// The managed heap.
    fn heap(&mut self) -> &mut Heap;
    /// Static variable storage.
    fn statics(&mut self) -> &mut Statics;
    /// Profile sink; the interpreter records branches, receivers and
    /// invocations here.
    fn profiles(&mut self) -> &mut ProfileStore;
    /// Charges virtual cycles.
    ///
    /// # Errors
    ///
    /// [`VmError::OutOfFuel`] once the host's budget is exhausted.
    fn charge(&mut self, cycles: u64) -> Result<(), VmError>;
    /// Performs a (resolved) call; the host picks the tier.
    ///
    /// # Errors
    ///
    /// Whatever the callee raises.
    fn invoke(&mut self, method: MethodId, args: Vec<Value>) -> Result<Option<Value>, VmError>;
    /// Whether the interpreter should record profiling data.
    fn profiling_enabled(&self) -> bool {
        true
    }
    /// Safepoint poll, called at loop back-edges (method entry is the
    /// host's own responsibility). The tiered VM uses this to install
    /// methods finished by background compiler threads without waiting
    /// for the current (possibly long-running) interpreted loop to exit,
    /// and — with several mutator threads on one VM — to advance this
    /// mutator's rendezvous slot so evicted code-store variants another
    /// thread retired can be reclaimed. Each mutator thread implements
    /// its own `InterpEnv`, so polls touch only thread-private state plus
    /// one atomic generation check.
    fn safepoint(&mut self) {}
    /// The host's metrics handle; the interpreter counts steps, back-edges
    /// and safepoint polls through it. Defaults to the disabled hub, which
    /// records nothing at the cost of one branch per site.
    fn metrics(&self) -> &MetricsHub {
        MetricsHub::disabled_ref()
    }
    /// The host's cycle-attribution profiler; the interpreter resolves a
    /// per-frame handle from it at method entry and feeds per-bci and
    /// per-opcode hot-spot buckets plus allocation counts. Defaults to the
    /// disabled recorder, which records nothing at the cost of one branch
    /// per site.
    fn profiler(&self) -> &ProfileRecorder {
        ProfileRecorder::disabled_ref()
    }
}

/// A minimal interpret-everything environment for tests and examples: owns
/// the heap and statics and recursively interprets every call.
#[derive(Debug)]
pub struct SimpleEnv {
    program: Arc<Program>,
    /// The managed heap (public for inspection in tests).
    pub heap: Heap,
    /// Static variable storage.
    pub statics: Statics,
    /// Gathered profiles.
    pub profiles: ProfileStore,
    /// Optional cycle budget; `None` means unlimited.
    pub fuel: Option<u64>,
    /// Metrics handle (disabled by default).
    pub metrics: MetricsHub,
    spent: u64,
}

impl SimpleEnv {
    /// Creates an environment for `program` with unlimited fuel.
    pub fn new(program: Program) -> Self {
        let statics = Statics::new(&program.statics);
        SimpleEnv {
            program: Arc::new(program),
            heap: Heap::new(),
            statics,
            profiles: ProfileStore::new(),
            fuel: None,
            metrics: MetricsHub::disabled(),
            spent: 0,
        }
    }

    /// Creates an environment with a cycle budget.
    pub fn with_fuel(program: Program, fuel: u64) -> Self {
        let mut env = Self::new(program);
        env.fuel = Some(fuel);
        env
    }

    /// The program being executed.
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// Cycles charged so far.
    pub fn cycles_spent(&self) -> u64 {
        self.spent
    }

    /// Runs a static method by name.
    ///
    /// # Errors
    ///
    /// [`VmError::NoSuchMethod`] if the name does not resolve, otherwise
    /// whatever execution raises.
    pub fn call(&mut self, name: &str, args: &[Value]) -> Result<Option<Value>, VmError> {
        let method = self
            .program
            .static_method_by_name(name)
            .ok_or_else(|| VmError::NoSuchMethod(name.to_string()))?;
        let program = Arc::clone(&self.program);
        crate::interpret(&program, self, method, args.to_vec())
    }
}

impl InterpEnv for SimpleEnv {
    fn heap(&mut self) -> &mut Heap {
        &mut self.heap
    }

    fn statics(&mut self) -> &mut Statics {
        &mut self.statics
    }

    fn profiles(&mut self) -> &mut ProfileStore {
        &mut self.profiles
    }

    fn charge(&mut self, cycles: u64) -> Result<(), VmError> {
        self.spent += cycles;
        self.heap.stats.cycles += cycles;
        match self.fuel {
            Some(limit) if self.spent > limit => Err(VmError::OutOfFuel),
            _ => Ok(()),
        }
    }

    fn invoke(&mut self, method: MethodId, args: Vec<Value>) -> Result<Option<Value>, VmError> {
        let program = Arc::clone(&self.program);
        crate::interpret(&program, self, method, args)
    }

    fn metrics(&self) -> &MetricsHub {
        &self.metrics
    }
}
