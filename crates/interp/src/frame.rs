//! Interpreter activation frames.

use pea_bytecode::MethodId;
use pea_runtime::{ObjRef, Value};

/// One interpreter activation.
///
/// Frames are constructed either fresh (method entry) or by the VM's
/// deoptimization handler, which rebuilds the whole inlined frame chain
/// from a compiled frame state.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Frame {
    /// The executing method.
    pub method: MethodId,
    /// Next instruction to execute.
    pub bci: u32,
    /// Local variable slots (length = `max_locals`).
    pub locals: Vec<Value>,
    /// Operand stack.
    pub stack: Vec<Value>,
    /// Monitors this frame must release when it returns: the receiver of a
    /// synchronized method, whether entered fresh or reconstructed from a
    /// deoptimized synchronized activation. Explicit `monitorenter` /
    /// `monitorexit` pairs are *not* listed here — the bytecode itself
    /// releases those.
    pub locked: Vec<ObjRef>,
}

impl Frame {
    /// Builds a fresh entry frame: arguments in the first locals, the rest
    /// default-initialized to null (slot kinds are dynamic).
    pub fn entry(method: MethodId, max_locals: u16, args: &[Value]) -> Frame {
        let mut locals = Vec::with_capacity(max_locals as usize);
        locals.extend_from_slice(args);
        locals.resize(max_locals as usize, Value::Null);
        Frame {
            method,
            bci: 0,
            locals,
            stack: Vec::new(),
            locked: Vec::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn entry_frame_pads_locals() {
        let f = Frame::entry(MethodId(0), 4, &[Value::Int(1), Value::Int(2)]);
        assert_eq!(f.locals.len(), 4);
        assert_eq!(f.locals[0], Value::Int(1));
        assert_eq!(f.locals[3], Value::Null);
        assert_eq!(f.bci, 0);
        assert!(f.stack.is_empty());
    }
}
