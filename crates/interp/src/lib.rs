//! The bytecode interpreter: reference semantics, profiling tier, and
//! deoptimization target.
//!
//! In the paper's system (HotSpot + Graal), the interpreter plays three
//! roles that this crate reproduces:
//!
//! 1. **Reference semantics** — unoptimized execution against which the
//!    compiled tiers are differentially tested;
//! 2. **Profiling tier** — it gathers the invocation counts, branch
//!    profiles and receiver types the speculative compiler consumes;
//! 3. **Deoptimization target** — when compiled code bails out, the VM
//!    reconstructs interpreter [`Frame`]s from the compiled frame state
//!    (rematerializing virtual objects first, §5.5 of the paper) and
//!    resumes here via [`resume`].
//!
//! The interpreter is parameterised over an [`InterpEnv`] so the VM can
//! intercept calls (tier dispatch) and cycle accounting.

mod env;
mod exec;
mod frame;

pub use env::{InterpEnv, SimpleEnv};
pub use exec::{interpret, opcode_slot, resume, unwind, OPCODE_NAMES};
pub use frame::Frame;
